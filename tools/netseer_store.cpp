// netseer_store — operate on a flow-event store directory offline.
//
//   netseer_store inspect <dir>            list segments, WAL files, fences
//   netseer_store recover <dir>            replay the WAL, seal, checkpoint
//   netseer_store compact <dir>            force compaction + checkpoint
//   netseer_store query <dir> <spec> [th]  run a query (see --help for spec),
//                                          scatter-gathered over th threads
//   netseer_store tail <dir> [from-lsn]    subscription demo: stream every
//                  [--metrics-out <path>]  durable row after from-lsn; prints
//                                          subscription health on exit
//   netseer_store gen <dir> [n] [torn]     synthesize a store; optional torn
//                     [group]              WAL tail after `torn` bytes; `group`
//                                          ingests through async group commit
//                                          (tear lands mid-group)
//
// `recover` is what an operator (or the CI recovery job) runs over a
// directory left behind by a crash: it replays the log to the last valid
// record, reports what was recovered and whether the tail was torn, and
// rewrites the directory into a clean checkpointed state.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "core/event.h"
#include "store/store.h"
#include "store/subscription.h"
#include "telemetry/collect.h"
#include "telemetry/snapshot.h"

using namespace netseer;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <inspect|recover|compact|query|tail|gen> <dir> [args]\n"
               "  inspect <dir>\n"
               "  recover <dir>\n"
               "  compact <dir>\n"
               "  query <dir> <spec> [threads]\n"
               "                       spec: type=drop,switch=3,from=0,to=1000000,\n"
               "                       flow=10.0.0.1:1234>10.0.0.2:80/6\n"
               "  tail <dir> [from-lsn] [--metrics-out <path>]\n"
               "  gen <dir> [events] [torn-after-bytes] [group]\n",
               argv0);
  return 2;
}

void print_recovery(const store::FlowEventStore& fs) {
  const auto& r = fs.recovery();
  std::printf("recovery: %llu segments (%llu rows), %llu corrupt segment file(s)\n",
              static_cast<unsigned long long>(r.segments_loaded),
              static_cast<unsigned long long>(r.segment_rows),
              static_cast<unsigned long long>(r.segments_corrupt));
  std::printf("          WAL: %llu records replayed, %llu rows (%llu already sealed)%s\n",
              static_cast<unsigned long long>(r.wal_records_replayed),
              static_cast<unsigned long long>(r.wal_rows_replayed),
              static_cast<unsigned long long>(r.wal_rows_skipped),
              r.torn_tail ? ", TORN TAIL discarded" : "");
  if (r.segments_superseded > 0) {
    std::printf("          %llu superseded segment file(s) dropped (interrupted compaction)\n",
                static_cast<unsigned long long>(r.segments_superseded));
  }
  if (r.wal_files_repaired > 0) {
    std::printf("          %llu torn WAL file(s) truncated to their valid prefix\n",
                static_cast<unsigned long long>(r.wal_files_repaired));
  }
  std::printf("          max LSN %llu, %zu events live\n",
              static_cast<unsigned long long>(r.max_lsn), fs.size());
}

void print_segments(const store::FlowEventStore& fs) {
  std::printf("%zu segment(s):\n", fs.segment_count());
  for (const auto& seg : fs.segments()) {
    std::printf("  seg-%08u  %8zu rows  lsn [%llu, %llu]  time [%lld, %lld]\n",
                seg->file_id(), seg->size(),
                static_cast<unsigned long long>(seg->min_lsn()),
                static_cast<unsigned long long>(seg->max_lsn()),
                static_cast<long long>(seg->min_time()),
                static_cast<long long>(seg->max_time()));
  }
  std::printf("%zu WAL file(s):\n", store::list_wal_files(fs.options().dir).size());
  for (const auto& ref : store::list_wal_files(fs.options().dir)) {
    std::printf("  %s  %llu bytes\n", ref.path.c_str(),
                static_cast<unsigned long long>(ref.bytes));
  }
}

int cmd_query(store::FlowEventStore& fs, const std::string& spec) {
  std::string error;
  const auto parsed = store::parse_query(spec, &error);
  if (!parsed) {
    std::fprintf(stderr, "bad query '%s': %s\n", spec.c_str(), error.c_str());
    return 2;
  }
  const auto scanned_before = fs.stats().segments_scanned;
  const auto pruned_before = fs.stats().segments_pruned;
  std::size_t matches = 0;
  auto cursor = fs.scan(*parsed);
  while (const backend::StoredEvent* stored = cursor.next()) {
    const auto& ev = stored->event;
    if (matches < 50) {
      std::printf("t=%-14lld sw=%-6u %-12s %s x%u\n",
                  static_cast<long long>(ev.detected_at), ev.switch_id,
                  core::to_string(ev.type), ev.flow.to_string().c_str(), ev.counter);
    }
    ++matches;
  }
  if (matches > 50) std::printf("... and %zu more\n", matches - 50);
  std::printf("%zu event(s); %llu segment(s) scanned, %llu pruned\n", matches,
              static_cast<unsigned long long>(fs.stats().segments_scanned - scanned_before),
              static_cast<unsigned long long>(fs.stats().segments_pruned - pruned_before));
  return 0;
}

/// Stream every durable row after `from_lsn` through the subscription
/// API. On an offline directory one poll drains to the watermark; the
/// exit summary is the subscription-health block an online tailer would
/// watch: rows delivered, rows evicted into lag, and the last-delivered
/// LSN a checkpoint would persist as the resume point.
int cmd_tail(store::FlowEventStore& fs, std::uint64_t from_lsn,
             const std::string& metrics_out) {
  auto sub = fs.subscribe(backend::EventQuery{}, from_lsn);
  std::size_t shown = 0;
  while (sub.poll(
             [&](const backend::StoredEvent& stored, std::uint64_t lsn) {
               if (shown < 50) {
                 const auto& ev = stored.event;
                 std::printf("lsn=%-10llu t=%-14lld sw=%-6u %-12s %s x%u\n",
                             static_cast<unsigned long long>(lsn),
                             static_cast<long long>(ev.detected_at), ev.switch_id,
                             core::to_string(ev.type), ev.flow.to_string().c_str(), ev.counter);
               }
               ++shown;
             },
             4096) > 0) {
  }
  if (shown > 50) std::printf("... and %zu more\n", shown - 50);

  const std::uint64_t watermark = fs.durable_watermark();
  const std::uint64_t lag = watermark - sub.last_lsn();
  std::printf("subscription health:\n"
              "  rows delivered     %llu\n"
              "  rows evicted (lag) %llu\n"
              "  last-delivered LSN %llu (resume point)\n"
              "  durable watermark  %llu (%llu behind)\n",
              static_cast<unsigned long long>(sub.delivered()),
              static_cast<unsigned long long>(sub.lagged()),
              static_cast<unsigned long long>(sub.last_lsn()),
              static_cast<unsigned long long>(watermark),
              static_cast<unsigned long long>(lag));

  if (!metrics_out.empty()) {
    telemetry::Registry registry;
    telemetry::collect(registry, fs);
    registry.counter("store", "tail.rows_delivered").add(sub.delivered());
    registry.counter("store", "tail.rows_evicted").add(sub.lagged());
    registry.gauge("store", "tail.last_lsn").set(static_cast<std::int64_t>(sub.last_lsn()));
    registry.gauge("store", "tail.lag").set(static_cast<std::int64_t>(lag));
    const auto snapshot = telemetry::MetricsSnapshot::capture(registry);
    if (!snapshot.write_file(metrics_out)) {
      std::fprintf(stderr, "netseer_store: cannot write %s\n", metrics_out.c_str());
      return 1;
    }
  }
  return 0;
}

/// Synthesize a deterministic store for fixtures and demos. With a torn
/// byte budget, the WAL is cut off mid-record partway through ingest and
/// the directory is left WITHOUT a clean shutdown — exactly the on-disk
/// state an ingest crash leaves behind. `group_commit` routes ingest
/// through add_batch with watermark-only acks, so the tear lands in the
/// middle of an open fsync group (the writer_crash fixture shape).
int cmd_gen(const std::string& dir, std::uint64_t events, long long torn_after,
            bool group_commit) {
  store::StoreOptions options;
  options.dir = dir;
  options.shard_batch = 16;
  options.sync_every_batch = !group_commit;
  // Torn mode keeps every row in the WAL (no sealing) so recovery has to
  // replay the log itself, not just reload sealed segments.
  options.segment_events = torn_after >= 0 ? events + 1 : 256;
  store::FlowEventStore fs(options);
  std::uint64_t state = 42;
  std::vector<core::FlowEvent> batch;
  const auto flush_batch = [&] {
    if (batch.empty()) return;
    fs.add_batch(std::span<const core::FlowEvent>{batch.data(), batch.size()},
                 batch.back().detected_at + 50);
    batch.clear();
  };
  for (std::uint64_t i = 0; i < events; ++i) {
    if (torn_after >= 0 && i == events / 2) {
      flush_batch();
      fs.flush();
      fs.crash_after_wal_bytes(static_cast<std::uint64_t>(torn_after));
    }
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const auto r = state >> 33;
    packet::FlowKey flow{packet::Ipv4Addr::from_octets(10, 0, 0, 1 + (r % 8)),
                         packet::Ipv4Addr::from_octets(10, 0, 1, 1 + (r % 16)), 6,
                         static_cast<std::uint16_t>(1024 + (r % 64)), 80};
    auto ev = core::make_event(
        r % 3 == 0 ? core::EventType::kCongestion : core::EventType::kDrop, flow,
        static_cast<util::NodeId>(1 + (r % 4)), static_cast<util::SimTime>(i * 1000));
    ev.counter = static_cast<std::uint16_t>(1 + (r % 100));
    if (group_commit) {
      batch.push_back(ev);
      if (batch.size() == 64) flush_batch();
    } else {
      fs.add(ev, static_cast<util::SimTime>(i * 1000 + 50));
    }
  }
  flush_batch();
  if (torn_after >= 0) {
    // Crash path: flush through the dead WAL (tears the tail), then leak
    // nothing — the destructor skips the clean-shutdown sync on a dead
    // WAL, so the torn record stays on disk.
    fs.flush();
    std::printf("generated %llu events into %s with a torn WAL tail%s\n",
                static_cast<unsigned long long>(events), dir.c_str(),
                group_commit ? " (torn mid-group-commit)" : "");
  } else {
    fs.checkpoint();
    std::printf("generated %llu events into %s (%zu segments)\n",
                static_cast<unsigned long long>(events), dir.c_str(), fs.segment_count());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string cmd = argv[1];
  const std::string dir = argv[2];

  if (cmd == "gen") {
    const std::uint64_t events = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2000;
    const long long torn = argc > 4 ? std::strtoll(argv[4], nullptr, 10) : -1;
    const bool group = argc > 5 && std::strcmp(argv[5], "group") == 0;
    return cmd_gen(dir, events, torn, group);
  }

  store::StoreOptions options;
  options.dir = dir;
  store::FlowEventStore fs(options);

  if (cmd == "inspect") {
    print_recovery(fs);
    print_segments(fs);
    return 0;
  }
  if (cmd == "recover") {
    print_recovery(fs);
    fs.checkpoint();
    std::printf("checkpointed: %zu segment(s), %zu events, durable LSN %llu\n",
                fs.segment_count(), fs.size(),
                static_cast<unsigned long long>(fs.durable_lsn()));
    return 0;
  }
  if (cmd == "compact") {
    const std::size_t merges = fs.compact();
    fs.checkpoint();
    std::printf("%zu merge(s); now %zu segment(s), %zu events\n", merges,
                fs.segment_count(), fs.size());
    return 0;
  }
  if (cmd == "query") {
    if (argc < 4) return usage(argv[0]);
    if (argc > 4) {
      const auto threads = std::strtoull(argv[4], nullptr, 10);
      fs.set_query_threads(std::max<std::size_t>(1, std::min<std::size_t>(threads, 64)));
    }
    return cmd_query(fs, argv[3]);
  }
  if (cmd == "tail") {
    std::uint64_t from = 0;
    std::string metrics_out;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--metrics-out") == 0) {
        if (i + 1 >= argc) return usage(argv[0]);
        metrics_out = argv[++i];
      } else {
        from = std::strtoull(argv[i], nullptr, 10);
      }
    }
    return cmd_tail(fs, from, metrics_out);
  }
  return usage(argv[0]);
}
