// netseer_verify — static pipeline-invariant checker. Constructs (but
// never runs) a topology, deploys the NetSeer configuration to be
// verified, and proves the paper's deployability invariants over it:
// resource fitting (Fig. 7), stage hazards, recirculation termination,
// ACL shadowing, and the no-overflow capacity conditions (§4, Fig. 15).
// With --symbolic it additionally enumerates every pipeline execution
// path per switch and proves the behavioral coverage claims: every
// reachable drop path crosses exactly one event-emission point (zero
// FN), no path crosses two (zero FP), plus reachability, metadata, and
// path-sensitive capacity checks.
//
//   ./build/tools/netseer_verify --topology testbed --symbolic # exit 0
//   ./build/tools/netseer_verify --fixture tcam-overflow       # exit 1
//   ./build/tools/netseer_verify --fixture silent-drop         # exit 1
//
// Exit codes: 0 = verifies clean, 1 = diagnostics failed, 2 = usage.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "fabric/fat_tree.h"
#include "packet/addr.h"
#include "pdp/switch.h"
#include "verify/coverage.h"
#include "verify/symbolic.h"
#include "verify/verifier.h"

using namespace netseer;

namespace {

struct Args {
  std::string topology = "testbed";
  std::string fixture;       // empty = verify the topology as shipped
  std::string coverage_out;  // write machine-readable loss classes here
  bool json = false;
  bool strict = false;
  bool symbolic = false;
};

void usage() {
  std::puts("netseer_verify [--topology testbed|fat4|fat6|fat8] [--json] [--strict]");
  std::puts("               [--symbolic] [--coverage-out <path>]");
  std::puts("               [--fixture shadowed-acl|tcam-overflow|undersized-ring|stage-hazard");
  std::puts("                          |silent-drop|double-emit|uninit-meta|dead-route]");
  std::puts("");
  std::puts("Statically verifies a constructed NetSeer deployment; prints one");
  std::puts("diagnostic per violated invariant. --symbolic also enumerates all");
  std::puts("pipeline execution paths and proves drop coverage (zero-FN), no");
  std::puts("double-report (zero-FP), reachability, metadata initialization, and");
  std::puts("path-sensitive capacity. --fixture seeds a known defect (used by CI");
  std::puts("to prove each verifier pass actually fires). --coverage-out runs the");
  std::puts("symbolic pass and writes the loss classes the deployment can exhibit");
  std::puts("as JSON — the list the detect-coverage cross-check consumes.");
  std::puts("");
  std::puts("Exit codes: 0 = clean, 1 = diagnostics failed, 2 = usage error.");
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (flag == "--topology") {
      if (const char* v = next()) args.topology = v; else return false;
    } else if (flag == "--fixture") {
      if (const char* v = next()) args.fixture = v; else return false;
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--strict") {
      args.strict = true;
    } else if (flag == "--symbolic") {
      args.symbolic = true;
    } else if (flag == "--coverage-out") {
      if (const char* v = next()) args.coverage_out = v; else return false;
    } else {
      if (flag != "--help" && flag != "-h") {
        std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      }
      return false;
    }
  }
  return true;
}

// ---- Seeded defects ---------------------------------------------------------
// Each fixture plants exactly the class of mistake its verifier pass
// exists to catch, on an otherwise-clean topology.

/// A wildcard permit deployed above a specific deny: the deny is dead.
void seed_shadowed_acl(pdp::Switch& sw) {
  pdp::AclRule permit_any;
  permit_any.rule_id = 10;
  permit_any.permit = true;
  sw.acl().add_rule(permit_any);

  pdp::AclRule deny_specific;
  deny_specific.rule_id = 20;
  deny_specific.src = packet::Ipv4Prefix{packet::Ipv4Addr::from_octets(10, 0, 0, 0), 8};
  deny_specific.permit = false;
  sw.acl().add_rule(deny_specific);
}

/// Enough ternary rules to blow the 6.2 Mb TCAM past 100%. Disjoint /32
/// destinations so the rules don't also shadow each other.
void seed_tcam_overflow(pdp::Switch& sw) {
  for (std::uint32_t i = 0; i < 15000; ++i) {
    pdp::AclRule rule;
    rule.rule_id = static_cast<std::uint16_t>(1000 + (i % 60000));
    rule.dst = packet::Ipv4Prefix{
        packet::Ipv4Addr{(std::uint32_t{172} << 24) | (std::uint32_t{16} << 16) | i}, 32};
    rule.permit = false;
    sw.acl().add_rule(rule);
  }
}

/// A second actor writing the path table in its own stage: same-stage
/// WAW with undefined intra-stage ordering.
verify::PipelineLayout seed_stage_hazard(const core::NetSeerConfig& config) {
  verify::PipelineLayout layout = verify::netseer_layout(config);
  layout.add("detect.path_table", "rogue flow sampler", 3, verify::Gress::kIngress,
             verify::AccessMode::kWrite);
  return layout;
}

/// A route into a port that is administratively up but has no cable: the
/// packet passes the health check, enqueues, and is never transmitted —
/// silent loss with no drop point crossed (symbolic.coverage catches it).
bool seed_silent_drop(pdp::Switch& sw) {
  for (util::PortId p = 0; p < sw.config().num_ports; ++p) {
    if (sw.link(p) == nullptr && sw.port_up(p)) {
      sw.routes().insert(
          packet::Ipv4Prefix{packet::Ipv4Addr::from_octets(99, 0, 0, 0), 8},
          pdp::EcmpGroup{{p}});
      return true;
    }
  }
  return false;
}

/// A reachable deny rule, used together with a seeded extra emission
/// point at the ACL stage: the deny path then reports the same packet
/// twice (symbolic.duplicate catches it).
void seed_udp_deny(pdp::Switch& sw) {
  pdp::AclRule deny_udp;
  deny_udp.rule_id = 30;
  deny_udp.proto = static_cast<std::uint8_t>(packet::IpProto::kUdp);
  deny_udp.permit = false;
  sw.acl().add_rule(deny_udp);
}

/// A stale aggregate under more-specific routes: clone an existing host
/// /32's sibling, then add the covering /31 — every address the /31
/// covers is claimed by the longer entries, so it can never match
/// (symbolic.reachability warns).
bool seed_dead_route(pdp::Switch& sw) {
  for (const auto& entry : sw.routes().entries()) {
    if (entry.prefix.length != 32 || entry.corrupted) continue;
    const pdp::EcmpGroup group = entry.nexthops;
    const std::uint32_t addr = entry.prefix.network.value;
    sw.routes().insert(packet::Ipv4Prefix{packet::Ipv4Addr{addr ^ 1U}, 32}, group);
    sw.routes().insert(packet::Ipv4Prefix{packet::Ipv4Addr{addr & ~1U}, 31}, group);
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage();
    return 2;
  }

  fabric::TestbedConfig topo;
  fabric::Testbed tb;
  if (args.topology == "testbed") {
    tb = fabric::make_testbed(topo);
  } else if (args.topology.starts_with("fat")) {
    const int k = std::atoi(args.topology.c_str() + 3);
    if (k < 2 || k % 2) {
      std::fprintf(stderr, "bad fat-tree arity in '%s'\n", args.topology.c_str());
      return 2;
    }
    tb = fabric::make_fat_tree(k, topo);
  } else {
    std::fprintf(stderr, "unknown topology '%s'\n", args.topology.c_str());
    return 2;
  }

  core::NetSeerConfig config;
  verify::VerifyOptions options;
  options.strict = args.strict;

  bool hazard_fixture = false;
  // Symbolic-executor defects are seeded into the pipeline *model* of
  // tors[0] only (mirroring how stage-hazard plants a layout conflict),
  // so the expected diagnostic appears exactly once.
  verify::SymbolicOptions symopts;
  bool symbolic_defect = false;
  if (args.fixture == "shadowed-acl") {
    seed_shadowed_acl(*tb.tors[0]);
  } else if (args.fixture == "tcam-overflow") {
    seed_tcam_overflow(*tb.tors[0]);
  } else if (args.fixture == "undersized-ring") {
    config.interswitch.ring_slots = 64;
  } else if (args.fixture == "stage-hazard") {
    hazard_fixture = true;
  } else if (args.fixture == "silent-drop") {
    if (!seed_silent_drop(*tb.aggs[0])) {
      std::fprintf(stderr, "silent-drop: no up-but-unwired port on %s\n",
                   tb.aggs[0]->name().c_str());
      return 2;
    }
    args.symbolic = true;
  } else if (args.fixture == "double-emit") {
    seed_udp_deny(*tb.tors[0]);
    symopts.defects.extra_emissions.push_back(
        {pdp::Stage::kAcl, pdp::DropReason::kAclDeny, "rogue.acl_mirror"});
    symbolic_defect = true;
  } else if (args.fixture == "uninit-meta") {
    symopts.defects.extra_reads.push_back(
        {pdp::Stage::kMmuAdmit, pdp::MetaField::kAclRuleId, "rogue acl aggregator"});
    symbolic_defect = true;
  } else if (args.fixture == "dead-route") {
    if (!seed_dead_route(*tb.tors[0])) {
      std::fprintf(stderr, "dead-route: no host /32 to shadow on %s\n",
                   tb.tors[0]->name().c_str());
      return 2;
    }
    args.symbolic = true;
  } else if (!args.fixture.empty()) {
    std::fprintf(stderr, "unknown fixture '%s'\n", args.fixture.c_str());
    return 2;
  }
  options.symbolic = args.symbolic;

  verify::Report report;
  if (hazard_fixture) {
    const verify::PipelineLayout layout = seed_stage_hazard(config);
    for (pdp::Switch* sw : tb.all_switches()) {
      report.merge(verify::verify_switch(*sw, config, layout, options));
    }
  } else {
    report = verify::verify_testbed(tb, config, options);
  }
  if (symbolic_defect) {
    verify::check_symbolic(report, *tb.tors[0], config, options, symopts);
  }

  if (!args.coverage_out.empty()) {
    // A scratch report: the symbolic pass re-runs for class extraction
    // without duplicating diagnostics into the exit-code report.
    verify::Report scratch;
    const auto classes = verify::collect_coverage(scratch, tb.all_switches(), config,
                                                  options, symopts);
    const std::string json = verify::render_coverage_json(classes);
    FILE* f = std::fopen(args.coverage_out.c_str(), "wb");
    bool ok = f != nullptr;
    if (ok) {
      ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
      ok = std::fclose(f) == 0 && ok;
    }
    if (!ok) {
      std::fprintf(stderr, "cannot write %s\n", args.coverage_out.c_str());
      return 2;
    }
  }

  if (args.json) {
    std::fputs(report.render_json().c_str(), stdout);
  } else {
    std::printf("netseer_verify: %s, %zu switches%s%s\n", args.topology.c_str(),
                tb.all_switches().size(),
                args.fixture.empty() ? "" : ", fixture ", args.fixture.c_str());
    std::fputs(report.render_text().c_str(), stdout);
  }
  return report.ok(args.strict) ? 0 : 1;
}
