// netseer_mc — run the exhaustive-interleaving model-check harnesses
// (src/mc) and report per-harness exploration statistics through the
// telemetry registry, exportable as a MetricsSnapshot (JSON/CSV).
//
// A correctness harness passes only when the schedule space is
// EXHAUSTED with no failure; a seeded-bug harness passes only when the
// checker demonstrably catches the planted bug. Exit 0 iff every
// selected harness passed, so CI can gate on this binary directly.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mc/harnesses.h"
#include "telemetry/metrics.h"
#include "telemetry/snapshot.h"

namespace {

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: netseer_mc [options]\n"
               "  --list                 list harnesses and exit\n"
               "  --harness NAME         run only NAME (repeatable)\n"
               "  --max-schedules N      override the exploration budget\n"
               "  --max-steps N          override the per-schedule op budget\n"
               "  --metrics-out PATH     write a metrics snapshot (.csv => CSV, else JSON)\n"
               "  --trace                print the failing schedule for every failure\n"
               "  --help                 this message\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> selected;
  std::string metrics_out;
  std::uint64_t max_schedules = 0;  // 0 = keep the harness's own budget
  std::uint64_t max_steps = 0;
  bool list = false;
  bool trace = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "netseer_mc: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      list = true;
    } else if (arg == "--harness") {
      selected.emplace_back(value());
    } else if (arg == "--max-schedules") {
      max_schedules = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--max-steps") {
      max_steps = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--metrics-out") {
      metrics_out = value();
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "netseer_mc: unknown option %s\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  const auto& harnesses = netseer::mc::all_harnesses();
  if (list) {
    for (const auto& h : harnesses) {
      std::printf("%-24s %s%s\n", h.name.c_str(), h.summary.c_str(),
                  h.expect_failure ? " [seeded bug]" : "");
    }
    return 0;
  }
  for (const std::string& name : selected) {
    bool known = false;
    for (const auto& h : harnesses) known = known || h.name == name;
    if (!known) {
      std::fprintf(stderr, "netseer_mc: no harness named %s (see --list)\n", name.c_str());
      return 2;
    }
  }

  netseer::telemetry::Registry registry;
  int failures = 0;
  int ran = 0;
  for (const auto& h : harnesses) {
    if (!selected.empty()) {
      bool wanted = false;
      for (const std::string& name : selected) wanted = wanted || name == h.name;
      if (!wanted) continue;
    }
    ++ran;
    netseer::mc::Options options = h.options;
    if (max_schedules != 0) options.max_schedules = max_schedules;
    if (max_steps != 0) options.max_steps = max_steps;
    const auto start = std::chrono::steady_clock::now();
    const netseer::mc::Result result = h.run(options);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    const bool passed = h.passed(result);
    if (!passed) ++failures;

    std::printf("%-24s %s schedules=%llu pruned=%llu steps=%llu depth=%llu exhausted=%d "
                "failed=%d %lldms\n",
                h.name.c_str(), passed ? "PASS" : "FAIL",
                static_cast<unsigned long long>(result.schedules),
                static_cast<unsigned long long>(result.pruned),
                static_cast<unsigned long long>(result.steps),
                static_cast<unsigned long long>(result.max_depth), result.exhausted ? 1 : 0,
                result.failed ? 1 : 0, static_cast<long long>(ms));
    if (result.failed) {
      std::printf("    %s: %s\n", h.expect_failure ? "caught (as expected)" : "failure",
                  result.failure.c_str());
      if (trace || !h.expect_failure) {
        for (const std::string& step : result.trace) std::printf("      %s\n", step.c_str());
      }
    }

    registry.counter("mc", h.name + ".schedules").add(result.schedules);
    registry.counter("mc", h.name + ".pruned").add(result.pruned);
    registry.counter("mc", h.name + ".steps").add(result.steps);
    registry.gauge("mc", h.name + ".max_depth").set(static_cast<std::int64_t>(result.max_depth));
    registry.gauge("mc", h.name + ".exhausted").set(result.exhausted ? 1 : 0);
    registry.gauge("mc", h.name + ".bug_caught").set(result.failed ? 1 : 0);
    registry.gauge("mc", h.name + ".passed").set(passed ? 1 : 0);
    registry.gauge("mc", h.name + ".runtime_ms").set(static_cast<std::int64_t>(ms));
  }

  if (ran == 0) {
    std::fprintf(stderr, "netseer_mc: no harness selected\n");
    return 2;
  }
  if (!metrics_out.empty()) {
    const auto snapshot = netseer::telemetry::MetricsSnapshot::capture(registry);
    if (!snapshot.write_file(metrics_out)) {
      std::fprintf(stderr, "netseer_mc: cannot write %s\n", metrics_out.c_str());
      return 1;  // runtime failure, not a usage error
    }
  }
  std::printf("%d/%d harnesses passed\n", ran - failures, ran);
  return failures == 0 ? 0 : 1;
}
