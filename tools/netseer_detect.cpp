// netseer_detect — run the streaming anomaly-detection service over a
// flow-event store directory.
//
//   netseer_detect --store-dir <dir> [options]
//
//   --store-dir <dir>       store directory to tail (required)
//   --rules <path>          rule file (see src/detect/rules.h); default
//                           is the built-in RuleSet::defaults()
//   --checkpoint <path>     resume-LSN checkpoint file: restarts resume
//                           exactly-once after the last consumed row
//   --from-lsn <n>          start after LSN n (ignored when a checkpoint
//                           file exists)
//   --follow                keep tailing until SIGINT/SIGTERM instead of
//                           draining once and exiting
//   --poll-ms <n>           sleep between pumps in --follow mode (default 50)
//   --metrics-out <path>    write a metrics snapshot on exit
//                           (.csv => CSV, else JSON)
//
// One-shot mode drains everything durable, force-closes the open
// windows, prints the alert table, and exits 0 when no alert is active
// (resolved alerts are history, not a page) and 1 otherwise — so the
// exit code is usable from scripts: "did this store contain an
// unresolved anomaly?".
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "detect/service.h"
#include "telemetry/collect.h"
#include "telemetry/snapshot.h"

using namespace netseer;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --store-dir <dir> [--rules <path>] [--checkpoint <path>]\n"
               "          [--from-lsn <n>] [--follow] [--poll-ms <n>]\n"
               "          [--metrics-out <path>]\n",
               argv0);
  return 2;
}

void print_alerts(const detect::AlertManager& alerts) {
  if (alerts.alerts().empty()) {
    std::printf("no alerts\n");
    return;
  }
  std::printf("%zu alert(s):\n", alerts.alerts().size());
  for (const detect::Alert& alert : alerts.alerts()) {
    std::printf("  [%s] %-12s %-8s switch=%-6u group=%-12llu raised_at=%lld "
                "windows=%u flaps=%u peak=%.1f flow=%s\n",
                detect::to_string(alert.state), alert.rule->name.c_str(),
                detect::to_string(alert.severity), alert.key.switch_id,
                static_cast<unsigned long long>(alert.key.group),
                static_cast<long long>(alert.raised_at), alert.firing_windows, alert.flaps,
                alert.peak_value, alert.sample.flow.to_string().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_dir;
  std::string rules_path;
  std::string metrics_out;
  detect::DetectOptions options;
  std::uint64_t from_lsn = 0;
  bool follow = false;
  long long poll_ms = 50;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--store-dir") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      store_dir = v;
    } else if (arg == "--rules") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      rules_path = v;
    } else if (arg == "--checkpoint") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      options.checkpoint_path = v;
    } else if (arg == "--from-lsn") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      from_lsn = std::strtoull(v, nullptr, 10);
    } else if (arg == "--follow") {
      follow = true;
    } else if (arg == "--poll-ms") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      poll_ms = std::strtoll(v, nullptr, 10);
    } else if (arg == "--metrics-out") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      metrics_out = v;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (store_dir.empty()) return usage(argv[0]);

  if (!rules_path.empty()) {
    std::string error;
    auto rules = detect::load_rules(rules_path, &error);
    if (!rules) {
      std::fprintf(stderr, "netseer_detect: bad rules file: %s\n", error.c_str());
      return 2;
    }
    options.rules = std::move(*rules);
  }

  store::StoreOptions store_options;
  store_options.dir = store_dir;
  store::FlowEventStore fs(store_options);
  std::printf("netseer_detect: %zu events in %s, durable LSN %llu, %zu rule(s)\n",
              fs.size(), store_dir.c_str(),
              static_cast<unsigned long long>(fs.durable_lsn()), options.rules.rules.size());

  options.from_lsn = from_lsn;  // a checkpoint file, when present, wins
  detect::DetectService service(fs, std::move(options));
  if (service.stats().resumed) {
    std::printf("resumed from checkpoint LSN %llu\n",
                static_cast<unsigned long long>(service.stats().resumed_lsn));
  }

  if (follow) {
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    service.run_follow(g_stop, std::chrono::milliseconds(std::max(1ll, poll_ms)));
  } else {
    service.pump();
  }
  service.finish();

  print_alerts(service.alerts());
  const auto& stats = service.stats();
  std::printf("%llu row(s) in %llu pump(s), %llu checkpoint(s); last LSN %llu\n",
              static_cast<unsigned long long>(stats.rows),
              static_cast<unsigned long long>(stats.pumps),
              static_cast<unsigned long long>(stats.checkpoints),
              static_cast<unsigned long long>(service.subscription().last_lsn()));

  if (!metrics_out.empty()) {
    telemetry::Registry registry;
    telemetry::collect(registry, fs);
    telemetry::collect(registry, service);
    const auto snapshot = telemetry::MetricsSnapshot::capture(registry);
    if (!snapshot.write_file(metrics_out)) {
      std::fprintf(stderr, "netseer_detect: cannot write %s\n", metrics_out.c_str());
      return 1;
    }
  }
  return service.alerts().stats().active == 0 ? 0 : 1;
}
