// AST-exact frontend for netseer_lint, compiled only under
// -DNETSEER_LINT_CLANG=ON against clang-18 LibTooling. It replaces the
// token-level fact extraction with a real parse: annotations come off
// AnnotateAttr nodes, allocation evidence off CXXNewExpr/callee decls,
// and lock scopes off the RAII guard variables' enclosing CompoundStmt.
// Everything downstream (AnnotationDb, the five passes, suppression and
// expectation handling) is shared with the token frontend, so the two
// frontends must agree on the FileModel vocabulary — the name tables
// below mirror model.cpp and any change must land in both.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/AST/Stmt.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/ASTUnit.h"
#include "clang/Tooling/CompilationDatabase.h"
#include "clang/Tooling/Tooling.h"

#include "model.h"

namespace netseer::lint {
namespace {

// ---- name tables (keep in sync with model.cpp) -----------------------------

bool is_lock_type(std::string_view s) {
  return s.find("MutexLock") != std::string_view::npos ||
         s.find("CondMutexLock") != std::string_view::npos ||
         s.find("lock_guard") != std::string_view::npos ||
         s.find("unique_lock") != std::string_view::npos ||
         s.find("scoped_lock") != std::string_view::npos;
}

bool is_direct_alloc_fn(std::string_view s) {
  return s == "malloc" || s == "calloc" || s == "realloc" || s == "aligned_alloc" ||
         s == "strdup" || s == "make_unique" || s == "make_shared" || s == "to_string";
}

bool is_allocating_method(std::string_view s) {
  return s == "push_back" || s == "emplace_back" || s == "emplace" || s == "try_emplace" ||
         s == "insert" || s == "resize" || s == "reserve" || s == "append" ||
         s == "assign" || s == "push_front";
}

bool is_blocking_fn(std::string_view qualified) {
  static const char* const kBlocking[] = {
      "fsync",       "fdatasync",  "fwrite", "fread",
      "fflush",      "fopen",      "fclose", "system",
      "write",       "read",       "open",   "close",
      "std::this_thread::sleep_for", "std::this_thread::sleep_until",
  };
  for (const char* b : kBlocking) {
    if (qualified == b) return true;
  }
  return qualified.rfind("std::filesystem::", 0) == 0;
}

bool is_cv_wait(std::string_view method) {
  return method == "wait" || method == "wait_for" || method == "wait_until";
}

// ---- visitor ----------------------------------------------------------------

class Extractor : public clang::RecursiveASTVisitor<Extractor> {
 public:
  Extractor(clang::ASTContext& ctx, FileModel* out) : ctx_(ctx), out_(out) {}

  bool shouldVisitTemplateInstantiations() const { return false; }

  bool VisitFunctionDecl(clang::FunctionDecl* fd) {
    if (!in_main_file(fd->getLocation())) return true;

    FunctionModel fn;
    fn.qualified = fd->getQualifiedNameAsString();
    fn.name = fd->getNameAsString();
    fn.file = out_->path;
    fn.line = line_of(fd->getLocation());
    fn.is_definition = fd->doesThisDeclarationHaveABody();
    fn.has_explicit_qualifier = fd->getQualifier() != nullptr;
    if (!llvm::isa<clang::CXXConstructorDecl>(fd) && !llvm::isa<clang::CXXDestructorDecl>(fd)) {
      fn.return_type = fd->getReturnType().getAsString();
    }

    for (const auto* attr : fd->specific_attrs<clang::AnnotateAttr>()) {
      const llvm::StringRef a = attr->getAnnotation();
      if (a == "netseer::hot") fn.hot = true;
      if (a == "netseer::hot_allow_init") fn.allow_init = true;
      if (a == "netseer::blocking") fn.blocking = true;
    }
    fn.nodiscard = fd->hasAttr<clang::WarnUnusedResultAttr>();
    fn.requires_lock = fd->hasAttr<clang::RequiresCapabilityAttr>();

    if (fn.is_definition) walk(fd->getBody(), /*locks=*/0, fn);
    out_->functions.push_back(std::move(fn));
    return true;
  }

  bool VisitFieldDecl(clang::FieldDecl* fld) {
    record_raw_sync(fld->getType().getAsString(), fld->getLocation());
    return true;
  }

  bool VisitVarDecl(clang::VarDecl* vd) {
    if (vd->isLocalVarDeclOrParm()) return true;  // guards handled in walk()
    record_raw_sync(vd->getType().getAsString(), vd->getLocation());
    return true;
  }

 private:
  [[nodiscard]] bool in_main_file(clang::SourceLocation loc) const {
    return loc.isValid() && ctx_.getSourceManager().isWrittenInMainFile(loc);
  }

  [[nodiscard]] int line_of(clang::SourceLocation loc) const {
    return static_cast<int>(ctx_.getSourceManager().getSpellingLineNumber(loc));
  }

  void record_raw_sync(const std::string& type, clang::SourceLocation loc) {
    if (!in_main_file(loc)) return;
    const int line = line_of(loc);
    if (type.find("std::mutex") != std::string::npos ||
        type.find("std::condition_variable") != std::string::npos ||
        type.find("std::lock_guard") != std::string::npos) {
      out_->raw_sync.push_back(RawSyncUse{type, line});
    } else if (type.find("std::atomic") != std::string::npos) {
      out_->raw_atomic.push_back(RawSyncUse{type, line});
    }
  }

  /// Statement walk with a lock counter: a RAII guard declared inside a
  /// CompoundStmt holds for that compound's remaining children, which is
  /// exactly the scoping the passes assume.
  void walk(const clang::Stmt* s, int locks, FunctionModel& fn) {
    if (s == nullptr) return;
    if (const auto* compound = llvm::dyn_cast<clang::CompoundStmt>(s)) {
      int held = locks;
      for (const clang::Stmt* child : compound->body()) {
        walk(child, held, fn);
        if (const auto* ds = llvm::dyn_cast<clang::DeclStmt>(child)) {
          for (const clang::Decl* d : ds->decls()) {
            const auto* vd = llvm::dyn_cast<clang::VarDecl>(d);
            if (vd != nullptr && is_lock_type(vd->getType().getAsString())) ++held;
          }
        }
      }
      return;
    }
    if (const auto* nw = llvm::dyn_cast<clang::CXXNewExpr>(s)) {
      if (nw->getNumPlacementArgs() == 0) {
        fn.allocs.push_back(FunctionModel::Alloc{"operator new", line_of(nw->getBeginLoc())});
      }
    } else if (const auto* call = llvm::dyn_cast<clang::CallExpr>(s)) {
      record_call(call, locks, fn);
    }
    for (const clang::Stmt* child : s->children()) walk(child, locks, fn);
  }

  void record_call(const clang::CallExpr* call, int locks, FunctionModel& fn) {
    const clang::FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr) return;
    const std::string name = callee->getNameAsString();
    const std::string qualified = callee->getQualifiedNameAsString();
    const int line = line_of(call->getBeginLoc());
    const bool receiver = llvm::isa<clang::CXXMemberCallExpr>(call);

    if (is_direct_alloc_fn(name)) {
      fn.allocs.push_back(FunctionModel::Alloc{name, line});
      return;
    }
    if (receiver && is_allocating_method(name)) {
      fn.allocs.push_back(FunctionModel::Alloc{"." + name, line});
      return;
    }
    if (receiver && is_cv_wait(name)) {
      fn.blocking_ops.push_back(FunctionModel::BlockingOp{"." + name, line, locks,
                                                          /*cv_wait=*/true});
      return;
    }
    if (is_blocking_fn(qualified)) {
      fn.blocking_ops.push_back(FunctionModel::BlockingOp{qualified + "()", line, locks,
                                                          /*cv_wait=*/false});
      return;
    }
    if (receiver && (name == "counter" || name == "gauge" || name == "histogram") &&
        call->getNumArgs() >= 2) {
      record_metric(call, name, line);
    }
    FunctionModel::Call rec;
    rec.name = name;
    rec.line = line;
    rec.receiver = receiver;
    rec.locks = locks;
    fn.calls.push_back(std::move(rec));
  }

  void record_metric(const clang::CallExpr* call, const std::string& method, int line) {
    MetricCall mc;
    mc.method = method;
    mc.line = line;
    if (const auto* lit = string_arg(call->getArg(0))) {
      mc.subsystem = lit->getString().str();
      mc.subsystem_literal = true;
    }
    if (const auto* lit = string_arg(call->getArg(1))) {
      mc.metric = lit->getString().str();
      mc.metric_literal = true;
    }
    out_->metric_calls.push_back(std::move(mc));
  }

  [[nodiscard]] static const clang::StringLiteral* string_arg(const clang::Expr* e) {
    return llvm::dyn_cast<clang::StringLiteral>(e->IgnoreParenImpCasts());
  }

  clang::ASTContext& ctx_;
  FileModel* out_;
};

class Consumer : public clang::ASTConsumer {
 public:
  explicit Consumer(FileModel* out) : out_(out) {}
  void HandleTranslationUnit(clang::ASTContext& ctx) override {
    Extractor extractor(ctx, out_);
    extractor.TraverseDecl(ctx.getTranslationUnitDecl());
  }

 private:
  FileModel* out_;
};

class Action : public clang::ASTFrontendAction {
 public:
  explicit Action(FileModel* out) : out_(out) {}
  std::unique_ptr<clang::ASTConsumer> CreateASTConsumer(clang::CompilerInstance&,
                                                        llvm::StringRef) override {
    return std::make_unique<Consumer>(out_);
  }

 private:
  FileModel* out_;
};

class Factory : public clang::tooling::FrontendActionFactory {
 public:
  explicit Factory(FileModel* out) : out_(out) {}
  std::unique_ptr<clang::FrontendAction> create() override {
    return std::make_unique<Action>(out_);
  }

 private:
  FileModel* out_;
};

}  // namespace

bool refine_model_clang(FileModel* model, const std::vector<std::string>& extra_args) {
  std::vector<std::string> args = {"-std=c++20", "-fsyntax-only", "-Wno-everything"};
  args.insert(args.end(), extra_args.begin(), extra_args.end());
  clang::tooling::FixedCompilationDatabase db(".", args);
  clang::tooling::ClangTool tool(db, {model->path});

  // Keep the comment-derived channels from the token frontend; replace
  // every parsed fact.
  model->functions.clear();
  model->metric_calls.clear();
  model->raw_sync.clear();
  model->raw_atomic.clear();

  Factory factory(model);
  return tool.run(&factory) == 0;
}

}  // namespace netseer::lint
