#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace netseer::lint {

/// One function as the passes see it: identity, discipline annotations,
/// and the body facts the passes consume (outgoing calls, allocation
/// evidence, blocking operations — each stamped with how many lock
/// scopes were held at the site).
struct FunctionModel {
  std::string qualified;   // Namespace::Class::name (best effort)
  std::string name;        // trailing identifier ("operator()" and kin spelled out)
  std::string return_type; // normalized token join; empty for ctors/dtors
  std::string file;
  int line = 0;
  bool is_definition = false;
  /// Out-of-line definition (`X::f() {...}`): its [[nodiscard]] lives on
  /// the in-class declaration, so the discipline pass skips it.
  bool has_explicit_qualifier = false;

  bool hot = false;          // NETSEER_HOT
  bool allow_init = false;   // NETSEER_HOT_ALLOW_INIT
  bool blocking = false;     // NETSEER_BLOCKING
  bool nodiscard = false;    // [[nodiscard]] present
  bool requires_lock = false;  // NETSEER_REQUIRES(...): body runs with a lock held

  struct Call {
    std::string name;    // callee identifier
    std::string prefix;  // `ns` of `ns::name(...)`; empty for plain/global calls
    int line = 0;
    bool receiver = false;  // x.name(...) or x->name(...)
    int locks = 0;          // lock scopes held at the call site
  };
  struct Alloc {
    std::string what;  // "operator new", "malloc", ".push_back", ...
    int line = 0;
  };
  struct BlockingOp {
    std::string what;
    int line = 0;
    int locks = 0;
    bool cv_wait = false;  // condition-variable wait (own-lock wait is legal)
  };

  std::vector<Call> calls;
  std::vector<Alloc> allocs;
  std::vector<BlockingOp> blocking_ops;
};

/// A telemetry registration site: registry.counter("subsystem", "name").
struct MetricCall {
  std::string method;  // counter | gauge | histogram
  std::string subsystem;
  std::string metric;
  bool subsystem_literal = false;  // false: argument was not a string literal
  bool metric_literal = false;
  int line = 0;
};

struct RawSyncUse {
  std::string type;  // "std::mutex", "std::atomic", ...
  int line = 0;
};

/// Everything the passes need to know about one scanned file.
struct FileModel {
  std::string path;
  std::vector<FunctionModel> functions;
  std::vector<MetricCall> metric_calls;
  std::vector<RawSyncUse> raw_sync;    // std::mutex family (util::Mutex required)
  std::vector<RawSyncUse> raw_atomic;  // std::atomic in model-checked sources
  std::vector<std::string> includes;   // quoted #include targets, as written

  /// line -> pass names silenced there (NETSEER_LINT_ALLOW(pass): why).
  /// Suppressed allocation/blocking facts are already dropped from the
  /// FunctionModels; this remains for the direct discipline findings.
  std::map<int, std::set<std::string>> suppressions;
  /// line -> pass names a fixture expects a diagnostic for (LINT-EXPECT).
  std::multimap<int, std::string> expectations;
};

/// Build the model for one lexed file. Suppressed fact sites (see
/// FileModel::suppressions) are filtered out here so the interprocedural
/// walks never see them.
FileModel build_model(const TokenStream& stream);

/// True when `line` carries a suppression for `pass` in `model`.
bool is_suppressed(const FileModel& model, int line, const std::string& pass);

#if NETSEER_LINT_HAVE_CLANG
/// AST-exact frontend (frontend_clang.cpp, -DNETSEER_LINT_CLANG=ON):
/// re-derive the function facts of `model` from a clang-18 parse of
/// `model->path`, keeping the comment-derived fields (suppressions,
/// expectations) from the token frontend. `extra_args` are appended to
/// the synthesized compile command (-I flags and the like). Returns
/// false when the file does not parse.
bool refine_model_clang(FileModel* model, const std::vector<std::string>& extra_args);
#endif

}  // namespace netseer::lint
