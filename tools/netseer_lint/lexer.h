#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace netseer::lint {

/// Token kinds the analysis passes care about. Preprocessor directives
/// are captured as one token per logical line (so `#include "x"` can be
/// resolved without a real preprocessor); comments are lifted out of the
/// stream into a side table (they carry LINT-EXPECT / NETSEER_LINT_ALLOW
/// markers, not code).
enum class TokKind : unsigned char {
  kIdent,
  kNumber,
  kString,
  kChar,
  kPunct,
  kPreproc,
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string_view text;  // points into TokenStream::source()
  int line = 0;
};

struct Comment {
  int line = 0;           // line the comment starts on
  bool whole_line = false;  // nothing but whitespace precedes it
  std::string_view text;  // without the // or /* */ fences
};

/// Lexed view of one source file. Owns the file contents; tokens and
/// comments reference into it. This is deliberately a *lexer*, not a
/// preprocessor: macros are matched by name (NETSEER_HOT stays a single
/// identifier token), both arms of #if blocks are seen, and includes are
/// surfaced for the model layer to resolve against the repo tree.
class TokenStream {
 public:
  /// Lex `contents` (as read from `path`). Never fails: unterminated
  /// constructs are closed at end-of-file.
  static TokenStream lex(std::string path, std::string contents);

  /// Convenience: read the file and lex it. Returns false on I/O error.
  static bool lex_file(const std::string& path, TokenStream* out);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::string& source() const { return source_; }
  [[nodiscard]] const std::vector<Token>& tokens() const { return tokens_; }
  [[nodiscard]] const std::vector<Comment>& comments() const { return comments_; }

 private:
  std::string path_;
  std::string source_;
  std::vector<Token> tokens_;
  std::vector<Comment> comments_;
};

}  // namespace netseer::lint
