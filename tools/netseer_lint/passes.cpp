#include "passes.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace netseer::lint {

namespace {

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool contains(const std::string& s, std::string_view needle) {
  return s.find(needle) != std::string::npos;
}

/// First-party product code: the discipline passes (nodiscard, raw-sync)
/// only apply here — tests/bench/tools may hold locks and discard at will.
bool in_src(const std::string& path, const PassOptions& opt) {
  if (opt.fixture_mode) return true;
  return contains(path, "/src/") || path.rfind("src/", 0) == 0;
}

/// util/sync.h wraps std::mutex by design; src/mc is the model-checker
/// runtime and schedules raw primitives on purpose.
bool raw_sync_exempt(const std::string& path, const PassOptions& opt) {
  if (opt.fixture_mode) return false;
  return ends_with(path, "util/sync.h") || ends_with(path, "util/thread_annotations.h") ||
         contains(path, "/mc/") || path.rfind("mc/", 0) == 0;
}

/// Sources compiled into netseer_mc_core (src/mc/CMakeLists.txt): their
/// atomics must go through mc_shim::atomic so the model checker can
/// interpose; raw std::atomic would silently escape exploration.
bool mc_protocol_file(const std::string& path, const PassOptions& opt) {
  if (opt.fixture_mode) return true;
  static constexpr std::string_view kSet[] = {
      "sim/spsc.h",          "packet/pool.h",      "packet/pool.cpp",
      "packet/packet.cpp",   "telemetry/metrics.h", "telemetry/metrics.cpp",
      "telemetry/snapshot.h", "telemetry/snapshot.cpp",
  };
  for (const std::string_view s : kSet) {
    if (ends_with(path, s)) return true;
  }
  return false;
}

bool pass_enabled(const PassOptions& opt, const char* pass) {
  return opt.only.empty() || opt.only.count(pass) > 0;
}

struct Flags {
  bool hot = false;
  bool allow_init = false;
  bool blocking = false;
  bool requires_lock = false;
  bool nodiscard = false;
};

/// Annotations merged across declaration and out-of-line definition by
/// qualified name, so `NETSEER_BLOCKING bool sync();` in the header covers
/// `bool WalWriter::sync() {...}` in the .cpp.
class AnnotationDb {
 public:
  explicit AnnotationDb(const std::vector<FileModel>& files) {
    for (const FileModel& f : files) {
      for (const FunctionModel& fn : f.functions) {
        if (!fn.hot && !fn.allow_init && !fn.blocking && !fn.requires_lock &&
            !fn.nodiscard) {
          continue;
        }
        Flags& q = by_qualified_[fn.qualified];
        q.hot |= fn.hot;
        q.allow_init |= fn.allow_init;
        q.blocking |= fn.blocking;
        q.requires_lock |= fn.requires_lock;
        q.nodiscard |= fn.nodiscard;
        Flags& s = by_name_[fn.name];
        s.allow_init |= fn.allow_init;
        s.blocking |= fn.blocking;
      }
    }
  }

  [[nodiscard]] Flags effective(const FunctionModel& fn) const {
    Flags f{fn.hot, fn.allow_init, fn.blocking, fn.requires_lock, fn.nodiscard};
    const auto it = by_qualified_.find(fn.qualified);
    if (it != by_qualified_.end()) {
      f.hot |= it->second.hot;
      f.allow_init |= it->second.allow_init;
      f.blocking |= it->second.blocking;
      f.requires_lock |= it->second.requires_lock;
      f.nodiscard |= it->second.nodiscard;
    }
    return f;
  }

  /// Conservative simple-name lookup for calls the same-TU walk cannot
  /// resolve (receiver calls like `wal_.sync()`): any function with this
  /// name carrying the flag makes the call count.
  [[nodiscard]] bool name_blocking(const std::string& name) const {
    const auto it = by_name_.find(name);
    return it != by_name_.end() && it->second.blocking;
  }
  [[nodiscard]] bool name_allow_init(const std::string& name) const {
    const auto it = by_name_.find(name);
    return it != by_name_.end() && it->second.allow_init;
  }

 private:
  std::unordered_map<std::string, Flags> by_qualified_;
  std::unordered_map<std::string, Flags> by_name_;
};

// ---- pass 1: allocation-freedom of NETSEER_HOT call graphs -----------------

class HotAllocPass {
 public:
  HotAllocPass(const FileModel& file, const AnnotationDb& db) : file_(file), db_(db) {
    for (std::size_t i = 0; i < file.functions.size(); ++i) {
      if (file.functions[i].is_definition) {
        by_name_[file.functions[i].name].push_back(i);
      }
    }
    state_.assign(file.functions.size(), State::kUnknown);
    why_.assign(file.functions.size(), "");
  }

  void run(std::vector<Finding>& out) {
    for (std::size_t i = 0; i < file_.functions.size(); ++i) {
      const FunctionModel& fn = file_.functions[i];
      if (!fn.is_definition || !db_.effective(fn).hot) continue;
      report(fn, i, out);
    }
  }

 private:
  enum class State : unsigned char { kUnknown, kInProgress, kClean, kAllocates };

  void report(const FunctionModel& fn, std::size_t i, std::vector<Finding>& out) {
    for (const FunctionModel::Alloc& a : fn.allocs) {
      out.push_back(Finding{kPassHotAlloc, fn.file, a.line,
                            "NETSEER_HOT function '" + fn.qualified + "' allocates: " +
                                a.what});
    }
    state_[i] = State::kInProgress;  // do not re-enter through recursion
    bool allocates = !fn.allocs.empty();
    if (allocates) {
      why_[i] = fn.allocs[0].what + " (" + fn.file + ":" +
                std::to_string(fn.allocs[0].line) + ")";
    }
    for (const FunctionModel::Call& c : fn.calls) {
      std::string chain;
      if (call_reaches_alloc(c, chain)) {
        out.push_back(Finding{kPassHotAlloc, fn.file, c.line,
                              "NETSEER_HOT function '" + fn.qualified +
                                  "' reaches allocation through call chain: " + chain});
        if (!allocates) why_[i] = chain;
        allocates = true;
      }
    }
    // Hot roots are also candidates for other roots' call resolution:
    // record the true verdict so a clean root stays clean downstream.
    state_[i] = allocates ? State::kAllocates : State::kClean;
  }

  bool call_reaches_alloc(const FunctionModel::Call& c, std::string& chain) {
    if (db_.name_allow_init(c.name)) return false;
    const auto it = by_name_.find(c.name);
    if (it == by_name_.end()) return false;  // out-of-TU or unresolvable: trust
    // Flag only if every same-TU candidate allocates; overload sets where
    // one candidate is clean stay quiet (conservative in the FP direction).
    std::string first_why;
    for (const std::size_t idx : it->second) {
      if (!reaches_alloc(idx)) return false;
      if (first_why.empty()) first_why = why_[idx];
    }
    if (it->second.empty()) return false;
    chain = c.name + "() -> " + first_why;
    return true;
  }

  bool reaches_alloc(std::size_t i) {
    if (state_[i] == State::kClean || state_[i] == State::kInProgress) return false;
    if (state_[i] == State::kAllocates) return true;
    state_[i] = State::kInProgress;
    const FunctionModel& fn = file_.functions[i];
    if (db_.effective(fn).allow_init) {
      state_[i] = State::kClean;
      return false;
    }
    if (!fn.allocs.empty()) {
      why_[i] = fn.allocs[0].what + " (" + fn.file + ":" +
                std::to_string(fn.allocs[0].line) + ")";
      state_[i] = State::kAllocates;
      return true;
    }
    for (const FunctionModel::Call& c : fn.calls) {
      std::string chain;
      if (call_reaches_alloc(c, chain)) {
        why_[i] = chain;
        state_[i] = State::kAllocates;
        return true;
      }
    }
    state_[i] = State::kClean;
    return false;
  }

  const FileModel& file_;
  const AnnotationDb& db_;
  std::unordered_map<std::string, std::vector<std::size_t>> by_name_;
  std::vector<State> state_;
  std::vector<std::string> why_;
};

// ---- pass 2: no blocking under a held lock ---------------------------------

/// A call under a lock is flagged when the callee *definitely* blocks:
/// it is NETSEER_BLOCKING-annotated (anywhere in the scanned set), or
/// every same-TU candidate reaches a blocking primitive transitively
/// (fsync one helper down is still fsync). The fix is to propagate
/// NETSEER_BLOCKING outward, keeping every blocking-under-lock site
/// explicit and greppable.
class LockBlockingPass {
 public:
  LockBlockingPass(const FileModel& file, const AnnotationDb& db) : file_(file), db_(db) {
    for (std::size_t i = 0; i < file.functions.size(); ++i) {
      if (file.functions[i].is_definition) {
        by_name_[file.functions[i].name].push_back(i);
      }
    }
    state_.assign(file.functions.size(), State::kUnknown);
    why_.assign(file.functions.size(), "");
  }

  void run(std::vector<Finding>& out) {
    for (const FunctionModel& fn : file_.functions) {
      if (!fn.is_definition) continue;
      const Flags flags = db_.effective(fn);
      // NETSEER_REQUIRES on the header declaration means the body runs
      // with the capability held even if the definition restates nothing.
      const int extra = flags.requires_lock && !fn.requires_lock ? 1 : 0;
      for (const FunctionModel::BlockingOp& op : fn.blocking_ops) {
        const int held = op.locks + extra;
        if (op.cv_wait) {
          // Waiting on a cv through its own lock is the one sanctioned
          // shape; a second lock held across the wait deadlocks waiters.
          if (held >= 2) {
            out.push_back(Finding{kPassLockBlocking, fn.file, op.line,
                                  "'" + fn.qualified +
                                      "' waits on a condition variable while holding " +
                                      std::to_string(held) +
                                      " locks; a cv wait may hold only its own"});
          }
          if (flags.hot) {
            out.push_back(Finding{kPassLockBlocking, fn.file, op.line,
                                  "NETSEER_HOT function '" + fn.qualified +
                                      "' waits on a condition variable"});
          }
          continue;
        }
        if (flags.hot) {
          out.push_back(Finding{kPassLockBlocking, fn.file, op.line,
                                "NETSEER_HOT function '" + fn.qualified +
                                    "' performs blocking operation " + op.what});
        } else if (held >= 1 && !flags.blocking) {
          out.push_back(Finding{kPassLockBlocking, fn.file, op.line,
                                "'" + fn.qualified + "' performs blocking operation " +
                                    op.what +
                                    " while holding a lock; annotate the function "
                                    "NETSEER_BLOCKING if this is by design"});
        }
      }
      for (const FunctionModel::Call& c : fn.calls) {
        std::string chain;
        if (!callee_blocks(c, chain)) continue;
        if (is_suppressed(file_, c.line, kPassLockBlocking)) continue;
        if (flags.hot) {
          out.push_back(Finding{kPassLockBlocking, fn.file, c.line,
                                "NETSEER_HOT function '" + fn.qualified +
                                    "' calls blocking function: " + chain});
        } else if (c.locks + extra >= 1 && !flags.blocking) {
          out.push_back(Finding{kPassLockBlocking, fn.file, c.line,
                                "'" + fn.qualified + "' calls blocking function under a " +
                                    "lock: " + chain +
                                    "; propagate NETSEER_BLOCKING to the caller"});
        }
      }
    }
  }

 private:
  enum class State : unsigned char { kUnknown, kInProgress, kClean, kBlocks };

  bool callee_blocks(const FunctionModel::Call& c, std::string& chain) {
    if (db_.name_blocking(c.name)) {
      chain = c.name + "() [NETSEER_BLOCKING]";
      return true;
    }
    const auto it = by_name_.find(c.name);
    if (it == by_name_.end() || it->second.empty()) return false;
    std::string first_why;
    for (const std::size_t idx : it->second) {
      if (!reaches_blocking(idx)) return false;
      if (first_why.empty()) first_why = why_[idx];
    }
    chain = c.name + "() -> " + first_why;
    return true;
  }

  bool reaches_blocking(std::size_t i) {
    if (state_[i] == State::kClean || state_[i] == State::kInProgress) return false;
    if (state_[i] == State::kBlocks) return true;
    state_[i] = State::kInProgress;
    const FunctionModel& fn = file_.functions[i];
    for (const FunctionModel::BlockingOp& op : fn.blocking_ops) {
      if (op.cv_wait) continue;  // legality of waits is judged at the wait site
      why_[i] = op.what + " (" + fn.file + ":" + std::to_string(op.line) + ")";
      state_[i] = State::kBlocks;
      return true;
    }
    for (const FunctionModel::Call& c : fn.calls) {
      std::string chain;
      if (callee_blocks(c, chain)) {
        why_[i] = chain;
        state_[i] = State::kBlocks;
        return true;
      }
    }
    state_[i] = State::kClean;
    return false;
  }

  const FileModel& file_;
  const AnnotationDb& db_;
  std::unordered_map<std::string, std::vector<std::size_t>> by_name_;
  std::vector<State> state_;
  std::vector<std::string> why_;
};

// ---- pass 3a: [[nodiscard]] on status/handle returns -----------------------

bool nodiscard_handle_type(const std::string& type) {
  static constexpr std::string_view kHandles[] = {"TaskHandle", "ShardTaskHandle",
                                                  "PooledPacket"};
  for (const std::string_view h : kHandles) {
    if (contains(type, h)) return true;
  }
  return false;
}

bool nodiscard_bool_name(const std::string& name) {
  static constexpr std::string_view kPrefixes[] = {
      "try_", "save", "load", "sync", "commit", "recover", "append",
  };
  for (const std::string_view p : kPrefixes) {
    if (name.rfind(p, 0) == 0) return true;
  }
  return false;
}

void nodiscard_pass(const FileModel& file, const PassOptions& opt, const AnnotationDb& db,
                    std::vector<Finding>& out) {
  if (!in_src(file.path, opt)) return;
  for (const FunctionModel& fn : file.functions) {
    // A [[nodiscard]] on the header declaration covers the out-of-line
    // definition (restating the attribute there is not even legal style).
    if (db.effective(fn).nodiscard) continue;
    if (fn.name.empty() || fn.name == "main") continue;
    if (fn.name[0] == '~' || fn.name.rfind("operator", 0) == 0) continue;
    if (fn.return_type.empty()) continue;  // constructor
    // Out-of-line definitions inherit [[nodiscard]] from the declaration.
    if (fn.is_definition && fn.has_explicit_qualifier) continue;
    const bool handle = nodiscard_handle_type(fn.return_type);
    const bool status = fn.return_type == "bool" && nodiscard_bool_name(fn.name);
    if (!handle && !status) continue;
    if (is_suppressed(file, fn.line, kPassNodiscard)) continue;
    out.push_back(Finding{kPassNodiscard, fn.file, fn.line,
                          "'" + fn.qualified + "' returns " + fn.return_type +
                              " but is not [[nodiscard]]; dropping it loses a " +
                              (handle ? "resource handle" : "status result")});
  }
}

// ---- pass 3b: telemetry metric-name convention -----------------------------

bool valid_metric_segment(std::string_view s) {
  if (s.empty()) return false;
  if (s[0] < 'a' || s[0] > 'z') return false;
  for (const char c : s) {
    if ((c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_') return false;
  }
  return true;
}

bool valid_metric_name(std::string_view s) {
  std::size_t start = 0;
  while (true) {
    const std::size_t dot = s.find('.', start);
    const std::string_view seg =
        s.substr(start, dot == std::string_view::npos ? s.size() - start : dot - start);
    if (!valid_metric_segment(seg)) return false;
    if (dot == std::string_view::npos) return true;
    start = dot + 1;
  }
}

void metric_name_pass(const FileModel& file, std::vector<Finding>& out) {
  for (const MetricCall& mc : file.metric_calls) {
    if (is_suppressed(file, mc.line, kPassMetricName)) continue;
    if (mc.subsystem_literal && !valid_metric_segment(mc.subsystem)) {
      out.push_back(Finding{kPassMetricName, file.path, mc.line,
                            "metric subsystem \"" + mc.subsystem + "\" violates the " +
                                "[a-z][a-z0-9_]* convention"});
    }
    if (mc.metric_literal && !valid_metric_name(mc.metric)) {
      out.push_back(Finding{kPassMetricName, file.path, mc.line,
                            "metric name \"" + mc.metric + "\" violates the " +
                                "section.metric convention (lowercase dotted segments)"});
    }
  }
}

// ---- pass 3c: raw synchronization primitives in src/ -----------------------

void raw_sync_pass(const FileModel& file, const PassOptions& opt,
                   std::vector<Finding>& out) {
  if (!in_src(file.path, opt)) return;
  if (!raw_sync_exempt(file.path, opt)) {
    for (const RawSyncUse& u : file.raw_sync) {
      if (is_suppressed(file, u.line, kPassRawSync)) continue;
      out.push_back(Finding{kPassRawSync, file.path, u.line,
                            u.type + " in src/; use util::Mutex / util::MutexLock so "
                                     "thread-safety analysis and the mc shim see it"});
    }
  }
  if (mc_protocol_file(file.path, opt)) {
    for (const RawSyncUse& u : file.raw_atomic) {
      if (is_suppressed(file, u.line, kPassRawSync)) continue;
      out.push_back(Finding{kPassRawSync, file.path, u.line,
                            u.type + " in a model-checked source; use mc_shim::atomic so "
                                     "NETSEER_MC builds can interpose"});
    }
  }
}

}  // namespace

std::vector<Finding> run_passes(const std::vector<FileModel>& files,
                                const PassOptions& options) {
  const AnnotationDb db(files);
  std::vector<Finding> out;
  for (const FileModel& file : files) {
    if (pass_enabled(options, kPassHotAlloc)) {
      HotAllocPass(file, db).run(out);
    }
    if (pass_enabled(options, kPassLockBlocking)) {
      LockBlockingPass(file, db).run(out);
    }
    if (pass_enabled(options, kPassNodiscard)) {
      nodiscard_pass(file, options, db, out);
    }
    if (pass_enabled(options, kPassMetricName)) {
      metric_name_pass(file, out);
    }
    if (pass_enabled(options, kPassRawSync)) {
      raw_sync_pass(file, options, out);
    }
  }
  // Suppressions for sites recorded as facts are filtered at model build;
  // apply the table once more for pass-level findings (call-chain lines).
  std::vector<Finding> kept;
  kept.reserve(out.size());
  for (Finding& f : out) {
    const FileModel* fm = nullptr;
    for (const FileModel& file : files) {
      if (file.path == f.file) {
        fm = &file;
        break;
      }
    }
    if (fm != nullptr && is_suppressed(*fm, f.line, f.pass)) continue;
    kept.push_back(std::move(f));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.pass < b.pass;
  });
  return kept;
}

}  // namespace netseer::lint
