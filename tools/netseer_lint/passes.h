#pragma once

#include <set>
#include <string>
#include <vector>

#include "model.h"

namespace netseer::lint {

/// Pass names, as they appear in diagnostics, NETSEER_LINT_ALLOW(...)
/// suppressions, and LINT-EXPECT fixture comments.
inline constexpr const char* kPassHotAlloc = "hot-alloc";
inline constexpr const char* kPassLockBlocking = "lock-blocking";
inline constexpr const char* kPassNodiscard = "nodiscard";
inline constexpr const char* kPassMetricName = "metric-name";
inline constexpr const char* kPassRawSync = "raw-sync";

struct Finding {
  std::string pass;
  std::string file;
  int line = 0;
  std::string message;
};

struct PassOptions {
  /// Treat every scanned file as first-party src/ (fixtures live under
  /// tests/, where the path-scoped passes would otherwise stay quiet).
  bool fixture_mode = false;
  /// Restrict to these passes; empty means all five.
  std::set<std::string> only;
};

/// Run all (selected) passes over the scanned files. Findings come back
/// sorted by file, then line, then pass; suppressions are already applied.
std::vector<Finding> run_passes(const std::vector<FileModel>& files,
                                const PassOptions& options);

}  // namespace netseer::lint
