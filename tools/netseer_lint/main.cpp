// netseer_lint: hot-path discipline analyzer for the NetSeer tree.
//
// Three pass families over every given source file (see DESIGN.md "Static
// analysis layer"):
//   hot-alloc      NETSEER_HOT functions must not reach an allocation
//                  through any same-TU call chain
//   lock-blocking  no fsync/::write/cv-wait/NETSEER_BLOCKING call while a
//                  lock is held, unless the caller is NETSEER_BLOCKING
//   nodiscard / metric-name / raw-sync
//                  discipline checks on status returns, telemetry metric
//                  literals, and raw std::mutex/std::atomic in src/
//
// This binary uses the self-contained token-level frontend, which builds
// with any C++20 toolchain and needs no clang libraries; configuring with
// -DNETSEER_LINT_CLANG=ON adds the LibTooling frontend on top (same model,
// same passes) for AST-exact analysis on CI's pinned clang-18.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "model.h"
#include "passes.h"
#include "telemetry/metrics.h"
#include "telemetry/snapshot.h"

namespace fs = std::filesystem;
using netseer::lint::FileModel;
using netseer::lint::Finding;
using netseer::lint::PassOptions;
using netseer::lint::TokenStream;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <file-or-dir>...\n"
               "  --pass <name>         run only this pass (repeatable); one of\n"
               "                        hot-alloc lock-blocking nodiscard metric-name raw-sync\n"
               "  --fixture-mode        treat every file as first-party src/ code\n"
               "  --check-expectations  findings must exactly match LINT-EXPECT comments\n"
               "  --metrics-out <file>  export lint.* counters (.csv or .json)\n"
               "  --frontend <name>     token (default) or clang (needs a build with\n"
               "                        -DNETSEER_LINT_CLANG=ON)\n"
               "  --extra-arg <flag>    extra compile flag for the clang frontend (repeatable)\n"
               "  --quiet               suppress per-finding lines\n",
               argv0);
  return 2;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

bool collect_inputs(const std::string& arg, std::vector<std::string>& files) {
  std::error_code ec;
  const fs::file_status st = fs::status(arg, ec);
  if (ec) return false;
  if (fs::is_directory(st)) {
    for (fs::recursive_directory_iterator it(arg, ec), end; !ec && it != end;
         it.increment(ec)) {
      // Seeded-violation corpora (tests/lint/fixtures/) are scanned only
      // when named directly, as the fixture ctest entries do; a directory
      // walk over the tree must not report their planted findings.
      if (it->is_directory(ec) && it->path().filename() == "fixtures") {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file(ec) && lintable(it->path())) {
        files.push_back(it->path().string());
      }
    }
    return true;
  }
  if (fs::is_regular_file(st)) {
    files.push_back(arg);
    return true;
  }
  return false;
}

/// Exact-match mode for the fixture suite: every LINT-EXPECT comment must
/// produce a finding of that pass at that line, and no finding may lack an
/// expectation. Prints the mismatches; returns true on exact match.
bool check_expectations(const std::vector<FileModel>& models,
                        const std::vector<Finding>& findings) {
  std::map<std::pair<std::string, int>, std::multiset<std::string>> expected;
  for (const FileModel& m : models) {
    for (const auto& [line, pass] : m.expectations) {
      expected[{m.path, line}].insert(pass);
    }
  }
  bool ok = true;
  for (const Finding& f : findings) {
    auto it = expected.find({f.file, f.line});
    if (it != expected.end()) {
      const auto match = it->second.find(f.pass);
      if (match != it->second.end()) {
        it->second.erase(match);
        continue;
      }
    }
    std::printf("UNEXPECTED %s:%d: [%s] %s\n", f.file.c_str(), f.line, f.pass.c_str(),
                f.message.c_str());
    ok = false;
  }
  for (const auto& [where, passes] : expected) {
    for (const std::string& pass : passes) {
      std::printf("MISSING    %s:%d: expected a [%s] finding\n", where.first.c_str(),
                  where.second, pass.c_str());
      ok = false;
    }
  }
  return ok;
}

void export_metrics(const std::string& path, const std::vector<FileModel>& models,
                    const std::vector<Finding>& findings) {
  netseer::telemetry::Registry reg;
  std::size_t functions = 0;
  std::size_t hot = 0;
  for (const FileModel& m : models) {
    for (const auto& fn : m.functions) {
      ++functions;
      if (fn.hot) ++hot;
    }
  }
  reg.counter("lint", "files_scanned").add(models.size());
  reg.counter("lint", "functions").add(functions);
  reg.counter("lint", "hot_functions").add(hot);
  reg.counter("lint", "findings_total").add(findings.size());
  for (const Finding& f : findings) {
    std::string pass = f.pass;
    for (char& c : pass) {
      if (c == '-') c = '_';
    }
    reg.counter("lint", "findings." + pass).add(1);
  }
  const auto snap = netseer::telemetry::MetricsSnapshot::capture(reg);
  if (!snap.write_file(path)) {
    std::fprintf(stderr, "netseer_lint: cannot write metrics to %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  PassOptions options;
  bool expectations = false;
  bool quiet = false;
  bool use_clang = false;
  std::string metrics_out;
  std::vector<std::string> inputs;
  std::vector<std::string> extra_args;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fixture-mode") {
      options.fixture_mode = true;
    } else if (arg == "--check-expectations") {
      expectations = true;
      options.fixture_mode = true;  // fixtures live under tests/
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--pass" && i + 1 < argc) {
      options.only.insert(argv[++i]);
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (arg == "--frontend" && i + 1 < argc) {
      const std::string frontend = argv[++i];
      if (frontend == "clang") {
        use_clang = true;
      } else if (frontend != "token") {
        return usage(argv[0]);
      }
    } else if (arg == "--extra-arg" && i + 1 < argc) {
      extra_args.push_back(argv[++i]);
    } else if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
      return usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage(argv[0]);
#if !NETSEER_LINT_HAVE_CLANG
  if (use_clang) {
    std::fprintf(stderr,
                 "netseer_lint: this build has no clang frontend; reconfigure with "
                 "-DNETSEER_LINT_CLANG=ON\n");
    return 2;
  }
#endif

  std::vector<std::string> files;
  for (const std::string& in : inputs) {
    if (!collect_inputs(in, files)) {
      std::fprintf(stderr, "netseer_lint: cannot read %s\n", in.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<FileModel> models;
  models.reserve(files.size());
  for (const std::string& f : files) {
    TokenStream stream;
    if (!TokenStream::lex_file(f, &stream)) {
      std::fprintf(stderr, "netseer_lint: cannot read %s\n", f.c_str());
      return 2;
    }
    models.push_back(netseer::lint::build_model(stream));
#if NETSEER_LINT_HAVE_CLANG
    // The token lex above still supplies the comment channels
    // (suppressions, expectations); the parse replaces the facts.
    if (use_clang && !netseer::lint::refine_model_clang(&models.back(), extra_args)) {
      std::fprintf(stderr, "netseer_lint: clang frontend failed to parse %s\n", f.c_str());
      return 2;
    }
#endif
  }

  const std::vector<Finding> findings = netseer::lint::run_passes(models, options);

  if (!metrics_out.empty()) export_metrics(metrics_out, models, findings);

  if (expectations) {
    const bool ok = check_expectations(models, findings);
    if (ok && !quiet) {
      std::printf("netseer_lint: %zu finding(s) matched expectations across %zu file(s)\n",
                  findings.size(), models.size());
    }
    return ok ? 0 : 1;
  }

  for (const Finding& f : findings) {
    if (!quiet) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.pass.c_str(),
                  f.message.c_str());
    }
  }
  if (!quiet) {
    std::printf("netseer_lint: %zu finding(s) across %zu file(s)\n", findings.size(),
                models.size());
  }
  return findings.empty() ? 0 : 1;
}
