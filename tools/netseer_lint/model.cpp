#include "model.h"

#include <algorithm>
#include <unordered_set>

namespace netseer::lint {

namespace {

using TokenVec = std::vector<Token>;

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool is_keyword(std::string_view s) {
  static const std::unordered_set<std::string_view> kKeywords = {
      "alignas",  "alignof",   "auto",     "bool",     "break",    "case",
      "catch",    "char",      "class",    "const",    "constexpr", "consteval",
      "constinit", "continue", "co_await", "co_return", "co_yield", "decltype",
      "default",  "delete",    "do",       "double",   "else",     "enum",
      "explicit", "extern",    "false",    "float",    "for",      "friend",
      "goto",     "if",        "inline",   "int",      "long",     "mutable",
      "namespace", "new",      "noexcept", "nullptr",  "operator", "private",
      "protected", "public",   "register", "requires", "return",   "short",
      "signed",   "sizeof",    "static",   "struct",   "switch",   "template",
      "this",     "throw",     "true",     "try",      "typedef",  "typeid",
      "typename", "union",     "unsigned", "using",    "virtual",  "void",
      "volatile", "while",
  };
  return kKeywords.count(s) > 0;
}

bool is_specifier(std::string_view s) {
  static const std::unordered_set<std::string_view> kSpecs = {
      "static", "inline", "virtual", "explicit", "constexpr", "consteval",
      "constinit", "friend", "extern", "mutable", "thread_local",
  };
  return kSpecs.count(s) > 0;
}

bool is_lock_type(std::string_view s) {
  return s == "MutexLock" || s == "CondMutexLock" || s == "lock_guard" ||
         s == "unique_lock" || s == "scoped_lock";
}

bool is_direct_alloc_fn(std::string_view s) {
  return s == "malloc" || s == "calloc" || s == "realloc" || s == "aligned_alloc" ||
         s == "strdup";
}

/// Container mutations that may grow the backing store. Only meaningful as
/// receiver calls (x.push_back(...)).
bool is_allocating_method(std::string_view s) {
  static const std::unordered_set<std::string_view> kGrow = {
      "push_back", "emplace_back", "emplace", "try_emplace", "insert",
      "resize",    "reserve",      "append",  "assign",      "push_front",
  };
  return kGrow.count(s) > 0;
}

bool is_blocking_libc(std::string_view s) {
  static const std::unordered_set<std::string_view> kBlock = {
      "fsync", "fdatasync", "fwrite", "fread", "fflush", "fopen", "fclose",
      "system", "sleep_for", "sleep_until",
  };
  return kBlock.count(s) > 0;
}

bool is_blocking_fs(std::string_view s) {
  static const std::unordered_set<std::string_view> kFs = {
      "remove",    "remove_all",         "rename",      "copy",
      "copy_file", "create_directories", "resize_file", "last_write_time",
      "directory_iterator",
  };
  return kFs.count(s) > 0;
}

bool is_mutex_family(std::string_view s) {
  static const std::unordered_set<std::string_view> kSync = {
      "mutex", "timed_mutex", "recursive_mutex", "shared_mutex",
      "condition_variable", "condition_variable_any", "lock_guard",
      "unique_lock", "scoped_lock",
  };
  return kSync.count(s) > 0;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string strip_quotes(std::string_view s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    return std::string(s.substr(1, s.size() - 2));
  }
  return std::string(s);
}

class Builder {
 public:
  explicit Builder(const TokenStream& stream) : stream_(stream), toks_(stream.tokens()) {
    out_.path = stream.path();
  }

  FileModel build() {
    scan_comments();
    scan_file_tokens();
    std::size_t i = 0;
    while (i < toks_.size()) parse_top(i);
    return std::move(out_);
  }

 private:
  // ---- token helpers -------------------------------------------------------

  [[nodiscard]] bool is_punct(std::size_t i, std::string_view p) const {
    return i < toks_.size() && toks_[i].kind == TokKind::kPunct && toks_[i].text == p;
  }
  [[nodiscard]] bool is_ident(std::size_t i) const {
    return i < toks_.size() && toks_[i].kind == TokKind::kIdent;
  }
  [[nodiscard]] bool is_ident(std::size_t i, std::string_view s) const {
    return is_ident(i) && toks_[i].text == s;
  }

  /// Previous non-preprocessor token index, or kNpos.
  [[nodiscard]] std::size_t prev(std::size_t i) const {
    while (i > 0) {
      --i;
      if (toks_[i].kind != TokKind::kPreproc) return i;
    }
    return kNpos;
  }
  /// Next non-preprocessor token index, or kNpos.
  [[nodiscard]] std::size_t next(std::size_t i) const {
    for (++i; i < toks_.size(); ++i) {
      if (toks_[i].kind != TokKind::kPreproc) return i;
    }
    return kNpos;
  }

  /// Index one past the matching closer for the opener at `i`, or kNpos.
  [[nodiscard]] std::size_t skip_matched(std::size_t i, std::string_view open,
                                         std::string_view close) const {
    int depth = 0;
    for (; i < toks_.size(); ++i) {
      if (toks_[i].kind != TokKind::kPunct) continue;
      if (toks_[i].text == open) {
        ++depth;
      } else if (toks_[i].text == close) {
        if (--depth == 0) return i + 1;
      }
    }
    return kNpos;
  }

  /// Try to match a template-argument angle bracket starting at `i` (which
  /// must be `<`). Bounded and abort-on-statement so `a < b` comparisons
  /// fall through. Returns index one past `>`, or kNpos.
  [[nodiscard]] std::size_t match_angle(std::size_t i) const {
    int depth = 0;
    const std::size_t limit = std::min(toks_.size(), i + 64);
    for (; i < limit; ++i) {
      if (toks_[i].kind != TokKind::kPunct) continue;
      const std::string_view p = toks_[i].text;
      if (p == "<") {
        ++depth;
      } else if (p == ">") {
        if (--depth == 0) return i + 1;
      } else if (p == ";" || p == "{" || p == "}") {
        return kNpos;
      }
    }
    return kNpos;
  }

  /// If tokens ending at `i` (inclusive) are punctuation preceded by the
  /// identifier `operator`, return that identifier's index; else kNpos.
  [[nodiscard]] std::size_t operator_lookback(std::size_t i) const {
    for (int steps = 0; steps < 4 && i != kNpos; ++steps) {
      if (is_ident(i, "operator")) return i;
      if (toks_[i].kind != TokKind::kPunct) return kNpos;
      i = prev(i);
    }
    return kNpos;
  }

  // ---- comments ------------------------------------------------------------

  void scan_comments() {
    for (const Comment& c : stream_.comments()) {
      if (c.whole_line) whole_line_comments_.insert(c.line);
    }
    for (const Comment& c : stream_.comments()) {
      parse_marker(c, "NETSEER_LINT_ALLOW(", /*suppression=*/true);
      parse_marker(c, "LINT-EXPECT:", /*suppression=*/false);
    }
  }

  /// A whole-line marker governs the statement the comment block precedes:
  /// skip past any further comment-only lines to the first line of code.
  [[nodiscard]] int marker_target(int line) const {
    int target = line + 1;
    while (whole_line_comments_.count(target) > 0) ++target;
    return target;
  }

  void parse_marker(const Comment& c, std::string_view marker, bool suppression) {
    const std::size_t at = c.text.find(marker);
    if (at == std::string_view::npos) return;
    std::string_view rest = c.text.substr(at + marker.size());
    if (suppression) {
      const std::size_t close = rest.find(')');
      if (close == std::string_view::npos) return;
      rest = rest.substr(0, close);
    }
    // Split on commas/whitespace: ALLOW takes a comma list, EXPECT a space list.
    std::vector<std::string> passes;
    std::string cur;
    for (const char ch : rest) {
      if (ch == ',' || ch == ' ' || ch == '\t') {
        if (!cur.empty()) passes.push_back(std::move(cur));
        cur.clear();
      } else {
        cur.push_back(ch);
      }
    }
    if (!cur.empty()) passes.push_back(std::move(cur));
    for (const std::string& p : passes) {
      if (suppression) {
        out_.suppressions[c.line].insert(p);
        if (c.whole_line) out_.suppressions[marker_target(c.line)].insert(p);
      } else {
        out_.expectations.emplace(c.whole_line ? marker_target(c.line) : c.line, p);
      }
    }
  }

  [[nodiscard]] bool suppressed(int line, const char* pass) const {
    const auto it = out_.suppressions.find(line);
    return it != out_.suppressions.end() && it->second.count(pass) > 0;
  }

  // ---- whole-file scans ----------------------------------------------------

  void scan_file_tokens() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind == TokKind::kPreproc) {
        record_include(t);
        continue;
      }
      if (t.kind != TokKind::kIdent) continue;
      const std::size_t p1 = prev(i);
      if (p1 == kNpos || !is_punct(p1, "::")) continue;
      const std::size_t p2 = prev(p1);
      if (p2 == kNpos || !is_ident(p2, "std")) continue;
      if (is_mutex_family(t.text)) {
        out_.raw_sync.push_back(RawSyncUse{"std::" + std::string(t.text), t.line});
      } else if (t.text == "atomic" || t.text == "atomic_flag") {
        out_.raw_atomic.push_back(RawSyncUse{"std::" + std::string(t.text), t.line});
      }
    }
  }

  void record_include(const Token& t) {
    std::string_view s = t.text;
    const std::size_t hash = s.find('#');
    if (hash == std::string_view::npos) return;
    s = trim(s.substr(hash + 1));
    if (s.substr(0, 7) != "include") return;
    const std::size_t q1 = s.find('"');
    if (q1 == std::string_view::npos) return;  // angle include: not ours
    const std::size_t q2 = s.find('"', q1 + 1);
    if (q2 == std::string_view::npos) return;
    out_.includes.emplace_back(s.substr(q1 + 1, q2 - q1 - 1));
  }

  // ---- structural parse ----------------------------------------------------

  void parse_top(std::size_t& i) {
    const Token& t = toks_[i];
    if (t.kind == TokKind::kPreproc) {
      ++i;
      return;
    }
    if (t.kind == TokKind::kPunct) {
      if (t.text == "}") {
        if (!scopes_.empty()) scopes_.pop_back();
        ++i;
        return;
      }
      if (t.text == ";") {
        ++i;
        return;
      }
      parse_decl(i);
      return;
    }
    if (t.kind != TokKind::kIdent) {
      ++i;
      return;
    }
    const std::string_view s = t.text;
    if (s == "namespace") {
      parse_namespace(i);
    } else if (s == "using" || s == "typedef" || s == "friend" || s == "static_assert") {
      skip_to_semi(i);
    } else if (s == "template") {
      ++i;
      if (is_punct(i, "<")) {
        const std::size_t after = skip_matched(i, "<", ">");
        i = after == kNpos ? toks_.size() : after;
      }
    } else if (s == "enum") {
      parse_enum(i);
    } else if (s == "class" || s == "struct" || s == "union") {
      parse_class(i);
    } else if (s == "extern" && next(i) != kNpos &&
               toks_[next(i)].kind == TokKind::kString && is_punct(next(next(i)), "{")) {
      scopes_.emplace_back();  // extern "C" { ... }: transparent scope
      i = next(next(i)) + 1;
    } else if ((s == "public" || s == "private" || s == "protected") &&
               is_punct(next(i), ":")) {
      i = next(i) + 1;
    } else {
      parse_decl(i);
    }
  }

  void skip_to_semi(std::size_t& i) {
    int brace = 0;
    for (; i < toks_.size(); ++i) {
      if (toks_[i].kind != TokKind::kPunct) continue;
      if (toks_[i].text == "{") ++brace;
      if (toks_[i].text == "}") --brace;
      if (toks_[i].text == ";" && brace <= 0) {
        ++i;
        return;
      }
    }
  }

  void parse_namespace(std::size_t& i) {
    ++i;  // past `namespace`
    std::string name;
    for (; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind == TokKind::kIdent && t.text != "inline") {
        if (!name.empty()) name += "::";
        name += t.text;
      } else if (t.kind == TokKind::kPunct) {
        if (t.text == "{") {
          scopes_.push_back(name);
          ++i;
          return;
        }
        if (t.text == "=") {  // namespace alias
          skip_to_semi(i);
          return;
        }
        if (t.text == ";") {
          ++i;
          return;
        }
        if (t.text != "::") {  // attributes etc.: ignore
          ++i;
          return;
        }
      }
    }
  }

  void parse_enum(std::size_t& i) {
    for (; i < toks_.size(); ++i) {
      if (!is_punct(i, "{") && !is_punct(i, ";")) continue;
      if (toks_[i].text == ";") {
        ++i;
        return;
      }
      const std::size_t after = skip_matched(i, "{", "}");
      i = after == kNpos ? toks_.size() : after;
      return;
    }
  }

  void parse_class(std::size_t& i) {
    // Name = last top-level identifier before the base-clause `:` (if any)
    // or the `{`; annotation macros like NETSEER_CAPABILITY("x") and the
    // `final` specifier sit between keyword and brace and must not win.
    std::size_t j = i + 1;
    int paren = 0;
    std::string name;
    std::string prev_name;
    bool saw_colon = false;
    for (; j < toks_.size(); ++j) {
      const Token& t = toks_[j];
      if (t.kind == TokKind::kPreproc) continue;
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(") ++paren;
        if (t.text == ")") --paren;
        if (paren > 0) continue;
        if (t.text == ";") {  // forward declaration (or a `struct X x;` var)
          i = j + 1;
          return;
        }
        if (t.text == ":") saw_colon = true;
        if (t.text == "{") break;
        continue;
      }
      if (t.kind == TokKind::kIdent && paren == 0 && !saw_colon) {
        prev_name = std::move(name);
        name = t.text;
      }
    }
    if (j >= toks_.size()) {
      i = toks_.size();
      return;
    }
    if (name == "final" && !prev_name.empty()) name = prev_name;
    scopes_.push_back(name);
    i = j + 1;
  }

  // ---- declaration runs ----------------------------------------------------

  void parse_decl(std::size_t& i) {
    const std::size_t run_start = i;
    std::size_t j = i;
    int paren = 0;
    bool saw_eq = false;
    bool in_ctor_init = false;
    std::size_t param_open = kNpos;
    std::size_t param_close = kNpos;

    while (j < toks_.size()) {
      const Token& t = toks_[j];
      if (t.kind == TokKind::kPreproc) {
        ++j;
        continue;
      }
      if (t.kind != TokKind::kPunct) {
        ++j;
        continue;
      }
      const std::string_view p = t.text;
      if (p == "(") {
        if (paren == 0 && param_open == kNpos && !saw_eq) {
          if (try_param_group(run_start, j, param_open, param_close)) {
            j = param_close + 1;
            continue;
          }
          // Not a parameter list (annotation macro, function pointer,
          // noexcept(...)): swallow the group and keep scanning.
          const std::size_t after = skip_matched(j, "(", ")");
          if (after != kNpos) {
            j = after;
            continue;
          }
        }
        ++paren;
        ++j;
        continue;
      }
      if (p == ")") {
        --paren;
        ++j;
        continue;
      }
      if (paren > 0) {
        ++j;
        continue;
      }
      if (p == ";") {
        if (param_open != kNpos) {
          record_function(run_start, param_open, param_close, /*body_open=*/kNpos);
        }
        i = j + 1;
        return;
      }
      if (p == "=") {
        if (operator_lookback(prev(j)) == kNpos && !is_ident(prev(j), "operator")) {
          saw_eq = true;
        }
        ++j;
        continue;
      }
      if (p == ":" && param_close != kNpos && j > param_close) {
        in_ctor_init = true;
        ++j;
        continue;
      }
      if (p == "{") {
        const std::size_t pv = prev(j);
        const bool after_ident = pv != kNpos && toks_[pv].kind == TokKind::kIdent &&
                                 !is_keyword(toks_[pv].text);
        if (saw_eq || (after_ident && (param_open == kNpos || in_ctor_init))) {
          // Braced initializer: `= {...}`, `x{1}`, or a ctor-init `Base{...}`.
          const std::size_t after = skip_matched(j, "{", "}");
          j = after == kNpos ? toks_.size() : after;
          continue;
        }
        // Function body.
        const std::size_t body_end = skip_matched(j, "{", "}");
        if (param_open != kNpos) {
          record_function(run_start, param_open, param_close, j);
        }
        i = body_end == kNpos ? toks_.size() : body_end;
        return;
      }
      ++j;
    }
    i = toks_.size();
  }

  /// Decide whether the `(` at `open` starts a parameter list; if so fill
  /// param_open/param_close and return true.
  bool try_param_group(std::size_t run_start, std::size_t open, std::size_t& param_open,
                       std::size_t& param_close) {
    const std::size_t pv = prev(open);
    if (pv == kNpos || pv < run_start) return false;
    bool candidate = false;
    if (toks_[pv].kind == TokKind::kIdent) {
      const std::string_view name = toks_[pv].text;
      if (name.substr(0, 8) == "NETSEER_") return false;  // annotation macro
      if (!is_keyword(name) || name == "operator") {
        candidate = true;
      } else if (is_ident(prev(pv), "operator")) {
        candidate = true;  // conversion operator: `operator bool (`
      }
    } else if (operator_lookback(pv) != kNpos) {
      candidate = true;  // `operator== (`, `operator[] (`, ...
    }
    if (!candidate) return false;
    const std::size_t close = skip_matched(open, "(", ")");
    if (close == kNpos) return false;
    param_open = open;
    param_close = close - 1;
    return true;
  }

  void record_function(std::size_t run_start, std::size_t param_open,
                       std::size_t param_close, std::size_t body_open) {
    FunctionModel fn;
    fn.file = out_.path;
    fn.is_definition = body_open != kNpos;

    // Name: walk back from the token before `(`.
    std::size_t k = prev(param_open);
    if (k == kNpos || k < run_start) return;
    std::string qual_prefix;
    if (toks_[k].kind == TokKind::kIdent && is_keyword(toks_[k].text) &&
        toks_[k].text != "operator") {
      // `operator bool (` — conversion operator.
      fn.name = "operator " + std::string(toks_[k].text);
      k = prev(prev(k));  // past the keyword and `operator`
    } else if (toks_[k].kind == TokKind::kPunct) {
      const std::size_t op = operator_lookback(k);
      if (op == kNpos) return;
      fn.name = "operator?";
      k = prev(op);
    } else if (is_ident(k, "operator")) {
      fn.name = "operator()";
      k = prev(k);
    } else {
      fn.name = toks_[k].text;
      fn.line = toks_[k].line;
      std::size_t b = prev(k);
      if (b != kNpos && b >= run_start && is_punct(b, "~")) {
        fn.name = "~" + fn.name;
        b = prev(b);
      }
      while (b != kNpos && b >= run_start && is_punct(b, "::")) {
        const std::size_t q = prev(b);
        if (q == kNpos || q < run_start || !is_ident(q)) break;
        qual_prefix = std::string(toks_[q].text) + "::" + qual_prefix;
        fn.has_explicit_qualifier = true;
        b = prev(q);
      }
      k = b;
    }
    if (fn.line == 0) fn.line = toks_[param_open].line;

    // Return type: what remains of the prefix after stripping specifiers,
    // attributes, and discipline macros. k is now the last return-type token.
    fn.return_type = join_type(run_start, k);

    // Annotations anywhere in the declaration head + trailing qualifiers.
    const std::size_t tail_end = body_open == kNpos ? find_run_end(param_close) : body_open;
    scan_annotations(fn, run_start, param_open);
    scan_annotations(fn, param_close, tail_end);

    std::string scope;
    for (const std::string& s : scopes_) {
      if (s.empty()) continue;
      scope += s;
      scope += "::";
    }
    fn.qualified = scope + qual_prefix + fn.name;

    if (body_open != kNpos) scan_body(fn, body_open);
    out_.functions.push_back(std::move(fn));
  }

  /// End of a declaration tail for annotation scanning: up to the `;`.
  [[nodiscard]] std::size_t find_run_end(std::size_t from) const {
    for (std::size_t j = from; j < toks_.size(); ++j) {
      if (is_punct(j, ";") || is_punct(j, "{")) return j;
    }
    return toks_.size();
  }

  void scan_annotations(FunctionModel& fn, std::size_t begin, std::size_t end) {
    for (std::size_t j = begin; j < end && j < toks_.size(); ++j) {
      if (!is_ident(j)) continue;
      const std::string_view s = toks_[j].text;
      if (s == "NETSEER_HOT") fn.hot = true;
      if (s == "NETSEER_HOT_ALLOW_INIT") fn.allow_init = true;
      if (s == "NETSEER_BLOCKING") fn.blocking = true;
      if (s == "nodiscard") fn.nodiscard = true;
      if (s == "NETSEER_REQUIRES") fn.requires_lock = true;
    }
  }

  [[nodiscard]] std::string join_type(std::size_t begin, std::size_t end_incl) const {
    std::string type;
    bool last_ident = false;
    if (end_incl == kNpos) return type;
    for (std::size_t j = begin; j <= end_incl && j < toks_.size(); ++j) {
      const Token& t = toks_[j];
      if (t.kind == TokKind::kPreproc) continue;
      if (t.kind == TokKind::kPunct && t.text == "[" && is_punct(j + 1, "[")) {
        // [[attribute]]: skip to the closing ]].
        std::size_t depth = 0;
        for (; j < toks_.size(); ++j) {
          if (is_punct(j, "[")) ++depth;
          if (is_punct(j, "]") && --depth == 0) break;
        }
        continue;
      }
      if (t.kind == TokKind::kIdent) {
        const std::string_view s = t.text;
        if (is_specifier(s) || s.substr(0, 8) == "NETSEER_") continue;
        if (last_ident) type += ' ';
        type += s;
        last_ident = true;
      } else {
        type += t.text;
        last_ident = false;
      }
    }
    return type;
  }

  // ---- body facts ----------------------------------------------------------

  void scan_body(FunctionModel& fn, std::size_t body_open) {
    int depth = 1;
    std::vector<int> lock_depths;
    const auto locks = [&] {
      return static_cast<int>(lock_depths.size()) + (fn.requires_lock ? 1 : 0);
    };
    std::size_t j = body_open + 1;
    for (; j < toks_.size() && depth > 0; ++j) {
      const Token& t = toks_[j];
      if (t.kind == TokKind::kPreproc) continue;
      if (t.kind == TokKind::kPunct) {
        if (t.text == "{") ++depth;
        if (t.text == "}") {
          --depth;
          while (!lock_depths.empty() && lock_depths.back() > depth) lock_depths.pop_back();
        }
        continue;
      }
      if (t.kind != TokKind::kIdent) continue;
      const std::string_view s = t.text;

      // `new` / placement-new.
      if (s == "new") {
        const std::size_t nx = next(j);
        if (nx != kNpos && !is_punct(nx, "(")) {  // `new (addr) T` is placement
          add_alloc(fn, "operator new", t.line);
        }
        continue;
      }

      // RAII lock declarations: MutexLock l(mu_); std::unique_lock<M> l(m);
      if (is_lock_type(s)) {
        std::size_t nx = next(j);
        if (nx != kNpos && is_punct(nx, "<")) {
          const std::size_t after = match_angle(nx);
          nx = after == kNpos ? kNpos : after;
        }
        if (nx != kNpos && is_ident(nx) && !is_keyword(toks_[nx].text)) {
          const std::size_t open = next(nx);
          if (open != kNpos && (is_punct(open, "(") || is_punct(open, "{"))) {
            lock_depths.push_back(depth);
          }
        }
        continue;
      }

      // Call candidate: ident ( ... ) or ident <...> ( ... ).
      std::size_t call_open = kNpos;
      {
        const std::size_t nx = next(j);
        if (nx != kNpos && is_punct(nx, "(")) {
          call_open = nx;
        } else if (nx != kNpos && is_punct(nx, "<")) {
          const std::size_t after = match_angle(nx);
          if (after != kNpos && is_punct(after, "(")) call_open = after;
        }
      }
      if (call_open == kNpos || is_keyword(s)) continue;

      const std::size_t pv = prev(j);
      const bool receiver =
          pv != kNpos && (is_punct(pv, ".") || is_punct(pv, "->"));
      std::string prefix;
      if (pv != kNpos && is_punct(pv, "::")) {
        const std::size_t q = prev(pv);
        prefix = (q != kNpos && is_ident(q)) ? std::string(toks_[q].text) : "::";
      }
      // `Type name(...)`: a declaration, not a call.
      if (!receiver && prefix.empty() && pv != kNpos && is_ident(pv) &&
          !is_keyword(toks_[pv].text)) {
        continue;
      }
      if (pv != kNpos && is_ident(pv) && is_keyword(toks_[pv].text) &&
          toks_[pv].text == "new") {
        continue;  // `new Fn(...)`: the alloc is already recorded
      }

      classify_call(fn, s, prefix, receiver, t.line, call_open, locks());
    }
  }

  void classify_call(FunctionModel& fn, std::string_view name, const std::string& prefix,
                     bool receiver, int line, std::size_t call_open, int locks) {
    if (is_direct_alloc_fn(name)) {
      add_alloc(fn, std::string(name), line);
    } else if (name == "make_unique" || name == "make_shared") {
      add_alloc(fn, "std::" + std::string(name), line);
    } else if (prefix == "std" && name == "to_string") {
      add_alloc(fn, "std::to_string", line);
    } else if (receiver && is_allocating_method(name)) {
      add_alloc(fn, "." + std::string(name), line);
    }

    if (receiver && (name == "wait" || name == "wait_for" || name == "wait_until")) {
      add_blocking(fn, "." + std::string(name), line, locks, /*cv=*/true);
    } else if (is_blocking_libc(name)) {
      add_blocking(fn, std::string(name), line, locks, /*cv=*/false);
    } else if (prefix == "::" && (name == "write" || name == "read" || name == "open" ||
                                  name == "close" || name == "fsync")) {
      add_blocking(fn, "::" + std::string(name), line, locks, /*cv=*/false);
    } else if ((prefix == "fs" || prefix == "filesystem") && is_blocking_fs(name)) {
      add_blocking(fn, "fs::" + std::string(name), line, locks, /*cv=*/false);
    }

    if (receiver && (name == "counter" || name == "gauge" || name == "histogram")) {
      record_metric_call(name, line, call_open);
    }

    fn.calls.push_back(FunctionModel::Call{std::string(name), prefix, line, receiver, locks});
  }

  void add_alloc(FunctionModel& fn, std::string what, int line) {
    if (suppressed(line, "hot-alloc")) return;
    fn.allocs.push_back(FunctionModel::Alloc{std::move(what), line});
  }

  void add_blocking(FunctionModel& fn, std::string what, int line, int locks, bool cv) {
    if (suppressed(line, "lock-blocking")) return;
    fn.blocking_ops.push_back(FunctionModel::BlockingOp{std::move(what), line, locks, cv});
  }

  void record_metric_call(std::string_view method, int line, std::size_t call_open) {
    MetricCall mc;
    mc.method = method;
    mc.line = line;
    // First two top-level arguments; literal if a single string token.
    int arg = 0;
    int depth = 0;
    std::vector<std::size_t> arg_toks;
    const auto finish_arg = [&] {
      if (arg_toks.size() == 1 && toks_[arg_toks[0]].kind == TokKind::kString) {
        const std::string text = strip_quotes(toks_[arg_toks[0]].text);
        if (arg == 0) {
          mc.subsystem = text;
          mc.subsystem_literal = true;
        } else if (arg == 1) {
          mc.metric = text;
          mc.metric_literal = true;
        }
      }
      arg_toks.clear();
      ++arg;
    };
    for (std::size_t j = call_open; j < toks_.size(); ++j) {
      const Token& t = toks_[j];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(") {
          if (++depth == 1) continue;
        } else if (t.text == ")") {
          if (--depth == 0) {
            finish_arg();
            break;
          }
        } else if (t.text == "," && depth == 1) {
          finish_arg();
          continue;
        }
      }
      if (depth >= 1) arg_toks.push_back(j);
      if (arg > 1) break;  // only the first two arguments matter
    }
    out_.metric_calls.push_back(std::move(mc));
  }

  const TokenStream& stream_;
  const TokenVec& toks_;
  FileModel out_;
  std::vector<std::string> scopes_;
  std::set<int> whole_line_comments_;
};

}  // namespace

FileModel build_model(const TokenStream& stream) { return Builder(stream).build(); }

bool is_suppressed(const FileModel& model, int line, const std::string& pass) {
  const auto it = model.suppressions.find(line);
  return it != model.suppressions.end() && it->second.count(pass) > 0;
}

}  // namespace netseer::lint
