#include "lexer.h"

#include <cctype>
#include <cstdio>
#include <utility>

namespace netseer::lint {

namespace {

bool is_ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool is_ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

class Lexer {
 public:
  Lexer(const std::string& src, std::vector<Token>& tokens, std::vector<Comment>& comments)
      : src_(src), tokens_(tokens), comments_(comments) {}

  void run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        line_start_ = pos_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start()) {
        preprocessor();
        continue;
      }
      if (c == '"') {
        string_literal();
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      if (c == 'R' && peek(1) == '"') {
        raw_string();
        continue;
      }
      if (is_ident_start(c)) {
        identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        number();
        continue;
      }
      punct();
    }
  }

 private:
  [[nodiscard]] char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  [[nodiscard]] bool at_line_start() const {
    for (std::size_t i = line_start_; i < pos_; ++i) {
      const char c = src_[i];
      if (c != ' ' && c != '\t') return false;
    }
    return true;
  }

  void emit(TokKind kind, std::size_t begin, std::size_t end, int line) {
    tokens_.push_back(Token{kind, std::string_view(src_).substr(begin, end - begin), line});
  }

  void advance_line_counting(std::size_t to) {
    for (; pos_ < to; ++pos_) {
      if (src_[pos_] == '\n') {
        ++line_;
        line_start_ = pos_ + 1;
      }
    }
  }

  void line_comment() {
    const int line = line_;
    const bool whole = at_line_start();
    const std::size_t begin = pos_ + 2;
    std::size_t end = src_.find('\n', begin);
    if (end == std::string::npos) end = src_.size();
    comments_.push_back(
        Comment{line, whole, std::string_view(src_).substr(begin, end - begin)});
    pos_ = end;
  }

  void block_comment() {
    const int line = line_;
    const bool whole = at_line_start();
    const std::size_t begin = pos_ + 2;
    std::size_t end = src_.find("*/", begin);
    const std::size_t stop = end == std::string::npos ? src_.size() : end;
    comments_.push_back(
        Comment{line, whole, std::string_view(src_).substr(begin, stop - begin)});
    advance_line_counting(stop);
    pos_ = end == std::string::npos ? src_.size() : end + 2;
  }

  void preprocessor() {
    const int line = line_;
    const std::size_t begin = pos_;
    // A directive spans to end-of-line, honoring backslash continuations
    // and stopping short of a trailing // comment.
    std::size_t end = pos_;
    while (end < src_.size()) {
      if (src_[end] == '\n') {
        std::size_t back = end;
        while (back > begin && (src_[back - 1] == ' ' || src_[back - 1] == '\t' ||
                                src_[back - 1] == '\r')) {
          --back;
        }
        if (back > begin && src_[back - 1] == '\\') {
          ++end;
          continue;
        }
        break;
      }
      if (src_[end] == '/' && end + 1 < src_.size() &&
          (src_[end + 1] == '/' || src_[end + 1] == '*')) {
        break;
      }
      ++end;
    }
    emit(TokKind::kPreproc, begin, end, line);
    advance_line_counting(end);
  }

  void string_literal() {
    const int line = line_;
    const std::size_t begin = pos_;
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '"' && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      ++pos_;
    }
    if (pos_ < src_.size() && src_[pos_] == '"') ++pos_;
    emit(TokKind::kString, begin, pos_, line);
  }

  void char_literal() {
    const int line = line_;
    const std::size_t begin = pos_;
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '\'' && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      ++pos_;
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
    emit(TokKind::kChar, begin, pos_, line);
  }

  void raw_string() {
    const int line = line_;
    const std::size_t begin = pos_;
    std::size_t i = pos_ + 2;  // past R"
    std::string delim;
    while (i < src_.size() && src_[i] != '(') delim.push_back(src_[i++]);
    const std::string close = ")" + delim + "\"";
    std::size_t end = src_.find(close, i);
    end = end == std::string::npos ? src_.size() : end + close.size();
    advance_line_counting(end);
    emit(TokKind::kString, begin, end, line);
  }

  void identifier() {
    const int line = line_;
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
    emit(TokKind::kIdent, begin, pos_, line);
  }

  void number() {
    const int line = line_;
    const std::size_t begin = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (is_ident_char(c) || c == '\'' || c == '.') {
        ++pos_;
        continue;
      }
      // Exponent signs: 1e-9, 0x1p+3.
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    emit(TokKind::kNumber, begin, pos_, line);
  }

  void punct() {
    const int line = line_;
    const std::size_t begin = pos_;
    // Only the two-char operators the model layer matches on are fused;
    // everything else is one token per char (the passes never need to
    // distinguish, say, += from + =).
    if ((src_[pos_] == ':' && peek(1) == ':') || (src_[pos_] == '-' && peek(1) == '>')) {
      pos_ += 2;
    } else {
      ++pos_;
    }
    emit(TokKind::kPunct, begin, pos_, line);
  }

  const std::string& src_;
  std::vector<Token>& tokens_;
  std::vector<Comment>& comments_;
  std::size_t pos_ = 0;
  std::size_t line_start_ = 0;
  int line_ = 1;
};

}  // namespace

TokenStream TokenStream::lex(std::string path, std::string contents) {
  TokenStream out;
  out.path_ = std::move(path);
  out.source_ = std::move(contents);
  Lexer(out.source_, out.tokens_, out.comments_).run();
  return out;
}

bool TokenStream::lex_file(const std::string& path, TokenStream* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string contents;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  *out = lex(path, std::move(contents));
  return true;
}

}  // namespace netseer::lint
