file(REMOVE_RECURSE
  "CMakeFiles/netseer_fabric.dir/fat_tree.cpp.o"
  "CMakeFiles/netseer_fabric.dir/fat_tree.cpp.o.d"
  "CMakeFiles/netseer_fabric.dir/network.cpp.o"
  "CMakeFiles/netseer_fabric.dir/network.cpp.o.d"
  "libnetseer_fabric.a"
  "libnetseer_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netseer_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
