# Empty compiler generated dependencies file for netseer_fabric.
# This may be replaced when dependencies are built.
