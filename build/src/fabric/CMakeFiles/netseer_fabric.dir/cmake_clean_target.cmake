file(REMOVE_RECURSE
  "libnetseer_fabric.a"
)
