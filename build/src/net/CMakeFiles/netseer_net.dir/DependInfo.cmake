
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/host.cpp" "src/net/CMakeFiles/netseer_net.dir/host.cpp.o" "gcc" "src/net/CMakeFiles/netseer_net.dir/host.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/netseer_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/netseer_net.dir/link.cpp.o.d"
  "/root/repo/src/net/pcap.cpp" "src/net/CMakeFiles/netseer_net.dir/pcap.cpp.o" "gcc" "src/net/CMakeFiles/netseer_net.dir/pcap.cpp.o.d"
  "/root/repo/src/net/tx_port.cpp" "src/net/CMakeFiles/netseer_net.dir/tx_port.cpp.o" "gcc" "src/net/CMakeFiles/netseer_net.dir/tx_port.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/packet/CMakeFiles/netseer_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netseer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/netseer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
