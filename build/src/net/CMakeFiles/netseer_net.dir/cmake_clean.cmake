file(REMOVE_RECURSE
  "CMakeFiles/netseer_net.dir/host.cpp.o"
  "CMakeFiles/netseer_net.dir/host.cpp.o.d"
  "CMakeFiles/netseer_net.dir/link.cpp.o"
  "CMakeFiles/netseer_net.dir/link.cpp.o.d"
  "CMakeFiles/netseer_net.dir/pcap.cpp.o"
  "CMakeFiles/netseer_net.dir/pcap.cpp.o.d"
  "CMakeFiles/netseer_net.dir/tx_port.cpp.o"
  "CMakeFiles/netseer_net.dir/tx_port.cpp.o.d"
  "libnetseer_net.a"
  "libnetseer_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netseer_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
