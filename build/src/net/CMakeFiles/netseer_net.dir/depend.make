# Empty dependencies file for netseer_net.
# This may be replaced when dependencies are built.
