file(REMOVE_RECURSE
  "libnetseer_net.a"
)
