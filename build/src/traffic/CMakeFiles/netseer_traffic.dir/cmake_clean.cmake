file(REMOVE_RECURSE
  "CMakeFiles/netseer_traffic.dir/distributions.cpp.o"
  "CMakeFiles/netseer_traffic.dir/distributions.cpp.o.d"
  "CMakeFiles/netseer_traffic.dir/generator.cpp.o"
  "CMakeFiles/netseer_traffic.dir/generator.cpp.o.d"
  "CMakeFiles/netseer_traffic.dir/tcp.cpp.o"
  "CMakeFiles/netseer_traffic.dir/tcp.cpp.o.d"
  "CMakeFiles/netseer_traffic.dir/trace.cpp.o"
  "CMakeFiles/netseer_traffic.dir/trace.cpp.o.d"
  "libnetseer_traffic.a"
  "libnetseer_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netseer_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
