file(REMOVE_RECURSE
  "libnetseer_traffic.a"
)
