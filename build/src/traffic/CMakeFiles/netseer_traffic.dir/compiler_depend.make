# Empty compiler generated dependencies file for netseer_traffic.
# This may be replaced when dependencies are built.
