file(REMOVE_RECURSE
  "CMakeFiles/netseer_sim.dir/simulator.cpp.o"
  "CMakeFiles/netseer_sim.dir/simulator.cpp.o.d"
  "libnetseer_sim.a"
  "libnetseer_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netseer_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
