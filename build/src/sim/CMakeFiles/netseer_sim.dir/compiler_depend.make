# Empty compiler generated dependencies file for netseer_sim.
# This may be replaced when dependencies are built.
