file(REMOVE_RECURSE
  "libnetseer_sim.a"
)
