
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/packet/addr.cpp" "src/packet/CMakeFiles/netseer_packet.dir/addr.cpp.o" "gcc" "src/packet/CMakeFiles/netseer_packet.dir/addr.cpp.o.d"
  "/root/repo/src/packet/builder.cpp" "src/packet/CMakeFiles/netseer_packet.dir/builder.cpp.o" "gcc" "src/packet/CMakeFiles/netseer_packet.dir/builder.cpp.o.d"
  "/root/repo/src/packet/flow_key.cpp" "src/packet/CMakeFiles/netseer_packet.dir/flow_key.cpp.o" "gcc" "src/packet/CMakeFiles/netseer_packet.dir/flow_key.cpp.o.d"
  "/root/repo/src/packet/packet.cpp" "src/packet/CMakeFiles/netseer_packet.dir/packet.cpp.o" "gcc" "src/packet/CMakeFiles/netseer_packet.dir/packet.cpp.o.d"
  "/root/repo/src/packet/wire.cpp" "src/packet/CMakeFiles/netseer_packet.dir/wire.cpp.o" "gcc" "src/packet/CMakeFiles/netseer_packet.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/netseer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
