file(REMOVE_RECURSE
  "libnetseer_packet.a"
)
