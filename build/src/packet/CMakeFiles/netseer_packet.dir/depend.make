# Empty dependencies file for netseer_packet.
# This may be replaced when dependencies are built.
