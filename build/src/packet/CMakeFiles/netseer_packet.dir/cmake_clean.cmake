file(REMOVE_RECURSE
  "CMakeFiles/netseer_packet.dir/addr.cpp.o"
  "CMakeFiles/netseer_packet.dir/addr.cpp.o.d"
  "CMakeFiles/netseer_packet.dir/builder.cpp.o"
  "CMakeFiles/netseer_packet.dir/builder.cpp.o.d"
  "CMakeFiles/netseer_packet.dir/flow_key.cpp.o"
  "CMakeFiles/netseer_packet.dir/flow_key.cpp.o.d"
  "CMakeFiles/netseer_packet.dir/packet.cpp.o"
  "CMakeFiles/netseer_packet.dir/packet.cpp.o.d"
  "CMakeFiles/netseer_packet.dir/wire.cpp.o"
  "CMakeFiles/netseer_packet.dir/wire.cpp.o.d"
  "libnetseer_packet.a"
  "libnetseer_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netseer_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
