file(REMOVE_RECURSE
  "CMakeFiles/netseer_backend.dir/persistence.cpp.o"
  "CMakeFiles/netseer_backend.dir/persistence.cpp.o.d"
  "libnetseer_backend.a"
  "libnetseer_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netseer_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
