file(REMOVE_RECURSE
  "libnetseer_backend.a"
)
