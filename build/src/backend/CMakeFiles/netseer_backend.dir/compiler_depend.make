# Empty compiler generated dependencies file for netseer_backend.
# This may be replaced when dependencies are built.
