# Empty compiler generated dependencies file for netseer_scenarios.
# This may be replaced when dependencies are built.
