file(REMOVE_RECURSE
  "CMakeFiles/netseer_scenarios.dir/harness.cpp.o"
  "CMakeFiles/netseer_scenarios.dir/harness.cpp.o.d"
  "CMakeFiles/netseer_scenarios.dir/incidents.cpp.o"
  "CMakeFiles/netseer_scenarios.dir/incidents.cpp.o.d"
  "CMakeFiles/netseer_scenarios.dir/sla.cpp.o"
  "CMakeFiles/netseer_scenarios.dir/sla.cpp.o.d"
  "libnetseer_scenarios.a"
  "libnetseer_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netseer_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
