file(REMOVE_RECURSE
  "libnetseer_scenarios.a"
)
