file(REMOVE_RECURSE
  "libnetseer_pdp.a"
)
