# Empty dependencies file for netseer_pdp.
# This may be replaced when dependencies are built.
