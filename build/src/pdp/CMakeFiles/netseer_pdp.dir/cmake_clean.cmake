file(REMOVE_RECURSE
  "CMakeFiles/netseer_pdp.dir/resources.cpp.o"
  "CMakeFiles/netseer_pdp.dir/resources.cpp.o.d"
  "CMakeFiles/netseer_pdp.dir/switch.cpp.o"
  "CMakeFiles/netseer_pdp.dir/switch.cpp.o.d"
  "CMakeFiles/netseer_pdp.dir/types.cpp.o"
  "CMakeFiles/netseer_pdp.dir/types.cpp.o.d"
  "libnetseer_pdp.a"
  "libnetseer_pdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netseer_pdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
