# Empty dependencies file for netseer_util.
# This may be replaced when dependencies are built.
