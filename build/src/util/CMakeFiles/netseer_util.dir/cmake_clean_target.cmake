file(REMOVE_RECURSE
  "libnetseer_util.a"
)
