file(REMOVE_RECURSE
  "CMakeFiles/netseer_util.dir/hash.cpp.o"
  "CMakeFiles/netseer_util.dir/hash.cpp.o.d"
  "CMakeFiles/netseer_util.dir/logging.cpp.o"
  "CMakeFiles/netseer_util.dir/logging.cpp.o.d"
  "CMakeFiles/netseer_util.dir/rng.cpp.o"
  "CMakeFiles/netseer_util.dir/rng.cpp.o.d"
  "CMakeFiles/netseer_util.dir/time.cpp.o"
  "CMakeFiles/netseer_util.dir/time.cpp.o.d"
  "libnetseer_util.a"
  "libnetseer_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netseer_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
