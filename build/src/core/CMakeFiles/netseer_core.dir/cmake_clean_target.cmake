file(REMOVE_RECURSE
  "libnetseer_core.a"
)
