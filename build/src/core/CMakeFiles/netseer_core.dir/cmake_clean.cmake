file(REMOVE_RECURSE
  "CMakeFiles/netseer_core.dir/capacity.cpp.o"
  "CMakeFiles/netseer_core.dir/capacity.cpp.o.d"
  "CMakeFiles/netseer_core.dir/detect/interswitch.cpp.o"
  "CMakeFiles/netseer_core.dir/detect/interswitch.cpp.o.d"
  "CMakeFiles/netseer_core.dir/event.cpp.o"
  "CMakeFiles/netseer_core.dir/event.cpp.o.d"
  "CMakeFiles/netseer_core.dir/netseer_app.cpp.o"
  "CMakeFiles/netseer_core.dir/netseer_app.cpp.o.d"
  "libnetseer_core.a"
  "libnetseer_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netseer_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
