
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/capacity.cpp" "src/core/CMakeFiles/netseer_core.dir/capacity.cpp.o" "gcc" "src/core/CMakeFiles/netseer_core.dir/capacity.cpp.o.d"
  "/root/repo/src/core/detect/interswitch.cpp" "src/core/CMakeFiles/netseer_core.dir/detect/interswitch.cpp.o" "gcc" "src/core/CMakeFiles/netseer_core.dir/detect/interswitch.cpp.o.d"
  "/root/repo/src/core/event.cpp" "src/core/CMakeFiles/netseer_core.dir/event.cpp.o" "gcc" "src/core/CMakeFiles/netseer_core.dir/event.cpp.o.d"
  "/root/repo/src/core/netseer_app.cpp" "src/core/CMakeFiles/netseer_core.dir/netseer_app.cpp.o" "gcc" "src/core/CMakeFiles/netseer_core.dir/netseer_app.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pdp/CMakeFiles/netseer_pdp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/netseer_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netseer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/netseer_util.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/netseer_packet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
