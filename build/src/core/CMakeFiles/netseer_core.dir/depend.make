# Empty dependencies file for netseer_core.
# This may be replaced when dependencies are built.
