# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;11;netseer_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_incast_debugging "/root/repo/build/examples/incast_debugging")
set_tests_properties(example_incast_debugging PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;12;netseer_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_silent_drop_localization "/root/repo/build/examples/silent_drop_localization")
set_tests_properties(example_silent_drop_localization PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;13;netseer_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sla_attribution "/root/repo/build/examples/sla_attribution")
set_tests_properties(example_sla_attribution PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;14;netseer_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pfc_pause_storm "/root/repo/build/examples/pfc_pause_storm")
set_tests_properties(example_pfc_pause_storm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;15;netseer_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_netseer_sim "/root/repo/build/examples/netseer_sim" "--topology" "testbed" "--workload" "web" "--load" "0.4" "--duration-ms" "6" "--fault" "blackhole" "--seed" "3")
set_tests_properties(example_netseer_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
