# Empty dependencies file for incast_debugging.
# This may be replaced when dependencies are built.
