file(REMOVE_RECURSE
  "CMakeFiles/incast_debugging.dir/incast_debugging.cpp.o"
  "CMakeFiles/incast_debugging.dir/incast_debugging.cpp.o.d"
  "incast_debugging"
  "incast_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incast_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
