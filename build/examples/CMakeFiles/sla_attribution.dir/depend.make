# Empty dependencies file for sla_attribution.
# This may be replaced when dependencies are built.
