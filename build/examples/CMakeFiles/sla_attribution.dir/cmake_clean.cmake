file(REMOVE_RECURSE
  "CMakeFiles/sla_attribution.dir/sla_attribution.cpp.o"
  "CMakeFiles/sla_attribution.dir/sla_attribution.cpp.o.d"
  "sla_attribution"
  "sla_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sla_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
