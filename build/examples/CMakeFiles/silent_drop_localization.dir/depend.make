# Empty dependencies file for silent_drop_localization.
# This may be replaced when dependencies are built.
