file(REMOVE_RECURSE
  "CMakeFiles/silent_drop_localization.dir/silent_drop_localization.cpp.o"
  "CMakeFiles/silent_drop_localization.dir/silent_drop_localization.cpp.o.d"
  "silent_drop_localization"
  "silent_drop_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silent_drop_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
