# Empty compiler generated dependencies file for pfc_pause_storm.
# This may be replaced when dependencies are built.
