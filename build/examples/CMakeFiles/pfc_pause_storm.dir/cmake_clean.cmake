file(REMOVE_RECURSE
  "CMakeFiles/pfc_pause_storm.dir/pfc_pause_storm.cpp.o"
  "CMakeFiles/pfc_pause_storm.dir/pfc_pause_storm.cpp.o.d"
  "pfc_pause_storm"
  "pfc_pause_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfc_pause_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
