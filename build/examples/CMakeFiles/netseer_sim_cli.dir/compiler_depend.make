# Empty compiler generated dependencies file for netseer_sim_cli.
# This may be replaced when dependencies are built.
