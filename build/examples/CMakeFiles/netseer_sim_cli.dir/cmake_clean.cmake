file(REMOVE_RECURSE
  "CMakeFiles/netseer_sim_cli.dir/netseer_sim.cpp.o"
  "CMakeFiles/netseer_sim_cli.dir/netseer_sim.cpp.o.d"
  "netseer_sim"
  "netseer_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netseer_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
