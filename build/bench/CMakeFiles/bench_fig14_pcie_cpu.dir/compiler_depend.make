# Empty compiler generated dependencies file for bench_fig14_pcie_cpu.
# This may be replaced when dependencies are built.
