file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_notify.dir/bench_ablation_notify.cpp.o"
  "CMakeFiles/bench_ablation_notify.dir/bench_ablation_notify.cpp.o.d"
  "bench_ablation_notify"
  "bench_ablation_notify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_notify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
