# Empty dependencies file for bench_ablation_notify.
# This may be replaced when dependencies are built.
