# Empty dependencies file for bench_fig13_per_step.
# This may be replaced when dependencies are built.
