file(REMOVE_RECURSE
  "../lib/libnetseer_bench_common.a"
)
