file(REMOVE_RECURSE
  "../lib/libnetseer_bench_common.a"
  "../lib/libnetseer_bench_common.pdb"
  "CMakeFiles/netseer_bench_common.dir/experiment.cpp.o"
  "CMakeFiles/netseer_bench_common.dir/experiment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netseer_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
