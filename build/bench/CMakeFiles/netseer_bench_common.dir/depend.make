# Empty dependencies file for netseer_bench_common.
# This may be replaced when dependencies are built.
