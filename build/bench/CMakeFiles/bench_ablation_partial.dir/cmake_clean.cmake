file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_partial.dir/bench_ablation_partial.cpp.o"
  "CMakeFiles/bench_ablation_partial.dir/bench_ablation_partial.cpp.o.d"
  "bench_ablation_partial"
  "bench_ablation_partial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
