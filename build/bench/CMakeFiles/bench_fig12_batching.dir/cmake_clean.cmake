file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_batching.dir/bench_fig12_batching.cpp.o"
  "CMakeFiles/bench_fig12_batching.dir/bench_fig12_batching.cpp.o.d"
  "bench_fig12_batching"
  "bench_fig12_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
