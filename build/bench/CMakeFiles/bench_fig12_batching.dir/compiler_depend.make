# Empty compiler generated dependencies file for bench_fig12_batching.
# This may be replaced when dependencies are built.
