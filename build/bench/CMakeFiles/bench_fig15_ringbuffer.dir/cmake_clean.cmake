file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_ringbuffer.dir/bench_fig15_ringbuffer.cpp.o"
  "CMakeFiles/bench_fig15_ringbuffer.dir/bench_fig15_ringbuffer.cpp.o.d"
  "bench_fig15_ringbuffer"
  "bench_fig15_ringbuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_ringbuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
