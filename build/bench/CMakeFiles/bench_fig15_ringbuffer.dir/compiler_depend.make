# Empty compiler generated dependencies file for bench_fig15_ringbuffer.
# This may be replaced when dependencies are built.
