file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8a_incidents.dir/bench_fig8a_incidents.cpp.o"
  "CMakeFiles/bench_fig8a_incidents.dir/bench_fig8a_incidents.cpp.o.d"
  "bench_fig8a_incidents"
  "bench_fig8a_incidents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8a_incidents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
