# Empty dependencies file for bench_cpu_micro.
# This may be replaced when dependencies are built.
