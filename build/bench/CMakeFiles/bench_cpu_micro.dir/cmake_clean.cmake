file(REMOVE_RECURSE
  "CMakeFiles/bench_cpu_micro.dir/bench_cpu_micro.cpp.o"
  "CMakeFiles/bench_cpu_micro.dir/bench_cpu_micro.cpp.o.d"
  "bench_cpu_micro"
  "bench_cpu_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpu_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
