
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_resources.cpp" "bench/CMakeFiles/bench_fig7_resources.dir/bench_fig7_resources.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7_resources.dir/bench_fig7_resources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/netseer_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/scenarios/CMakeFiles/netseer_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/netseer_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/netseer_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/netseer_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/netseer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pdp/CMakeFiles/netseer_pdp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/netseer_net.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/netseer_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netseer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/netseer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
