# Empty dependencies file for bench_fig7_resources.
# This may be replaced when dependencies are built.
