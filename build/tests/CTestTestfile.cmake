# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_packet[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_pdp[1]_include.cmake")
include("/root/repo/build/tests/test_fabric[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_backend[1]_include.cmake")
include("/root/repo/build/tests/test_traffic[1]_include.cmake")
include("/root/repo/build/tests/test_monitors[1]_include.cmake")
include("/root/repo/build/tests/test_scenarios[1]_include.cmake")
