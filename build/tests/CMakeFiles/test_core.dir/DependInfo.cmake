
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/batching_test.cpp" "tests/CMakeFiles/test_core.dir/core/batching_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/batching_test.cpp.o.d"
  "/root/repo/tests/core/capacity_limits_test.cpp" "tests/CMakeFiles/test_core.dir/core/capacity_limits_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/capacity_limits_test.cpp.o.d"
  "/root/repo/tests/core/capacity_test.cpp" "tests/CMakeFiles/test_core.dir/core/capacity_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/capacity_test.cpp.o.d"
  "/root/repo/tests/core/cpu_test.cpp" "tests/CMakeFiles/test_core.dir/core/cpu_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/cpu_test.cpp.o.d"
  "/root/repo/tests/core/event_property_test.cpp" "tests/CMakeFiles/test_core.dir/core/event_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/event_property_test.cpp.o.d"
  "/root/repo/tests/core/event_test.cpp" "tests/CMakeFiles/test_core.dir/core/event_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/event_test.cpp.o.d"
  "/root/repo/tests/core/extensions_test.cpp" "tests/CMakeFiles/test_core.dir/core/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/extensions_test.cpp.o.d"
  "/root/repo/tests/core/group_cache_property_test.cpp" "tests/CMakeFiles/test_core.dir/core/group_cache_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/group_cache_property_test.cpp.o.d"
  "/root/repo/tests/core/group_cache_test.cpp" "tests/CMakeFiles/test_core.dir/core/group_cache_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/group_cache_test.cpp.o.d"
  "/root/repo/tests/core/interswitch_property_test.cpp" "tests/CMakeFiles/test_core.dir/core/interswitch_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/interswitch_property_test.cpp.o.d"
  "/root/repo/tests/core/interswitch_test.cpp" "tests/CMakeFiles/test_core.dir/core/interswitch_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/interswitch_test.cpp.o.d"
  "/root/repo/tests/core/netseer_app_test.cpp" "tests/CMakeFiles/test_core.dir/core/netseer_app_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/netseer_app_test.cpp.o.d"
  "/root/repo/tests/core/nic_agent_test.cpp" "tests/CMakeFiles/test_core.dir/core/nic_agent_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/nic_agent_test.cpp.o.d"
  "/root/repo/tests/core/reliable_property_test.cpp" "tests/CMakeFiles/test_core.dir/core/reliable_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/reliable_property_test.cpp.o.d"
  "/root/repo/tests/core/reliable_test.cpp" "tests/CMakeFiles/test_core.dir/core/reliable_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/reliable_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/netseer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/netseer_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/netseer_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/netseer_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/pdp/CMakeFiles/netseer_pdp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/netseer_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netseer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/netseer_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/netseer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
