file(REMOVE_RECURSE
  "CMakeFiles/test_monitors.dir/monitors/monitors_test.cpp.o"
  "CMakeFiles/test_monitors.dir/monitors/monitors_test.cpp.o.d"
  "CMakeFiles/test_monitors.dir/monitors/pcap_test.cpp.o"
  "CMakeFiles/test_monitors.dir/monitors/pcap_test.cpp.o.d"
  "CMakeFiles/test_monitors.dir/monitors/units_test.cpp.o"
  "CMakeFiles/test_monitors.dir/monitors/units_test.cpp.o.d"
  "test_monitors"
  "test_monitors.pdb"
  "test_monitors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
