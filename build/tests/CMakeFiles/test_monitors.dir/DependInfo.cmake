
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/monitors/monitors_test.cpp" "tests/CMakeFiles/test_monitors.dir/monitors/monitors_test.cpp.o" "gcc" "tests/CMakeFiles/test_monitors.dir/monitors/monitors_test.cpp.o.d"
  "/root/repo/tests/monitors/pcap_test.cpp" "tests/CMakeFiles/test_monitors.dir/monitors/pcap_test.cpp.o" "gcc" "tests/CMakeFiles/test_monitors.dir/monitors/pcap_test.cpp.o.d"
  "/root/repo/tests/monitors/units_test.cpp" "tests/CMakeFiles/test_monitors.dir/monitors/units_test.cpp.o" "gcc" "tests/CMakeFiles/test_monitors.dir/monitors/units_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/netseer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/netseer_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/netseer_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/pdp/CMakeFiles/netseer_pdp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/netseer_net.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/netseer_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netseer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/netseer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
