file(REMOVE_RECURSE
  "CMakeFiles/test_backend.dir/backend/event_store_test.cpp.o"
  "CMakeFiles/test_backend.dir/backend/event_store_test.cpp.o.d"
  "CMakeFiles/test_backend.dir/backend/persistence_test.cpp.o"
  "CMakeFiles/test_backend.dir/backend/persistence_test.cpp.o.d"
  "test_backend"
  "test_backend.pdb"
  "test_backend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
