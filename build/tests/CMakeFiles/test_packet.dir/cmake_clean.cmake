file(REMOVE_RECURSE
  "CMakeFiles/test_packet.dir/packet/addr_test.cpp.o"
  "CMakeFiles/test_packet.dir/packet/addr_test.cpp.o.d"
  "CMakeFiles/test_packet.dir/packet/flow_key_test.cpp.o"
  "CMakeFiles/test_packet.dir/packet/flow_key_test.cpp.o.d"
  "CMakeFiles/test_packet.dir/packet/packet_test.cpp.o"
  "CMakeFiles/test_packet.dir/packet/packet_test.cpp.o.d"
  "CMakeFiles/test_packet.dir/packet/wire_property_test.cpp.o"
  "CMakeFiles/test_packet.dir/packet/wire_property_test.cpp.o.d"
  "CMakeFiles/test_packet.dir/packet/wire_test.cpp.o"
  "CMakeFiles/test_packet.dir/packet/wire_test.cpp.o.d"
  "test_packet"
  "test_packet.pdb"
  "test_packet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
