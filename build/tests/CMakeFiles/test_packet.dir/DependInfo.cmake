
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/packet/addr_test.cpp" "tests/CMakeFiles/test_packet.dir/packet/addr_test.cpp.o" "gcc" "tests/CMakeFiles/test_packet.dir/packet/addr_test.cpp.o.d"
  "/root/repo/tests/packet/flow_key_test.cpp" "tests/CMakeFiles/test_packet.dir/packet/flow_key_test.cpp.o" "gcc" "tests/CMakeFiles/test_packet.dir/packet/flow_key_test.cpp.o.d"
  "/root/repo/tests/packet/packet_test.cpp" "tests/CMakeFiles/test_packet.dir/packet/packet_test.cpp.o" "gcc" "tests/CMakeFiles/test_packet.dir/packet/packet_test.cpp.o.d"
  "/root/repo/tests/packet/wire_property_test.cpp" "tests/CMakeFiles/test_packet.dir/packet/wire_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_packet.dir/packet/wire_property_test.cpp.o.d"
  "/root/repo/tests/packet/wire_test.cpp" "tests/CMakeFiles/test_packet.dir/packet/wire_test.cpp.o" "gcc" "tests/CMakeFiles/test_packet.dir/packet/wire_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/packet/CMakeFiles/netseer_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/netseer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
