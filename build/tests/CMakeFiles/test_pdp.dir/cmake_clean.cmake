file(REMOVE_RECURSE
  "CMakeFiles/test_pdp.dir/pdp/acl_test.cpp.o"
  "CMakeFiles/test_pdp.dir/pdp/acl_test.cpp.o.d"
  "CMakeFiles/test_pdp.dir/pdp/lpm_property_test.cpp.o"
  "CMakeFiles/test_pdp.dir/pdp/lpm_property_test.cpp.o.d"
  "CMakeFiles/test_pdp.dir/pdp/mmu_test.cpp.o"
  "CMakeFiles/test_pdp.dir/pdp/mmu_test.cpp.o.d"
  "CMakeFiles/test_pdp.dir/pdp/resources_test.cpp.o"
  "CMakeFiles/test_pdp.dir/pdp/resources_test.cpp.o.d"
  "CMakeFiles/test_pdp.dir/pdp/switch_test.cpp.o"
  "CMakeFiles/test_pdp.dir/pdp/switch_test.cpp.o.d"
  "CMakeFiles/test_pdp.dir/pdp/table_test.cpp.o"
  "CMakeFiles/test_pdp.dir/pdp/table_test.cpp.o.d"
  "test_pdp"
  "test_pdp.pdb"
  "test_pdp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
