#include "telemetry/snapshot.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace netseer::telemetry {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// JSON has no Infinity/NaN; emit null for non-finite doubles.
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_key(std::string& out, const MetricKey& key) {
  out += "\"subsystem\":";
  append_escaped(out, key.subsystem);
  out += ",\"name\":";
  append_escaped(out, key.name);
  out += ",\"node\":";
  if (key.node == util::kInvalidNode) {
    out += "null";
  } else {
    out += std::to_string(key.node);
  }
}

std::string csv_node(const MetricKey& key) {
  return key.node == util::kInvalidNode ? std::string() : std::to_string(key.node);
}

}  // namespace

MetricsSnapshot MetricsSnapshot::capture(const Registry& registry) {
  MetricsSnapshot snapshot;
  snapshot.data_ = registry;  // value copy: maps of POD-ish cells
  return snapshot;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": [";
  bool first = true;
  for (const auto& [key, counter] : data_.counters()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {";
    append_key(out, key);
    out += ",\"value\":" + std::to_string(counter.value()) + "}";
  }
  out += "\n  ],\n  \"gauges\": [";
  first = true;
  for (const auto& [key, gauge] : data_.gauges()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {";
    append_key(out, key);
    out += ",\"value\":" + std::to_string(gauge.value());
    out += ",\"peak\":" + std::to_string(gauge.peak()) + "}";
  }
  out += "\n  ],\n  \"histograms\": [";
  first = true;
  for (const auto& [key, histogram] : data_.histograms()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {";
    append_key(out, key);
    const auto& summary = histogram.summary();
    out += ",\"count\":" + std::to_string(summary.count());
    out += ",\"sum\":";
    append_double(out, summary.sum());
    out += ",\"mean\":";
    append_double(out, summary.mean());
    out += ",\"min\":";
    append_double(out, summary.min());
    out += ",\"max\":";
    append_double(out, summary.max());
    // Sparse bucket list: [[inclusive_low, count], ...], empties skipped.
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (histogram.buckets()[i] == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += '[';
      append_double(out, Histogram::bucket_low(i));
      out += ',' + std::to_string(histogram.buckets()[i]) + ']';
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string MetricsSnapshot::to_csv() const {
  std::ostringstream out;
  out << "kind,subsystem,name,node,value,peak,count,mean,min,max\n";
  for (const auto& [key, counter] : data_.counters()) {
    out << "counter," << key.subsystem << ',' << key.name << ',' << csv_node(key) << ','
        << counter.value() << ",,,,,\n";
  }
  for (const auto& [key, gauge] : data_.gauges()) {
    out << "gauge," << key.subsystem << ',' << key.name << ',' << csv_node(key) << ','
        << gauge.value() << ',' << gauge.peak() << ",,,,\n";
  }
  for (const auto& [key, histogram] : data_.histograms()) {
    const auto& summary = histogram.summary();
    out << "histogram," << key.subsystem << ',' << key.name << ',' << csv_node(key) << ",,,"
        << summary.count() << ',' << summary.mean() << ',' << summary.min() << ','
        << summary.max() << "\n";
  }
  return out.str();
}

bool MetricsSnapshot::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  const bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  out << (csv ? to_csv() : to_json());
  return static_cast<bool>(out);
}

}  // namespace netseer::telemetry
