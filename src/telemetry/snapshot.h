#pragma once

#include <string>

#include "telemetry/metrics.h"

namespace netseer::telemetry {

/// Immutable copy of a Registry's state, exportable as JSON or CSV.
/// Capture once at the end of a run; the registry keeps mutating.
class MetricsSnapshot {
 public:
  static MetricsSnapshot capture(const Registry& registry);

  /// One JSON object: {"counters": [...], "gauges": [...], "histograms":
  /// [...]}. Every series entry carries subsystem/name/node. Machine-
  /// parseable by any JSON reader (and `jq`); no external library used.
  [[nodiscard]] std::string to_json() const;

  /// Flat CSV: kind,subsystem,name,node,value,peak,count,mean,min,max.
  [[nodiscard]] std::string to_csv() const;

  /// Write to `path`; format chosen by extension (.csv => CSV, else
  /// JSON). Returns false on I/O failure.
  bool write_file(const std::string& path) const;

  [[nodiscard]] const Registry& data() const { return data_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

 private:
  Registry data_;
};

}  // namespace netseer::telemetry
