#include "telemetry/metrics.h"

namespace netseer::telemetry {

std::uint64_t Registry::total(std::string_view subsystem, std::string_view name) const {
  util::MutexLock lock(mu_);
  std::uint64_t sum = 0;
  for (const auto& [k, counter] : counters_) {
    if (k.subsystem == subsystem && k.name == name) sum += counter.value();
  }
  return sum;
}

void Registry::merge_from(const Registry& other) {
  // Folding a registry into itself would double every counter and
  // histogram (the fold reads the snapshot taken one line earlier); the
  // only sensible semantic for a self-merge is a no-op.
  if (this == &other) return;
  // Snapshot the source under its own lock, then fold under ours — same
  // never-hold-both discipline as operator=.
  const auto counters = other.counters();
  const auto gauges = other.gauges();
  const auto histograms = other.histograms();
  util::MutexLock lock(mu_);
  for (const auto& [k, counter] : counters) {
    counters_[k].add(counter.value());
  }
  for (const auto& [k, gauge] : gauges) {
    Gauge& mine = gauges_[k];
    mine.update_max(gauge.value());
    mine.update_max(gauge.peak());
  }
  for (const auto& [k, histogram] : histograms) {
    histograms_[k].merge(histogram);
  }
}

}  // namespace netseer::telemetry
