#include "telemetry/metrics.h"

namespace netseer::telemetry {

std::uint64_t Registry::total(std::string_view subsystem, std::string_view name) const {
  util::MutexLock lock(mu_);
  std::uint64_t sum = 0;
  for (const auto& [k, counter] : counters_) {
    if (k.subsystem == subsystem && k.name == name) sum += counter.value();
  }
  return sum;
}

}  // namespace netseer::telemetry
