#pragma once

#include "telemetry/metrics.h"

namespace netseer::pdp {
class Switch;
class ResourceModel;
}
namespace netseer::core {
class NetSeerApp;
}
namespace netseer::backend {
class Collector;
class EventStore;
}
namespace netseer::store {
class FlowEventStore;
}
namespace netseer::detect {
class DetectService;
}
namespace netseer::sim {
class Simulator;
class ParallelSimulator;
}

namespace netseer::telemetry {

/// Fold one component's introspection counters into `registry`, keyed by
/// (subsystem, name, node). Counter collection is ADDITIVE and gauge
/// high-water collection is MAX-merging, so collecting several fresh
/// harness runs (one per workload, say) into one registry accumulates
/// totals instead of overwriting.

/// Subsystem "pdp": per-reason drops (incl. mmu.drops), per-queue
/// enqueue/drop/occupancy-peak, per-stage table hits, PFC generation,
/// port totals. Node = the switch's id.
void collect(Registry& registry, const pdp::Switch& sw);

/// Subsystem "pdp": per-resource-class chip utilization in basis points
/// (gauge, max-merged) and overflow counters — the number of times a
/// component pushed a resource class past 100% of the chip. The series
/// "resources.overflows" is always present so smoke runs can assert it
/// is zero. Node = the owning switch's id.
void collect(Registry& registry, const pdp::ResourceModel& model, util::NodeId node);

/// Subsystem "core": group-cache hit/miss/evict, ring-buffer (event
/// stack) high-water & overflow, CEBP recirculations, PCIe bytes,
/// switch-CPU batch sizes & FP elimination, reliable-channel
/// retransmits/acks, funnel byte accounting. Node = the switch's id.
void collect(Registry& registry, const core::NetSeerApp& app);

/// Subsystem "backend": segments/events ingested, duplicates removed,
/// reorder-window drops.
void collect(Registry& registry, const backend::Collector& collector);

/// Subsystem "backend": current store population (global gauge).
void collect(Registry& registry, const backend::EventStore& store);

/// Subsystem "store": the durable store's lifecycle counters — ingest
/// (events appended, batches flushed), WAL traffic (records/bytes/syncs,
/// files GC'd, injected append failures), segment lifecycle (sealed,
/// compactions, evicted), query-engine work (queries, segments
/// scanned/pruned, index hits, full scans, rows examined/matched) — plus
/// population gauges store.events / store.segments.
void collect(Registry& registry, const store::FlowEventStore& store);

/// Subsystem "detect": the anomaly-detection service — rows pumped,
/// subscription health (delivered/lagged, last LSN), per-engine window
/// lifecycle (closed/empty/late, active keys), and the alert pipeline
/// (raised/reopened/escalated/resolved/active). The series
/// "detect.alerts.active" and "detect.rows_lagged" are always present so
/// smoke runs can assert them.
void collect(Registry& registry, const detect::DetectService& service);

/// Subsystem "sim": events processed, virtual time, wall-clock cost per
/// simulated second (pass the wall time the caller measured), engine
/// throughput (sim.events_per_sec), Task heap-spill rate
/// (sim.alloc_per_event_ppm, parts per million of schedules), and packet
/// pool recycling (sim.pool.hit_rate_bps / sim.pool.slots).
void collect(Registry& registry, const sim::Simulator& sim, double wall_seconds);

/// Subsystem "parallel": aggregate events and throughput of a sharded
/// run (parallel.events_processed / events_per_sec), conservative windows
/// executed (parallel.windows), and per-shard series keyed by node =
/// shard index (parallel.shard.events / sends_cross / sends_local /
/// mailbox_stalls / sends_clamped). Call after run_until has returned —
/// shard state is only quiescent between runs.
void collect(Registry& registry, const sim::ParallelSimulator& sim, double wall_seconds);

}  // namespace netseer::telemetry
