#include "telemetry/collect.h"

#include <string>

#include "backend/collector.h"
#include "backend/event_store.h"
#include "core/netseer_app.h"
#include "packet/pool.h"
#include "pdp/resources.h"
#include "pdp/switch.h"
#include "detect/service.h"
#include "sim/parallel.h"
#include "sim/simulator.h"
#include "store/store.h"

namespace netseer::telemetry {

namespace {
constexpr std::string_view kPdp = "pdp";
constexpr std::string_view kCore = "core";
constexpr std::string_view kBackend = "backend";
constexpr std::string_view kStore = "store";
constexpr std::string_view kDetect = "detect";
constexpr std::string_view kSim = "sim";
constexpr std::string_view kParallel = "parallel";
}  // namespace

void collect(Registry& registry, const pdp::Switch& sw) {
  const util::NodeId node = sw.id();

  // Drops, by reason plus the headline MMU series.
  registry.counter(kPdp, "mmu.drops", node).add(sw.drops(pdp::DropReason::kCongestion));
  for (const auto reason :
       {pdp::DropReason::kRouteMiss, pdp::DropReason::kPortDown, pdp::DropReason::kAclDeny,
        pdp::DropReason::kTtlExpired, pdp::DropReason::kMtuExceeded,
        pdp::DropReason::kParserError, pdp::DropReason::kCongestion}) {
    const auto count = sw.drops(reason);
    if (count == 0) continue;
    registry.counter(kPdp, std::string("drops.") + pdp::to_string(reason), node).add(count);
  }
  registry.counter(kPdp, "hardware_discards", node).add(sw.hardware_discards());

  // Per-stage table hits.
  const auto& stages = sw.stages();
  registry.counter(kPdp, "stage.parsed", node).add(stages.parsed);
  registry.counter(kPdp, "stage.lpm_hits", node).add(stages.lpm_hits);
  registry.counter(kPdp, "stage.lpm_misses", node).add(stages.lpm_misses);
  registry.counter(kPdp, "stage.acl_evaluated", node).add(stages.acl_evaluated);
  registry.counter(kPdp, "stage.acl_denied", node).add(stages.acl_denied);
  registry.counter(kPdp, "stage.ecn_marked", node).add(stages.ecn_marked);

  // Per-queue-class counters (only classes that saw traffic).
  for (util::QueueId q = 0; q < util::kNumQueues; ++q) {
    const auto& qc = sw.queue_counters(q);
    if (qc.enqueues == 0 && qc.drops == 0) continue;
    const std::string prefix = "queue." + std::to_string(q);
    registry.counter(kPdp, prefix + ".enqueues", node).add(qc.enqueues);
    registry.counter(kPdp, prefix + ".drops", node).add(qc.drops);
    registry.gauge(kPdp, prefix + ".peak_bytes", node).update_max(qc.peak_bytes);
  }

  // Port totals (aggregated: per-port series would explode the snapshot).
  std::uint64_t rx_packets = 0, rx_bytes = 0, fcs = 0, egress_drops = 0;
  for (util::PortId p = 0; p < sw.config().num_ports; ++p) {
    const auto& c = sw.counters(p);
    rx_packets += c.rx_packets;
    rx_bytes += c.rx_bytes;
    fcs += c.rx_fcs_errors;
    egress_drops += c.egress_drops;
  }
  registry.counter(kPdp, "port.rx_packets", node).add(rx_packets);
  registry.counter(kPdp, "port.rx_bytes", node).add(rx_bytes);
  registry.counter(kPdp, "port.rx_fcs_errors", node).add(fcs);
  registry.counter(kPdp, "port.egress_drops", node).add(egress_drops);

  // PFC generation from the MMU's ingress accounting.
  const auto& mmu = sw.mmu();
  registry.counter(kPdp, "mmu.pfc_pauses", node).add(mmu.pauses_generated());
  registry.counter(kPdp, "mmu.pfc_resumes", node).add(mmu.resumes_generated());
  registry.gauge(kPdp, "mmu.ingress_peak_bytes", node).update_max(mmu.peak_ingress_bytes());
}

void collect(Registry& registry, const pdp::ResourceModel& model, util::NodeId node) {
  std::uint64_t overflow_total = 0;
  for (std::size_t i = 0; i < pdp::kNumResources; ++i) {
    const auto resource = static_cast<pdp::Resource>(i);
    const std::string name = pdp::to_string(resource);
    // Utilization in basis points of the chip, unclamped: 10000 = full.
    registry.gauge(kPdp, "resources.usage_bp." + name, node)
        .update_max(static_cast<std::int64_t>(model.raw_total(resource) * 10000.0));
    const auto overflows = model.overflows(resource);
    overflow_total += overflows;
    if (overflows > 0) {
      registry.counter(kPdp, "resources.overflows." + name, node).add(overflows);
    }
  }
  // Always emitted, so "zero overflows" is assertable from a snapshot.
  registry.counter(kPdp, "resources.overflows", node).add(overflow_total);
}

void collect(Registry& registry, const core::NetSeerApp& app) {
  const util::NodeId node = app.switch_id();

  // Group caches (drop/congestion/pause/spare folded together).
  std::uint64_t hits = 0, misses = 0, evictions = 0, offered = 0, reports = 0;
  for (const auto type : {core::EventType::kDrop, core::EventType::kCongestion,
                          core::EventType::kPause, core::EventType::kPathChange}) {
    const auto& cache = app.cache(type);
    hits += cache.hits();
    misses += cache.misses();
    evictions += cache.evictions();
    offered += cache.offered();
    reports += cache.reports();
  }
  registry.counter(kCore, "group_cache.hits", node).add(hits);
  registry.counter(kCore, "group_cache.misses", node).add(misses);
  registry.counter(kCore, "group_cache.evictions", node).add(evictions);
  registry.counter(kCore, "group_cache.offered", node).add(offered);
  registry.counter(kCore, "group_cache.reports", node).add(reports);

  // Event stack — the bounded ring of register stages CEBPs pop from.
  const auto& stack = app.stack();
  registry.counter(kCore, "ring_buffer.pushes", node).add(stack.pushes());
  registry.counter(kCore, "ring_buffer.overflows", node).add(stack.overflows());
  registry.gauge(kCore, "ring_buffer.high_water", node)
      .update_max(static_cast<std::int64_t>(stack.high_watermark()));

  // CEBP recirculation loop.
  const auto& batcher = app.batcher();
  registry.counter(kCore, "cebp.recirculations", node).add(batcher.recirculations());
  registry.counter(kCore, "cebp.batches", node).add(batcher.batches_flushed());
  registry.counter(kCore, "cebp.events_batched", node).add(batcher.events_batched());

  // PCIe channel to the switch CPU.
  const auto& pcie = app.pcie();
  registry.counter(kCore, "pcie.bytes", node).add(pcie.bytes_submitted());
  registry.counter(kCore, "pcie.batches_submitted", node).add(pcie.batches_submitted());
  registry.counter(kCore, "pcie.batches_delivered", node).add(pcie.batches_delivered());
  registry.gauge(kCore, "pcie.backlog_high_water", node)
      .update_max(static_cast<std::int64_t>(pcie.high_watermark()));

  // Switch CPU: FP elimination + batch-size distribution.
  const auto& cpu = app.cpu();
  registry.counter(kCore, "cpu.events_received", node).add(cpu.events_received());
  registry.counter(kCore, "cpu.events_forwarded", node).add(cpu.events_forwarded());
  registry.counter(kCore, "cpu.reports_submitted", node).add(cpu.reports_submitted());
  registry.counter(kCore, "cpu.fp_eliminated", node).add(cpu.fp().eliminated());
  registry.histogram(kCore, "cpu.batch_size", node).merge(cpu.batch_sizes());

  // Reliable channel to the backend (absent in pipeline-only setups).
  if (app.has_reporter()) {
    const auto& reporter = app.reporter();
    registry.counter(kCore, "reliable.submitted", node).add(reporter.submitted());
    registry.counter(kCore, "reliable.segments_sent", node).add(reporter.segments_sent());
    registry.counter(kCore, "reliable.retransmits", node).add(reporter.retransmits());
    registry.counter(kCore, "reliable.acks", node).add(reporter.acked());
  }

  // Funnel byte accounting (Fig. 13's numerators) + capacity misses.
  const auto& funnel = app.funnel();
  registry.counter(kCore, "funnel.traffic_bytes", node).add(funnel.traffic_bytes);
  registry.counter(kCore, "funnel.traffic_packets", node).add(funnel.traffic_packets);
  registry.counter(kCore, "funnel.event_packets", node).add(funnel.event_packets);
  registry.counter(kCore, "funnel.dedup_reports", node).add(funnel.dedup_reports);
  registry.counter(kCore, "funnel.report_bytes", node).add(funnel.report_bytes);
  registry.counter(kCore, "funnel.notify_bytes", node).add(funnel.notify_bytes);
  registry.counter(kCore, "missed_mmu_redirects", node).add(app.missed_mmu_redirects());
  registry.counter(kCore, "missed_internal_port", node).add(app.missed_internal_port());
}

void collect(Registry& registry, const backend::Collector& collector) {
  const util::NodeId node = collector.id();
  registry.counter(kBackend, "segments_received", node).add(collector.segments_received());
  registry.counter(kBackend, "duplicate_segments", node).add(collector.duplicate_segments());
  registry.counter(kBackend, "events_ingested", node).add(collector.events_stored());
  registry.counter(kBackend, "window_drops", node).add(collector.window_dropped_segments());
}

void collect(Registry& registry, const backend::EventStore& store) {
  registry.gauge(kBackend, "store.events").update_max(static_cast<std::int64_t>(store.size()));
}

void collect(Registry& registry, const store::FlowEventStore& flow_store) {
  const auto& s = flow_store.stats();
  registry.counter(kStore, "appended").add(s.appended);
  registry.counter(kStore, "batches_flushed").add(s.batches_flushed);
  registry.counter(kStore, "wal.records").add(s.wal_records);
  registry.counter(kStore, "wal.bytes").add(s.wal_bytes);
  registry.counter(kStore, "wal.syncs").add(s.wal_syncs);
  registry.counter(kStore, "wal.files_deleted").add(s.wal_files_deleted);
  registry.counter(kStore, "wal.append_failures").add(s.wal_append_failures);
  registry.counter(kStore, "group_commit.groups").add(s.groups_committed);
  registry.counter(kStore, "group_commit.batches").add(s.group_batches);
  registry.gauge(kStore, "group_commit.max_group_batches")
      .update_max(static_cast<std::int64_t>(s.max_group_batches));
  registry.counter(kStore, "group_commit.queue_waits").add(s.writer_queue_waits);
  registry.gauge(kStore, "durable_lsn")
      .update_max(static_cast<std::int64_t>(flow_store.durable_lsn()));
  registry.counter(kStore, "segments_sealed").add(s.segments_sealed);
  registry.counter(kStore, "compactions").add(s.compactions);
  registry.counter(kStore, "segments_compacted").add(s.segments_compacted);
  registry.counter(kStore, "segments_evicted").add(s.segments_evicted);
  registry.counter(kStore, "events_evicted").add(s.events_evicted);
  registry.counter(kStore, "query.queries").add(s.queries);
  registry.counter(kStore, "query.segments_scanned").add(s.segments_scanned);
  registry.counter(kStore, "query.segments_pruned").add(s.segments_pruned);
  registry.counter(kStore, "query.index_hits").add(s.index_hits);
  registry.counter(kStore, "query.full_segment_scans").add(s.full_segment_scans);
  registry.counter(kStore, "query.rows_examined").add(s.rows_examined);
  registry.counter(kStore, "query.rows_matched").add(s.rows_matched);
  registry.counter(kStore, "query.parallel_queries").add(s.parallel_queries);
  registry.counter(kStore, "query.parallel_tasks").add(s.parallel_tasks);
  registry.counter(kStore, "subscription.polls").add(s.subscription_polls);
  registry.counter(kStore, "subscription.rows").add(s.subscription_rows);
  registry.counter(kStore, "subscription.lagged_rows").add(s.subscription_lagged_rows);
  registry.gauge(kStore, "store.events")
      .update_max(static_cast<std::int64_t>(flow_store.size()));
  registry.gauge(kStore, "store.segments")
      .update_max(static_cast<std::int64_t>(flow_store.segment_count()));
}

void collect(Registry& registry, const detect::DetectService& service) {
  const auto& s = service.stats();
  registry.counter(kDetect, "rows").add(s.rows);
  registry.counter(kDetect, "pumps").add(s.pumps);
  registry.counter(kDetect, "checkpoints").add(s.checkpoints);
  registry.counter(kDetect, "rows_delivered").add(service.subscription().delivered());
  registry.counter(kDetect, "rows_lagged").add(service.subscription().lagged());
  registry.gauge(kDetect, "last_lsn")
      .update_max(static_cast<std::int64_t>(service.subscription().last_lsn()));
  registry.gauge(kDetect, "watermark_ns").update_max(service.watermark());

  std::uint64_t closed = 0;
  std::uint64_t empty = 0;
  std::uint64_t late = 0;
  std::uint64_t keys = 0;
  std::uint64_t recycled = 0;
  for (const auto& engine : service.engines()) {
    const auto& es = engine.stats();
    closed += es.windows_closed;
    empty += es.windows_empty;
    late += es.late_rows;
    keys += es.keys_active;
    recycled += es.keys_recycled;
  }
  registry.counter(kDetect, "windows_closed").add(closed);
  registry.counter(kDetect, "windows_empty").add(empty);
  registry.counter(kDetect, "rows_late").add(late);
  registry.counter(kDetect, "keys_recycled").add(recycled);
  registry.gauge(kDetect, "keys_active").update_max(static_cast<std::int64_t>(keys));

  const auto& a = service.alerts().stats();
  registry.counter(kDetect, "alerts.raised").add(a.raised);
  registry.counter(kDetect, "alerts.reopened").add(a.reopened);
  registry.counter(kDetect, "alerts.escalated").add(a.escalated);
  registry.counter(kDetect, "alerts.resolved").add(a.resolved);
  registry.gauge(kDetect, "alerts.active").update_max(static_cast<std::int64_t>(a.active));
}

void collect(Registry& registry, const sim::Simulator& sim, double wall_seconds) {
  registry.counter(kSim, "events_processed").add(sim.events_processed());
  registry.gauge(kSim, "virtual_time_ns").update_max(sim.now());
  registry.counter(kSim, "wall_time_us")
      .add(static_cast<std::uint64_t>(wall_seconds * 1e6));
  const double sim_seconds = static_cast<double>(sim.now()) / 1e9;
  if (sim_seconds > 0) {
    registry.gauge(kSim, "wall_us_per_sim_s")
        .update_max(static_cast<std::int64_t>(wall_seconds * 1e6 / sim_seconds));
  }
  if (wall_seconds > 0) {
    registry.gauge(kSim, "events_per_sec")
        .update_max(static_cast<std::int64_t>(static_cast<double>(sim.events_processed()) /
                                              wall_seconds));
  }
  // Task captures that spilled past the inline buffer, in parts per
  // million of schedules. Zero on the intended hot paths; a rising value
  // points at an oversized capture somewhere.
  if (sim.tasks_scheduled() > 0) {
    registry.gauge(kSim, "alloc_per_event_ppm")
        .update_max(static_cast<std::int64_t>(sim.task_heap_allocs() * 1'000'000 /
                                              sim.tasks_scheduled()));
  }
  const auto& pool = packet::Pool::local();
  if (pool.acquires() > 0) {
    // Basis points, like the pdp resource-utilization gauges.
    registry.gauge(kSim, "pool.hit_rate_bps")
        .update_max(static_cast<std::int64_t>(pool.reuses() * 10'000 / pool.acquires()));
    registry.gauge(kSim, "pool.slots")
        .update_max(static_cast<std::int64_t>(pool.slots()));
  }
}

void collect(Registry& registry, const sim::ParallelSimulator& sim, double wall_seconds) {
  const std::uint64_t events = sim.events_processed();
  registry.counter(kParallel, "events_processed").add(events);
  registry.counter(kParallel, "windows").add(sim.windows());
  registry.gauge(kParallel, "shards").update_max(static_cast<std::int64_t>(sim.shards()));
  registry.gauge(kParallel, "lookahead_ns").update_max(sim.lookahead());
  registry.gauge(kParallel, "virtual_time_ns").update_max(sim.now());
  registry.counter(kParallel, "wall_time_us")
      .add(static_cast<std::uint64_t>(wall_seconds * 1e6));
  if (wall_seconds > 0) {
    registry.gauge(kParallel, "events_per_sec")
        .update_max(static_cast<std::int64_t>(static_cast<double>(events) / wall_seconds));
  }
  for (std::uint32_t s = 0; s < sim.shards(); ++s) {
    const sim::ShardStats stats = sim.shard_stats(s);
    // Node = shard index: shards are the "nodes" of the parallel engine.
    const auto node = static_cast<util::NodeId>(s);
    registry.counter(kParallel, "shard.events", node).add(stats.events);
    registry.counter(kParallel, "shard.sends_cross", node).add(stats.sends_cross);
    registry.counter(kParallel, "shard.sends_local", node).add(stats.sends_local);
    registry.counter(kParallel, "shard.mailbox_stalls", node).add(stats.mailbox_stalls);
    registry.counter(kParallel, "shard.sends_clamped", node).add(stats.sends_clamped);
  }
}

}  // namespace netseer::telemetry
