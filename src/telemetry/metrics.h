#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/annotations.h"
#include "util/ids.h"
#include "util/stats.h"
#include "util/thread_annotations.h"

namespace netseer::telemetry {

/// Monotonic event count. Plain integer increments: safe for per-packet
/// hot paths once the reference is held.
class Counter {
 public:
  NETSEER_HOT void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time level that also remembers its all-time peak, so
/// high-water marks survive snapshotting after the level drains.
class Gauge {
 public:
  NETSEER_HOT void set(std::int64_t v) {
    value_ = v;
    if (v > peak_) peak_ = v;
  }
  NETSEER_HOT void add(std::int64_t delta) { set(value_ + delta); }
  /// Raise the peak (and level) only if `v` exceeds the current peak —
  /// the merge operation for sampled high-water marks.
  NETSEER_HOT void update_max(std::int64_t v) {
    if (v > value_) value_ = v;
    if (v > peak_) peak_ = v;
  }
  [[nodiscard]] std::int64_t value() const { return value_; }
  [[nodiscard]] std::int64_t peak() const { return peak_; }

 private:
  std::int64_t value_ = 0;
  std::int64_t peak_ = 0;
};

/// Log-bucketed distribution: bucket i counts samples in [2^(i-1), 2^i),
/// bucket 0 counts samples < 1. A util::Summary rides along for exact
/// count/mean/min/max. Fixed storage — no allocation after construction —
/// and mergeable, so components can record locally and fold into a
/// registry at snapshot time.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  NETSEER_HOT void record(double v) {
    summary_.add(v);
    ++counts_[bucket_of(v)];
  }

  void merge(const Histogram& other) {
    summary_.merge(other.summary_);
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  }

  [[nodiscard]] static std::size_t bucket_of(double v) {
    if (!(v >= 1.0)) return 0;  // also catches NaN
    const auto bucket = static_cast<std::size_t>(std::floor(std::log2(v))) + 1;
    return bucket < kBuckets ? bucket : kBuckets - 1;
  }

  /// Inclusive lower bound of bucket i (0 for the underflow bucket).
  [[nodiscard]] static double bucket_low(std::size_t i) {
    return i == 0 ? 0.0 : std::exp2(static_cast<double>(i - 1));
  }

  [[nodiscard]] const util::Summary& summary() const { return summary_; }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const { return counts_; }

 private:
  util::Summary summary_;
  std::array<std::uint64_t, kBuckets> counts_{};
};

/// Series address: (subsystem, name, node). node == kInvalidNode means a
/// process-global series (e.g. the simulator's event count).
struct MetricKey {
  std::string subsystem;
  std::string name;
  util::NodeId node = util::kInvalidNode;

  auto operator<=>(const MetricKey&) const = default;
};

/// The registry: owns every metric cell. Registration (first lookup of a
/// key) allocates under the registry mutex, so concurrent collectors can
/// share one registry; after that, callers hold references and mutate
/// their cells allocation- and lock-free. That makes cell MUTATION a
/// single-writer contract (the simulator is single-threaded, as is every
/// collector in this repo) while REGISTRATION and snapshotting are safe
/// from any thread.
class Registry {
 public:
  Registry() = default;
  /// Deep copy taken under the source's lock — MetricsSnapshot::capture
  /// copies a live registry by value.
  Registry(const Registry& other) : Registry() { *this = other; }
  Registry& operator=(const Registry& other) NETSEER_EXCLUDES(mu_) {
    if (this == &other) return *this;
    // Copy the source under its lock, then swap in under ours; never
    // hold both (no ordering deadlock on concurrent cross-assignment).
    std::map<MetricKey, Counter> counters;
    std::map<MetricKey, Gauge> gauges;
    std::map<MetricKey, Histogram> histograms;
    {
      util::MutexLock lock(other.mu_);
      counters = other.counters_;
      gauges = other.gauges_;
      histograms = other.histograms_;
    }
    util::MutexLock lock(mu_);
    counters_ = std::move(counters);
    gauges_ = std::move(gauges);
    histograms_ = std::move(histograms);
    return *this;
  }

  Counter& counter(std::string_view subsystem, std::string_view name,
                   util::NodeId node = util::kInvalidNode) NETSEER_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return counters_[key(subsystem, name, node)];
  }
  Gauge& gauge(std::string_view subsystem, std::string_view name,
               util::NodeId node = util::kInvalidNode) NETSEER_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return gauges_[key(subsystem, name, node)];
  }
  Histogram& histogram(std::string_view subsystem, std::string_view name,
                       util::NodeId node = util::kInvalidNode) NETSEER_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return histograms_[key(subsystem, name, node)];
  }

  /// Consistent copies of the series maps (std::map iterators stay valid
  /// across registration, but copying under the lock keeps readers
  /// ordered against in-flight registrations).
  [[nodiscard]] std::map<MetricKey, Counter> counters() const NETSEER_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return counters_;
  }
  [[nodiscard]] std::map<MetricKey, Gauge> gauges() const NETSEER_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return gauges_;
  }
  [[nodiscard]] std::map<MetricKey, Histogram> histograms() const NETSEER_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return histograms_;
  }

  [[nodiscard]] std::size_t size() const NETSEER_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Sum of one counter series over every node it is registered for.
  [[nodiscard]] std::uint64_t total(std::string_view subsystem, std::string_view name) const
      NETSEER_EXCLUDES(mu_);

  /// Fold `other` into this registry: counters add, gauges max-merge
  /// (levels and peaks), histograms merge. The parallel engine's
  /// per-shard registries are combined with this at snapshot time, after
  /// the shard threads have joined. Takes `other` by const ref but copies
  /// it first, so the two-lock ordering concern of operator= applies
  /// identically (never holds both locks).
  void merge_from(const Registry& other) NETSEER_EXCLUDES(mu_);

  void clear() NETSEER_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }

 private:
  static MetricKey key(std::string_view subsystem, std::string_view name, util::NodeId node) {
    return MetricKey{std::string(subsystem), std::string(name), node};
  }

  mutable util::Mutex mu_;
  std::map<MetricKey, Counter> counters_ NETSEER_GUARDED_BY(mu_);
  std::map<MetricKey, Gauge> gauges_ NETSEER_GUARDED_BY(mu_);
  std::map<MetricKey, Histogram> histograms_ NETSEER_GUARDED_BY(mu_);
};

}  // namespace netseer::telemetry
