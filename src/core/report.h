#pragma once

#include <cstdint>

#include "core/event.h"
#include "net/mgmt.h"

namespace netseer::core {

/// Message exchanged between a switch CPU and the backend over the
/// management network. Data segments carry an event batch; acks carry
/// the receiver's cumulative sequence.
struct ReportMsg {
  enum class Kind : std::uint8_t { kData, kAck };
  Kind kind = Kind::kData;
  std::uint32_t seq = 0;  // data: segment seq. ack: cumulative (next expected).
  EventBatch batch;       // kData only

  [[nodiscard]] std::size_t wire_size() const {
    // seq + kind + TCP/IP-ish framing overhead on the management network.
    return kind == Kind::kData ? batch.wire_size() + 40 : 40;
  }
};

using ReportChannel = net::MgmtChannel<ReportMsg>;

}  // namespace netseer::core
