#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "core/event.h"

namespace netseer::core {

/// ACL drops are aggregated per *rule*, not per flow (§3.4): most ACL
/// drops are intentional, and one misconfigured rule can kill thousands
/// of flows — per-flow events would flood the channel while the rule id
/// already identifies the victims (its match fields describe the flows).
class AclDropAggregator {
 public:
  using Emit = std::function<void(const FlowEvent&)>;

  explicit AclDropAggregator(std::uint32_t report_interval = 64)
      : report_interval_(report_interval) {}

  /// Account one ACL-dropped packet. Emits an event on the first hit of
  /// a rule and every report_interval hits after that. The sample flow
  /// rides along so operators can see one concrete victim.
  void offer(std::uint16_t rule_id, const FlowEvent& sample, const Emit& emit) {
    auto& state = rules_[rule_id];
    ++state.count;
    ++offered_;
    if (state.count != 1 && state.count < state.next_report) return;
    FlowEvent event = sample;
    event.type = EventType::kAclDrop;
    event.acl_rule_id = rule_id;
    const std::uint64_t delta = state.count - state.reported;
    event.counter = delta > 0xffff ? 0xffff : static_cast<std::uint16_t>(delta);
    state.reported = state.count;
    state.next_report = state.count + report_interval_;
    ++reports_;
    emit(event);
  }

  [[nodiscard]] std::uint64_t rule_hits(std::uint16_t rule_id) const {
    const auto it = rules_.find(rule_id);
    return it == rules_.end() ? 0 : it->second.count;
  }
  [[nodiscard]] std::uint64_t offered() const { return offered_; }
  [[nodiscard]] std::uint64_t reports() const { return reports_; }

 private:
  struct RuleState {
    std::uint64_t count = 0;
    std::uint64_t reported = 0;
    std::uint64_t next_report = 1;
  };
  std::uint32_t report_interval_;
  std::unordered_map<std::uint16_t, RuleState> rules_;
  std::uint64_t offered_ = 0;
  std::uint64_t reports_ = 0;
};

}  // namespace netseer::core
