#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "core/switch_cpu.h"
#include "sim/simulator.h"
#include "telemetry/metrics.h"

namespace netseer::core {

/// The switch-CPU stage of the NetSeer pipeline (§3.6): consumes batches
/// delivered over PCIe, runs false-positive elimination (with the
/// pipeline's pre-computed hash), re-batches surviving events, and hands
/// them to the submit callback (normally a ReliableReporter). Per-event
/// processing cost is modeled as simulated service time; the real
/// data-structure throughput is measured in bench_cpu_micro.
class SwitchCpu {
 public:
  using Submit = std::function<void(EventBatch&&)>;

  SwitchCpu(sim::Simulator& sim, util::NodeId switch_id, const SwitchCpuConfig& config,
            Submit submit)
      : sim_(sim), switch_id_(switch_id), config_(config), fp_(config.fp),
        submit_(std::move(submit)) {}

  /// Batch arrival from the PCIe channel.
  void on_batch(EventBatch&& batch) {
    events_received_ += batch.events.size();
    batch_sizes_.record(static_cast<double>(batch.events.size()));
    const auto service =
        config_.per_event_cost * static_cast<std::int64_t>(batch.events.size());
    busy_until_ = std::max(busy_until_, sim_.now()) + service;
    (void)sim_.schedule_at(busy_until_, [this, batch = std::move(batch)]() mutable {
      process(std::move(batch));
    });
  }

  /// Push out any partially filled report (end of experiment).
  void flush() {
    if (!out_buffer_.empty()) emit_report();
  }

  [[nodiscard]] const FpEliminator& fp() const { return fp_; }
  /// Distribution of PCIe batch sizes this CPU consumed.
  [[nodiscard]] const telemetry::Histogram& batch_sizes() const { return batch_sizes_; }
  [[nodiscard]] std::uint64_t events_received() const { return events_received_; }
  [[nodiscard]] std::uint64_t events_forwarded() const { return events_forwarded_; }
  [[nodiscard]] std::uint64_t reports_submitted() const { return reports_; }

 private:
  void process(EventBatch&& batch) {
    for (auto& event : batch.events) {
      event.switch_id = switch_id_;
      if (!fp_.admit(event, sim_.now())) continue;
      out_buffer_.push_back(event);
      ++events_forwarded_;
      if (static_cast<int>(out_buffer_.size()) >= config_.report_batch) emit_report();
    }
    if (!out_buffer_.empty() && !flush_timer_.active()) {
      flush_timer_ = sim_.schedule_after(util::milliseconds(1), [this] {
        if (!out_buffer_.empty()) emit_report();
      });
    }
  }

  void emit_report() {
    EventBatch report;
    report.switch_id = switch_id_;
    report.seq = next_report_seq_++;
    report.emitted_at = sim_.now();
    report.events = std::move(out_buffer_);
    out_buffer_.clear();
    ++reports_;
    submit_(std::move(report));
  }

  sim::Simulator& sim_;
  util::NodeId switch_id_;
  SwitchCpuConfig config_;
  FpEliminator fp_;
  Submit submit_;
  util::SimTime busy_until_ = 0;
  std::vector<FlowEvent> out_buffer_;
  std::uint32_t next_report_seq_ = 0;
  sim::TaskHandle flush_timer_;
  telemetry::Histogram batch_sizes_;
  std::uint64_t events_received_ = 0;
  std::uint64_t events_forwarded_ = 0;
  std::uint64_t reports_ = 0;
};

}  // namespace netseer::core
