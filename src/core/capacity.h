#pragma once

#include <cstddef>
#include <cstdint>

#include "core/cebp.h"
#include "core/detect/interswitch.h"
#include "util/rate.h"
#include "util/time.h"

namespace netseer::core::capacity {

/// Steady-state CEBP batching throughput in events/second (Fig. 12).
/// Each CEBP pops one event per recirculation; flushing (every
/// batch_size pops) costs one flush_latency during which that CEBP
/// collects nothing — so throughput rises with batch size toward
/// num_cebps / recirc_latency.
[[nodiscard]] double cebp_throughput_eps(const CebpConfig& config, int batch_size);

/// The same capacity expressed as report bandwidth in Gb/s (24 B events
/// plus amortized batch header).
[[nodiscard]] double cebp_throughput_gbps(const CebpConfig& config, int batch_size);

/// Fig. 15(a): minimal ring-buffer slots per port so that, after a
/// single packet drop, the dropped packet's slot still holds its flow by
/// the time the downstream's loss notification arrives. While the
/// notification is in flight (round trip of the link plus the downstream
/// detection turnaround), subsequent packets of `pkt_bytes` keep
/// overwriting the ring at line rate.
[[nodiscard]] std::size_t min_ring_slots(util::BitRate link_rate,
                                         util::SimDuration notify_rtt,
                                         std::uint32_t pkt_bytes);

/// Slots needed to survive `consecutive_drops` back-to-back losses: the
/// dropped packets themselves plus the notification-flight window.
[[nodiscard]] std::size_t slots_for_consecutive_drops(int consecutive_drops,
                                                      util::BitRate link_rate,
                                                      util::SimDuration notify_rtt,
                                                      std::uint32_t pkt_bytes);

/// Fig. 15(b): total SRAM for `ports` ring buffers of `slots` slots.
[[nodiscard]] std::size_t ring_sram_bytes(int ports, std::size_t slots);

}  // namespace netseer::core::capacity
