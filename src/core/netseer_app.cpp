#include "core/netseer_app.h"

namespace netseer::core {

namespace {
std::uint8_t port8(util::PortId port) {
  return port == util::kInvalidPort ? 0xff : static_cast<std::uint8_t>(port & 0xff);
}
}  // namespace

packet::FlowKey canonical_flow(const packet::FlowKey& flow, FlowIdMode mode) {
  packet::FlowKey key = flow;
  switch (mode) {
    case FlowIdMode::k5Tuple:
      break;
    case FlowIdMode::kHostPair:
      key.proto = 0;
      key.sport = 0;
      key.dport = 0;
      break;
    case FlowIdMode::kDstOnly:
      key.src = packet::Ipv4Addr{};
      key.proto = 0;
      key.sport = 0;
      key.dport = 0;
      break;
  }
  return key;
}

NetSeerApp::NetSeerApp(pdp::Switch& sw, const NetSeerConfig& config, ReportChannel* channel,
                       util::NodeId backend)
    : sw_(sw), config_(config), path_(config.path_change), acl_(config.acl_report_interval),
      internal_port_(config.internal_port_rate, /*burst=*/256 * 1024),
      mmu_redirect_(config.mmu_redirect_rate, /*burst=*/256 * 1024),
      caches_{GroupCache(config.group_cache), GroupCache(config.group_cache),
              GroupCache(config.group_cache), GroupCache(config.group_cache)},
      stack_(config.event_stack_capacity) {
  auto& sim = sw_.simulator();

  drain_scheduled_.assign(sw_.config().num_ports, false);
  for (util::PortId p = 0; p < sw_.config().num_ports; ++p) {
    tx_.push_back(std::make_unique<InterSwitchTx>(config_.interswitch));
    rx_.push_back(std::make_unique<InterSwitchRx>(config_.interswitch));
  }

  if (channel != nullptr && backend != util::kInvalidNode) {
    reporter_ = std::make_unique<ReliableReporter>(sim, *channel, sw_.id(), backend,
                                                   config_.reporter);
    channel->register_endpoint(sw_.id(), [this](util::NodeId, const ReportMsg& msg) {
      reporter_->on_message(msg);
    });
  }

  cpu_ = std::make_unique<SwitchCpu>(sim, sw_.id(), config_.cpu, [this](EventBatch&& batch) {
    funnel_.cpu_forwarded_events += batch.events.size();
    funnel_.report_bytes += batch.wire_size() + 40;  // management framing
    if (reporter_) reporter_->submit(std::move(batch));
  });

  pcie_ = std::make_unique<PcieChannel>(sim, config_.pcie, [this](EventBatch&& batch) {
    cpu_->on_batch(std::move(batch));
  });

  batcher_ = std::make_unique<CebpBatcher>(sim, sw_.id(), stack_, config_.cebp,
                                           [this](EventBatch&& batch) {
                                             funnel_.extracted_bytes += EventBatch::kHeaderSize;
                                             pcie_->submit(std::move(batch));
                                           });

  sw_.add_agent(this);
}

bool NetSeerApp::on_ingress(pdp::Switch& sw, packet::Packet& pkt, pdp::PipelineContext& ctx) {
  const util::PortId port = ctx.ingress_port;

  // Inter-switch RX: strip the sequence shim, detect gaps (§3.3 step 3).
  if (config_.enable_interswitch && port < rx_.size()) {
    if (const auto gap = rx_[port]->on_rx(pkt)) {
      send_loss_notifications(sw, port, *gap);
    }
  }

  // Loss notifications from the downstream terminate here (§3.3 step 5):
  // the TX module of the port they arrived on owns the ring buffer for
  // that link.
  if (pkt.kind == packet::PacketKind::kLossNotify) {
    if (const auto* payload = dynamic_cast<const LossNotifyPayload*>(pkt.control.get())) {
      if (port < tx_.size()) {
        tx_[port]->on_notification(payload->start(), payload->end(), link_loss_emitter(port));
        // Subsequent traffic normally triggers the remaining lookups; if
        // the link goes quiet, the switch CPU drains them (slow path).
        schedule_idle_drain(port);
      }
    }
    return false;  // consumed
  }

  funnel_.traffic_bytes += pkt.wire_bytes();
  ++funnel_.traffic_packets;
  return true;
}

void NetSeerApp::on_pipeline_drop(pdp::Switch& sw, const packet::Packet& pkt,
                                  const pdp::PipelineContext& ctx) {
  (void)sw;
  // Ingress-pipeline drop events ride the internal port (§4 capacity).
  if (!consume_internal_budget(pkt.wire_bytes())) {
    ++missed_internal_;
    return;
  }
  FlowEvent ev = make_event(EventType::kDrop, pkt.flow(), sw_.id(), sw_.simulator().now());
  ev.ingress_port = port8(ctx.ingress_port);
  ev.egress_port = port8(ctx.egress_port);
  ev.drop_code = static_cast<std::uint8_t>(ctx.drop);

  if (ctx.drop == pdp::DropReason::kAclDeny) {
    if (!monitored(ev.flow)) {
      ++filtered_events_;
      return;
    }
    // Rule-granularity aggregation (§3.4).
    ++funnel_.event_packets;
    ++funnel_.eligible_event_packets;
    funnel_.event_packet_bytes += pkt.wire_bytes();
    acl_.offer(ctx.acl_rule_id, ev, [this](const FlowEvent& out) {
      ++funnel_.dedup_reports;
      ++funnel_.eligible_reports;
      extract(out);
    });
    return;
  }
  detect(ev, pkt.wire_bytes());
}

void NetSeerApp::on_mmu_drop(pdp::Switch& sw, const packet::Packet& pkt,
                             const pdp::PipelineContext& ctx) {
  (void)sw;
  // The MMU can only redirect so much drop traffic to the internal port
  // (§4: ~40 Gb/s); beyond that, drops go unrecorded — and counted.
  if (!mmu_redirect_.try_consume(sw_.simulator().now(), pkt.wire_bytes())) {
    ++missed_mmu_;
    return;
  }
  if (!consume_internal_budget(pkt.wire_bytes())) {
    ++missed_internal_;
    return;
  }
  FlowEvent ev = make_event(EventType::kDrop, pkt.flow(), sw_.id(), sw_.simulator().now());
  ev.ingress_port = port8(ctx.ingress_port);
  ev.egress_port = port8(ctx.egress_port);
  ev.queue = ctx.queue;
  ev.drop_code = static_cast<std::uint8_t>(pdp::DropReason::kCongestion);
  detect(ev, pkt.wire_bytes());
}

void NetSeerApp::on_enqueue(pdp::Switch& sw, const packet::Packet& pkt,
                            const pdp::PipelineContext& ctx, bool queue_paused) {
  (void)sw;
  if (!queue_paused || !pkt.is_ipv4()) return;
  if (!consume_internal_budget(pkt.wire_bytes())) {
    ++missed_internal_;
    return;
  }
  FlowEvent ev = make_event(EventType::kPause, pkt.flow(), sw_.id(), sw_.simulator().now());
  ev.egress_port = port8(ctx.egress_port);
  ev.queue = ctx.queue;
  detect(ev, pkt.wire_bytes());
}

void NetSeerApp::on_egress(pdp::Switch& sw, packet::Packet& pkt, const pdp::EgressInfo& info) {
  (void)sw;
  const auto now = sw_.simulator().now();

  if (pkt.is_ipv4() && pkt.kind == packet::PacketKind::kData) {
    // Congestion: queuing delay beyond threshold (§3.3), at line rate.
    if (info.queue_delay > config_.congestion_threshold) {
      FlowEvent ev = make_event(EventType::kCongestion, pkt.flow(), sw_.id(), now);
      ev.egress_port = port8(info.egress_port);
      ev.queue = info.queue;
      ev.queue_latency_us = to_latency_us(info.queue_delay);
      detect(ev, pkt.wire_bytes());
    }

    // Path change: flow-level by nature, bypasses group caching (§3.4).
    // Partial deployment: unmonitored flows are not tracked at all,
    // saving the flow-table entries too.
    const auto path_key = canonical_flow(pkt.flow(), config_.flow_id_mode);
    const auto obs = monitored(pkt.flow())
                         ? path_.observe(path_key, info.ingress_port, info.egress_port, now)
                         : PathChangeDetector::Observation::kKnownPath;
    if (obs != PathChangeDetector::Observation::kKnownPath) {
      FlowEvent ev = make_event(EventType::kPathChange, path_key, sw_.id(), now);
      ev.ingress_port = port8(info.ingress_port);
      ev.egress_port = port8(info.egress_port);
      ++funnel_.event_packets;
      funnel_.event_packet_bytes += pkt.wire_bytes();
      ++funnel_.dedup_reports;
      extract(ev);
    }
  }

  // Inter-switch TX: number and record every departing frame (§3.3
  // steps 1-2), and let it trigger one pending ring-buffer lookup.
  if (config_.enable_interswitch && info.egress_port < tx_.size()) {
    const util::PortId port = info.egress_port;
    tx_[port]->on_tx(pkt, [&](const packet::FlowKey& flow, std::uint32_t) {
      FlowEvent ev = make_event(EventType::kDrop, flow, sw_.id(), now);
      ev.egress_port = port8(port);
      ev.drop_code = static_cast<std::uint8_t>(pdp::DropReason::kLinkLoss);
      detect(ev, 64);
    });
    funnel_.shim_bytes += packet::kSeqTagBytes;
  }
}

InterSwitchTx::EmitDrop NetSeerApp::link_loss_emitter(util::PortId port) {
  return [this, port](const packet::FlowKey& flow, std::uint32_t) {
    FlowEvent ev = make_event(EventType::kDrop, flow, sw_.id(), sw_.simulator().now());
    ev.egress_port = port8(port);
    ev.drop_code = static_cast<std::uint8_t>(pdp::DropReason::kLinkLoss);
    detect(ev, 64);
  };
}

void NetSeerApp::schedule_idle_drain(util::PortId port) {
  if (drain_scheduled_[port]) return;
  drain_scheduled_[port] = true;
  (void)sw_.simulator().schedule_after(util::milliseconds(1), [this, port] {
    drain_scheduled_[port] = false;
    if (!tx_[port]->has_pending()) return;
    tx_[port]->drain(64, link_loss_emitter(port));
    if (tx_[port]->has_pending()) schedule_idle_drain(port);
  });
}

bool NetSeerApp::monitored(const packet::FlowKey& flow) const {
  if (config_.monitored_prefixes.empty()) return true;
  for (const auto& prefix : config_.monitored_prefixes) {
    if (prefix.contains(flow.src) || prefix.contains(flow.dst)) return true;
  }
  return false;
}

void NetSeerApp::detect(const FlowEvent& event, std::uint32_t trigger_bytes) {
  if (!monitored(event.flow)) {
    ++filtered_events_;
    return;
  }
  FlowEvent keyed = event;
  if (config_.flow_id_mode != FlowIdMode::k5Tuple) {
    keyed.flow = canonical_flow(event.flow, config_.flow_id_mode);
    keyed.flow_hash = keyed.flow.crc32();
  }
  ++funnel_.event_packets;
  ++funnel_.eligible_event_packets;
  funnel_.event_packet_bytes += trigger_bytes;
  caches_[cache_index(keyed.type)].offer(keyed, [this](const FlowEvent& out) {
    ++funnel_.dedup_reports;
    ++funnel_.eligible_reports;
    extract(out);
  });
}

void NetSeerApp::extract(const FlowEvent& event) {
  funnel_.extracted_bytes += FlowEvent::kWireSize;
  if (stack_.push(event)) batcher_->notify();
}

void NetSeerApp::send_loss_notifications(pdp::Switch& sw, util::PortId port,
                                         InterSwitchRx::Gap gap) {
  // Three redundant copies on the high-priority queue (§3.3 step 4).
  for (int copy = 0; copy < config_.interswitch.notify_copies; ++copy) {
    auto pkt = make_loss_notification(gap.start, gap.end, static_cast<std::uint8_t>(copy));
    funnel_.notify_bytes += pkt.wire_bytes();
    sw.inject(std::move(pkt), port, /*queue=*/7);
  }
}

bool NetSeerApp::consume_internal_budget(std::uint32_t bytes) {
  return internal_port_.try_consume(sw_.simulator().now(), bytes);
}

void NetSeerApp::flush() {
  for (auto& cache : caches_) {
    cache.flush([this](const FlowEvent& out) {
      ++funnel_.dedup_reports;
      ++funnel_.eligible_reports;
      extract(out);
    });
  }
  // Teardown path: drain the stack synchronously rather than waiting for
  // CEBP circulations, so one flush() + simulator run() delivers
  // everything.
  EventBatch batch;
  batch.switch_id = sw_.id();
  batch.emitted_at = sw_.simulator().now();
  while (auto event = stack_.pop()) {
    batch.events.push_back(*event);
    if (static_cast<int>(batch.events.size()) >= config_.cebp.batch_size) {
      funnel_.extracted_bytes += EventBatch::kHeaderSize;
      pcie_->submit(std::move(batch));
      batch = EventBatch{};
      batch.switch_id = sw_.id();
      batch.emitted_at = sw_.simulator().now();
    }
  }
  if (!batch.events.empty()) {
    funnel_.extracted_bytes += EventBatch::kHeaderSize;
    pcie_->submit(std::move(batch));
  }
  batcher_->flush_all();
  cpu_->flush();
}

}  // namespace netseer::core
