#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "core/event.h"
#include "sim/simulator.h"
#include "util/rate.h"

namespace netseer::core {

struct PcieConfig {
  /// Physical channel limit between pipeline and CPU (§4: ~18 Gb/s).
  util::BitRate phys_bandwidth = util::BitRate::gbps(18);
  /// Per batch-packet host cost (descriptor + doorbell + ring handling),
  /// paid by one core.
  util::SimDuration per_packet_cost = util::nanoseconds(150);
  /// Per-event copy/processing cost on the host side, per core.
  util::SimDuration per_event_cost = util::nanoseconds(20);
  /// Cores servicing the DMA rings (Fig. 14a: 1 vs 2).
  int cpu_cores = 2;
};

/// The PCIe channel between the pipeline and the switch CPU: batches
/// queue, are serviced at the modeled rate, and are delivered to the
/// consumer. The service-time model is what the Fig. 14(a) capacity
/// sweep interrogates: small batches are per-packet-cost bound, large
/// batches approach the physical bandwidth.
class PcieChannel {
 public:
  using Deliver = std::function<void(EventBatch&&)>;

  PcieChannel(sim::Simulator& sim, const PcieConfig& config, Deliver deliver)
      : sim_(sim), config_(config), deliver_(std::move(deliver)) {}

  void submit(EventBatch&& batch) {
    bytes_submitted_ += batch.wire_size();
    ++batches_submitted_;
    queue_.push_back(std::move(batch));
    if (queue_.size() > high_watermark_) high_watermark_ = queue_.size();
    maybe_service();
  }

  /// Modeled service time for one batch of `events` events.
  [[nodiscard]] static util::SimDuration service_time(const PcieConfig& config,
                                                      std::size_t events) {
    const auto bytes =
        static_cast<std::int64_t>(EventBatch::kHeaderSize + events * FlowEvent::kWireSize);
    const util::SimDuration wire = config.phys_bandwidth.serialization_delay(bytes);
    const util::SimDuration host =
        (config.per_packet_cost +
         config.per_event_cost * static_cast<std::int64_t>(events)) /
        (config.cpu_cores > 0 ? config.cpu_cores : 1);
    return wire > host ? wire : host;
  }

  /// Steady-state throughput of the model in events/second for a given
  /// batch size (the Fig. 14a curve).
  [[nodiscard]] static double throughput_eps(const PcieConfig& config, std::size_t batch_size) {
    const auto t = service_time(config, batch_size);
    if (t <= 0) return 0.0;
    return static_cast<double>(batch_size) * 1e9 / static_cast<double>(t);
  }

  [[nodiscard]] std::uint64_t batches_submitted() const { return batches_submitted_; }
  [[nodiscard]] std::uint64_t batches_delivered() const { return batches_delivered_; }
  [[nodiscard]] std::uint64_t bytes_submitted() const { return bytes_submitted_; }
  [[nodiscard]] std::size_t backlog() const { return queue_.size(); }
  [[nodiscard]] std::size_t high_watermark() const { return high_watermark_; }

 private:
  void maybe_service() {
    if (busy_ || queue_.empty()) return;
    busy_ = true;
    EventBatch batch = std::move(queue_.front());
    queue_.pop_front();
    const auto t = service_time(config_, batch.events.size());
    (void)sim_.schedule_after(t, [this, batch = std::move(batch)]() mutable {
      busy_ = false;
      ++batches_delivered_;
      deliver_(std::move(batch));
      maybe_service();
    });
  }

  sim::Simulator& sim_;
  PcieConfig config_;
  Deliver deliver_;
  std::deque<EventBatch> queue_;
  bool busy_ = false;
  std::uint64_t batches_submitted_ = 0;
  std::uint64_t batches_delivered_ = 0;
  std::uint64_t bytes_submitted_ = 0;
  std::size_t high_watermark_ = 0;
};

}  // namespace netseer::core
