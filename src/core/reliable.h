#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "core/report.h"
#include "sim/simulator.h"
#include "util/rate.h"

namespace netseer::core {

struct ReliableReporterConfig {
  std::uint32_t window = 32;                      // outstanding segments
  util::SimDuration rto = util::milliseconds(10); // retransmission timeout
  util::BitRate pacing_rate = util::BitRate::mbps(200);
  std::int64_t pacing_burst = 64 * 1024;
};

/// Reliable, paced delivery of event batches from a switch CPU to the
/// backend — the role TCP plays in the paper (§3.6 "pacing and reliable
/// transmission"). Sequence numbers, a send window, cumulative acks, and
/// timeout retransmission over the lossy management datagram channel.
class ReliableReporter {
 public:
  ReliableReporter(sim::Simulator& sim, ReportChannel& channel, util::NodeId self,
                   util::NodeId backend, const ReliableReporterConfig& config = {})
      : sim_(sim), channel_(channel), self_(self), backend_(backend), config_(config),
        pacer_(config.pacing_rate, config.pacing_burst) {}

  /// Queue a batch for delivery.
  void submit(EventBatch&& batch) {
    Segment seg;
    seg.seq = next_seq_++;
    seg.batch = std::move(batch);
    pending_.push_back(std::move(seg));
    ++submitted_;
    pump();
  }

  /// Wire this to the management-channel endpoint for `self`.
  void on_message(const ReportMsg& msg) {
    if (msg.kind != ReportMsg::Kind::kAck) return;
    // Cumulative ack: everything below msg.seq is delivered.
    while (!inflight_.empty() && inflight_.begin()->first < msg.seq) {
      inflight_.erase(inflight_.begin());
      ++acked_;
    }
    pump();
  }

  [[nodiscard]] std::uint64_t submitted() const { return submitted_; }
  [[nodiscard]] std::uint64_t segments_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::uint64_t acked() const { return acked_; }
  [[nodiscard]] std::size_t backlog() const { return pending_.size() + inflight_.size(); }
  [[nodiscard]] bool idle() const { return pending_.empty() && inflight_.empty(); }

 private:
  struct Segment {
    std::uint32_t seq = 0;
    EventBatch batch;
  };

  void pump() {
    while (!pending_.empty() && inflight_.size() < config_.window) {
      Segment seg = std::move(pending_.front());
      pending_.pop_front();
      const std::uint32_t seq = seg.seq;
      inflight_.emplace(seq, std::move(seg));
      transmit(seq, /*retransmit=*/false);
    }
  }

  void transmit(std::uint32_t seq, bool retransmit) {
    const auto it = inflight_.find(seq);
    if (it == inflight_.end()) return;  // already acked

    ReportMsg msg;
    msg.kind = ReportMsg::Kind::kData;
    msg.seq = seq;
    msg.batch = it->second.batch;
    const auto bytes = static_cast<std::int64_t>(msg.wire_size());

    // Pacing: delay the send until the token bucket admits it.
    const util::SimTime ready = pacer_.time_available(sim_.now(), bytes);
    (void)sim_.schedule_at(ready, [this, seq, bytes] {
      const auto again = inflight_.find(seq);
      if (again == inflight_.end()) return;
      (void)pacer_.try_consume(sim_.now(), bytes);
      ReportMsg out;
      out.kind = ReportMsg::Kind::kData;
      out.seq = seq;
      out.batch = again->second.batch;
      channel_.send(self_, backend_, std::move(out));
      ++sent_;
      arm_timer(seq);
    });
    if (retransmit) ++retransmits_;
  }

  void arm_timer(std::uint32_t seq) {
    (void)sim_.schedule_after(config_.rto, [this, seq] {
      if (inflight_.contains(seq)) transmit(seq, /*retransmit=*/true);
    });
  }

  sim::Simulator& sim_;
  ReportChannel& channel_;
  util::NodeId self_;
  util::NodeId backend_;
  ReliableReporterConfig config_;
  util::TokenBucket pacer_;
  std::uint32_t next_seq_ = 0;
  std::deque<Segment> pending_;
  std::map<std::uint32_t, Segment> inflight_;
  std::uint64_t submitted_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t acked_ = 0;
};

}  // namespace netseer::core
