#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "core/event.h"
#include "util/hash.h"
#include "util/rate.h"
#include "util/time.h"

namespace netseer::core {

struct FpEliminatorConfig {
  /// Two reports of the same flow event within this window are treated
  /// as duplicates (hash-collision ping-pong in the group cache).
  util::SimDuration window = util::milliseconds(50);
  /// Use the hash the pipeline pre-computed (§3.6). Turning this off
  /// recomputes the hash on the CPU — the 2.5x capacity ablation.
  bool use_precomputed_hash = true;
  /// Entries are pruned once the map exceeds this (stale-first).
  std::size_t max_entries = 1 << 20;
};

/// Switch-CPU false-positive elimination (§3.6): a hash map keyed by the
/// flow-event identity removes duplicate *initial* reports caused by
/// group-cache evictions, while counter reports (counter > 1) pass
/// through. This is real, benchmarked code — Fig. 14(b) measures its
/// throughput against map population.
class FpEliminator {
 public:
  explicit FpEliminator(const FpEliminatorConfig& config) : config_(config) {
    map_.max_load_factor(0.7f);
  }

  /// Returns true when the event should be forwarded to the backend.
  bool admit(const FlowEvent& event, util::SimTime now) {
    ++processed_;
    const std::uint64_t key = map_key(event);
    auto [it, inserted] = map_.try_emplace(key, Entry{now, event.counter});
    if (inserted) {
      maybe_prune(now);
      return true;
    }
    Entry& entry = it->second;
    const bool stale = entry.last_seen + config_.window < now;
    const bool counter_report = event.counter > 1;
    entry.last_seen = now;
    if (stale || counter_report) return true;
    ++eliminated_;
    return false;
  }

  [[nodiscard]] std::uint64_t processed() const { return processed_; }
  [[nodiscard]] std::uint64_t eliminated() const { return eliminated_; }
  [[nodiscard]] std::size_t map_size() const { return map_.size(); }
  [[nodiscard]] const FpEliminatorConfig& config() const { return config_; }

  void clear() { map_.clear(); }

 private:
  struct Entry {
    util::SimTime last_seen;
    std::uint16_t last_counter;
  };
  /// Identity hasher: keys are already well-mixed hashes.
  struct IdentityHash {
    std::size_t operator()(std::uint64_t key) const noexcept { return key; }
  };

  [[nodiscard]] std::uint64_t map_key(const FlowEvent& event) const {
    std::uint32_t flow_hash = event.flow_hash;
    if (!config_.use_precomputed_hash) {
      // Ablation: recompute the flow hash on the CPU per event instead
      // of reading the value the pipeline attached (§3.6).
      const auto packed = event.flow.packed();
      flow_hash = util::crc32(packed);
    }
    // Event identity = flow + type + detail (ports/code/queue/rule).
    const std::uint64_t typed =
        (std::uint64_t{flow_hash} << 32) |
        (static_cast<std::uint64_t>(event.type) << 24) | event.detail_word();
    return util::mix64(typed);
  }

  void maybe_prune(util::SimTime now) {
    if (map_.size() <= config_.max_entries) return;
    for (auto it = map_.begin(); it != map_.end();) {
      if (it->second.last_seen + config_.window < now) {
        it = map_.erase(it);
      } else {
        ++it;
      }
    }
  }

  FpEliminatorConfig config_;
  std::unordered_map<std::uint64_t, Entry, IdentityHash> map_;
  std::uint64_t processed_ = 0;
  std::uint64_t eliminated_ = 0;
};

struct SwitchCpuConfig {
  FpEliminatorConfig fp{};
  /// Modeled per-event CPU service time; caps the Meps the CPU keeps up
  /// with inside the simulation (measured for real in bench_cpu_micro).
  util::SimDuration per_event_cost = util::nanoseconds(25);
  /// Pacing of report traffic toward the backend (§3.6 "pacing").
  util::BitRate pacing_rate = util::BitRate::mbps(200);
  /// Events per report segment to the backend.
  int report_batch = 50;
};

}  // namespace netseer::core
