#include "core/event.h"

#include <algorithm>
#include <cstdio>

#include "util/hash.h"

namespace netseer::core {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kDrop: return "drop";
    case EventType::kCongestion: return "congestion";
    case EventType::kPathChange: return "path-change";
    case EventType::kPause: return "pause";
    case EventType::kAclDrop: return "acl-drop";
  }
  return "?";
}

namespace {
void put_u16(std::byte* out, std::uint16_t v) {
  out[0] = static_cast<std::byte>(v >> 8);
  out[1] = static_cast<std::byte>(v);
}
void put_u32(std::byte* out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out + 2, static_cast<std::uint16_t>(v));
}
std::uint16_t get_u16(const std::byte* in) {
  return static_cast<std::uint16_t>((std::uint16_t(in[0]) << 8) | std::uint16_t(in[1]));
}
std::uint32_t get_u32(const std::byte* in) {
  return (std::uint32_t(get_u16(in)) << 16) | get_u16(in + 2);
}
}  // namespace

std::array<std::byte, FlowEvent::kWireSize> FlowEvent::serialize() const noexcept {
  std::array<std::byte, kWireSize> raw{};
  raw[0] = static_cast<std::byte>(type);
  const auto flow_bytes = flow.packed();
  std::copy(flow_bytes.begin(), flow_bytes.end(), raw.begin() + 1);
  put_u16(raw.data() + 14, counter);
  put_u32(raw.data() + 16, flow_hash);

  std::byte* detail = raw.data() + 20;
  switch (type) {
    case EventType::kDrop:
      detail[0] = static_cast<std::byte>(ingress_port);
      detail[1] = static_cast<std::byte>(egress_port);
      detail[2] = static_cast<std::byte>(drop_code);
      break;
    case EventType::kCongestion:
      detail[0] = static_cast<std::byte>(egress_port);
      detail[1] = static_cast<std::byte>(queue);
      put_u16(detail + 2, queue_latency_us);
      break;
    case EventType::kPathChange:
      detail[0] = static_cast<std::byte>(ingress_port);
      detail[1] = static_cast<std::byte>(egress_port);
      break;
    case EventType::kPause:
      detail[0] = static_cast<std::byte>(egress_port);
      detail[1] = static_cast<std::byte>(queue);
      break;
    case EventType::kAclDrop:
      put_u16(detail, acl_rule_id);
      break;
  }
  return raw;
}

std::optional<FlowEvent> FlowEvent::parse(std::span<const std::byte, kWireSize> raw) noexcept {
  FlowEvent ev;
  const auto type_byte = static_cast<std::uint8_t>(raw[0]);
  if (type_byte < 1 || type_byte > 5) return std::nullopt;
  ev.type = static_cast<EventType>(type_byte);

  std::array<std::byte, packet::FlowKey::kPackedSize> flow_bytes{};
  std::copy(raw.begin() + 1, raw.begin() + 14, flow_bytes.begin());
  ev.flow = packet::FlowKey::from_packed(flow_bytes);
  ev.counter = get_u16(raw.data() + 14);
  ev.flow_hash = get_u32(raw.data() + 16);

  const std::byte* detail = raw.data() + 20;
  switch (ev.type) {
    case EventType::kDrop:
      ev.ingress_port = static_cast<std::uint8_t>(detail[0]);
      ev.egress_port = static_cast<std::uint8_t>(detail[1]);
      ev.drop_code = static_cast<std::uint8_t>(detail[2]);
      break;
    case EventType::kCongestion:
      ev.egress_port = static_cast<std::uint8_t>(detail[0]);
      ev.queue = static_cast<std::uint8_t>(detail[1]);
      ev.queue_latency_us = get_u16(detail + 2);
      break;
    case EventType::kPathChange:
      ev.ingress_port = static_cast<std::uint8_t>(detail[0]);
      ev.egress_port = static_cast<std::uint8_t>(detail[1]);
      break;
    case EventType::kPause:
      ev.egress_port = static_cast<std::uint8_t>(detail[0]);
      ev.queue = static_cast<std::uint8_t>(detail[1]);
      break;
    case EventType::kAclDrop:
      ev.acl_rule_id = get_u16(detail);
      break;
  }
  return ev;
}

std::uint32_t FlowEvent::detail_word() const noexcept {
  switch (type) {
    case EventType::kDrop:
      return (std::uint32_t{ingress_port} << 16) | (std::uint32_t{egress_port} << 8) |
             drop_code;
    case EventType::kCongestion:
      // Latency is a sample, not identity: congestion on the same queue
      // is the same event regardless of how long the queue was.
      return (std::uint32_t{egress_port} << 8) | queue;
    case EventType::kPathChange:
      return (std::uint32_t{ingress_port} << 8) | egress_port;
    case EventType::kPause:
      return (std::uint32_t{egress_port} << 8) | queue;
    case EventType::kAclDrop:
      return acl_rule_id;
  }
  return 0;
}

std::uint64_t FlowEvent::dedup_key() const noexcept {
  const std::uint64_t key = util::hash_combine(flow.hash64(), static_cast<std::uint64_t>(type));
  return util::hash_combine(key, detail_word());
}

std::string FlowEvent::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s flow=%s n=%u sw=%u in=%u out=%u q=%u lat=%uus code=%u",
                core::to_string(type), flow.to_string().c_str(), counter, switch_id,
                ingress_port, egress_port, queue, queue_latency_us, drop_code);
  return buf;
}

FlowEvent make_event(EventType type, const packet::FlowKey& flow, util::NodeId switch_id,
                     util::SimTime now) {
  FlowEvent ev;
  ev.type = type;
  ev.flow = flow;
  ev.flow_hash = flow.crc32();
  ev.switch_id = switch_id;
  ev.detected_at = now;
  return ev;
}

std::uint16_t to_latency_us(util::SimDuration delay) noexcept {
  const auto us = delay / util::kMicrosecond;
  return us > 0xffff ? 0xffff : static_cast<std::uint16_t>(us);
}

}  // namespace netseer::core
