#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/event.h"
#include "core/event_stack.h"
#include "sim/simulator.h"

namespace netseer::core {

struct CebpConfig {
  /// Circulating packets kept in flight on the internal recirculation
  /// port. More CEBPs = more pops per unit time.
  int num_cebps = 35;
  /// Events per batch packet before it is flushed to the CPU (the paper
  /// recommends 50).
  int batch_size = 50;
  /// One trip around the pipeline via the internal port.
  util::SimDuration recirc_latency = util::nanoseconds(400);
  /// Cost of forwarding a full CEBP to the CPU and cloning an empty
  /// replacement (the clone rejoins circulation after this).
  util::SimDuration flush_latency = util::microseconds(2);
};

/// Circulating event batching (§3.5). CEBPs constantly recirculate
/// through the pipeline; each time one "hits the stack" it pops a single
/// event and appends it to its payload. A CEBP flushes to the switch CPU
/// when its payload reaches batch_size, or when the stack empties ("all
/// events have been collected"), and is cloned empty to keep collecting.
///
/// CEBPs idle (stop recirculating in the model) while the stack is empty
/// and wake on the next push — equivalent behaviour, far fewer simulator
/// events.
class CebpBatcher {
 public:
  using Flush = std::function<void(EventBatch&&)>;

  CebpBatcher(sim::Simulator& sim, util::NodeId switch_id, EventStack& stack,
              const CebpConfig& config, Flush flush)
      : sim_(sim), switch_id_(switch_id), stack_(stack), config_(config),
        flush_(std::move(flush)), cebps_(static_cast<std::size_t>(config.num_cebps)) {}

  /// Signal that an event was pushed onto the stack; wakes one idle CEBP.
  void notify() {
    for (std::size_t i = 0; i < cebps_.size(); ++i) {
      if (!cebps_[i].active) {
        cebps_[i].active = true;
        (void)sim_.schedule_after(config_.recirc_latency, [this, i] { circulate(i); });
        return;
      }
    }
  }

  /// Flush every partially filled CEBP immediately (end of experiment).
  void flush_all() {
    for (auto& cebp : cebps_) {
      if (!cebp.payload.empty()) emit(cebp);
    }
  }

  [[nodiscard]] std::uint64_t batches_flushed() const { return batches_; }
  [[nodiscard]] std::uint64_t events_batched() const { return events_; }
  /// Trips around the internal port — the recirculation bandwidth a real
  /// chip would spend on CEBPs.
  [[nodiscard]] std::uint64_t recirculations() const { return recirculations_; }
  [[nodiscard]] const CebpConfig& config() const { return config_; }

 private:
  struct Cebp {
    bool active = false;
    std::vector<FlowEvent> payload;
  };

  void circulate(std::size_t i) {
    ++recirculations_;
    Cebp& cebp = cebps_[i];
    const auto popped = stack_.pop();
    if (popped) {
      cebp.payload.push_back(*popped);
      if (static_cast<int>(cebp.payload.size()) >= config_.batch_size) {
        emit(cebp);
        (void)sim_.schedule_after(config_.flush_latency, [this, i] { circulate(i); });
        return;
      }
      (void)sim_.schedule_after(config_.recirc_latency, [this, i] { circulate(i); });
      return;
    }
    // Stack drained: flush a partial payload, then go idle.
    if (!cebp.payload.empty()) {
      emit(cebp);
      (void)sim_.schedule_after(config_.flush_latency, [this, i] {
        // After the flush trip, re-check for new work before idling.
        if (!stack_.empty()) {
          circulate(i);
        } else {
          cebps_[i].active = false;
        }
      });
      return;
    }
    cebp.active = false;
  }

  void emit(Cebp& cebp) {
    EventBatch batch;
    batch.switch_id = switch_id_;
    batch.seq = next_batch_seq_++;
    batch.emitted_at = sim_.now();
    batch.events = std::move(cebp.payload);
    cebp.payload.clear();
    events_ += batch.events.size();
    ++batches_;
    flush_(std::move(batch));
  }

  sim::Simulator& sim_;
  util::NodeId switch_id_;
  EventStack& stack_;
  CebpConfig config_;
  Flush flush_;
  std::vector<Cebp> cebps_;
  std::uint32_t next_batch_seq_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t recirculations_ = 0;
};

}  // namespace netseer::core
