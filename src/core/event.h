#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "packet/flow_key.h"
#include "pdp/types.h"
#include "util/ids.h"
#include "util/time.h"

namespace netseer::core {

/// Flow event families (§3.1). ACL drops are aggregated at rule
/// granularity rather than flow granularity (§3.4), so they get their own
/// type with the rule id in the detail bytes.
enum class EventType : std::uint8_t {
  kDrop = 1,
  kCongestion = 2,
  kPathChange = 3,
  kPause = 4,
  kAclDrop = 5,
};

[[nodiscard]] const char* to_string(EventType type);

/// One flow event, the unit NetSeer reports. The wire encoding
/// (FlowEvent::serialize) is exactly kWireSize = 24 bytes:
///
///   type(1) | flow 5-tuple(13) | counter(2) | flow-hash(4) | detail(4)
///
/// detail by type:
///   drop:        ingress port(1) egress port(1) drop code(1) pad(1)
///   congestion:  egress port(1) queue(1) queue latency µs, saturating(2)
///   path change: ingress port(1) egress port(1) pad(2)
///   pause:       egress port(1) queue(1) pad(2)
///   acl drop:    rule id(2) pad(2)
///
/// The paper's formats (§4) total <= 24 B; we pack congestion latency
/// into 16 bits of microseconds to include a type tag in the same budget
/// (documented in DESIGN.md).
struct FlowEvent {
  EventType type = EventType::kDrop;
  packet::FlowKey flow{};
  std::uint16_t counter = 1;
  std::uint32_t flow_hash = 0;  // CRC32 pre-computed in the pipeline (§3.6)

  std::uint8_t ingress_port = 0;
  std::uint8_t egress_port = 0;
  std::uint8_t queue = 0;
  std::uint16_t queue_latency_us = 0;
  std::uint8_t drop_code = 0;     // pdp::DropReason
  std::uint16_t acl_rule_id = 0;

  // Simulation-side metadata; not part of the wire encoding.
  util::NodeId switch_id = util::kInvalidNode;
  util::SimTime detected_at = 0;

  static constexpr std::size_t kWireSize = 24;

  [[nodiscard]] std::array<std::byte, kWireSize> serialize() const noexcept;
  [[nodiscard]] static std::optional<FlowEvent> parse(
      std::span<const std::byte, kWireSize> raw) noexcept;

  /// Type-specific detail packed into one word: part of the event's
  /// identity (a path change to a *different* port is a different event).
  [[nodiscard]] std::uint32_t detail_word() const noexcept;

  /// The identity of the *flow event* for deduplication purposes:
  /// same flow + same event type + same detail (ports / drop code /
  /// queue / ACL rule — but never the counter or latency sample).
  [[nodiscard]] std::uint64_t dedup_key() const noexcept;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const FlowEvent&, const FlowEvent&) = default;
};

/// Helper used everywhere events are fabricated: fills the common fields
/// and stamps the pre-computed hash.
[[nodiscard]] FlowEvent make_event(EventType type, const packet::FlowKey& flow,
                                   util::NodeId switch_id, util::SimTime now);

/// Saturating conversion of a queuing delay to the 16-bit µs field.
[[nodiscard]] std::uint16_t to_latency_us(util::SimDuration delay) noexcept;

/// A batch of events as shipped from the pipeline to the switch CPU and
/// then to the backend. Wire size: 10-byte header + 24 B per event.
struct EventBatch {
  util::NodeId switch_id = util::kInvalidNode;
  std::uint32_t seq = 0;            // batch sequence, per switch
  util::SimTime emitted_at = 0;     // stamped when the batch leaves the pipeline
  std::vector<FlowEvent> events;

  static constexpr std::size_t kHeaderSize = 10;
  [[nodiscard]] std::size_t wire_size() const {
    return kHeaderSize + events.size() * FlowEvent::kWireSize;
  }
};

}  // namespace netseer::core
