#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "core/event.h"
#include "packet/packet.h"

namespace netseer::core {

/// Control payload of a loss-notification packet (§3.3 step 4): the
/// inclusive range of missing sequence numbers the downstream observed.
/// Three redundant copies are sent on a high-priority queue.
class LossNotifyPayload final : public packet::ControlPayload {
 public:
  LossNotifyPayload(std::uint32_t start, std::uint32_t end, std::uint8_t copy)
      : start_(start), end_(end), copy_(copy) {}

  [[nodiscard]] std::uint32_t start() const { return start_; }
  [[nodiscard]] std::uint32_t end() const { return end_; }
  [[nodiscard]] std::uint8_t copy() const { return copy_; }

  [[nodiscard]] std::uint32_t wire_size() const override { return 12; }

 private:
  std::uint32_t start_;
  std::uint32_t end_;
  std::uint8_t copy_;
};

struct InterSwitchConfig {
  /// Ring buffer slots per port. Sizes the window of recent packets whose
  /// flow identity can be recovered after a loss (Fig. 15).
  std::size_t ring_slots = 4096;
  /// Bytes of SRAM one ring slot costs (flow 13 B, seq check bits
  /// amortized) — used for the Fig. 15 capacity accounting only.
  static constexpr std::size_t kSlotBytes = 13;
  /// A sequence jump larger than this is treated as a peer restart and
  /// resynchronized instead of reported as a giant loss.
  std::uint32_t max_gap = 1 << 20;
  /// Redundant copies per notification (paper: 3).
  int notify_copies = 3;
};

/// Upstream side (Switch-1 in Fig. 5): numbers every departing packet
/// with a consecutive 4-byte ID, caches (ID -> flow) of the last N
/// packets in a ring buffer, and answers loss notifications by reporting
/// the cached flows of the missing IDs as inter-switch drop events.
///
/// Hardware constraint modeled faithfully: ASICs cannot loop within a
/// stage, so a notification only queues the missing range; each
/// *subsequent transmitted packet* triggers exactly one ring-buffer
/// lookup (§3.3). If drops stall the link entirely, pending lookups also
/// drain on later notifications.
class InterSwitchTx {
 public:
  using EmitDrop = std::function<void(const packet::FlowKey&, std::uint32_t seq)>;

  explicit InterSwitchTx(const InterSwitchConfig& config)
      : config_(config), ring_(config.ring_slots) {}

  /// Egress: stamp the packet's sequence shim and record it. Then use
  /// this packet as the trigger for one pending lookup.
  void on_tx(packet::Packet& pkt, const EmitDrop& emit) {
    const std::uint32_t seq = next_seq_++;
    pkt.seq_tag = seq;
    if (!ring_.empty()) {
      Slot& slot = ring_[seq % ring_.size()];
      slot.seq = seq;
      slot.flow = pkt.flow();
      slot.valid = true;
    }
    ++sent_;
    drain_one(emit);
  }

  /// A loss notification arrived from the downstream. Duplicate copies of
  /// a range are ignored; new ranges queue for packet-triggered lookups
  /// (one is drained immediately, standing in for the notification packet
  /// itself passing the stage).
  void on_notification(std::uint32_t start, std::uint32_t end, const EmitDrop& emit) {
    ++notifications_;
    if (already_seen(start, end)) {
      ++duplicate_notifications_;
      return;
    }
    remember(start, end);
    pending_.push_back(Range{start, end});
    drain_one(emit);
  }

  /// Process up to `budget` queued lookups (used by idle flushing so a
  /// fully dead link still reports, via the switch CPU's slow path).
  void drain(int budget, const EmitDrop& emit) {
    for (int i = 0; i < budget && !pending_.empty(); ++i) drain_one(emit);
  }

  [[nodiscard]] std::uint32_t next_seq() const { return next_seq_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t drops_reported() const { return reported_; }
  [[nodiscard]] std::uint64_t lookup_misses() const { return lookup_misses_; }
  [[nodiscard]] std::uint64_t notifications() const { return notifications_; }
  [[nodiscard]] std::uint64_t duplicate_notifications() const {
    return duplicate_notifications_;
  }
  [[nodiscard]] bool has_pending() const { return !pending_.empty(); }

  /// SRAM this ring buffer occupies (Fig. 15 accounting).
  [[nodiscard]] std::size_t sram_bytes() const {
    return ring_.size() * InterSwitchConfig::kSlotBytes;
  }

 private:
  struct Slot {
    bool valid = false;
    std::uint32_t seq = 0;
    packet::FlowKey flow{};
  };
  struct Range {
    std::uint32_t next;
    std::uint32_t end;  // inclusive
  };

  void drain_one(const EmitDrop& emit) {
    if (pending_.empty()) return;
    Range& range = pending_.front();
    const std::uint32_t seq = range.next;
    if (range.next == range.end) {
      pending_.pop_front();
    } else {
      ++range.next;
    }
    lookup_and_emit(seq, emit);
  }

  void lookup_and_emit(std::uint32_t seq, const EmitDrop& emit) {
    if (ring_.empty()) {
      ++lookup_misses_;
      return;
    }
    const Slot& slot = ring_[seq % ring_.size()];
    // The ID comparison prevents reporting a *wrong* packet after the
    // ring wrapped (§3.3: "NetSeer will not report the wrong packets").
    if (slot.valid && slot.seq == seq) {
      ++reported_;
      emit(slot.flow, seq);
    } else {
      ++lookup_misses_;
    }
  }

  [[nodiscard]] bool already_seen(std::uint32_t start, std::uint32_t end) const {
    for (const auto& seen : recent_) {
      if (seen.first == start && seen.second == end) return true;
    }
    return false;
  }
  void remember(std::uint32_t start, std::uint32_t end) {
    recent_.push_back({start, end});
    if (recent_.size() > 16) recent_.pop_front();
  }

  InterSwitchConfig config_;
  std::vector<Slot> ring_;
  std::uint32_t next_seq_ = 0;
  std::deque<Range> pending_;
  std::deque<std::pair<std::uint32_t, std::uint32_t>> recent_;
  std::uint64_t sent_ = 0;
  std::uint64_t reported_ = 0;
  std::uint64_t lookup_misses_ = 0;
  std::uint64_t notifications_ = 0;
  std::uint64_t duplicate_notifications_ = 0;
};

/// Downstream side (Switch-2 in Fig. 5): strips the sequence shim, and
/// treats non-consecutive IDs as a loss. Corrupted frames never get here
/// (the MAC discarded them), so corruption shows up as the same gap.
class InterSwitchRx {
 public:
  struct Gap {
    std::uint32_t start;
    std::uint32_t end;  // inclusive
  };

  explicit InterSwitchRx(const InterSwitchConfig& config) : config_(config) {}

  /// Inspect an arriving packet. Strips the shim. Returns the missing
  /// range when a gap is detected.
  std::optional<Gap> on_rx(packet::Packet& pkt) {
    if (!pkt.seq_tag) return std::nullopt;
    const std::uint32_t seq = *pkt.seq_tag;
    pkt.seq_tag.reset();
    ++received_;

    if (!synced_) {
      synced_ = true;
      expected_ = seq + 1;
      return std::nullopt;
    }
    if (seq == expected_) {
      ++expected_;
      return std::nullopt;
    }
    const std::uint32_t gap = seq - expected_;  // mod 2^32
    if (gap > config_.max_gap) {
      // Peer reset (or we missed astronomically many): resync silently.
      ++resyncs_;
      expected_ = seq + 1;
      return std::nullopt;
    }
    Gap missing{expected_, seq - 1};
    gap_packets_ += gap;
    ++gaps_;
    expected_ = seq + 1;
    return missing;
  }

  [[nodiscard]] std::uint64_t received() const { return received_; }
  [[nodiscard]] std::uint64_t gaps() const { return gaps_; }
  [[nodiscard]] std::uint64_t gap_packets() const { return gap_packets_; }
  [[nodiscard]] std::uint64_t resyncs() const { return resyncs_; }

 private:
  InterSwitchConfig config_;
  bool synced_ = false;
  std::uint32_t expected_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t gaps_ = 0;
  std::uint64_t gap_packets_ = 0;
  std::uint64_t resyncs_ = 0;
};

/// Build one copy of a loss-notification packet (the caller sends
/// notify_copies of them on the high-priority queue).
[[nodiscard]] packet::Packet make_loss_notification(std::uint32_t start, std::uint32_t end,
                                                    std::uint8_t copy);

}  // namespace netseer::core
