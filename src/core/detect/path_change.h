#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "packet/flow_key.h"
#include "util/ids.h"
#include "util/time.h"

namespace netseer::core {

struct PathChangeConfig {
  /// Flow-table entries (hash-indexed, one flow each). Limited on purpose:
  /// collisions and expiry make some old flows look new again, which the
  /// paper accepts ("slightly more flows reported as new ones", §3.3).
  std::size_t entries = 8192;
  /// Idle time after which a flow's path record expires.
  util::SimDuration expiry = util::milliseconds(100);
};

/// Learns each flow's (ingress port, egress port) at this switch and
/// reports the first packet of a new flow, or of an old flow whose ports
/// changed, as a path-change event packet (§3.3).
class PathChangeDetector {
 public:
  enum class Observation : std::uint8_t { kKnownPath, kNewFlow, kPathChanged };

  explicit PathChangeDetector(const PathChangeConfig& config)
      : config_(config), slots_(config.entries) {}

  /// Record one forwarded packet; reports whether its path is news.
  Observation observe(const packet::FlowKey& flow, util::PortId in_port, util::PortId out_port,
                      util::SimTime now) {
    if (slots_.empty()) return Observation::kNewFlow;
    Slot& slot = slots_[flow.hash64() % slots_.size()];
    const bool expired = slot.last_seen + config_.expiry < now;

    if (slot.valid && !expired && slot.flow == flow) {
      slot.last_seen = now;
      if (slot.in_port == in_port && slot.out_port == out_port) {
        return Observation::kKnownPath;
      }
      slot.in_port = in_port;
      slot.out_port = out_port;
      ++changes_;
      return Observation::kPathChanged;
    }

    // New flow, expired entry, or collision eviction: (re)learn.
    slot.valid = true;
    slot.flow = flow;
    slot.in_port = in_port;
    slot.out_port = out_port;
    slot.last_seen = now;
    ++new_flows_;
    return Observation::kNewFlow;
  }

  [[nodiscard]] std::uint64_t new_flows() const { return new_flows_; }
  [[nodiscard]] std::uint64_t changes() const { return changes_; }

 private:
  struct Slot {
    bool valid = false;
    packet::FlowKey flow{};
    util::PortId in_port = util::kInvalidPort;
    util::PortId out_port = util::kInvalidPort;
    util::SimTime last_seen = 0;
  };

  PathChangeConfig config_;
  std::vector<Slot> slots_;
  std::uint64_t new_flows_ = 0;
  std::uint64_t changes_ = 0;
};

}  // namespace netseer::core
