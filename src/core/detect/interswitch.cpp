#include "core/detect/interswitch.h"

#include <memory>

namespace netseer::core {

packet::Packet make_loss_notification(std::uint32_t start, std::uint32_t end,
                                      std::uint8_t copy) {
  packet::Packet pkt;
  pkt.uid = packet::next_packet_uid();
  pkt.kind = packet::PacketKind::kLossNotify;
  pkt.control = std::make_shared<LossNotifyPayload>(start, end, copy);
  return pkt;
}

}  // namespace netseer::core
