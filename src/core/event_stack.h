#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/event.h"

namespace netseer::core {

/// The multi-stage stack that buffers extracted events until a
/// circulating event batching packet (CEBP) pops them (§3.5). Each stage
/// of the pipeline contributes limited register width, so capacity is
/// bounded; overflow means a lost event (counted — the capacity benches
/// probe exactly this).
class EventStack {
 public:
  explicit EventStack(std::size_t capacity) : capacity_(capacity) {}

  /// Push an event; false (and an overflow count) when the stack is full.
  bool push(const FlowEvent& event) {
    if (entries_.size() >= capacity_) {
      ++overflows_;
      return false;
    }
    entries_.push_back(event);
    ++pushes_;
    if (entries_.size() > high_watermark_) high_watermark_ = entries_.size();
    return true;
  }

  /// Pop the most recent event (stack order, matching the hardware
  /// design's LIFO register chain).
  std::optional<FlowEvent> pop() {
    if (entries_.empty()) return std::nullopt;
    FlowEvent event = entries_.back();
    entries_.pop_back();
    return event;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t pushes() const { return pushes_; }
  [[nodiscard]] std::uint64_t overflows() const { return overflows_; }
  [[nodiscard]] std::size_t high_watermark() const { return high_watermark_; }

 private:
  std::size_t capacity_;
  std::vector<FlowEvent> entries_;
  std::uint64_t pushes_ = 0;
  std::uint64_t overflows_ = 0;
  std::size_t high_watermark_ = 0;
};

}  // namespace netseer::core
