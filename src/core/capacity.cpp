#include "core/capacity.h"

namespace netseer::core::capacity {

double cebp_throughput_eps(const CebpConfig& config, int batch_size) {
  if (batch_size <= 0 || config.num_cebps <= 0) return 0.0;
  const double collect_ns =
      static_cast<double>(batch_size) * static_cast<double>(config.recirc_latency);
  const double cycle_ns = collect_ns + static_cast<double>(config.flush_latency);
  if (cycle_ns <= 0.0) return 0.0;
  const double per_cebp = static_cast<double>(batch_size) * 1e9 / cycle_ns;
  return per_cebp * config.num_cebps;
}

double cebp_throughput_gbps(const CebpConfig& config, int batch_size) {
  const double eps = cebp_throughput_eps(config, batch_size);
  const double bytes_per_event =
      FlowEvent::kWireSize +
      static_cast<double>(EventBatch::kHeaderSize) / (batch_size > 0 ? batch_size : 1);
  return eps * bytes_per_event * 8.0 / 1e9;
}

std::size_t min_ring_slots(util::BitRate link_rate, util::SimDuration notify_rtt,
                           std::uint32_t pkt_bytes) {
  const util::SimDuration per_packet = link_rate.serialization_delay(pkt_bytes);
  if (per_packet <= 0) return 1;
  // Packets transmitted during the notification flight, rounded up,
  // plus the dropped packet's own slot.
  const auto in_flight = (notify_rtt + per_packet - 1) / per_packet;
  return static_cast<std::size_t>(in_flight) + 1;
}

std::size_t slots_for_consecutive_drops(int consecutive_drops, util::BitRate link_rate,
                                        util::SimDuration notify_rtt,
                                        std::uint32_t pkt_bytes) {
  if (consecutive_drops < 1) consecutive_drops = 1;
  return static_cast<std::size_t>(consecutive_drops - 1) +
         min_ring_slots(link_rate, notify_rtt, pkt_bytes);
}

std::size_t ring_sram_bytes(int ports, std::size_t slots) {
  return static_cast<std::size_t>(ports) * slots * InterSwitchConfig::kSlotBytes;
}

}  // namespace netseer::core::capacity
