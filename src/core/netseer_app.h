#pragma once

#include <array>
#include <memory>
#include <vector>

#include "core/acl_agg.h"
#include "core/cebp.h"
#include "core/cpu_runtime.h"
#include "core/detect/interswitch.h"
#include "core/detect/path_change.h"
#include "core/event.h"
#include "core/event_stack.h"
#include "core/group_cache.h"
#include "core/pcie.h"
#include "core/reliable.h"
#include "core/report.h"
#include "pdp/switch.h"

namespace netseer::core {

/// §3.4: "an exact flow 5-tuple (or other flow identifiers that can be
/// flexibly defined)". The identifier granularity used for event
/// aggregation, dedup, and reporting.
enum class FlowIdMode : std::uint8_t {
  k5Tuple = 0,   // src, dst, proto, sport, dport (default)
  kHostPair,     // src, dst only — aggregate across ports/protocols
  kDstOnly,      // destination service aggregation
};

/// Apply a flow-identifier mode: out-of-scope fields are zeroed, so two
/// packets with the same canonical key aggregate into one flow event.
[[nodiscard]] packet::FlowKey canonical_flow(const packet::FlowKey& flow, FlowIdMode mode);

/// Everything configurable about one switch's NetSeer instance, mirroring
/// Figure 6 left to right.
struct NetSeerConfig {
  GroupCacheConfig group_cache{};
  PathChangeConfig path_change{};
  InterSwitchConfig interswitch{};
  CebpConfig cebp{};
  PcieConfig pcie{};
  SwitchCpuConfig cpu{};
  ReliableReporterConfig reporter{};

  /// Queuing delay above this is a congestion event (§3.3).
  util::SimDuration congestion_threshold = util::microseconds(20);
  /// Internal-port budget shared by pause + ingress-pipeline-drop + MMU
  /// drop event packets (§4 capacity: ~100 Gb/s).
  util::BitRate internal_port_rate = util::BitRate::gbps(100);
  /// MMU's ceiling for redirecting to-be-dropped packets (§4: ~40 Gb/s).
  util::BitRate mmu_redirect_rate = util::BitRate::gbps(40);
  std::uint32_t acl_report_interval = 64;
  std::size_t event_stack_capacity = 4096;
  /// Flow identifier used for all event aggregation and reporting.
  FlowIdMode flow_id_mode = FlowIdMode::k5Tuple;
  /// Run inter-switch drop detection on every port.
  bool enable_interswitch = true;

  /// Partial deployment (§2.3): when non-empty, only packets whose
  /// source OR destination falls in one of these prefixes generate
  /// events — "a partial deployment of NetSeer to monitor flows of
  /// specific applications". Inter-switch sequencing still covers every
  /// packet (losing any packet desynchronizes the link), but recovered
  /// drops outside the filter are not reported.
  std::vector<packet::Ipv4Prefix> monitored_prefixes;
};

/// Per-step byte accounting backing Figure 13: how much monitoring
/// traffic would exist after each stage of the NetSeer funnel.
struct FunnelStats {
  std::uint64_t traffic_bytes = 0;         // all forwarded traffic seen
  std::uint64_t traffic_packets = 0;
  std::uint64_t event_packet_bytes = 0;    // step 1: packets experiencing events
  std::uint64_t event_packets = 0;
  std::uint64_t dedup_reports = 0;         // step 2: flow events after group caching
  // Dedup-eligible subset (drop/congestion/pause/ACL; path change is
  // flow-level by nature and bypasses the caches, §3.4).
  std::uint64_t eligible_event_packets = 0;
  std::uint64_t eligible_reports = 0;
  std::uint64_t extracted_bytes = 0;       // step 3: 24 B records + batch headers
  std::uint64_t cpu_forwarded_events = 0;  // step 4: after FP elimination
  std::uint64_t report_bytes = 0;          // bytes actually sent to the backend
  std::uint64_t notify_bytes = 0;          // loss-notification traffic on the data plane
  std::uint64_t shim_bytes = 0;            // 4 B sequence shims (free if VLAN bits reused)

  [[nodiscard]] double event_packet_ratio() const {
    return traffic_bytes ? static_cast<double>(event_packet_bytes) / traffic_bytes : 0.0;
  }
  [[nodiscard]] double dedup_reduction() const {
    return event_packets ? 1.0 - static_cast<double>(dedup_reports) / event_packets : 0.0;
  }
  [[nodiscard]] double overhead_ratio() const {
    return traffic_bytes ? static_cast<double>(report_bytes) / traffic_bytes : 0.0;
  }
};

/// NetSeer on one switch: implements the full §3 pipeline as a
/// SwitchAgent. Register it LAST on the switch so baseline monitors and
/// the ground-truth recorder observe packets before NetSeer mutates them
/// (sequence shims) or consumes its own control traffic.
class NetSeerApp final : public pdp::SwitchAgent {
 public:
  /// `channel`/`backend` may be null/invalid for pipeline-only use (the
  /// events then stop at the switch CPU output, still visible in stats).
  NetSeerApp(pdp::Switch& sw, const NetSeerConfig& config, ReportChannel* channel,
             util::NodeId backend);

  // ---- SwitchAgent hooks ---------------------------------------------------
  bool on_ingress(pdp::Switch& sw, packet::Packet& pkt, pdp::PipelineContext& ctx) override;
  void on_pipeline_drop(pdp::Switch& sw, const packet::Packet& pkt,
                        const pdp::PipelineContext& ctx) override;
  void on_mmu_drop(pdp::Switch& sw, const packet::Packet& pkt,
                   const pdp::PipelineContext& ctx) override;
  void on_enqueue(pdp::Switch& sw, const packet::Packet& pkt, const pdp::PipelineContext& ctx,
                  bool queue_paused) override;
  void on_egress(pdp::Switch& sw, packet::Packet& pkt, const pdp::EgressInfo& info) override;

  /// Flush all residual state (group caches, CEBPs, CPU buffer) so
  /// end-of-run totals reconcile. Call once when traffic has drained.
  void flush();

  // ---- Introspection ---------------------------------------------------------
  [[nodiscard]] util::NodeId switch_id() const { return sw_.id(); }
  [[nodiscard]] const FunnelStats& funnel() const { return funnel_; }
  [[nodiscard]] const EventStack& stack() const { return stack_; }
  [[nodiscard]] const SwitchCpu& cpu() const { return *cpu_; }
  [[nodiscard]] bool has_reporter() const { return reporter_ != nullptr; }
  [[nodiscard]] const ReliableReporter& reporter() const { return *reporter_; }
  [[nodiscard]] const CebpBatcher& batcher() const { return *batcher_; }
  [[nodiscard]] const PcieChannel& pcie() const { return *pcie_; }
  [[nodiscard]] const InterSwitchTx& tx_module(util::PortId port) const { return *tx_[port]; }
  [[nodiscard]] const InterSwitchRx& rx_module(util::PortId port) const { return *rx_[port]; }
  [[nodiscard]] const PathChangeDetector& path_detector() const { return path_; }
  [[nodiscard]] const GroupCache& cache(EventType type) const {
    return caches_[cache_index(type)];
  }
  [[nodiscard]] std::uint64_t missed_mmu_redirects() const { return missed_mmu_; }
  [[nodiscard]] std::uint64_t missed_internal_port() const { return missed_internal_; }
  [[nodiscard]] std::uint64_t filtered_events() const { return filtered_events_; }
  [[nodiscard]] const NetSeerConfig& config() const { return config_; }

 private:
  [[nodiscard]] static std::size_t cache_index(EventType type) {
    switch (type) {
      case EventType::kDrop: return 0;
      case EventType::kCongestion: return 1;
      case EventType::kPause: return 2;
      default: return 3;
    }
  }

  /// Partial-deployment filter: should events for `flow` be reported?
  [[nodiscard]] bool monitored(const packet::FlowKey& flow) const;
  /// Step-1 accounting + budget gates, then into dedup.
  void detect(const FlowEvent& event, std::uint32_t trigger_bytes);
  /// Post-dedup: extraction + stack + CEBP.
  void extract(const FlowEvent& event);
  void send_loss_notifications(pdp::Switch& sw, util::PortId port, InterSwitchRx::Gap gap);
  [[nodiscard]] bool consume_internal_budget(std::uint32_t bytes);
  [[nodiscard]] InterSwitchTx::EmitDrop link_loss_emitter(util::PortId port);
  /// Slow-path drain of queued ring-buffer lookups when the link idles
  /// (self-terminating one-shot chain, so simulations still drain).
  void schedule_idle_drain(util::PortId port);

  pdp::Switch& sw_;
  NetSeerConfig config_;

  // Detection state.
  std::vector<std::unique_ptr<InterSwitchTx>> tx_;
  std::vector<std::unique_ptr<InterSwitchRx>> rx_;
  std::vector<bool> drain_scheduled_;
  PathChangeDetector path_;
  AclDropAggregator acl_;
  util::TokenBucket internal_port_;
  util::TokenBucket mmu_redirect_;

  // Compression + batching.
  std::array<GroupCache, 4> caches_;  // drop, congestion, pause, (spare)
  EventStack stack_;
  std::unique_ptr<CebpBatcher> batcher_;
  std::unique_ptr<PcieChannel> pcie_;
  std::unique_ptr<SwitchCpu> cpu_;
  std::unique_ptr<ReliableReporter> reporter_;

  FunnelStats funnel_;
  std::uint64_t missed_mmu_ = 0;
  std::uint64_t missed_internal_ = 0;
  std::uint64_t filtered_events_ = 0;
};

}  // namespace netseer::core
