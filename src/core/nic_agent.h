#pragma once

#include <memory>
#include <vector>

#include "core/detect/interswitch.h"
#include "net/host.h"
#include "pdp/types.h"

namespace netseer::core {

/// NetSeer's SmartNIC role (§4 "NIC"): run the inter-switch drop
/// detection modules on the host's uplink so the edge link is covered
/// too, and keep detected events in a local log.
class NetSeerNicAgent final : public net::NicAgent {
 public:
  explicit NetSeerNicAgent(const InterSwitchConfig& config = {})
      : config_(config), tx_(config), rx_(config) {}

  void on_tx(net::Host& host, packet::Packet& pkt) override {
    tx_.on_tx(pkt, [this, &host](const packet::FlowKey& flow, std::uint32_t) {
      log_drop(host, flow);
    });
  }

  bool on_rx(net::Host& host, packet::Packet& pkt) override {
    if (const auto gap = rx_.on_rx(pkt)) {
      for (int copy = 0; copy < config_.notify_copies; ++copy) {
        host.send(make_loss_notification(gap->start, gap->end,
                                         static_cast<std::uint8_t>(copy)));
      }
    }
    if (pkt.kind == packet::PacketKind::kLossNotify) {
      if (const auto* payload = dynamic_cast<const LossNotifyPayload*>(pkt.control.get())) {
        tx_.on_notification(payload->start(), payload->end(),
                            [this, &host](const packet::FlowKey& flow, std::uint32_t) {
                              log_drop(host, flow);
                            });
      }
      return false;  // consumed
    }
    return true;
  }

  [[nodiscard]] const std::vector<FlowEvent>& local_log() const { return log_; }
  [[nodiscard]] const InterSwitchTx& tx_module() const { return tx_; }
  [[nodiscard]] const InterSwitchRx& rx_module() const { return rx_; }

 private:
  void log_drop(net::Host& host, const packet::FlowKey& flow) {
    FlowEvent ev = make_event(EventType::kDrop, flow, host.id(), host.simulator().now());
    ev.drop_code = static_cast<std::uint8_t>(pdp::DropReason::kLinkLoss);
    log_.push_back(ev);
  }

  InterSwitchConfig config_;
  InterSwitchTx tx_;
  InterSwitchRx rx_;
  std::vector<FlowEvent> log_;
};

}  // namespace netseer::core
