#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/event.h"

namespace netseer::core {

struct GroupCacheConfig {
  /// Number of hash-indexed entries. Collisions cause evictions, i.e.
  /// false-positive duplicate reports — never missed events.
  std::size_t entries = 4096;
  /// Report interval constant C (Algorithm 1 line 7/11): a counter
  /// report is produced every C aggregated packets.
  std::uint32_t report_interval = 64;
};

/// Event deduplication via group caching — Algorithm 1 of the paper,
/// verbatim: a direct-indexed exact-match table keyed by flow. The first
/// packet of a flow event is ALWAYS reported (zero false negatives by
/// construction); subsequent packets of the same flow event bump a
/// counter that is re-reported every C packets. A hash collision evicts
/// the resident flow (reporting its residual count) and reports the new
/// flow — duplicate initial reports are the false positives the switch
/// CPU removes later (§3.6).
class GroupCache {
 public:
  using Emit = std::function<void(const FlowEvent&)>;

  explicit GroupCache(const GroupCacheConfig& config)
      : config_(config), slots_(config.entries) {}

  /// Algorithm 1: offer one event packet's event; calls `emit` zero, one,
  /// or two times (evicted residual + new-flow report).
  void offer(const FlowEvent& event, const Emit& emit) {
    ++offered_;
    if (slots_.empty()) {  // degenerate config: report everything
      emit(event);
      ++reports_;
      return;
    }
    const std::size_t index = event.flow.hash64() % slots_.size();
    Slot& slot = slots_[index];

    if (slot.valid && slot.event.flow == event.flow && slot.event.type == event.type) {
      // Same flow event: aggregate (lines 3-7).
      ++hits_;
      ++slot.count;
      slot.event = event;  // keep the freshest detail (latency, ports)
      if (slot.count >= slot.target) {
        emit_slot(slot, emit);
        slot.target += config_.report_interval;
      }
      return;
    }

    // Different flow (or empty slot): evict + replace (lines 8-12).
    ++misses_;
    if (slot.valid && slot.count > slot.reported) {
      // Residual count of the evicted flow would otherwise be lost.
      emit_slot(slot, emit);
      ++evictions_;
    } else if (slot.valid) {
      ++evictions_;
    }
    slot.valid = true;
    slot.event = event;
    slot.count = 1;
    slot.reported = 0;
    slot.target = config_.report_interval;
    emit_slot(slot, emit);
  }

  /// Flush every resident flow with unreported residual counts (used at
  /// the end of an experiment so totals reconcile).
  void flush(const Emit& emit) {
    for (auto& slot : slots_) {
      if (slot.valid && slot.count > slot.reported) emit_slot(slot, emit);
    }
  }

  [[nodiscard]] std::uint64_t offered() const { return offered_; }
  [[nodiscard]] std::uint64_t reports() const { return reports_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  /// Offers aggregated into a resident flow (same flow + type).
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  /// Offers that installed a new flow (empty slot or collision eviction —
  /// the latter are the false-merge duplicates §3.6 removes later).
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] const GroupCacheConfig& config() const { return config_; }

 private:
  struct Slot {
    bool valid = false;
    FlowEvent event{};
    std::uint32_t count = 0;     // packets aggregated since insertion
    std::uint32_t reported = 0;  // count value at the last report
    std::uint32_t target = 0;    // next report threshold
  };

  void emit_slot(Slot& slot, const Emit& emit) {
    FlowEvent out = slot.event;
    const std::uint32_t delta = slot.count - slot.reported;
    out.counter = delta > 0xffff ? 0xffff : static_cast<std::uint16_t>(delta);
    slot.reported = slot.count;
    emit(out);
    ++reports_;
  }

  GroupCacheConfig config_;
  std::vector<Slot> slots_;
  std::uint64_t offered_ = 0;
  std::uint64_t reports_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace netseer::core
