#pragma once

/// Atomic shim for model-checkable production code. Concurrency
/// primitives that the model checker exercises (sim/spsc.h,
/// packet/pool.*) declare their atomics as netseer::mc_shim::atomic<T>
/// and mark the non-atomic cells those atomics publish with
/// NETSEER_MC_READ/NETSEER_MC_WRITE. In normal builds this header
/// aliases std::atomic and the macros compile to nothing — zero cost,
/// zero behavior change. Under -DNETSEER_MC (the netseer_mc_core
/// library) the same source compiles against the instrumented
/// mc::Atomic, so the code the checker explores is the code that ships.
#if defined(NETSEER_MC)

#include "mc/runtime.h"

namespace netseer::mc_shim {
template <typename T>
using atomic = ::netseer::mc::Atomic<T>;
}  // namespace netseer::mc_shim

#define NETSEER_MC_READ(addr, what) ::netseer::mc::race_read((addr), (what))
#define NETSEER_MC_WRITE(addr, what) ::netseer::mc::race_write((addr), (what))

#else

#include <atomic>

namespace netseer::mc_shim {
template <typename T>
using atomic = ::std::atomic<T>;
}  // namespace netseer::mc_shim

#define NETSEER_MC_READ(addr, what) ((void)0)
#define NETSEER_MC_WRITE(addr, what) ((void)0)

#endif
