#include "mc/harnesses.h"

#include <algorithm>
#include <array>
#include <cstddef>
#include <utility>
#include <vector>

#include "packet/packet.h"
#include "packet/pool.h"
#include "sim/spsc.h"
#include "telemetry/metrics.h"

namespace netseer::mc {
namespace {

// ---------------------------------------------------------------------------
// SPSC ring harnesses
// ---------------------------------------------------------------------------

/// Single-threaded semantics every schedule shares: wraparound through a
/// full cycle, full-ring rejection WITHOUT consuming the value, and
/// empty-ring pop rejection.
Result spsc_serial(const Options& options) {
  return explore(options, [] {
    sim::SpscRing<int> ring(2);
    MC_ASSERT(ring.capacity() == 2);
    int v = 1;
    MC_ASSERT(ring.try_push(v));
    v = 2;
    MC_ASSERT(ring.try_push(v));
    MC_ASSERT(ring.full());
    v = 3;
    MC_ASSERT(!ring.try_push(v));
    MC_ASSERT(v == 3);  // rejected push must not consume the value
    int out = 0;
    MC_ASSERT(ring.try_pop(out) && out == 1);
    MC_ASSERT(ring.try_push(v));  // tail wraps past the capacity boundary
    MC_ASSERT(ring.try_pop(out) && out == 2);
    MC_ASSERT(ring.try_pop(out) && out == 3);
    MC_ASSERT(!ring.try_pop(out));
    MC_ASSERT(ring.empty());
  });
}

/// Producer and consumer hand 3 values through a capacity-2 ring — enough
/// to wrap the indices past the ring's end — and every interleaving must
/// preserve FIFO order, lose nothing, duplicate nothing, and keep the
/// instrumented slot cells race-free (the release/acquire index protocol
/// is what makes them so). Three values is the sweet spot: four explodes
/// the schedule space past 100k without covering new protocol states.
Result spsc_handoff(const Options& options) {
  return explore(options, [] {
    sim::SpscRing<int> ring(2);
    constexpr int kN = 3;
    Thread producer = spawn([&] {
      for (int i = 1; i <= kN; ++i) {
        await([&] { return !ring.full(); });
        int value = i * 10;
        MC_ASSERT(ring.try_push(value));
      }
    });
    Thread consumer = spawn([&] {
      for (int i = 1; i <= kN; ++i) {
        await([&] { return !ring.empty(); });
        int out = 0;
        MC_ASSERT(ring.try_pop(out));
        MC_ASSERT(out == i * 10);
      }
    });
    producer.join();
    consumer.join();
    MC_ASSERT(ring.empty());
  });
}

/// SpscRing with the publish fence deliberately removed: the tail store
/// is relaxed, so nothing orders the producer's slot write before the
/// consumer's slot read. The checker must catch this as a data race on
/// the slot cell — the seeded bug that proves the race machinery works.
template <typename T>
class RelaxedTailRing {
 public:
  explicit RelaxedTailRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  [[nodiscard]] bool try_push(T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == slots_.size()) return false;
    NETSEER_MC_WRITE(&slots_[tail & mask_], "RelaxedTailRing::slots_[tail]");
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_relaxed);  // BUG: should be release
    return true;
  }

  [[nodiscard]] bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == head) return false;
    NETSEER_MC_WRITE(&slots_[head & mask_], "RelaxedTailRing::slots_[head]");
    out = std::move(slots_[head & mask_]);
    slots_[head & mask_] = T{};
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] bool empty() const {
    return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  Atomic<std::size_t> head_{0};
  Atomic<std::size_t> tail_{0};
};

Result spsc_seeded_relaxed(const Options& options) {
  return explore(options, [] {
    RelaxedTailRing<int> ring(2);
    Thread producer = spawn([&] {
      int value = 42;
      MC_ASSERT(ring.try_push(value));
    });
    Thread consumer = spawn([&] {
      await([&] { return !ring.empty(); });
      int out = 0;
      MC_ASSERT(ring.try_pop(out));
      MC_ASSERT(out == 42);
    });
    producer.join();
    consumer.join();
  });
}

// ---------------------------------------------------------------------------
// Group-commit writer / subscription miniatures
// ---------------------------------------------------------------------------

/// Miniature of store::GroupCommitWriter's acknowledgement protocol: the
/// ingest thread hands LSN'd batches through the REAL sim::SpscRing, the
/// writer thread drains whatever accumulated into a WAL image (plain
/// cells, race-instrumented) and publishes the durable watermark once
/// per drain round — the group "fsync". The ingest thread then syncs to
/// the last LSN and reads every row the watermark covers.
///
/// With `release_watermark` the publish is a release store, and every
/// schedule must leave those reads race-free, complete, and in LSN
/// order. With it relaxed (the seeded bug) nothing orders the writer's
/// WAL append before the syncing reader — the checker must catch the
/// data race on a WAL cell.
Result group_commit_run(const Options& options, bool release_watermark) {
  return explore(options, [&] {
    constexpr int kBatches = 2;  // 3 explodes the schedule count, covers nothing new
    sim::SpscRing<int> ring(2);
    std::array<int, kBatches + 1> wal{};
    Atomic<int> watermark{0};
    Thread writer = spawn([&] {
      int appended = 0;
      while (appended < kBatches) {
        await([&] { return !ring.empty(); });
        int lsn = 0;
        int last = 0;
        while (ring.try_pop(lsn)) {  // one commit group per drain round
          NETSEER_MC_WRITE(&wal[lsn], "group_commit::wal[lsn]");
          wal[lsn] = lsn * 10;
          last = lsn;
          ++appended;
        }
        watermark.store(last, release_watermark ? std::memory_order_release
                                                : std::memory_order_relaxed);
      }
    });
    Thread ingest = spawn([&] {
      for (int lsn = 1; lsn <= kBatches; ++lsn) {
        await([&] { return !ring.full(); });
        int value = lsn;
        MC_ASSERT(ring.try_push(value));
      }
      // sync_to(kBatches): the watermark is the only acknowledgement.
      await([&] { return watermark.load(std::memory_order_acquire) >= kBatches; });
      for (int lsn = 1; lsn <= kBatches; ++lsn) {
        NETSEER_MC_READ(&wal[lsn], "group_commit::wal[lsn]");
        MC_ASSERT(wal[lsn] == lsn * 10);  // acked rows are readable, in order
      }
    });
    writer.join();
    ingest.join();
    MC_ASSERT(ring.empty());
  });
}

/// Miniature of store::Subscription tailing the durable watermark: the
/// store thread appends rows and release-publishes the watermark in two
/// commit groups; the subscriber polls, delivering every row with
/// cursor < LSN <= watermark. Every schedule must deliver each row
/// exactly once, in LSN order, with the row contents visible (the
/// acquire load of the watermark is the only synchronization).
Result subscription_tail(const Options& options) {
  return explore(options, [] {
    constexpr int kRows = 3;
    std::array<int, kRows + 1> rows{};
    Atomic<int> watermark{0};
    Thread store = spawn([&] {
      for (int lsn = 1; lsn <= kRows; ++lsn) {
        NETSEER_MC_WRITE(&rows[lsn], "subscription::rows[lsn]");
        rows[lsn] = lsn * 10;
        // Two groups: rows 1-2 commit together, row 3 alone.
        if (lsn == 2 || lsn == kRows) watermark.store(lsn, std::memory_order_release);
      }
    });
    Thread subscriber = spawn([&] {
      int cursor = 0;
      std::array<bool, kRows + 1> seen{};
      while (cursor < kRows) {
        const int durable = watermark.load(std::memory_order_acquire);
        while (cursor < durable) {
          ++cursor;
          NETSEER_MC_READ(&rows[cursor], "subscription::rows[lsn]");
          MC_ASSERT(rows[cursor] == cursor * 10);
          MC_ASSERT(!seen[cursor]);  // exactly once
          seen[cursor] = true;
        }
        if (cursor < kRows) {
          await([&] { return watermark.load(std::memory_order_acquire) > cursor; });
        }
      }
      for (int lsn = 1; lsn <= kRows; ++lsn) MC_ASSERT(seen[lsn]);
    });
    store.join();
    subscriber.join();
  });
}

// ---------------------------------------------------------------------------
// packet::Pool remote-release harness
// ---------------------------------------------------------------------------

/// The cross-shard pooled-packet protocol: the owner's acquire path
/// (unlocked free list + lock-free remote_pending_ probe) races a
/// non-owner thread releasing a handle through the mutex-guarded remote
/// list. Every interleaving must keep the free list owner-only (the
/// race instrumentation on Pool::free_ checks exactly that), lose no
/// slot, and count the remote return.
Result pool_remote_release(const Options& options) {
  return explore(options, [] {
    packet::Pool pool;  // owner: this model thread
    MC_ASSERT(pool.owned_by_caller());
    packet::PooledPacket crossed = pool.acquire(packet::Packet{});
    Thread remote = spawn([&] {
      MC_ASSERT(!pool.owned_by_caller());
      crossed.reset();  // non-owner release: must take the remote path
    });
    // Owner keeps acquiring while the remote release is in flight; the
    // drain may or may not observe it depending on the schedule.
    packet::PooledPacket second = pool.acquire(packet::Packet{});
    remote.join();
    second.reset();
    packet::PooledPacket third = pool.acquire(packet::Packet{});
    MC_ASSERT(pool.remote_returns() == 1);
    MC_ASSERT(pool.slots() >= 1 && pool.slots() <= 2);
    MC_ASSERT(pool.reuses() >= 1);
    third.reset();
    // After the final release every slot ever materialized is back on
    // the free list (drained from the remote list at the latest by the
    // third acquire, which happens-after the remote release via join).
    MC_ASSERT(pool.free_slots() == pool.slots());
  });
}

// ---------------------------------------------------------------------------
// telemetry::Registry cross-merge harness
// ---------------------------------------------------------------------------

/// Two threads merge two registries into each other concurrently while
/// the mutexes are the real (instrumented) util::Mutex. merge_from's
/// contract is copy-under-source-lock THEN fold-under-own-lock, never
/// holding both — so the cross merge must be deadlock-free in every
/// schedule, and the outcome must be one of the three linearizable
/// results.
Result registry_cross_merge(const Options& options) {
  return explore(options, [] {
    telemetry::Registry a;
    telemetry::Registry b;
    a.counter("mc", "x").add(1);
    b.counter("mc", "x").add(2);
    Thread t1 = spawn([&] { a.merge_from(b); });
    Thread t2 = spawn([&] { b.merge_from(a); });
    t1.join();
    t2.join();
    const std::uint64_t ax = a.total("mc", "x");
    const std::uint64_t bx = b.total("mc", "x");
    // t1 fully before t2: a=3 then b=2+3=5. t2 fully first: b=3, a=1+3=4.
    // Both copy before either folds: a=3, b=3.
    MC_ASSERT((ax == 3 && bx == 5) || (ax == 4 && bx == 3) || (ax == 3 && bx == 3));
  });
}

// ---------------------------------------------------------------------------
// 2-shard CMB window miniature
// ---------------------------------------------------------------------------

/// A faithful miniature of ParallelSimulator's conservative window
/// protocol (src/sim/parallel.cpp): per-shard local events and pending
/// arrivals, SPSC inboxes (the REAL sim::SpscRing), the published
/// shard-minimum reduction, the same acq_rel arrived_/round_ barrier
/// chain — with the window execution collapsed to one virtual tick
/// (windows are width-lookahead; the miniature uses lookahead = 1).
///
/// Invariants asserted in EVERY schedule:
///   - windows move strictly forward on each shard (no rewind),
///   - no arrival is ever older than the window executing it,
///   - nothing deadlocks or livelocks,
///   - each shard's delivery log is bit-identical to the serial
///     reference (no lost message, no reorder).
///
/// `close_barrier=false` removes the second barrier — the seeded bug.
/// Without it a shard can publish its minimum and reduce before a peer
/// finishes producing messages for it; an in-flight message then escapes
/// the termination reduction and is lost (or a window rewinds). The
/// checker must find such a schedule.
namespace cmb {

constexpr int kLookahead = 1;
constexpr int kNoPending = 1 << 20;

struct Msg {
  int when = 0;
  int src = 0;
  int seq = 0;
  int payload = 0;
};

bool canonical_before(const Msg& x, const Msg& y) {
  if (x.when != y.when) return x.when < y.when;
  if (x.src != y.src) return x.src < y.src;
  return x.seq < y.seq;
}

struct Event {
  int when = 0;
  int payload = 0;  // sent to the peer shard, arriving at when + kLookahead
};

using Delivery = std::pair<int, int>;  // (tick, payload)

/// The serial reference: same windows, same canonical order, no
/// concurrency. Deterministic by construction.
std::array<std::vector<Delivery>, 2> serial_reference(
    const std::array<std::vector<Event>, 2>& events, int limit) {
  std::array<std::vector<Msg>, 2> pending;
  std::array<std::size_t, 2> next{0, 0};
  std::array<int, 2> seq{0, 0};
  std::array<std::vector<Delivery>, 2> log;
  for (;;) {
    int g = kNoPending;
    for (int s = 0; s < 2; ++s) {
      if (next[s] < events[s].size()) g = std::min(g, events[s][next[s]].when);
      for (const Msg& m : pending[s]) g = std::min(g, m.when);
    }
    if (g > limit) break;
    const int tick = g;
    for (int s = 0; s < 2; ++s) {
      std::vector<Msg> due;
      std::vector<Msg> rest;
      for (const Msg& m : pending[s]) (m.when == tick ? due : rest).push_back(m);
      pending[s] = std::move(rest);
      std::sort(due.begin(), due.end(), canonical_before);
      for (const Msg& m : due) log[s].emplace_back(tick, m.payload);
      while (next[s] < events[s].size() && events[s][next[s]].when == tick) {
        const Event& ev = events[s][next[s]++];
        pending[1 - s].push_back(Msg{tick + kLookahead, s, seq[s]++, ev.payload});
      }
    }
  }
  return log;
}

struct Shard {
  explicit Shard(std::vector<Event> evs) : events(std::move(evs)), inbox(8) {}
  std::vector<Event> events;
  std::size_t next_event = 0;
  int send_seq = 0;
  int last_tick = 0;
  std::vector<Msg> pending;
  std::vector<Delivery> log;
  sim::SpscRing<Msg> inbox;  // the real instrumented primitive
};

struct World {
  explicit World(std::array<std::vector<Event>, 2> events)
      : shards{Shard(std::move(events[0])), Shard(std::move(events[1]))} {}
  std::array<Shard, 2> shards;
  Atomic<int> arrived{0};
  Atomic<int> round{0};
  Atomic<int> window_start{0};
  Atomic<bool> done{false};
  std::array<Atomic<int>, 2> shard_min;
};

/// Mirror of ParallelSimulator::barrier — same memory orders, with the
/// parked spin loop expressed as mc::await.
void barrier(World& w, bool reduce, int limit) {
  const int round = w.round.load(std::memory_order_acquire);
  if (w.arrived.fetch_add(1, std::memory_order_acq_rel) == 1) {
    w.arrived.store(0, std::memory_order_relaxed);
    if (reduce) {
      const int g = std::min(w.shard_min[0].load(std::memory_order_relaxed),
                             w.shard_min[1].load(std::memory_order_relaxed));
      if (g > limit) {
        w.done.store(true, std::memory_order_relaxed);
      } else {
        w.window_start.store(g, std::memory_order_relaxed);
      }
    }
    w.round.fetch_add(1, std::memory_order_acq_rel);
  } else {
    await([&] { return w.round.load(std::memory_order_acquire) != round; });
  }
}

void worker(World& w, int id, int limit, bool close_barrier) {
  Shard& s = w.shards[static_cast<std::size_t>(id)];
  for (;;) {
    // Phase A: drain the inbox, publish the earliest pending timestamp.
    Msg m;
    while (!s.inbox.empty()) {
      MC_ASSERT(s.inbox.try_pop(m));
      s.pending.push_back(m);
    }
    int local_min = kNoPending;
    if (s.next_event < s.events.size()) {
      local_min = std::min(local_min, s.events[s.next_event].when);
    }
    for (const Msg& p : s.pending) local_min = std::min(local_min, p.when);
    w.shard_min[static_cast<std::size_t>(id)].store(local_min, std::memory_order_relaxed);
    barrier(w, /*reduce=*/true, limit);
    if (w.done.load(std::memory_order_relaxed)) return;
    // Phase B: execute the window (one tick at lookahead 1).
    const int tick = w.window_start.load(std::memory_order_relaxed);
    MC_ASSERT(tick > s.last_tick);  // windows never rewind
    s.last_tick = tick;
    std::vector<Msg> due;
    std::vector<Msg> rest;
    for (const Msg& p : s.pending) (p.when == tick ? due : rest).push_back(p);
    s.pending = std::move(rest);
    for (const Msg& p : s.pending) MC_ASSERT(p.when > tick);  // no arrival from the past
    std::sort(due.begin(), due.end(), canonical_before);
    for (const Msg& d : due) s.log.emplace_back(tick, d.payload);
    while (s.next_event < s.events.size() && s.events[s.next_event].when == tick) {
      const Event& ev = s.events[s.next_event++];
      Msg out{tick + kLookahead, id, s.send_seq++, ev.payload};
      MC_ASSERT(w.shards[static_cast<std::size_t>(1 - id)].inbox.try_push(out));
    }
    if (close_barrier) barrier(w, /*reduce=*/false, limit);
  }
}

Result run(const Options& options, bool close_barrier) {
  // One event, one cross-shard message: shard 0 executes at tick 1 and
  // sends to shard 1, which delivers at tick 2. Small on purpose — this
  // already forces two full window rounds plus the termination round,
  // and it is the smallest workload where dropping the close barrier
  // loses the message (or rewinds a window) in some schedule: shard 1
  // races ahead, publishes its min before the in-flight message lands,
  // and the termination reduction never sees it. Larger event sets
  // multiply the schedule count past CI budgets without reaching new
  // protocol states.
  const std::array<std::vector<Event>, 2> events = {
      std::vector<Event>{{1, 100}},
      std::vector<Event>{},
  };
  constexpr int kLimit = 2;
  const auto expected = serial_reference(events, kLimit);
  return explore(options, [&] {
    World w(events);
    Thread t0 = spawn([&] { worker(w, 0, kLimit, close_barrier); });
    Thread t1 = spawn([&] { worker(w, 1, kLimit, close_barrier); });
    t0.join();
    t1.join();
    MC_ASSERT(w.shards[0].log == expected[0]);
    MC_ASSERT(w.shards[1].log == expected[1]);
  });
}

}  // namespace cmb

}  // namespace

const std::vector<Harness>& all_harnesses() {
  static const std::vector<Harness> harnesses = [] {
    std::vector<Harness> all;
    all.push_back(Harness{"spsc_serial",
                          "SpscRing wraparound, full/empty probes, reject-without-consume",
                          /*expect_failure=*/false, Options{}, spsc_serial});
    all.push_back(Harness{"spsc_handoff",
                          "SpscRing 3-value handoff through capacity 2: FIFO in every schedule",
                          /*expect_failure=*/false, Options{}, spsc_handoff});
    all.push_back(Harness{"spsc_seeded_relaxed",
                          "seeded bug: relaxed tail publish must be caught as a slot data race",
                          /*expect_failure=*/true, Options{}, spsc_seeded_relaxed});
    all.push_back(Harness{
        "group_commit_watermark",
        "group-commit ack protocol: release-published durable watermark makes synced "
        "WAL rows readable in every schedule",
        /*expect_failure=*/false, Options{},
        [](const Options& o) { return group_commit_run(o, /*release_watermark=*/true); }});
    all.push_back(Harness{
        "group_commit_seeded_relaxed",
        "seeded bug: a relaxed watermark publish must be caught as a WAL-cell data race",
        /*expect_failure=*/true, Options{},
        [](const Options& o) { return group_commit_run(o, /*release_watermark=*/false); }});
    all.push_back(Harness{"subscription_tail",
                          "subscription tailing the watermark: exactly-once, in-order, "
                          "race-free delivery in every schedule",
                          /*expect_failure=*/false, Options{}, subscription_tail});
    all.push_back(Harness{"pool_remote_release",
                          "packet::Pool cross-thread release vs owner acquire/drain",
                          /*expect_failure=*/false, Options{}, pool_remote_release});
    all.push_back(Harness{"registry_cross_merge",
                          "Registry::merge_from cross-merge: deadlock-free, linearizable totals",
                          /*expect_failure=*/false, Options{}, registry_cross_merge});
    all.push_back(Harness{"cmb_window",
                          "2-shard CMB window protocol: no deadlock, no lost/rewound messages, "
                          "per-actor order == serial reference",
                          /*expect_failure=*/false, Options{},
                          [](const Options& o) { return cmb::run(o, /*close_barrier=*/true); }});
    all.push_back(Harness{"cmb_seeded_lost_window",
                          "seeded bug: dropping the window-close barrier must lose or rewind a "
                          "message in some schedule",
                          /*expect_failure=*/true, Options{},
                          [](const Options& o) { return cmb::run(o, /*close_barrier=*/false); }});
    return all;
  }();
  return harnesses;
}

}  // namespace netseer::mc
