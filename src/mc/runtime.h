#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

/// netseer::mc — a loom-style exhaustive-interleaving model checker for
/// the engine's concurrency primitives.
///
/// A test ("harness") hands explore() a body that builds fresh state and
/// spawns a small fixed number of model threads. The runtime runs the
/// body under a virtual scheduler: exactly one model thread executes at
/// any instant, and every *visible operation* — an mc::Atomic access, an
/// mc::Mutex lock/unlock, an await, a spawn/join — is a scheduling point
/// where the runtime picks which thread runs next. A depth-first search
/// over those choices re-executes the body once per schedule until every
/// interleaving (up to the configured bounds) has been explored,
/// DPOR-style sleep sets pruning schedules that only reorder independent
/// operations.
///
/// The memory model, precisely: values are sequentially consistent (a
/// load observes the latest store in the explored schedule), and
/// release/acquire synchronization is tracked with vector clocks so
/// every non-atomic access instrumented via race_read()/race_write() (or
/// the NETSEER_MC_READ/WRITE hooks production code carries) is checked
/// for happens-before data races — the same race relation TSan checks,
/// but over EVERY schedule instead of the ones the OS happens to
/// produce. Plain relaxed stores publish no view, release stores publish
/// the writer's clock, RMWs continue release sequences per C++20. What
/// this model deliberately does not cover: stale-value reads of atomics
/// (a relaxed load here still returns the newest value; the missing
/// synchronization is caught as a race on the data it was meant to
/// publish, not as a stale read) and fences (unused in this codebase).
///
/// Determinism contract: a harness body must be deterministic apart from
/// scheduling — no wall clocks, no OS randomness, no iteration over
/// pointer-keyed containers feeding visible ops. The runtime verifies
/// this by fingerprinting each replayed operation and failing loudly on
/// divergence.
namespace netseer::mc {

inline constexpr int kMaxModelThreads = 8;

struct Options {
  /// Per-schedule visible-op budget. Exceeding it means a livelock (an
  /// unbounded spin reached the checker; model waits with mc::await).
  std::uint64_t max_steps = 20000;
  /// Exploration budget. Exceeding it stops the search with
  /// Result::exhausted == false; harnesses are sized to stay well under.
  std::uint64_t max_schedules = 1000000;
};

struct Result {
  std::uint64_t schedules = 0;  // complete schedules executed
  std::uint64_t pruned = 0;     // runs cut short by sleep-set closure
  std::uint64_t steps = 0;      // visible ops executed, all schedules
  std::uint64_t max_depth = 0;  // longest schedule, in visible ops
  bool exhausted = false;       // the DFS completed within max_schedules
  bool failed = false;
  std::string failure;              // first failure, human-readable
  std::vector<std::string> trace;   // schedule that produced the failure

  [[nodiscard]] bool ok() const { return exhausted && !failed; }
};

namespace detail {

enum class OpKind : std::uint8_t {
  kAtomicLoad,
  kAtomicStore,
  kAtomicRmw,
  kMutexLock,
  kMutexUnlock,
  kAwait,
  kJoin,
  kSpawn,
  kYield,
};

/// Run one visible operation: outside a model run the effect applies
/// directly; inside, the calling thread parks at the scheduling point
/// and applies `effect` (under the runtime lock) once granted. `pred`
/// and `target` ride along for kAwait / kJoin enabledness.
void perform(const void* obj, OpKind kind, std::memory_order mo, void* ctx, void (*effect)(void*),
             const std::function<bool()>* pred = nullptr, int target = -1);

/// Drop per-run state for a destroyed Atomic/Mutex.
void forget_object(const void* obj);

int spawn_thread(std::function<void()> fn);

[[noreturn]] void fail(std::string message);
[[nodiscard]] bool failing();

}  // namespace detail

/// True while the calling thread is a model thread inside explore().
[[nodiscard]] bool in_model();

/// Explore every interleaving of the threads `body` spawns. `body` runs
/// as model thread 0; it typically builds fresh state on its stack,
/// spawns workers, joins them, and asserts the final state.
Result explore(const Options& options, const std::function<void()>& body);

/// Handle to a spawned model thread (join-once, movable).
class Thread {
 public:
  Thread() = default;
  Thread(Thread&& other) noexcept : id_(other.id_) { other.id_ = -1; }
  Thread& operator=(Thread&& other) noexcept {
    id_ = other.id_;
    other.id_ = -1;
    return *this;
  }
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  /// Block (in model time) until the thread's body has returned.
  /// Establishes happens-before from everything the thread did.
  void join();

 private:
  friend Thread spawn(std::function<void()> fn);
  explicit Thread(int id) : id_(id) {}
  int id_ = -1;
};

/// Spawn a model thread running `fn`. At most kMaxModelThreads per run.
Thread spawn(std::function<void()> fn);

/// Explicit scheduling point with no effect (models sched_yield).
void yield();

/// Block until `pred` returns true. This is how a harness models a spin
/// loop ("wait until the ring drains", "wait for the barrier round to
/// advance") without the checker exploring unbounded spin iterations:
/// the thread is simply not runnable while the predicate is false. The
/// predicate must be a lock-free read of mc::Atomic state (it is
/// re-evaluated by the scheduler, side-effect free); when the wait is
/// granted it is re-run on the waiting thread so its acquire loads
/// establish the usual happens-before edges.
void await(const std::function<bool()>& pred);

/// Non-atomic-access instrumentation: declare a read/write of the cell
/// at `addr` so the checker can verify every conflicting pair is ordered
/// by happens-before in every schedule. Compiled into production code
/// through the NETSEER_MC_READ/WRITE macros (no-ops in normal builds).
void race_read(const void* addr, const char* what);
void race_write(const void* addr, const char* what);

/// Sequentially-consistent-valued atomic with release/acquire
/// happens-before tracking. API mirrors the std::atomic subset the
/// engine uses; every call is a scheduling point.
template <typename T>
class Atomic {
 public:
  Atomic() = default;
  explicit Atomic(T v) : value_(v) {}
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;
  ~Atomic() { detail::forget_object(this); }

  T load(std::memory_order mo = std::memory_order_seq_cst) const {
    T out{};
    Ctx ctx{const_cast<Atomic*>(this), &out, T{}};
    detail::perform(this, detail::OpKind::kAtomicLoad, mo, &ctx,
                    [](void* p) { *static_cast<Ctx*>(p)->out = static_cast<Ctx*>(p)->self->value_; });
    return out;
  }

  void store(T v, std::memory_order mo = std::memory_order_seq_cst) {
    Ctx ctx{this, nullptr, v};
    detail::perform(this, detail::OpKind::kAtomicStore, mo, &ctx,
                    [](void* p) { static_cast<Ctx*>(p)->self->value_ = static_cast<Ctx*>(p)->arg; });
  }

  T exchange(T v, std::memory_order mo = std::memory_order_seq_cst) {
    T out{};
    Ctx ctx{this, &out, v};
    detail::perform(this, detail::OpKind::kAtomicRmw, mo, &ctx, [](void* p) {
      auto* c = static_cast<Ctx*>(p);
      *c->out = c->self->value_;
      c->self->value_ = c->arg;
    });
    return out;
  }

  T fetch_add(T v, std::memory_order mo = std::memory_order_seq_cst) {
    T out{};
    Ctx ctx{this, &out, v};
    detail::perform(this, detail::OpKind::kAtomicRmw, mo, &ctx, [](void* p) {
      auto* c = static_cast<Ctx*>(p);
      *c->out = c->self->value_;
      c->self->value_ = static_cast<T>(c->self->value_ + c->arg);
    });
    return out;
  }

  T fetch_sub(T v, std::memory_order mo = std::memory_order_seq_cst) {
    T out{};
    Ctx ctx{this, &out, v};
    detail::perform(this, detail::OpKind::kAtomicRmw, mo, &ctx, [](void* p) {
      auto* c = static_cast<Ctx*>(p);
      *c->out = c->self->value_;
      c->self->value_ = static_cast<T>(c->self->value_ - c->arg);
    });
    return out;
  }

 private:
  struct Ctx {
    Atomic* self;
    T* out;
    T arg;
  };

  T value_{};
};

/// Instrumented mutex, annotated as a capability so the clang
/// thread-safety analysis sees straight through model-checked builds.
/// Inside a run, lock() is a scheduling point that is simply not
/// runnable while another thread holds the mutex (the scheduler reports
/// a deadlock when no thread is runnable); outside a run it falls back
/// to a real mutex.
class NETSEER_CAPABILITY("mutex") Mutex {
 public:
  Mutex();
  ~Mutex();
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NETSEER_ACQUIRE();
  void unlock() NETSEER_RELEASE();

 private:
  void* real_ = nullptr;  // std::mutex, opaque to keep this header light
};

/// RAII lock for mc::Mutex, mirroring util::MutexLock. The destructor
/// is noexcept(false): unlock is a scheduling point, and a run being
/// torn down unwinds parked threads with an internal exception. (During
/// active unwinding the runtime applies ops immediately instead, so a
/// double-exception terminate cannot happen.)
class NETSEER_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NETSEER_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() noexcept(false) NETSEER_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

namespace detail {
void assert_fail(const char* expr, const char* file, int line);
}  // namespace detail

/// Model-level assertion: inside a run, a violation records the failing
/// schedule and aborts the search; outside, it aborts the process.
#define MC_ASSERT(expr) \
  ((expr) ? (void)0 : ::netseer::mc::detail::assert_fail(#expr, __FILE__, __LINE__))

}  // namespace netseer::mc
