#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mc/runtime.h"

namespace netseer::mc {

/// One model-check harness: a small fixed-thread-count program over the
/// engine's real concurrency primitives, explored exhaustively by
/// mc::explore. Seeded-bug harnesses (expect_failure) exist to prove the
/// checker's teeth: the run "passes" only if the checker finds the
/// planted bug.
struct Harness {
  std::string name;
  std::string summary;
  bool expect_failure = false;
  Options options;
  std::function<Result(const Options&)> run;

  /// Did the exploration do what this harness demands? Correctness
  /// harnesses must exhaust the schedule space with no failure;
  /// seeded-bug harnesses must produce a failure.
  [[nodiscard]] bool passed(const Result& result) const {
    return expect_failure ? result.failed : result.ok();
  }
};

/// Registry of every shipped harness, in run order.
const std::vector<Harness>& all_harnesses();

}  // namespace netseer::mc
