#include "mc/runtime.h"

#include <array>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

namespace netseer::mc {

namespace {

using detail::OpKind;

/// Unwound through harness code when a failing or pruned run tears down
/// its remaining threads. Never escapes the runtime.
struct McAbort {};
/// Unwound when this thread's own operation violated the model (failed
/// MC_ASSERT, data race, bad unlock). The failure is already recorded.
struct McFailure {};

const char* kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kAtomicLoad:
      return "load";
    case OpKind::kAtomicStore:
      return "store";
    case OpKind::kAtomicRmw:
      return "rmw";
    case OpKind::kMutexLock:
      return "lock";
    case OpKind::kMutexUnlock:
      return "unlock";
    case OpKind::kAwait:
      return "await";
    case OpKind::kJoin:
      return "join";
    case OpKind::kSpawn:
      return "spawn";
    case OpKind::kYield:
      return "yield";
  }
  return "?";
}

const char* order_name(std::memory_order mo) {
  switch (mo) {
    case std::memory_order_relaxed:
      return "relaxed";
    case std::memory_order_consume:
    case std::memory_order_acquire:
      return "acquire";
    case std::memory_order_release:
      return "release";
    case std::memory_order_acq_rel:
      return "acq_rel";
    case std::memory_order_seq_cst:
      return "seq_cst";
  }
  return "?";
}

bool acquire_like(std::memory_order mo) {
  return mo == std::memory_order_acquire || mo == std::memory_order_consume ||
         mo == std::memory_order_acq_rel || mo == std::memory_order_seq_cst;
}
bool release_like(std::memory_order mo) {
  return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}

/// Vector clock over model threads: the happens-before machinery.
struct VC {
  std::array<std::uint32_t, kMaxModelThreads> v{};

  void join(const VC& other) {
    for (int i = 0; i < kMaxModelThreads; ++i) {
      if (other.v[i] > v[i]) v[i] = other.v[i];
    }
  }
  void clear() { v.fill(0); }
};

/// The pending visible operation a parked thread has declared.
struct Op {
  OpKind kind = OpKind::kYield;
  std::uint32_t obj = 0;
  std::memory_order mo = std::memory_order_seq_cst;
  void* ctx = nullptr;
  void (*effect)(void*) = nullptr;
  const std::function<bool()>* pred = nullptr;
  int target = -1;
};

/// Two ops must be explored in both orders unless provably independent
/// (they commute in every state — same resulting state, same
/// enabledness). Precision here is what makes sleep sets bite:
///  - yield commutes with everything;
///  - spawn stays fully conservative (rare, structural);
///  - join(T) only interacts with ops OF thread T (their clock feeds its
///    happens-before merge; nothing else can finish or un-finish T);
///  - await is a pure read of mc::Atomic state (the documented predicate
///    contract), so only atomic writes can flip its outcome or change
///    the views its acquire loads pick up — it commutes with loads,
///    other awaits, joins, and mutex ops;
///  - data ops conflict iff same object and at least one writes.
bool ops_dependent(int ta, OpKind ka, std::uint32_t oa, int tgta,
                   int tb, OpKind kb, std::uint32_t ob, int tgtb) {
  if (ka == OpKind::kYield || kb == OpKind::kYield) return false;
  if (ka == OpKind::kSpawn || kb == OpKind::kSpawn) return true;
  if (ka == OpKind::kJoin || kb == OpKind::kJoin) {
    if (ka == OpKind::kJoin && kb == OpKind::kJoin) return false;
    return ka == OpKind::kJoin ? tgta == tb : tgtb == ta;
  }
  auto write_like = [](OpKind k) {
    return k == OpKind::kAtomicStore || k == OpKind::kAtomicRmw;
  };
  if (ka == OpKind::kAwait || kb == OpKind::kAwait) {
    return ka == OpKind::kAwait ? write_like(kb) : write_like(ka);
  }
  if (oa != ob) return false;
  return !(ka == OpKind::kAtomicLoad && kb == OpKind::kAtomicLoad);
}

/// Per-run scheduling state for one model thread. The underlying OS
/// thread is NOT here: workers persist across the thousands of
/// re-executions a search performs (thread creation would dominate the
/// per-schedule cost), so they live in Worker slots and pick up a fresh
/// ThreadRec each run.
struct ThreadRec {
  VC clock;
  Op pending;
  bool parked = false;
  bool granted = false;
  bool finished = false;
};

struct MutexState {
  bool held = false;
  int owner = -1;
  VC released;
};

struct AtomicState {
  VC released;
};

/// FastTrack-style state for one instrumented non-atomic cell.
struct CellState {
  int w_tid = -1;
  std::uint32_t w_clk = 0;
  const char* w_what = nullptr;
  VC reads;
  std::array<const char*, kMaxModelThreads> r_what{};
};

enum class Mode : std::uint8_t { kNormal, kPure, kImmediate };

thread_local int tls_tid = -1;
thread_local Mode tls_mode = Mode::kNormal;

struct TraceEv {
  int tid;
  OpKind kind;
  std::uint32_t obj;
  std::memory_order mo;
};

class Runtime {
 public:
  static Runtime& inst() {
    static Runtime runtime;
    return runtime;
  }

  Result explore(const Options& options, const std::function<void()>& body);
  void perform(const void* objptr, OpKind kind, std::memory_order mo, void* ctx,
               void (*effect)(void*), const std::function<bool()>* pred, int target);
  int spawn(std::function<void()> fn);
  void forget(const void* objptr);
  void race_access(const void* addr, const char* what, bool is_write);
  [[noreturn]] void fail(std::string message);
  [[nodiscard]] bool active() const { return active_.load(std::memory_order_relaxed); }
  [[nodiscard]] bool failing() const { return failed_.load(std::memory_order_relaxed); }

 private:
  struct SleepEntry {
    int tid;
    OpKind kind;
    std::uint32_t obj;
    int target;  // join target, -1 otherwise
  };
  /// One node of the DFS spine: a scheduling decision, the alternatives
  /// still to explore, and the sleep-set bookkeeping that prunes
  /// independent reorderings (Godefroid's sleep sets).
  struct Node {
    int chosen = 0;
    bool fp_known = false;   // kind/obj recorded for this chosen yet?
    OpKind kind = OpKind::kYield;
    std::uint32_t obj = 0;
    int target = -1;         // join target, -1 otherwise
    std::vector<int> alternatives;
    std::vector<SleepEntry> entry_sleep;
    std::vector<SleepEntry> explored;
  };

  /// One persistent OS thread backing model-thread slot `id` across
  /// every run of a search. It sits on cv_ until spawn_locked hands it a
  /// body, executes that body as the model thread, marks its ThreadRec
  /// finished, and loops back for the next run's body.
  struct Worker {
    std::thread th;
    std::function<void()> fn;
    bool has_work = false;
  };

  void run_once(const std::function<void()>& body);
  bool advance_stack();
  void schedule_loop(std::unique_lock<std::mutex>& lk);
  void abort_run_locked(std::unique_lock<std::mutex>& lk);
  int spawn_locked(std::function<void()> fn, const VC* parent_clock);
  void worker_loop(int id);
  void shutdown_workers();
  void apply_effect_locked(int tid, const Op& op, bool traced);
  void record_failure_locked(std::string message);
  std::uint32_t obj_id_locked(const void* objptr) {
    auto [it, inserted] = obj_ids_.emplace(objptr, next_obj_id_);
    if (inserted) ++next_obj_id_;
    return it->second;
  }
  [[nodiscard]] bool quiescent_locked() const {
    for (const auto& rec : recs_) {
      if (!rec->finished && !(rec->parked && !rec->granted)) return false;
    }
    return true;
  }
  [[nodiscard]] bool all_finished_locked() const {
    for (const auto& rec : recs_) {
      if (!rec->finished) return false;
    }
    return true;
  }
  [[nodiscard]] bool op_enabled_locked(const Op& op) {
    switch (op.kind) {
      case OpKind::kMutexLock:
        return !mutexes_[op.obj].held;
      case OpKind::kJoin:
        return op.target >= 0 && recs_[static_cast<std::size_t>(op.target)]->finished;
      case OpKind::kAwait: {
        const Mode saved = tls_mode;
        tls_mode = Mode::kPure;
        const bool ready = (*op.pred)();
        tls_mode = saved;
        return ready;
      }
      default:
        return true;
    }
  }
  std::string describe(int tid, OpKind kind, std::uint32_t obj, std::memory_order mo) const;
  std::vector<std::string> render_trace_locked() const;

  std::mutex m_;
  std::condition_variable cv_;
  std::atomic<bool> active_{false};
  std::atomic<bool> failed_{false};
  bool abort_ = false;
  std::string failure_;
  std::vector<std::string> failure_trace_;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool shutdown_ = false;
  std::vector<std::unique_ptr<ThreadRec>> recs_;
  std::vector<TraceEv> trace_;

  std::unordered_map<const void*, std::uint32_t> obj_ids_;
  std::uint32_t next_obj_id_ = 1;
  std::unordered_map<std::uint32_t, MutexState> mutexes_;
  std::unordered_map<std::uint32_t, AtomicState> atomics_;
  std::unordered_map<const void*, CellState> cells_;

  std::vector<Node> stack_;
  std::vector<SleepEntry> cur_sleep_;
  std::size_t depth_ = 0;
  bool pruned_run_ = false;

  Options opts_;
  Result result_;
};

std::string Runtime::describe(int tid, OpKind kind, std::uint32_t obj, std::memory_order mo) const {
  std::string out = "T" + std::to_string(tid) + " ";
  switch (kind) {
    case OpKind::kAtomicLoad:
    case OpKind::kAtomicStore:
    case OpKind::kAtomicRmw:
      out += "atomic#" + std::to_string(obj) + "." + kind_name(kind) + "(" + order_name(mo) + ")";
      break;
    case OpKind::kMutexLock:
    case OpKind::kMutexUnlock:
      out += "mutex#" + std::to_string(obj) + "." + kind_name(kind) + "()";
      break;
    default:
      out += kind_name(kind);
      break;
  }
  return out;
}

std::vector<std::string> Runtime::render_trace_locked() const {
  std::vector<std::string> out;
  out.reserve(trace_.size());
  for (const TraceEv& ev : trace_) out.push_back(describe(ev.tid, ev.kind, ev.obj, ev.mo));
  return out;
}

void Runtime::record_failure_locked(std::string message) {
  if (failed_.load(std::memory_order_relaxed)) return;
  failed_.store(true, std::memory_order_relaxed);
  failure_ = std::move(message);
  failure_trace_ = render_trace_locked();
}

void Runtime::fail(std::string message) {
  {
    std::lock_guard<std::mutex> lk(m_);
    record_failure_locked(std::move(message));
  }
  throw McFailure{};
}

void Runtime::apply_effect_locked(int tid, const Op& op, bool traced) {
  ThreadRec& me = *recs_[static_cast<std::size_t>(tid)];
  if (traced) trace_.push_back(TraceEv{tid, op.kind, op.obj, op.mo});
  switch (op.kind) {
    case OpKind::kAtomicLoad: {
      if (acquire_like(op.mo)) me.clock.join(atomics_[op.obj].released);
      if (op.effect != nullptr) op.effect(op.ctx);
      break;
    }
    case OpKind::kAtomicStore: {
      if (op.effect != nullptr) op.effect(op.ctx);
      AtomicState& state = atomics_[op.obj];
      // A plain store heads a fresh release sequence: release publishes
      // the writer's view, relaxed publishes nothing (C++20 6.9.2.2).
      if (release_like(op.mo)) {
        state.released = me.clock;
      } else {
        state.released.clear();
      }
      break;
    }
    case OpKind::kAtomicRmw: {
      AtomicState& state = atomics_[op.obj];
      if (acquire_like(op.mo)) me.clock.join(state.released);
      if (op.effect != nullptr) op.effect(op.ctx);
      // RMWs continue the existing release sequence; a release RMW also
      // contributes its own view.
      if (release_like(op.mo)) state.released.join(me.clock);
      break;
    }
    case OpKind::kMutexLock: {
      MutexState& state = mutexes_[op.obj];
      state.held = true;
      state.owner = tid;
      me.clock.join(state.released);
      break;
    }
    case OpKind::kMutexUnlock: {
      MutexState& state = mutexes_[op.obj];
      if (!state.held || state.owner != tid) {
        record_failure_locked(describe(tid, op.kind, op.obj, op.mo) +
                              ": unlock of a mutex this thread does not hold");
        throw McFailure{};
      }
      state.held = false;
      state.owner = -1;
      state.released = me.clock;
      break;
    }
    case OpKind::kAwait:
      break;  // the predicate re-runs acquire loads after the grant
    case OpKind::kJoin: {
      me.clock.join(recs_[static_cast<std::size_t>(op.target)]->clock);
      break;
    }
    case OpKind::kSpawn: {
      if (op.effect != nullptr) op.effect(op.ctx);
      break;
    }
    case OpKind::kYield:
      break;
  }
  ++me.clock.v[tid];
}

void Runtime::perform(const void* objptr, OpKind kind, std::memory_order mo, void* ctx,
                      void (*effect)(void*), const std::function<bool()>* pred, int target) {
  if (tls_mode == Mode::kPure) {
    // Scheduler-side await-predicate evaluation: loads read the value
    // with no side effects; anything else in a predicate is a harness
    // bug surfaced as a failed run elsewhere.
    if (kind == OpKind::kAtomicLoad && effect != nullptr) effect(ctx);
    return;
  }
  const bool modeled = active() && tls_tid >= 0;
  if (!modeled) {
    if (effect != nullptr) effect(ctx);  // outside explore(): plain behavior
    return;
  }
  if (tls_mode == Mode::kImmediate || std::uncaught_exceptions() > 0) {
    // Teardown/unwind or await-regrant: apply HB + value effects without
    // rescheduling (parking during unwind would wedge the teardown).
    std::unique_lock<std::mutex> lk(m_);
    Op op{kind, objptr != nullptr ? obj_id_locked(objptr) : 0, mo, ctx, effect, pred, target};
    if (op.kind == OpKind::kMutexUnlock && !mutexes_[op.obj].held) return;  // unwind noise
    apply_effect_locked(tls_tid, op, /*traced=*/false);
    return;
  }

  std::unique_lock<std::mutex> lk(m_);
  ThreadRec& me = *recs_[static_cast<std::size_t>(tls_tid)];
  me.pending = Op{kind, objptr != nullptr ? obj_id_locked(objptr) : 0, mo, ctx, effect, pred,
                  target};
  me.parked = true;
  cv_.notify_all();
  cv_.wait(lk, [&] { return me.granted || abort_; });
  me.parked = false;
  if (!me.granted) {
    cv_.notify_all();
    throw McAbort{};
  }
  me.granted = false;
  const Op op = me.pending;
  apply_effect_locked(tls_tid, op, /*traced=*/true);
  lk.unlock();
  if (kind == OpKind::kAwait) {
    // Re-run the predicate on this thread so its acquire loads pick up
    // the publishing writes' views (the scheduler's checks were pure).
    const Mode saved = tls_mode;
    tls_mode = Mode::kImmediate;
    (*pred)();
    tls_mode = saved;
  }
}

void Runtime::race_access(const void* addr, const char* what, bool is_write) {
  if (tls_mode == Mode::kPure) return;
  if (!active() || tls_tid < 0) return;
  if (tls_mode == Mode::kImmediate || std::uncaught_exceptions() > 0) return;
  std::unique_lock<std::mutex> lk(m_);
  ThreadRec& me = *recs_[static_cast<std::size_t>(tls_tid)];
  CellState& cell = cells_[addr];
  const int tid = tls_tid;
  auto report = [&](const char* prior_what, int prior_tid, const char* prior_kind) {
    std::string msg = std::string("data race: ") + (is_write ? "write" : "read") + " of `" +
                      what + "` by T" + std::to_string(tid) + " is unordered with prior " +
                      prior_kind + " of `" + (prior_what != nullptr ? prior_what : "?") +
                      "` by T" + std::to_string(prior_tid);
    record_failure_locked(std::move(msg));
    lk.unlock();
    throw McFailure{};
  };
  if (cell.w_tid >= 0 && cell.w_tid != tid &&
      me.clock.v[cell.w_tid] < cell.w_clk) {
    report(cell.w_what, cell.w_tid, "write");
  }
  if (is_write) {
    for (int u = 0; u < kMaxModelThreads; ++u) {
      if (u != tid && cell.reads.v[u] > me.clock.v[u]) report(cell.r_what[u], u, "read");
    }
    cell.w_tid = tid;
    cell.w_clk = me.clock.v[tid];
    cell.w_what = what;
    cell.reads.clear();
    cell.r_what.fill(nullptr);
  } else {
    cell.reads.v[tid] = me.clock.v[tid];
    cell.r_what[static_cast<std::size_t>(tid)] = what;
  }
  ++me.clock.v[tid];
}

int Runtime::spawn_locked(std::function<void()> fn, const VC* parent_clock) {
  if (recs_.size() >= kMaxModelThreads) {
    record_failure_locked("spawn: more than kMaxModelThreads model threads");
    throw McFailure{};
  }
  const int id = static_cast<int>(recs_.size());
  recs_.push_back(std::make_unique<ThreadRec>());
  ThreadRec& rec = *recs_.back();
  if (parent_clock != nullptr) rec.clock = *parent_clock;
  if (workers_.size() <= static_cast<std::size_t>(id)) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->th = std::thread([this, id] { worker_loop(id); });
  }
  Worker& worker = *workers_[static_cast<std::size_t>(id)];
  worker.fn = std::move(fn);
  worker.has_work = true;
  cv_.notify_all();
  return id;
}

int Runtime::spawn(std::function<void()> fn) {
  struct Ctx {
    Runtime* self;
    std::function<void()>* fn;
    int parent;
    int id;
  };
  Ctx ctx{this, &fn, tls_tid, -1};
  perform(nullptr, OpKind::kSpawn, std::memory_order_seq_cst, &ctx,
          [](void* p) {
            auto* c = static_cast<Ctx*>(p);
            // Called under m_ from apply_effect_locked: the child starts
            // with (and so happens-after) the spawner's view.
            const VC* parent = &c->self->recs_[static_cast<std::size_t>(c->parent)]->clock;
            c->id = c->self->spawn_locked(std::move(*c->fn), parent);
          },
          nullptr, -1);
  return ctx.id;
}

void Runtime::worker_loop(int id) {
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    cv_.wait(lk, [&] { return workers_[static_cast<std::size_t>(id)]->has_work || shutdown_; });
    if (shutdown_) return;
    Worker& worker = *workers_[static_cast<std::size_t>(id)];
    worker.has_work = false;
    std::function<void()> fn = std::move(worker.fn);
    lk.unlock();
    tls_tid = id;
    tls_mode = Mode::kNormal;
    try {
      // Park at birth: user code only runs once the scheduler grants
      // this thread, so a freshly spawned thread can never race its
      // spawner's continuation between creation and its first visible
      // op.
      perform(nullptr, OpKind::kYield, std::memory_order_seq_cst, nullptr, nullptr, nullptr, -1);
      fn();
    } catch (const McAbort&) {
    } catch (const McFailure&) {
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> guard(m_);
      record_failure_locked(std::string("uncaught exception in model thread: ") + e.what());
    } catch (...) {
      std::lock_guard<std::mutex> guard(m_);
      record_failure_locked("uncaught exception in model thread");
    }
    fn = nullptr;  // destroy captures outside the runtime lock
    tls_tid = -1;
    lk.lock();
    recs_[static_cast<std::size_t>(id)]->finished = true;
    cv_.notify_all();
  }
}

void Runtime::shutdown_workers() {
  {
    std::lock_guard<std::mutex> lk(m_);
    shutdown_ = true;
    cv_.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->th.joinable()) worker->th.join();
  }
  workers_.clear();
  shutdown_ = false;
}

void Runtime::abort_run_locked(std::unique_lock<std::mutex>& lk) {
  abort_ = true;
  cv_.notify_all();
  cv_.wait(lk, [&] { return all_finished_locked(); });
}

void Runtime::schedule_loop(std::unique_lock<std::mutex>& lk) {
  for (;;) {
    cv_.wait(lk, [&] { return quiescent_locked(); });
    if (failed_.load(std::memory_order_relaxed)) {
      abort_run_locked(lk);
      return;
    }
    if (all_finished_locked()) return;
    if (trace_.size() >= opts_.max_steps) {
      record_failure_locked("livelock: max_steps exceeded (unbounded spin? model waits with "
                            "mc::await)");
      abort_run_locked(lk);
      return;
    }
    // Enabled = parked threads whose declared op can execute now.
    std::vector<int> enabled;
    for (std::size_t t = 0; t < recs_.size(); ++t) {
      ThreadRec& rec = *recs_[t];
      if (!rec.finished && rec.parked && op_enabled_locked(rec.pending)) {
        enabled.push_back(static_cast<int>(t));
      }
    }
    if (enabled.empty()) {
      std::string msg = "deadlock:";
      for (std::size_t t = 0; t < recs_.size(); ++t) {
        const ThreadRec& rec = *recs_[t];
        if (rec.finished) continue;
        msg += " " + describe(static_cast<int>(t), rec.pending.kind, rec.pending.obj,
                              rec.pending.mo) + " blocked;";
      }
      record_failure_locked(std::move(msg));
      abort_run_locked(lk);
      return;
    }

    int chosen;
    if (depth_ < stack_.size()) {
      // Replay the DFS prefix.
      Node& node = stack_[depth_];
      bool runnable = false;
      for (int t : enabled) runnable = runnable || t == node.chosen;
      const Op& pending = recs_[static_cast<std::size_t>(node.chosen)]->pending;
      if (!runnable ||
          (node.fp_known && (node.kind != pending.kind || node.obj != pending.obj))) {
        record_failure_locked(
            "nondeterministic harness: replayed schedule diverged at step " +
            std::to_string(depth_));
        abort_run_locked(lk);
        return;
      }
      if (!node.fp_known) {
        node.kind = pending.kind;
        node.obj = pending.obj;
        node.target = pending.target;
        node.fp_known = true;
      }
      chosen = node.chosen;
    } else {
      // Fresh node: branch over enabled threads not in the sleep set.
      std::vector<int> free;
      for (int t : enabled) {
        bool sleeping = false;
        for (const SleepEntry& entry : cur_sleep_) sleeping = sleeping || entry.tid == t;
        if (!sleeping) free.push_back(t);
      }
      if (free.empty()) {
        // Every enabled continuation is covered by a sibling branch.
        pruned_run_ = true;
        abort_run_locked(lk);
        return;
      }
      Node node;
      node.chosen = free.front();
      const Op& pending = recs_[static_cast<std::size_t>(node.chosen)]->pending;
      node.kind = pending.kind;
      node.obj = pending.obj;
      node.target = pending.target;
      node.fp_known = true;
      node.alternatives.assign(free.begin() + 1, free.end());
      node.entry_sleep = cur_sleep_;
      stack_.push_back(std::move(node));
      chosen = stack_.back().chosen;
    }

    // Sleep-set propagation: the child keeps every sleeping sibling
    // whose pending op is independent of the op we are about to run.
    const Node& node = stack_[depth_];
    cur_sleep_.clear();
    auto keep_if_independent = [&](const SleepEntry& entry) {
      if (!ops_dependent(entry.tid, entry.kind, entry.obj, entry.target,
                         node.chosen, node.kind, node.obj, node.target)) {
        cur_sleep_.push_back(entry);
      }
    };
    for (const SleepEntry& entry : node.entry_sleep) keep_if_independent(entry);
    for (const SleepEntry& entry : node.explored) keep_if_independent(entry);
    ++depth_;

    recs_[static_cast<std::size_t>(chosen)]->granted = true;
    cv_.notify_all();
  }
}

void Runtime::run_once(const std::function<void()>& body) {
  obj_ids_.clear();
  next_obj_id_ = 1;
  mutexes_.clear();
  atomics_.clear();
  cells_.clear();
  trace_.clear();
  recs_.clear();
  abort_ = false;
  pruned_run_ = false;
  depth_ = 0;
  cur_sleep_.clear();
  active_.store(true, std::memory_order_relaxed);

  std::unique_lock<std::mutex> lk(m_);
  spawn_locked(body, nullptr);
  schedule_loop(lk);
  // schedule_loop returns only once every model thread's body has run to
  // completion (or unwound), so the workers are all back waiting for the
  // next run's bodies — no joins here; the pool persists across runs.
  lk.unlock();
  active_.store(false, std::memory_order_relaxed);
  result_.steps += trace_.size();
  if (trace_.size() > result_.max_depth) result_.max_depth = trace_.size();
  if (pruned_run_) {
    ++result_.pruned;
  } else {
    ++result_.schedules;
  }
}

bool Runtime::advance_stack() {
  while (!stack_.empty()) {
    Node& node = stack_.back();
    node.explored.push_back(SleepEntry{node.chosen, node.kind, node.obj, node.target});
    if (!node.alternatives.empty()) {
      node.chosen = node.alternatives.front();
      node.alternatives.erase(node.alternatives.begin());
      node.fp_known = false;
      return true;
    }
    stack_.pop_back();
  }
  return false;
}

Result Runtime::explore(const Options& options, const std::function<void()>& body) {
  opts_ = options;
  result_ = Result{};
  failed_.store(false, std::memory_order_relaxed);
  failure_.clear();
  failure_trace_.clear();
  stack_.clear();
  for (;;) {
    run_once(body);
    if (failed_.load(std::memory_order_relaxed)) {
      result_.failed = true;
      result_.failure = failure_;
      result_.trace = failure_trace_;
      break;
    }
    if (!advance_stack()) {
      result_.exhausted = true;
      break;
    }
    if (result_.schedules + result_.pruned >= opts_.max_schedules) break;  // budget exhausted
  }
  shutdown_workers();
  return result_;
}

void Runtime::forget(const void* objptr) {
  if (!active()) return;
  std::lock_guard<std::mutex> lk(m_);
  auto it = obj_ids_.find(objptr);
  if (it == obj_ids_.end()) return;
  mutexes_.erase(it->second);
  atomics_.erase(it->second);
  obj_ids_.erase(it);
}

}  // namespace

namespace detail {

void perform(const void* obj, OpKind kind, std::memory_order mo, void* ctx, void (*effect)(void*),
             const std::function<bool()>* pred, int target) {
  Runtime::inst().perform(obj, kind, mo, ctx, effect, pred, target);
}

void forget_object(const void* obj) { Runtime::inst().forget(obj); }

int spawn_thread(std::function<void()> fn) { return Runtime::inst().spawn(std::move(fn)); }

void fail(std::string message) { Runtime::inst().fail(std::move(message)); }

bool failing() { return Runtime::inst().failing(); }

void assert_fail(const char* expr, const char* file, int line) {
  if (!Runtime::inst().active() || tls_tid < 0) {
    std::fprintf(stderr, "MC_ASSERT failed outside a model run: %s (%s:%d)\n", expr, file, line);
    std::abort();
  }
  Runtime::inst().fail(std::string("MC_ASSERT failed: ") + expr + " (" + file + ":" +
                       std::to_string(line) + ")");
}

/// Hooks behind the NETSEER_MC build of util::Mutex (see
/// util/thread_annotations.h): same instrumented-mutex semantics as
/// mc::Mutex, with a real std::mutex fallback outside model runs.
void* instrumented_mutex_make() { return new std::mutex(); }

void instrumented_mutex_drop(void* real, const void* self) {
  Runtime::inst().forget(self);
  delete static_cast<std::mutex*>(real);
}

void instrumented_mutex_lock(void* real, const void* self) {
  if (Runtime::inst().active() && tls_tid >= 0) {
    Runtime::inst().perform(self, OpKind::kMutexLock, std::memory_order_seq_cst, nullptr, nullptr,
                            nullptr, -1);
    return;
  }
  static_cast<std::mutex*>(real)->lock();
}

void instrumented_mutex_unlock(void* real, const void* self) {
  if (Runtime::inst().active() && tls_tid >= 0) {
    Runtime::inst().perform(self, OpKind::kMutexUnlock, std::memory_order_seq_cst, nullptr,
                            nullptr, nullptr, -1);
    return;
  }
  static_cast<std::mutex*>(real)->unlock();
}

}  // namespace detail

bool in_model() { return Runtime::inst().active() && tls_tid >= 0; }

Result explore(const Options& options, const std::function<void()>& body) {
  return Runtime::inst().explore(options, body);
}

Thread spawn(std::function<void()> fn) { return Thread(detail::spawn_thread(std::move(fn))); }

void Thread::join() {
  if (id_ < 0) return;
  detail::perform(nullptr, detail::OpKind::kJoin, std::memory_order_seq_cst, nullptr, nullptr,
                  nullptr, id_);
  id_ = -1;
}

void yield() {
  detail::perform(nullptr, detail::OpKind::kYield, std::memory_order_seq_cst, nullptr, nullptr,
                  nullptr, -1);
}

void await(const std::function<bool()>& pred) {
  detail::perform(nullptr, detail::OpKind::kAwait, std::memory_order_seq_cst, nullptr, nullptr,
                  &pred, -1);
}

void race_read(const void* addr, const char* what) {
  Runtime::inst().race_access(addr, what, /*is_write=*/false);
}

void race_write(const void* addr, const char* what) {
  Runtime::inst().race_access(addr, what, /*is_write=*/true);
}

Mutex::Mutex() : real_(detail::instrumented_mutex_make()) {}
Mutex::~Mutex() { detail::instrumented_mutex_drop(real_, this); }
void Mutex::lock() { detail::instrumented_mutex_lock(real_, this); }
void Mutex::unlock() { detail::instrumented_mutex_unlock(real_, this); }

}  // namespace netseer::mc
