#include "store/store.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <unordered_set>

#include "packet/addr.h"
#include "store/executor.h"
#include "store/subscription.h"
#include "store/writer.h"

namespace netseer::store {

namespace fs = std::filesystem;

// ---- QueryCursor ---------------------------------------------------------

QueryCursor::QueryCursor(const FlowEventStore& event_store, const backend::EventQuery& query)
    : store_(&event_store), query_(query), generation_(event_store.generation_) {
  StoreStats& stats = store_->stats_;
  ++stats.queries;

  for (const auto& segment : store_->segments_) {
    if (!segment->overlaps(query_.from, query_.to)) {
      ++stats.segments_pruned;
      continue;
    }
    if (query_.type && segment->type_count(*query_.type) == 0) {
      ++stats.segments_pruned;
      continue;
    }
    SegmentPlan plan;
    plan.segment = segment.get();
    if (query_.flow) {
      plan.candidates = segment->flow_rows(query_.flow->hash64());
      if (plan.candidates == nullptr) {
        ++stats.segments_pruned;
        continue;
      }
      ++stats.index_hits;
    } else if (query_.switch_id) {
      plan.candidates = segment->switch_rows(*query_.switch_id);
      if (plan.candidates == nullptr) {
        ++stats.segments_pruned;
        continue;
      }
      ++stats.index_hits;
    } else {
      ++stats.full_segment_scans;
    }
    ++stats.segments_scanned;
    segments_.push_back(plan);
  }

  // Scatter-gather: with a pool and more than one surviving segment,
  // pre-filter every segment's rows in parallel. Gather order is the
  // plan (= LSN) order, so parallel and serial cursors emit
  // identically; per-task stat tallies merge after the barrier because
  // StoreStats is not atomic.
  if (store_->pool_ != nullptr && segments_.size() > 1) {
    parallel_ = true;
    matches_.resize(segments_.size());
    struct Tally {
      std::uint64_t examined = 0;
      std::uint64_t matched = 0;
    };
    std::vector<Tally> tallies(segments_.size());
    store_->pool_->run(segments_.size(), [&](std::size_t i) {
      const SegmentPlan& plan = segments_[i];
      const auto& rows = plan.segment->rows();
      std::vector<std::uint32_t>& out = matches_[i];
      Tally& tally = tallies[i];
      if (plan.candidates != nullptr) {
        for (const std::uint32_t row : *plan.candidates) {
          ++tally.examined;
          if (query_.matches(rows[row].stored)) {
            out.push_back(row);
            ++tally.matched;
          }
        }
      } else {
        for (std::uint32_t row = 0; row < rows.size(); ++row) {
          ++tally.examined;
          if (query_.matches(rows[row].stored)) {
            out.push_back(row);
            ++tally.matched;
          }
        }
      }
    });
    for (const Tally& tally : tallies) {
      stats.rows_examined += tally.examined;
      stats.rows_matched += tally.matched;
    }
    ++stats.parallel_queries;
    stats.parallel_tasks += segments_.size();
  }

  // Rows not yet sealed: the memtable (already in LSN order), then the
  // shard buffers in global append order. Shard iteration order is a
  // hash-map artifact, so sort by the append sequence for determinism.
  tail_.reserve(store_->memtable_.size());
  for (const Row& row : store_->memtable_) tail_.push_back(&row.stored);
  std::vector<std::pair<std::uint64_t, const backend::StoredEvent*>> pending_rows;
  for (const auto& [node, shard] : store_->shards_) {
    (void)node;
    for (const auto& pending : shard.rows) {
      pending_rows.emplace_back(pending.order, &pending.stored);
    }
  }
  std::sort(pending_rows.begin(), pending_rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [order, stored] : pending_rows) {
    (void)order;
    tail_.push_back(stored);
  }
}

void QueryCursor::check_generation() const {
  if (store_->generation_ == generation_) return;
  std::fprintf(stderr,
               "QueryCursor used after store mutation (generation %llu -> %llu): "
               "cursors do not survive append/flush/seal/compaction\n",
               static_cast<unsigned long long>(generation_),
               static_cast<unsigned long long>(store_->generation_));
  std::abort();
}

const backend::StoredEvent* QueryCursor::next() {
  check_generation();
  StoreStats& stats = store_->stats_;
  while (!in_tail_) {
    if (segment_idx_ >= segments_.size()) {
      in_tail_ = true;
      break;
    }
    const SegmentPlan& plan = segments_[segment_idx_];
    if (parallel_) {
      // Rows were pre-filtered (and counted) at construction: walk the
      // match lists straight through, in plan order.
      const std::vector<std::uint32_t>& matches = matches_[segment_idx_];
      if (row_idx_ >= matches.size()) {
        ++segment_idx_;
        row_idx_ = 0;
        continue;
      }
      return &plan.segment->rows()[matches[row_idx_++]].stored;
    }
    const std::size_t limit =
        plan.candidates != nullptr ? plan.candidates->size() : plan.segment->rows().size();
    if (row_idx_ >= limit) {
      ++segment_idx_;
      row_idx_ = 0;
      continue;
    }
    const std::size_t row =
        plan.candidates != nullptr ? (*plan.candidates)[row_idx_] : row_idx_;
    ++row_idx_;
    ++stats.rows_examined;
    const backend::StoredEvent& stored = plan.segment->rows()[row].stored;
    if (query_.matches(stored)) {
      ++stats.rows_matched;
      return &stored;
    }
  }
  while (tail_idx_ < tail_.size()) {
    const backend::StoredEvent* stored = tail_[tail_idx_++];
    ++stats.rows_examined;
    if (query_.matches(*stored)) {
      ++stats.rows_matched;
      return stored;
    }
  }
  return nullptr;
}

// ---- FlowEventStore ------------------------------------------------------

FlowEventStore::FlowEventStore(StoreOptions options) : options_(std::move(options)) {
  if (options_.shard_batch == 0) options_.shard_batch = 1;
  if (options_.segment_events == 0) options_.segment_events = 1;
  if (options_.compact_fanin < 2) options_.compact_fanin = 2;
  if (options_.writer_queue == 0) options_.writer_queue = 1;
  if (durable()) {
    util::MutexLock lock(maint_mu_);
    recover_from_dir();
  }
  if (options_.query_threads > 1) {
    pool_ = std::make_unique<QueryPool>(options_.query_threads);
  }
}

FlowEventStore::~FlowEventStore() {
  // Clean shutdown makes everything appended durable; a crash between
  // the last sync and here is what the WAL is for. writer_ is declared
  // after wal_, so its thread joins before the WAL closes.
  if (durable() && !wal_dead()) {
    flush();
    if (writer_ && writer_->sync_to(next_lsn_ - 1)) {
      durable_lsn_ = std::max(durable_lsn_, next_lsn_ - 1);
    }
  }
}

void FlowEventStore::add_batch(std::span<const core::FlowEvent> events, util::SimTime now) {
  if (events.empty()) return;
  ++generation_;
  for (const core::FlowEvent& event : events) {
    Shard& shard = shards_[event.switch_id];
    shard.rows.push_back(Pending{backend::StoredEvent{event, now}, append_seq_++});
    if (shard.rows.size() >= options_.shard_batch) flush_shard(shard);
  }
  stats_.appended += events.size();
}

void FlowEventStore::flush_shard(Shard& shard) {
  if (shard.rows.empty()) return;
  ++generation_;
  const std::size_t n = shard.rows.size();

  // Rows go straight into the memtable; a copy rides a recycled vector
  // to the writer thread, which keeps the WAL framing (one record per
  // shard batch, consecutive LSNs) byte-identical to the old inline
  // path while the fsync happens off the ingest thread.
  memtable_.reserve(std::max(memtable_.size() + n, options_.segment_events));
  if (writer_) {
    std::vector<Row> batch = writer_->take_buffer();
    batch.reserve(n);
    for (const Pending& pending : shard.rows) {
      batch.push_back(Row{pending.stored, next_lsn_++});
    }
    // Bulk-copy into the memtable (Row is trivially copyable, so this
    // is one memmove) rather than pushing each row twice.
    memtable_.insert(memtable_.end(), batch.begin(), batch.end());
    writer_->submit(std::move(batch));
  } else {
    for (const Pending& pending : shard.rows) {
      memtable_.push_back(Row{pending.stored, next_lsn_++});
    }
  }
  const std::uint64_t last_lsn = next_lsn_ - 1;
  shard.rows.clear();
  ++stats_.batches_flushed;

  if (!durable()) {
    // No WAL: flushed rows are as durable as an in-memory store gets,
    // which is what lets subscriptions tail them.
    durable_lsn_ = std::max(durable_lsn_, last_lsn);
  } else if (options_.sync_every_batch && writer_ && writer_->sync_to(last_lsn)) {
    durable_lsn_ = std::max(durable_lsn_, last_lsn);
  }

  if (memtable_.size() >= options_.segment_events) seal_active();
}

void FlowEventStore::flush() {
  // Hash-map iteration order is not deterministic across platforms;
  // flush shards in switch-id order so LSN assignment is reproducible.
  std::vector<util::NodeId> ids;
  ids.reserve(shards_.size());
  for (const auto& [node, shard] : shards_) {
    if (!shard.rows.empty()) ids.push_back(node);
  }
  std::sort(ids.begin(), ids.end());
  for (const util::NodeId node : ids) flush_shard(shards_[node]);
  // Everything handed off is appended (not necessarily fsynced) on
  // return, preserving flush()'s pre-async contract.
  if (writer_) writer_->drain();
}

bool FlowEventStore::sync() {
  flush();
  if (!durable()) {
    durable_lsn_ = next_lsn_ - 1;
    return true;
  }
  if (!wal_ || !writer_ || wal_->dead()) return false;
  if (!writer_->sync_to(next_lsn_ - 1)) return false;
  durable_lsn_ = std::max(durable_lsn_, next_lsn_ - 1);
  return true;
}

std::uint64_t FlowEventStore::durable_lsn() const {
  std::uint64_t lsn = durable_lsn_;
  if (writer_) lsn = std::max(lsn, writer_->watermark());
  return lsn;
}

void FlowEventStore::seal_active() {
  if (memtable_.empty()) return;
  ++generation_;
  util::MutexLock lock(maint_mu_);
  auto segment = std::make_unique<Segment>(Segment::build(std::move(memtable_)));
  memtable_.clear();
  // Segment-file creation is deferred to persist_segments_locked()
  // (maintenance/checkpoint), keeping the seal on the ingest path a
  // pure in-memory operation; the WAL covers the rows until then.
  segments_.push_back(std::move(segment));
  ++stats_.segments_sealed;
}

std::uint64_t FlowEventStore::sealed_durable_watermark_locked() const {
  // Advance only across contiguously durable segments: a memory-only
  // segment in the middle (failed save) still needs its WAL rows.
  std::uint64_t watermark = sealed_watermark_floor_;
  for (const auto& segment : segments_) {
    if (segment->file_id() == 0) break;
    watermark = segment->max_lsn();
  }
  return watermark;
}

void FlowEventStore::wal_gc_locked() {
  if (wal_) wal_->remove_obsolete(sealed_durable_watermark_locked());
}

std::size_t FlowEventStore::persist_segments_locked() {
  if (!durable()) return 0;
  std::size_t persisted = 0;
  // Durable segments always form a prefix of segments_ (seal appends,
  // retention evicts from the front, compaction only merges durable
  // inputs), so saving front-to-back and stopping at the first failure
  // keeps the durable-LSN range contiguous.
  for (const auto& segment : segments_) {
    if (segment->file_id() != 0) continue;
    const std::uint32_t file_id = next_segment_file_++;
    if (!segment->save(segment_path(options_.dir, file_id))) break;
    segment->set_file_id(file_id);
    durable_lsn_ = std::max(durable_lsn_, segment->max_lsn());
    ++persisted;
  }
  return persisted;
}

std::size_t FlowEventStore::compact() {
  util::MutexLock lock(maint_mu_);
  return compact_locked();
}

std::size_t FlowEventStore::compact_locked() {
  std::size_t merges = 0;
  while (segments_.size() > options_.compact_min_segments) {
    const std::size_t fanin = std::min(options_.compact_fanin, segments_.size());
    if (fanin < 2) break;
    bool inputs_durable = true;
    for (std::size_t i = 0; i < fanin; ++i) {
      inputs_durable = inputs_durable && segments_[i]->file_id() != 0;
    }
    // Segment persistence is deferred to maintenance: on a durable
    // store, never merge a memory-only segment — wait for
    // persist_segments_locked() to catch up, so the output's
    // save-then-delete-inputs sequence stays crash-safe.
    if (durable() && !inputs_durable) break;
    std::vector<Row> merged;
    std::size_t total = 0;
    for (std::size_t i = 0; i < fanin; ++i) total += segments_[i]->size();
    merged.reserve(total);
    for (std::size_t i = 0; i < fanin; ++i) {
      const auto& seg_rows = segments_[i]->rows();
      merged.insert(merged.end(), seg_rows.begin(), seg_rows.end());
    }
    auto segment = std::make_unique<Segment>(Segment::build(std::move(merged)));
    if (durable()) {
      const std::uint32_t file_id = next_segment_file_++;
      if (!segment->save(segment_path(options_.dir, file_id))) break;  // keep the originals
      segment->set_file_id(file_id);
      for (std::size_t i = 0; i < fanin; ++i) {
        std::error_code ec;
        fs::remove(segment_path(options_.dir, segments_[i]->file_id()), ec);
      }
    }
    segments_.erase(segments_.begin(), segments_.begin() + static_cast<std::ptrdiff_t>(fanin));
    segments_.insert(segments_.begin(), std::move(segment));
    ++generation_;
    ++merges;
    ++stats_.compactions;
    stats_.segments_compacted += fanin;
  }
  return merges;
}

std::size_t FlowEventStore::enforce_retention() {
  util::MutexLock lock(maint_mu_);
  return enforce_retention_locked();
}

std::size_t FlowEventStore::enforce_retention_locked() {
  if (options_.retain_events == 0) return 0;
  std::uint64_t sealed_rows = 0;
  for (const auto& segment : segments_) sealed_rows += segment->size();
  std::size_t evicted = 0;
  while (sealed_rows > options_.retain_events && !segments_.empty()) {
    const auto& victim = segments_.front();
    sealed_rows -= victim->size();
    stats_.events_evicted += victim->size();
    ++stats_.segments_evicted;
    sealed_watermark_floor_ = std::max(sealed_watermark_floor_, victim->max_lsn());
    if (victim->file_id() != 0) {
      std::error_code ec;
      fs::remove(segment_path(options_.dir, victim->file_id()), ec);
    }
    segments_.erase(segments_.begin());
    ++generation_;
    ++evicted;
  }
  return evicted;
}

void FlowEventStore::maintain() {
  // One acquisition for the whole round (the mutex is non-recursive).
  util::MutexLock lock(maint_mu_);
  persist_segments_locked();
  compact_locked();
  enforce_retention_locked();
  wal_gc_locked();
}

void FlowEventStore::checkpoint() {
  flush();
  seal_active();
  // A dead WAL still lets checkpoint persist sealed segments; the
  // durable watermark simply stops advancing.
  (void)sync();
  util::MutexLock lock(maint_mu_);
  persist_segments_locked();
  compact_locked();
  enforce_retention_locked();
  wal_gc_locked();
  const std::uint64_t watermark = sealed_durable_watermark_locked();
  if (!legacy_wal_files_.empty() && watermark >= legacy_wal_max_lsn_) {
    for (const auto& path : legacy_wal_files_) {
      std::error_code ec;
      if (fs::remove(path, ec) && !ec) ++legacy_wal_deleted_;
    }
    legacy_wal_files_.clear();
  }
}

sim::TaskHandle FlowEventStore::start_maintenance(sim::Simulator& sim,
                                                  util::SimDuration interval) {
  return sim.schedule_every(interval, [this] { maintain(); });
}

void FlowEventStore::recover_from_dir() {
  fs::create_directories(options_.dir);
  recovery_.ran = true;

  std::uint32_t max_file_id = 0;
  std::vector<std::unique_ptr<Segment>> loaded;
  for (const auto& ref : list_segment_files(options_.dir)) {
    max_file_id = std::max(max_file_id, ref.index);
    auto segment = Segment::load(ref.path, ref.index);
    if (!segment) {
      ++recovery_.segments_corrupt;
      continue;
    }
    loaded.push_back(std::make_unique<Segment>(std::move(*segment)));
  }
  next_segment_file_ = max_file_id + 1;

  // A crash between compact()'s rename and its input deletes leaves the
  // merged segment AND its inputs on disk; loading both would duplicate
  // every merged row. Keep a segment only when no other segment's LSN
  // range fully covers it; on an identical range the newer file id (the
  // compaction output) wins. Containment is transitive, so comparing
  // against already-dropped entries is never needed.
  for (auto& candidate : loaded) {
    const bool superseded =
        std::any_of(loaded.begin(), loaded.end(), [&](const std::unique_ptr<Segment>& other) {
          if (!other || other.get() == candidate.get()) return false;
          if (other->min_lsn() > candidate->min_lsn() ||
              other->max_lsn() < candidate->max_lsn()) {
            return false;
          }
          const bool strictly_larger = other->min_lsn() < candidate->min_lsn() ||
                                       other->max_lsn() > candidate->max_lsn();
          return strictly_larger || other->file_id() > candidate->file_id();
        });
    if (superseded) {
      ++recovery_.segments_superseded;
      std::error_code ec;
      fs::remove(segment_path(options_.dir, candidate->file_id()), ec);
      candidate.reset();
      continue;
    }
    ++recovery_.segments_loaded;
    recovery_.segment_rows += candidate->size();
    segments_.push_back(std::move(candidate));
  }
  // File ids track seal time, not row age (compaction outputs get fresh
  // ids), so order the loaded segments by their LSN fences.
  std::sort(segments_.begin(), segments_.end(),
            [](const auto& a, const auto& b) { return a->min_lsn() < b->min_lsn(); });

  std::uint64_t watermark = 0;
  for (const auto& segment : segments_) watermark = std::max(watermark, segment->max_lsn());

  // Repair mode: torn files are truncated to their valid prefix, so a
  // later recovery replays past them into files this incarnation's
  // writer is about to create.
  const WalReplayResult replay = replay_wal_dir(
      options_.dir, watermark, [this](Row&& row) { memtable_.push_back(std::move(row)); },
      /*repair=*/true);
  recovery_.wal_records_replayed = replay.records;
  recovery_.wal_rows_replayed = replay.rows;
  recovery_.wal_rows_skipped = replay.skipped_rows;
  recovery_.wal_files_repaired = replay.repaired_files;
  recovery_.torn_tail = replay.torn_tail;
  recovery_.max_lsn = std::max(watermark, replay.max_lsn);

  next_lsn_ = recovery_.max_lsn + 1;
  durable_lsn_ = recovery_.max_lsn;
  append_seq_ = 0;

  for (const auto& ref : list_wal_files(options_.dir)) {
    legacy_wal_files_.push_back(ref.path);
  }
  legacy_wal_max_lsn_ = replay.max_lsn;

  WalWriter::Options wal_options;
  wal_options.dir = options_.dir;
  wal_options.segment_bytes = options_.wal_segment_bytes;
  wal_ = std::make_unique<WalWriter>(wal_options, replay.last_file_index + 1);
  // Rows replayed out of the WAL are on disk already: seed the group
  // commit watermark at the recovered LSN so they count as durable.
  writer_ = std::make_unique<GroupCommitWriter>(*wal_, options_.sync_every_batch, durable_lsn_,
                                                options_.writer_queue);
}

QueryCursor FlowEventStore::scan(const backend::EventQuery& event_query) const {
  return QueryCursor(*this, event_query);
}

Subscription FlowEventStore::subscribe(backend::EventQuery event_query,
                                       std::uint64_t from_lsn) const {
  return Subscription(*this, std::move(event_query), from_lsn);
}

void FlowEventStore::set_query_threads(std::size_t threads) {
  options_.query_threads = threads;
  pool_.reset();
  if (threads > 1) pool_ = std::make_unique<QueryPool>(threads);
}

const StoreStats& FlowEventStore::stats() const {
  if (wal_) {
    stats_.wal_records = wal_->records_written();
    stats_.wal_bytes = wal_->bytes_written();
    stats_.wal_syncs = wal_->syncs();
    stats_.wal_files_deleted = wal_->files_deleted() + legacy_wal_deleted_;
  }
  if (writer_) {
    stats_.groups_committed = writer_->groups_committed();
    stats_.group_batches = writer_->batches_appended();
    stats_.max_group_batches = writer_->max_group_batches();
    stats_.writer_queue_waits = writer_->queue_full_waits();
    stats_.wal_append_failures = writer_->append_failures();
  }
  return stats_;
}

std::vector<backend::StoredEvent> FlowEventStore::query(
    const backend::EventQuery& event_query) const {
  std::vector<backend::StoredEvent> out;
  QueryCursor cursor = scan(event_query);
  while (const backend::StoredEvent* stored = cursor.next()) out.push_back(*stored);
  return out;
}

std::size_t FlowEventStore::count(const backend::EventQuery& event_query) const {
  std::size_t n = 0;
  QueryCursor cursor = scan(event_query);
  while (cursor.next() != nullptr) ++n;
  return n;
}

std::size_t FlowEventStore::size() const {
  std::size_t total = memtable_.size();
  for (const auto& segment : segments_) total += segment->size();
  for (const auto& [node, shard] : shards_) {
    (void)node;
    total += shard.rows.size();
  }
  return total;
}

std::vector<backend::StoredEvent> FlowEventStore::all() const {
  return query(backend::EventQuery{});
}

std::vector<packet::FlowKey> FlowEventStore::distinct_flows(
    const backend::EventQuery& event_query) const {
  std::unordered_set<packet::FlowKey, packet::FlowKeyHash> seen;
  std::vector<packet::FlowKey> out;
  QueryCursor cursor = scan(event_query);
  while (const backend::StoredEvent* stored = cursor.next()) {
    if (seen.insert(stored->event.flow).second) out.push_back(stored->event.flow);
  }
  return out;
}

std::uint64_t FlowEventStore::total_counter(const backend::EventQuery& event_query) const {
  std::uint64_t total = 0;
  QueryCursor cursor = scan(event_query);
  while (const backend::StoredEvent* stored = cursor.next()) total += stored->event.counter;
  return total;
}

void FlowEventStore::crash_after_wal_bytes(std::uint64_t budget) {
  if (wal_) wal_->fail_after_bytes(budget);
}

// ---- Query spec parsing --------------------------------------------------

namespace {

[[nodiscard]] bool parse_int(std::string_view text, std::int64_t& out) {
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

[[nodiscard]] std::optional<core::EventType> parse_type(std::string_view name) {
  for (const core::EventType type :
       {core::EventType::kDrop, core::EventType::kCongestion, core::EventType::kPathChange,
        core::EventType::kPause, core::EventType::kAclDrop}) {
    if (name == core::to_string(type)) return type;
  }
  return std::nullopt;
}

/// "<addr>:<port>" -> (addr, port).
[[nodiscard]] bool parse_endpoint(std::string_view text, packet::Ipv4Addr& addr,
                                  std::uint16_t& port) {
  const auto colon = text.rfind(':');
  if (colon == std::string_view::npos) return false;
  const auto parsed = packet::Ipv4Addr::parse(std::string(text.substr(0, colon)));
  if (!parsed) return false;
  std::int64_t value = 0;
  if (!parse_int(text.substr(colon + 1), value) || value < 0 || value > 0xffff) return false;
  addr = *parsed;
  port = static_cast<std::uint16_t>(value);
  return true;
}

[[nodiscard]] bool parse_flow(std::string_view text, packet::FlowKey& flow) {
  const auto arrow = text.find('>');
  const auto slash = text.rfind('/');
  if (arrow == std::string_view::npos || slash == std::string_view::npos || slash < arrow) {
    return false;
  }
  std::int64_t proto = 0;
  if (!parse_int(text.substr(slash + 1), proto) || proto < 0 || proto > 255) return false;
  packet::FlowKey parsed;
  if (!parse_endpoint(text.substr(0, arrow), parsed.src, parsed.sport)) return false;
  if (!parse_endpoint(text.substr(arrow + 1, slash - arrow - 1), parsed.dst, parsed.dport)) {
    return false;
  }
  parsed.proto = static_cast<std::uint8_t>(proto);
  flow = parsed;
  return true;
}

}  // namespace

std::optional<backend::EventQuery> parse_query(const std::string& spec, std::string* error) {
  backend::EventQuery query;
  std::string_view rest = spec;
  const auto fail = [&](const std::string& message) -> std::optional<backend::EventQuery> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    std::string_view term = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    if (term.empty()) continue;
    const auto eq = term.find('=');
    if (eq == std::string_view::npos) return fail("expected key=value: " + std::string(term));
    const std::string_view key = term.substr(0, eq);
    const std::string_view value = term.substr(eq + 1);
    if (key == "type") {
      const auto type = parse_type(value);
      if (!type) return fail("unknown event type: " + std::string(value));
      query.type = *type;
    } else if (key == "switch") {
      std::int64_t node = 0;
      if (!parse_int(value, node) || node < 0) return fail("bad switch id");
      query.switch_id = static_cast<util::NodeId>(node);
    } else if (key == "from") {
      std::int64_t t = 0;
      if (!parse_int(value, t)) return fail("bad from= timestamp");
      query.from = t;
    } else if (key == "to") {
      std::int64_t t = 0;
      if (!parse_int(value, t)) return fail("bad to= timestamp");
      query.to = t;
    } else if (key == "flow") {
      packet::FlowKey flow;
      if (!parse_flow(value, flow)) {
        return fail("bad flow spec (want src:sport>dst:dport/proto)");
      }
      query.flow = flow;
    } else {
      return fail("unknown query key: " + std::string(key));
    }
  }
  return query;
}

}  // namespace netseer::store
