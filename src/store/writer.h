#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "sim/spsc.h"
#include "store/format.h"
#include "store/wal.h"
#include "util/annotations.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace netseer::store {

/// Group-commit WAL writer: a background thread that drains whole shard
/// batches off an SPSC ring, appends them to the WAL, and amortizes one
/// fsync over everything drained in a round. Acknowledgements are the
/// durable-LSN watermark it publishes after each successful fsync — the
/// ingest thread never fsyncs inline; it blocks in sync_to() only when
/// the caller explicitly asks for durability.
///
/// Threading contract (model-checked as the group_commit_watermark /
/// subscription_tail miniatures in src/mc):
///   - exactly ONE producer (the store's ingest thread) calls submit(),
///     take_buffer(), drain(), sync_to();
///   - the internal thread is the only WAL appender while alive (the
///     WalWriter itself is mutex-serialized, so maintenance-side calls
///     like remove_obsolete stay safe);
///   - watermark() is release-published after fsync and may be read from
///     any thread.
///
/// Batches ride the data ring producer->writer; their emptied vectors
/// ride the recycle ring back, so steady-state ingest allocates nothing
/// per batch. A full data ring blocks submit() (bounded memory), which
/// is the only backpressure ingest ever sees — and only when the disk
/// cannot keep up with the event rate at all.
class GroupCommitWriter {
 public:
  /// `initial_watermark` seeds the durable LSN from recovery (rows
  /// replayed out of the WAL are on disk already). With
  /// `sync_every_batch`, every batch is its own commit group.
  GroupCommitWriter(WalWriter& wal, bool sync_every_batch, std::uint64_t initial_watermark,
                    std::size_t queue_depth = 64);
  ~GroupCommitWriter();

  GroupCommitWriter(const GroupCommitWriter&) = delete;
  GroupCommitWriter& operator=(const GroupCommitWriter&) = delete;

  /// Hand one shard batch (consecutive pre-assigned LSNs, ascending
  /// across calls) to the writer thread. Blocks only when the ring is
  /// full. Producer thread only.
  void submit(std::vector<Row> batch);

  /// A recycled batch vector (capacity retained) or a fresh one.
  /// Producer thread only.
  [[nodiscard]] std::vector<Row> take_buffer();

  /// Wait until every batch submitted so far has been appended to the
  /// WAL (not necessarily fsynced) — the async equivalent of the old
  /// inline append, used by flush(). Producer thread only.
  void drain();

  /// Block until the durable watermark covers `lsn` (requesting an
  /// immediate commit of anything still buffered) or the WAL dies.
  /// Returns whether the watermark got there. Producer thread only.
  [[nodiscard]] bool sync_to(std::uint64_t lsn);

  /// Highest LSN guaranteed on stable storage. Any thread.
  [[nodiscard]] std::uint64_t watermark() const {
    return watermark_.load(std::memory_order_acquire);
  }

  // Counters for StoreStats (any thread; relaxed).
  [[nodiscard]] std::uint64_t groups_committed() const {
    return groups_committed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t batches_appended() const {
    return appended_batches_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t append_failures() const {
    return append_failures_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max_group_batches() const {
    return max_group_batches_.load(std::memory_order_relaxed);
  }
  /// Times submit() found the ring full and had to wait (producer-side
  /// counter, but exposed with the rest for telemetry).
  [[nodiscard]] std::uint64_t queue_full_waits() const {
    return queue_full_waits_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  /// Drain everything currently in the ring; returns batches processed.
  std::size_t drain_available();
  /// fsync and publish the watermark; false once the WAL is dead.
  [[nodiscard]] NETSEER_BLOCKING bool commit_group(std::size_t group_batches);
  [[nodiscard]] bool sync_pending() const {
    return sync_goal_.load(std::memory_order_acquire) >
           watermark_.load(std::memory_order_relaxed);
  }

  WalWriter& wal_;
  const bool sync_every_batch_;

  sim::SpscRing<std::vector<Row>> ring_;     // producer -> writer
  sim::SpscRing<std::vector<Row>> recycle_;  // writer -> producer

  util::CondMutex mu_;
  util::CondVar work_cv_;   // writer sleeps; producer signals work/stop
  util::CondVar state_cv_;  // producer sleeps; writer signals progress
  bool stop_ NETSEER_GUARDED_BY(mu_) = false;

  std::atomic<std::uint64_t> watermark_;
  std::atomic<std::uint64_t> sync_goal_{0};
  std::atomic<std::uint64_t> submitted_batches_{0};
  std::atomic<std::uint64_t> appended_batches_{0};

  std::atomic<std::uint64_t> groups_committed_{0};
  std::atomic<std::uint64_t> append_failures_{0};
  std::atomic<std::uint64_t> max_group_batches_{0};
  std::atomic<std::uint64_t> queue_full_waits_{0};

  /// Highest LSN successfully appended; writer thread only.
  std::uint64_t appended_lsn_;

  std::thread thread_;  // last member: joins before anything else dies
};

}  // namespace netseer::store
