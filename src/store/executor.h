#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace netseer::store {

/// A small persistent worker pool for scatter-gather queries. run()
/// executes fn(0..tasks-1) with the calling thread participating, so a
/// pool of `threads` gives `threads`-way parallelism with threads-1
/// parked workers. Tasks are claimed off a shared atomic counter —
/// segment scans are uneven (pruned vs full), so work-stealing by
/// claim order beats static partitioning.
///
/// One run() at a time (the store's query path is single-threaded);
/// run() itself is not reentrant.
class QueryPool {
 public:
  /// `threads` = total parallelism including the caller; <=1 means
  /// run() degrades to a serial loop (no workers spawned).
  explicit QueryPool(std::size_t threads);
  ~QueryPool();

  QueryPool(const QueryPool&) = delete;
  QueryPool& operator=(const QueryPool&) = delete;

  [[nodiscard]] std::size_t threads() const { return workers_.size() + 1; }

  /// Run fn(task) for every task in [0, tasks); blocks until all
  /// complete. fn must be safe to call concurrently with itself.
  void run(std::size_t tasks, const std::function<void(std::size_t)>& fn);

 private:
  void worker();

  util::CondMutex mu_;
  util::CondVar work_cv_;  // workers sleep here between jobs
  util::CondVar done_cv_;  // run() waits here for the last task
  bool stop_ NETSEER_GUARDED_BY(mu_) = false;
  std::uint64_t job_gen_ NETSEER_GUARDED_BY(mu_) = 0;
  const std::function<void(std::size_t)>* job_fn_ NETSEER_GUARDED_BY(mu_) = nullptr;
  std::size_t job_tasks_ NETSEER_GUARDED_BY(mu_) = 0;

  std::atomic<std::size_t> next_task_{0};
  std::atomic<std::size_t> done_tasks_{0};

  std::vector<std::thread> workers_;
};

}  // namespace netseer::store
