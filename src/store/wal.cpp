#include "store/wal.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

namespace netseer::store {

namespace fs = std::filesystem;

namespace {

constexpr const char* kWalPrefix = "wal-";
constexpr const char* kWalSuffix = ".log";

[[nodiscard]] std::string wal_path(const std::string& dir, std::uint32_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%08u.log", index);
  return (fs::path(dir) / name).string();
}

/// Parse "wal-NNNNNNNN.log" back to its index; nullopt for other files.
[[nodiscard]] std::optional<std::uint32_t> wal_index(const std::string& filename) {
  const std::size_t prefix = std::strlen(kWalPrefix);
  const std::size_t suffix = std::strlen(kWalSuffix);
  if (filename.size() <= prefix + suffix) return std::nullopt;
  if (filename.compare(0, prefix, kWalPrefix) != 0) return std::nullopt;
  if (filename.compare(filename.size() - suffix, suffix, kWalSuffix) != 0) return std::nullopt;
  std::uint32_t value = 0;
  for (std::size_t i = prefix; i < filename.size() - suffix; ++i) {
    if (filename[i] < '0' || filename[i] > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint32_t>(filename[i] - '0');
  }
  return value;
}

/// CRC over the record header (crc field zeroed) plus the payload.
[[nodiscard]] std::uint32_t record_crc(std::span<const std::byte> header,
                                       std::span<const std::byte> payload) {
  std::array<std::byte, kWalRecordHeaderBytes> scratch{};
  std::copy(header.begin(), header.end(), scratch.begin());
  put_le<std::uint32_t>(scratch.data() + 16, 0);
  std::uint32_t crc = util::crc32_update(0, scratch);
  return util::crc32_update(crc, payload);
}

}  // namespace

std::vector<WalFileRef> list_wal_files(const std::string& dir) {
  std::vector<WalFileRef> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const auto index = wal_index(entry.path().filename().string());
    if (!index) continue;
    WalFileRef ref;
    ref.index = *index;
    ref.path = entry.path().string();
    std::error_code size_ec;
    ref.bytes = static_cast<std::uint64_t>(fs::file_size(entry.path(), size_ec));
    files.push_back(std::move(ref));
  }
  std::sort(files.begin(), files.end(),
            [](const WalFileRef& a, const WalFileRef& b) { return a.index < b.index; });
  return files;
}

WalReplayResult replay_wal_dir(const std::string& dir, std::uint64_t watermark,
                               const std::function<void(Row&&)>& emit, bool repair) {
  WalReplayResult result;
  for (const auto& ref : list_wal_files(dir)) {
    result.last_file_index = ref.index;
    std::FILE* f = std::fopen(ref.path.c_str(), "rb");
    if (f == nullptr) {
      result.torn_tail = true;
      continue;
    }
    ++result.files;

    std::array<std::byte, kWalFileHeaderBytes> file_header{};
    const std::size_t header_got = std::fread(file_header.data(), 1, file_header.size(), f);
    if (header_got == 0) {
      // Zero bytes: a crash between rotation and flushing the buffered
      // file header. No record was ever visible here — a clean empty log.
      std::fclose(f);
      continue;
    }
    if (header_got != file_header.size() ||
        std::memcmp(file_header.data(), kWalFileMagic, sizeof(kWalFileMagic)) != 0 ||
        get_le<std::uint16_t>(file_header.data() + 4) != kStoreVersion) {
      std::fclose(f);
      result.torn_tail = true;
      if (repair) {
        // Nothing valid inside; empty it so future opens see it clean.
        std::error_code ec;
        fs::resize_file(ref.path, 0, ec);
        if (!ec) ++result.repaired_files;
      }
      continue;
    }

    // Offset just past the last fully validated record: where repair
    // truncates, so this tail cannot shadow later files on every reopen.
    std::uint64_t valid_bytes = kWalFileHeaderBytes;
    bool torn = false;
    std::array<std::byte, kWalRecordHeaderBytes> header{};
    std::vector<std::byte> payload;
    std::vector<Row> batch;
    for (;;) {
      const std::size_t got = std::fread(header.data(), 1, header.size(), f);
      if (got == 0) break;  // clean end of file
      if (got != header.size() ||
          get_le<std::uint16_t>(header.data()) != kWalRecordMagic ||
          header[2] != static_cast<std::byte>(kWalRecordBatch)) {
        torn = true;
        break;
      }
      const std::uint16_t count = get_le<std::uint16_t>(header.data() + 4);
      const std::uint64_t first_lsn = get_le<std::uint64_t>(header.data() + 8);
      const std::uint32_t stored_crc = get_le<std::uint32_t>(header.data() + 16);
      payload.resize(static_cast<std::size_t>(count) * kRowBytes);
      if (std::fread(payload.data(), 1, payload.size(), f) != payload.size() ||
          record_crc(header, payload) != stored_crc) {
        torn = true;
        break;
      }
      // Decode the whole record before emitting any of it: a row whose
      // encoding is invalid despite a clean CRC (writer-side corruption)
      // must not leave the record half replayed.
      batch.clear();
      for (std::uint16_t i = 0; i < count; ++i) {
        auto stored = decode_row(
            std::span<const std::byte>(payload.data() + std::size_t(i) * kRowBytes, kRowBytes));
        if (!stored) {
          torn = true;
          break;
        }
        batch.push_back(Row{*stored, first_lsn + i});
      }
      if (torn) break;
      ++result.records;
      valid_bytes += header.size() + payload.size();
      for (Row& row : batch) {
        if (row.lsn > result.max_lsn) result.max_lsn = row.lsn;
        if (row.lsn <= watermark) {
          ++result.skipped_rows;
          continue;
        }
        emit(std::move(row));
        ++result.rows;
      }
    }
    std::fclose(f);
    if (torn) {
      result.torn_tail = true;
      if (repair) {
        std::error_code ec;
        fs::resize_file(ref.path, valid_bytes, ec);
        if (!ec) ++result.repaired_files;
      }
    }
  }
  return result;
}

WalWriter::WalWriter(const Options& options, std::uint32_t first_file_index)
    : options_(options), next_index_(first_file_index) {
  if (enabled()) {
    fs::create_directories(options_.dir);
    util::MutexLock lock(mu_);
    open_next_file();
  }
}

WalWriter::~WalWriter() {
  util::MutexLock lock(mu_);
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

bool WalWriter::write_raw(const std::byte* data, std::size_t n) {
  if (dead_ || file_ == nullptr) return false;
  std::size_t allowed = n;
  if (fail_armed_) {
    allowed = static_cast<std::size_t>(std::min<std::uint64_t>(n, fail_budget_));
    fail_budget_ -= allowed;
  }
  if (allowed > 0) {
    if (std::fwrite(data, 1, allowed, file_) != allowed) {
      dead_ = true;
      return false;
    }
    bytes_written_ += allowed;
    current_bytes_ += allowed;
  }
  if (allowed != n) {
    // Budget exhausted mid-write: the tail of this record is torn off,
    // exactly like a crash between write() and fsync(). Flush what made
    // it so recovery sees the torn file as a real crash would leave it.
    std::fflush(file_);
    dead_ = true;
    return false;
  }
  return true;
}

bool WalWriter::open_next_file() {
  close_current();
  FileInfo info;
  info.index = next_index_++;
  info.path = wal_path(options_.dir, info.index);
  file_ = std::fopen(info.path.c_str(), "wb");
  if (file_ == nullptr) {
    dead_ = true;
    return false;
  }
  // A large stdio buffer batches record writes into few write(2) calls;
  // durability still comes only from sync() (fflush + fsync).
  if (iobuf_.empty()) iobuf_.resize(256 * 1024);
  std::setvbuf(file_, iobuf_.data(), _IOFBF, iobuf_.size());
  info.open = true;
  files_.push_back(info);
  ++files_opened_;
  current_bytes_ = 0;
  current_dir_synced_ = false;

  std::array<std::byte, kWalFileHeaderBytes> header{};
  std::memcpy(header.data(), kWalFileMagic, sizeof(kWalFileMagic));
  put_le<std::uint16_t>(header.data() + 4, kStoreVersion);
  put_le<std::uint16_t>(header.data() + 6, 0);
  return write_raw(header.data(), header.size());
}

void WalWriter::close_current() {
  if (file_ == nullptr) return;
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
  if (!files_.empty()) files_.back().open = false;
}

bool WalWriter::append(std::span<const Row> rows) {
  util::MutexLock lock(mu_);
  if (!enabled() || dead_ || rows.empty()) return false;
  // The record header's row count is a u16: frame oversized batches as
  // several records instead of letting the count wrap and misframe the
  // stream for replay.
  while (rows.size() > kWalMaxRecordRows) {
    if (!append_record(rows.first(kWalMaxRecordRows))) return false;
    rows = rows.subspan(kWalMaxRecordRows);
  }
  return append_record(rows);
}

bool WalWriter::append_record(std::span<const Row> rows) {
  if (current_bytes_ >= options_.segment_bytes) {
    if (!open_next_file()) return false;
  }

  std::array<std::byte, kWalRecordHeaderBytes> header{};
  put_le<std::uint16_t>(header.data(), kWalRecordMagic);
  header[2] = static_cast<std::byte>(kWalRecordBatch);
  header[3] = std::byte{0};
  put_le<std::uint16_t>(header.data() + 4, static_cast<std::uint16_t>(rows.size()));
  put_le<std::uint16_t>(header.data() + 6, 0);
  put_le<std::uint64_t>(header.data() + 8, rows.front().lsn);

  // Encode straight into the reusable scratch buffer: the payload is
  // rebuilt thousands of times a second on the group-commit thread, so
  // per-record allocation and per-row array copies both matter.
  payload_.resize(rows.size() * kRowBytes);
  std::byte* cursor = payload_.data();
  for (const Row& row : rows) {
    encode_row_to(cursor, row.stored);
    cursor += kRowBytes;
  }
  put_le<std::uint32_t>(header.data() + 16, record_crc(header, payload_));

  if (!write_raw(header.data(), header.size())) return false;
  if (!write_raw(payload_.data(), payload_.size())) return false;
  ++records_written_;
  if (!files_.empty()) files_.back().max_lsn = rows.back().lsn;
  return true;
}

bool WalWriter::sync() {
  util::MutexLock lock(mu_);
  if (!enabled() || dead_ || file_ == nullptr) return false;
  if (!sync_file(file_)) {
    dead_ = true;
    return false;
  }
  if (!current_dir_synced_) {
    // First sync after a rotation: make the file's dirent durable too,
    // or an OS crash could drop the whole freshly created file.
    sync_dir(options_.dir);
    current_dir_synced_ = true;
  }
  ++syncs_;
  synced_bytes_ = bytes_written_;
  return true;
}

std::size_t WalWriter::remove_obsolete(std::uint64_t sealed_watermark) {
  util::MutexLock lock(mu_);
  // Rotate away from the current file once everything in it is sealed,
  // so it becomes deletable below instead of pinning covered records.
  if (!dead_ && file_ != nullptr && !files_.empty() && files_.back().max_lsn > 0 &&
      files_.back().max_lsn <= sealed_watermark) {
    open_next_file();
  }
  std::size_t deleted = 0;
  for (auto it = files_.begin(); it != files_.end();) {
    // Closed files at/below the watermark go, including empty rotation
    // leftovers (max_lsn 0 = no records, nothing to lose).
    if (it->open || it->max_lsn > sealed_watermark) {
      ++it;
      continue;
    }
    std::error_code ec;
    fs::remove(it->path, ec);
    if (ec) {
      ++it;
      continue;
    }
    ++deleted;
    ++files_deleted_;
    it = files_.erase(it);
  }
  return deleted;
}

}  // namespace netseer::store
