#include "store/executor.h"

namespace netseer::store {

QueryPool::QueryPool(std::size_t threads) {
  if (threads > 1) {
    workers_.reserve(threads - 1);
    for (std::size_t i = 0; i + 1 < threads; ++i) {
      workers_.emplace_back([this] { worker(); });
    }
  }
}

QueryPool::~QueryPool() {
  {
    util::CondMutexLock lock(mu_);
    stop_ = true;
    work_cv_.notify_all();
  }
  for (auto& thread : workers_) thread.join();
}

void QueryPool::run(std::size_t tasks, const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  if (workers_.empty() || tasks == 1) {
    for (std::size_t t = 0; t < tasks; ++t) fn(t);
    return;
  }
  {
    util::CondMutexLock lock(mu_);
    job_fn_ = &fn;
    job_tasks_ = tasks;
    next_task_.store(0, std::memory_order_relaxed);
    done_tasks_.store(0, std::memory_order_relaxed);
    ++job_gen_;
    work_cv_.notify_all();
  }
  // The caller claims tasks like any worker, then waits out the rest.
  std::size_t t = 0;
  while ((t = next_task_.fetch_add(1, std::memory_order_relaxed)) < tasks) {
    fn(t);
    done_tasks_.fetch_add(1, std::memory_order_release);
  }
  util::CondMutexLock lock(mu_);
  while (done_tasks_.load(std::memory_order_acquire) < tasks) done_cv_.wait(lock);
  job_fn_ = nullptr;
}

void QueryPool::worker() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t tasks = 0;
    {
      util::CondMutexLock lock(mu_);
      while (job_gen_ == seen && !stop_) work_cv_.wait(lock);
      if (stop_) return;
      seen = job_gen_;
      fn = job_fn_;
      tasks = job_tasks_;
    }
    // A worker that wakes after run() already finished this generation
    // sees the cleared job and just re-arms for the next one.
    if (fn == nullptr) continue;
    std::size_t t = 0;
    while ((t = next_task_.fetch_add(1, std::memory_order_relaxed)) < tasks) {
      (*fn)(t);
      done_tasks_.fetch_add(1, std::memory_order_release);
    }
    util::CondMutexLock lock(mu_);
    done_cv_.notify_all();
  }
}

}  // namespace netseer::store
