#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <span>
#include <string>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "backend/event_store.h"
#include "core/event.h"
#include "util/annotations.h"
#include "util/hash.h"
#include "util/ids.h"
#include "util/time.h"

namespace netseer::store {

/// On-disk building blocks shared by the WAL and segment files. All
/// multi-byte integers are little-endian, written byte by byte so the
/// format is host-independent (same convention as backend/persistence).
///
/// Row: one StoredEvent as persisted everywhere in this subsystem — the
/// 24-byte event wire encoding (§4) plus the backend-side metadata:
///
///   event(24) | switch_id u32 | detected_at i64 | stored_at i64   = 44 B
///
/// WAL file:   header "NSWL" | version u16 | reserved u16, then records:
///   record:   magic u16 | kind u8 | reserved u8 | count u16 | pad u16 |
///             first_lsn u64 | crc u32, then count rows.
///             crc is CRC-32 over the header (with the crc field zeroed)
///             and the payload, so a flipped bit anywhere in the record
///             is detected. Within one file, replay stops at the first
///             incomplete or CRC-failing record — the torn tail a crash
///             leaves — but later files (written by a recovered writer)
///             still replay.
///
/// Segment file: header "NSSG" | version u16 | reserved u16 | count u64 |
///               min_lsn u64 | max_lsn u64 | min_time i64 | max_time i64,
///               then count rows, then a CRC-32 footer over header+rows.
///
/// LSNs are assigned when a shard batch is flushed into the WAL, so the
/// log is strictly monotonic and a single watermark (the max LSN sealed
/// into durable segments) tells recovery which WAL suffix to replay.

inline constexpr std::size_t kRowBytes = core::FlowEvent::kWireSize + 4 + 8 + 8;  // 44

inline constexpr char kWalFileMagic[4] = {'N', 'S', 'W', 'L'};
inline constexpr char kSegFileMagic[4] = {'N', 'S', 'S', 'G'};
inline constexpr std::uint16_t kStoreVersion = 1;

inline constexpr std::uint16_t kWalRecordMagic = 0x57a1;
inline constexpr std::uint8_t kWalRecordBatch = 1;

/// The record header's row count is a u16; larger batches are framed as
/// several records rather than letting the count wrap.
inline constexpr std::size_t kWalMaxRecordRows = 0xffff;

inline constexpr std::size_t kWalFileHeaderBytes = 8;
inline constexpr std::size_t kWalRecordHeaderBytes = 20;
inline constexpr std::size_t kSegHeaderBytes = 48;

/// Little-endian scalar encode/decode over a raw byte cursor.
template <typename T>
inline void put_le(std::byte* out, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out[i] = static_cast<std::byte>((static_cast<std::uint64_t>(value) >> (8 * i)) & 0xff);
  }
}

template <typename T>
[[nodiscard]] inline T get_le(const std::byte* in) {
  std::uint64_t accum = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    accum |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(in[i])) << (8 * i);
  }
  return static_cast<T>(accum);
}

/// Encode one stored event into the canonical 44-byte row at `out`
/// (which must have kRowBytes of space). The in-place form lets bulk
/// writers (WAL records, segment bodies) encode straight into one
/// contiguous buffer instead of copying per-row arrays around.
inline void encode_row_to(std::byte* out, const backend::StoredEvent& stored) {
  const auto wire = stored.event.serialize();
  std::copy(wire.begin(), wire.end(), out);
  put_le<std::uint32_t>(out + 24, stored.event.switch_id);
  put_le<std::int64_t>(out + 28, stored.event.detected_at);
  put_le<std::int64_t>(out + 36, stored.stored_at);
}

/// Encode one stored event into the canonical 44-byte row.
[[nodiscard]] inline std::array<std::byte, kRowBytes> encode_row(
    const backend::StoredEvent& stored) {
  std::array<std::byte, kRowBytes> row{};
  encode_row_to(row.data(), stored);
  return row;
}

/// Decode a row; nullopt when the embedded event encoding is invalid
/// (e.g. an unknown event type byte).
[[nodiscard]] inline std::optional<backend::StoredEvent> decode_row(
    std::span<const std::byte> row) {
  if (row.size() < kRowBytes) return std::nullopt;
  auto event =
      core::FlowEvent::parse(std::span<const std::byte, core::FlowEvent::kWireSize>(
          row.data(), core::FlowEvent::kWireSize));
  if (!event) return std::nullopt;
  event->switch_id = get_le<std::uint32_t>(row.data() + 24);
  event->detected_at = get_le<std::int64_t>(row.data() + 28);
  backend::StoredEvent stored;
  stored.event = *event;
  stored.stored_at = get_le<std::int64_t>(row.data() + 36);
  return stored;
}

/// Flush a stdio stream all the way to stable storage (fflush + fsync),
/// not just to the OS page cache. Durability acknowledgements (WAL
/// sync(), segment seals) go through this.
[[nodiscard]] NETSEER_BLOCKING inline bool sync_file(std::FILE* f) {
  if (std::fflush(f) != 0) return false;
#if defined(_WIN32)
  return true;  // best effort: no fsync equivalent through stdio here
#else
  return ::fsync(fileno(f)) == 0;
#endif
}

/// fsync a directory so file creations/renames inside it are themselves
/// durable (a renamed segment is not safe until its dirent is).
NETSEER_BLOCKING inline void sync_dir(const std::string& dir) {
#if !defined(_WIN32)
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)dir;
#endif
}

/// One stored event plus the log position that made it durable. The LSN
/// is the store's total order: queries return rows sorted by it.
struct Row {
  backend::StoredEvent stored;
  std::uint64_t lsn = 0;
};

}  // namespace netseer::store
