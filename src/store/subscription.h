#pragma once

#include <cstdint>
#include <functional>

#include "store/store.h"

namespace netseer::store {

/// Pull-model tail over a store's durable watermark, created by
/// FlowEventStore::subscribe(). Each poll() delivers every row with
/// cursor < LSN <= durable watermark that matches the query, in LSN
/// order, then parks until the watermark advances — so a subscriber
/// sees each event exactly once, no matter how rows migrate between
/// memtable, sealed segments, and compacted segments (LSNs are stable
/// across all of those).
///
/// Backpressure is structural: the store never waits on a subscriber.
/// A subscriber too slow for the retention budget skips the evicted
/// rows and counts them as lag instead of blocking ingest.
///
/// Single-threaded like the rest of the query surface: poll() must not
/// race store mutation, and the subscription must not outlive the
/// store. Unlike a QueryCursor it tolerates mutation *between* polls —
/// it re-derives its view from the store each time by LSN.
class Subscription {
 public:
  /// Deliver matching rows after the cursor, up to `max_rows` of them,
  /// and advance. Returns rows delivered (0 = caught up with the
  /// watermark). `fn` receives the row and its LSN.
  std::size_t poll(const std::function<void(const backend::StoredEvent&, std::uint64_t)>& fn,
                   std::size_t max_rows = SIZE_MAX);

  /// Last LSN this subscription has consumed (delivered or skipped).
  [[nodiscard]] std::uint64_t cursor_lsn() const { return cursor_; }
  /// Alias of cursor_lsn(): the LSN to persist as a resume point —
  /// `store.subscribe(query, last_lsn())` after a close/reopen delivers
  /// exactly the rows this subscription never saw.
  [[nodiscard]] std::uint64_t last_lsn() const { return cursor_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  /// Rows evicted by retention before this subscriber polled them.
  [[nodiscard]] std::uint64_t lagged() const { return lagged_; }

 private:
  friend class FlowEventStore;
  Subscription(const FlowEventStore& store, backend::EventQuery query, std::uint64_t from_lsn)
      : store_(&store), query_(std::move(query)), cursor_(from_lsn) {}

  const FlowEventStore* store_ = nullptr;
  backend::EventQuery query_;
  std::uint64_t cursor_ = 0;  // last consumed LSN
  std::uint64_t delivered_ = 0;
  std::uint64_t lagged_ = 0;
};

}  // namespace netseer::store
