#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/format.h"

namespace netseer::store {

/// An immutable, time-partitioned run of rows in LSN order, with the
/// per-segment indexes the query engine intersects instead of scanning:
/// flow-hash -> rows, device -> rows, per-type row counts, and min/max
/// time fences over detected_at for pruning time-windowed queries.
///
/// A segment is sealed from the memtable (or merged out of smaller
/// segments by compaction) and never mutated afterwards; the indexes are
/// rebuilt when a segment file is loaded, so the on-disk format stays a
/// plain CRC-protected row run.
class Segment {
 public:
  /// Build from rows already sorted by LSN (callers: memtable seal,
  /// compaction merge, segment-file load). `rows` must be non-empty.
  static Segment build(std::vector<Row> rows, std::uint32_t file_id = 0);

  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }
  [[nodiscard]] std::size_t size() const { return rows_.size(); }
  [[nodiscard]] std::uint64_t min_lsn() const { return min_lsn_; }
  [[nodiscard]] std::uint64_t max_lsn() const { return max_lsn_; }
  [[nodiscard]] util::SimTime min_time() const { return min_time_; }
  [[nodiscard]] util::SimTime max_time() const { return max_time_; }

  /// Id of the backing seg-NNNNNNNN.seg file; 0 for memory-only.
  [[nodiscard]] std::uint32_t file_id() const { return file_id_; }
  void set_file_id(std::uint32_t id) { file_id_ = id; }

  /// Index lookups; nullptr when the key has no rows in this segment.
  /// The flow/switch maps are built lazily on the first lookup — sealing
  /// stays off the ingest hot path and segments that only ever serve
  /// time-windowed scans never pay for them. NOT thread-safe: the query
  /// planner resolves indexes serially before any parallel segment scan
  /// fans out (workers only read rows()).
  [[nodiscard]] const std::vector<std::uint32_t>* flow_rows(std::uint64_t flow_hash) const {
    ensure_indexed();
    const auto it = by_flow_.find(flow_hash);
    return it == by_flow_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const std::vector<std::uint32_t>* switch_rows(util::NodeId node) const {
    ensure_indexed();
    const auto it = by_switch_.find(node);
    return it == by_switch_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::uint32_t type_count(core::EventType type) const {
    const auto raw = static_cast<std::size_t>(type);
    return raw < type_counts_.size() ? type_counts_[raw] : 0;
  }

  /// True when [from, to) could contain rows of this segment (fences are
  /// inclusive on both ends; `to` is exclusive as in EventQuery).
  [[nodiscard]] bool overlaps(std::optional<util::SimTime> from,
                              std::optional<util::SimTime> to) const {
    if (from && max_time_ < *from) return false;
    if (to && min_time_ >= *to) return false;
    return true;
  }

  /// Write as a CRC-protected segment file (fsync'd, via a .tmp +
  /// rename + directory fsync, so a crash mid-seal never leaves a half
  /// segment under the final name and a sealed one cannot vanish).
  [[nodiscard]] bool save(const std::string& path) const;

  /// Load and fully validate a segment file (header, row encodings,
  /// CRC footer); nullopt on any corruption.
  [[nodiscard]] static std::optional<Segment> load(const std::string& path,
                                                   std::uint32_t file_id);

 private:
  Segment() = default;

  void ensure_indexed() const;

  std::vector<Row> rows_;
  std::uint64_t min_lsn_ = 0;
  std::uint64_t max_lsn_ = 0;
  util::SimTime min_time_ = 0;
  util::SimTime max_time_ = 0;
  std::uint32_t file_id_ = 0;

  // Lazily built by ensure_indexed() under the serial-planner contract.
  mutable bool indexed_ = false;
  mutable std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_flow_;
  mutable std::unordered_map<util::NodeId, std::vector<std::uint32_t>> by_switch_;
  std::array<std::uint32_t, 8> type_counts_{};
};

/// Segment files under `dir` ("seg-NNNNNNNN.seg"), sorted by file id.
struct SegmentFileRef {
  std::uint32_t index = 0;
  std::string path;
};
[[nodiscard]] std::vector<SegmentFileRef> list_segment_files(const std::string& dir);

[[nodiscard]] std::string segment_path(const std::string& dir, std::uint32_t index);

}  // namespace netseer::store
