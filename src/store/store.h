#pragma once

#include <cstdint>
#include <iterator>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "backend/event_sink.h"
#include "backend/event_store.h"
#include "sim/simulator.h"
#include "store/segment.h"
#include "store/wal.h"
#include "util/annotations.h"
#include "util/thread_annotations.h"

namespace netseer::store {

class GroupCommitWriter;
class QueryPool;
class Subscription;

/// Tuning and placement knobs for FlowEventStore. An empty `dir` runs
/// the store fully in memory (same sharding/sealing/compaction
/// lifecycle, no WAL, no segment files) — the default for simulations;
/// a directory makes every ingested event durable.
struct StoreOptions {
  std::string dir;

  /// Per-switch ingest buffer: one WAL record (and one memtable append
  /// run) per `shard_batch` events from the same reporting switch.
  std::size_t shard_batch = 128;

  /// Seal the memtable into an immutable segment at this many rows.
  std::size_t segment_events = 4096;

  /// Compaction trigger/shape: once more than `compact_min_segments`
  /// are sealed, merge the `compact_fanin` oldest into one.
  std::size_t compact_min_segments = 8;
  std::size_t compact_fanin = 4;

  /// Retention budget over sealed rows; 0 keeps everything. Eviction
  /// drops whole oldest segments and counts every dropped event.
  std::uint64_t retain_events = 0;

  /// WAL file rotation threshold (smaller files = finer checkpointing).
  std::uint64_t wal_segment_bytes = 1ull << 20u;

  /// Make every flushed batch an fsync point (slower, smallest possible
  /// loss window). With the group-commit writer this means the ingest
  /// thread blocks on the durable watermark after every batch.
  bool sync_every_batch = false;

  /// Scatter-gather parallelism for scan(): segment scans fan out over
  /// this many threads (including the caller). 1 = serial (default).
  std::size_t query_threads = 1;

  /// Group-commit handoff depth, in shard batches. A full ring blocks
  /// ingest (bounded memory) until the writer thread drains.
  std::size_t writer_queue = 64;
};

/// Everything the store counts, exported via telemetry::collect. The
/// query-side counters live here too (a cursor over a const store still
/// accounts its pruning), hence the mutable registration in the store.
struct StoreStats {
  // Ingest.
  std::uint64_t appended = 0;
  std::uint64_t batches_flushed = 0;

  // Durability.
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t wal_syncs = 0;
  std::uint64_t wal_files_deleted = 0;
  std::uint64_t wal_append_failures = 0;

  // Group commit (the async writer thread).
  std::uint64_t groups_committed = 0;    // fsync rounds that advanced the watermark
  std::uint64_t group_batches = 0;       // shard batches through the writer
  std::uint64_t max_group_batches = 0;   // largest single commit group
  std::uint64_t writer_queue_waits = 0;  // times ingest blocked on a full handoff ring

  // Storage lifecycle.
  std::uint64_t segments_sealed = 0;
  std::uint64_t compactions = 0;
  std::uint64_t segments_compacted = 0;
  std::uint64_t segments_evicted = 0;
  std::uint64_t events_evicted = 0;

  // Query engine.
  std::uint64_t queries = 0;
  std::uint64_t segments_scanned = 0;
  std::uint64_t segments_pruned = 0;
  std::uint64_t index_hits = 0;
  std::uint64_t full_segment_scans = 0;
  std::uint64_t rows_examined = 0;
  std::uint64_t rows_matched = 0;
  std::uint64_t parallel_queries = 0;  // cursors that fanned out on the pool
  std::uint64_t parallel_tasks = 0;    // segment scans dispatched to it

  // Subscriptions.
  std::uint64_t subscription_polls = 0;
  std::uint64_t subscription_rows = 0;         // rows delivered to subscribers
  std::uint64_t subscription_lagged_rows = 0;  // evicted before delivery
};

/// What opening a store directory found and replayed.
struct RecoveryInfo {
  bool ran = false;
  std::uint64_t segments_loaded = 0;
  std::uint64_t segments_corrupt = 0;
  /// Dropped because another segment's LSN range fully covers them —
  /// inputs of a compaction that crashed between rename and delete.
  std::uint64_t segments_superseded = 0;
  std::uint64_t segment_rows = 0;  // rows in the kept segments
  std::uint64_t wal_records_replayed = 0;
  std::uint64_t wal_rows_replayed = 0;
  std::uint64_t wal_rows_skipped = 0;  // already sealed into segments
  std::uint64_t wal_files_repaired = 0;  // torn tails truncated in place
  bool torn_tail = false;
  std::uint64_t max_lsn = 0;
};

class FlowEventStore;

/// Streaming view over one query's matches, in the store's total order
/// (LSN order for flushed rows, then append order for rows still in
/// shard buffers). The plan — which segments were pruned by time fence
/// or type count, which use an index — is fixed at construction; rows
/// are filtered lazily as next() advances (or eagerly, in parallel,
/// when the store has a query pool — the merge is by segment LSN order
/// either way, so both paths emit identically).
///
/// A cursor is valid only until the store is mutated (append, flush,
/// seal, compaction, retention): it snapshots the store's generation
/// counter and any use afterwards aborts with a diagnostic instead of
/// reading freed rows.
///
/// Range-for compatible: `for (const auto& stored : store.scan(q))`.
class QueryCursor {
 public:
  /// The next matching event, or nullptr when exhausted.
  [[nodiscard]] const backend::StoredEvent* next();

  /// Single-pass input iterator over next(). end() is a sentinel.
  class iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = backend::StoredEvent;
    using difference_type = std::ptrdiff_t;
    using pointer = const backend::StoredEvent*;
    using reference = const backend::StoredEvent&;

    reference operator*() const { return *current_; }
    pointer operator->() const { return current_; }
    iterator& operator++() {
      current_ = cursor_->next();
      return *this;
    }
    [[nodiscard]] bool operator==(std::default_sentinel_t /*end*/) const {
      return current_ == nullptr;
    }

   private:
    friend class QueryCursor;
    iterator(QueryCursor* cursor, const backend::StoredEvent* current)
        : cursor_(cursor), current_(current) {}
    QueryCursor* cursor_ = nullptr;
    const backend::StoredEvent* current_ = nullptr;
  };

  [[nodiscard]] iterator begin() { return iterator(this, next()); }
  [[nodiscard]] std::default_sentinel_t end() const { return {}; }

 private:
  friend class FlowEventStore;
  struct SegmentPlan {
    const Segment* segment = nullptr;
    const std::vector<std::uint32_t>* candidates = nullptr;  // null = scan all rows
  };

  QueryCursor(const FlowEventStore& store, const backend::EventQuery& query);

  /// Abort (with a diagnostic) if the store mutated under this cursor.
  void check_generation() const;

  const FlowEventStore* store_ = nullptr;
  backend::EventQuery query_;
  std::uint64_t generation_ = 0;
  std::vector<SegmentPlan> segments_;
  // Parallel path: per-plan pre-filtered row indexes (scatter output).
  bool parallel_ = false;
  std::vector<std::vector<std::uint32_t>> matches_;
  // Memtable rows then pending shard rows, in emission order.
  std::vector<const backend::StoredEvent*> tail_;
  std::size_t segment_idx_ = 0;
  std::size_t row_idx_ = 0;
  std::size_t tail_idx_ = 0;
  bool in_tail_ = false;
};

/// The durable, sharded flow-event store behind the backend collector:
/// per-switch batch buffers feed a CRC-framed write-ahead log, rows
/// accumulate in a memtable that seals into immutable time-partitioned
/// segments with per-segment indexes, background maintenance compacts
/// and applies retention, and queries intersect segment indexes instead
/// of scanning. Drop-in query-compatible with backend::EventStore.
class FlowEventStore final : public backend::EventSink {
 public:
  NETSEER_BLOCKING explicit FlowEventStore(StoreOptions options = {});
  NETSEER_BLOCKING ~FlowEventStore() override;

  FlowEventStore(const FlowEventStore&) = delete;
  FlowEventStore& operator=(const FlowEventStore&) = delete;

  // ---- Ingest ----------------------------------------------------------
  /// Append a batch through the per-switch shard buffers (the primary
  /// EventSink entry point; add() is the inherited one-element wrapper).
  void add_batch(std::span<const core::FlowEvent> events, util::SimTime now) override;

  /// Flush every shard buffer into the memtable and hand the rows to
  /// the group-commit writer (appended, not necessarily fsynced).
  void flush();

  /// flush() plus a blocking wait on the durable watermark: everything
  /// appended so far is acknowledged durable on return (in-memory
  /// stores trivially return true). False once the WAL is dead.
  [[nodiscard]] NETSEER_BLOCKING bool sync();

  /// Highest LSN known durable: the group-commit watermark, sealed
  /// durable segments, or explicit syncs — whichever is furthest.
  [[nodiscard]] std::uint64_t durable_lsn() const;
  [[nodiscard]] std::uint64_t durable_watermark() const override { return durable_lsn(); }

  // ---- Lifecycle -------------------------------------------------------
  // The maintenance entry points serialize on maint_mu_ (annotated,
  // enforced by the clang -Wthread-safety CI legs), so a background
  // maintenance thread could run compaction/retention/WAL-GC against
  // the ingest path without corrupting the segment-file bookkeeping.

  /// Seal the memtable into an immutable segment now (no-op when empty).
  void seal_active() NETSEER_EXCLUDES(maint_mu_);

  /// Merge the oldest segments while over the compaction threshold;
  /// returns the number of merges performed.
  NETSEER_BLOCKING std::size_t compact() NETSEER_EXCLUDES(maint_mu_);

  /// Enforce the retention budget; returns segments evicted.
  NETSEER_BLOCKING std::size_t enforce_retention() NETSEER_EXCLUDES(maint_mu_);

  /// One background maintenance round: compaction, retention, WAL GC.
  NETSEER_BLOCKING void maintain() NETSEER_EXCLUDES(maint_mu_);

  /// Clean shutdown / `netseer_store recover`: flush, seal, sync, and
  /// garbage-collect every WAL file made obsolete by sealed segments.
  NETSEER_BLOCKING void checkpoint() NETSEER_EXCLUDES(maint_mu_);

  /// Schedule maintain() every `interval` on `sim`. Cancel the returned
  /// handle before draining the simulation (a periodic task keeps the
  /// event queue alive).
  [[nodiscard]] sim::TaskHandle start_maintenance(sim::Simulator& sim,
                                                  util::SimDuration interval);

  // ---- Query -----------------------------------------------------------
  /// The unified query surface: build an EventQuery (aggregate or
  /// fluent), scan() it, iterate the cursor. When options.query_threads
  /// > 1 the cursor scatter-gathers segment scans over the pool.
  [[nodiscard]] QueryCursor scan(const backend::EventQuery& query) const;

  /// Tail the durable watermark: a pull-model subscription delivering
  /// every matching row exactly once in LSN order, across flush, seal
  /// and compaction boundaries. `from_lsn` = deliver rows with LSN >
  /// from_lsn (0 replays everything still retained). The subscription
  /// must not outlive the store; a subscriber that stops polling never
  /// blocks ingest (rows it missed past retention count as lag).
  [[nodiscard]] Subscription subscribe(backend::EventQuery query = {},
                                       std::uint64_t from_lsn = 0) const;

  /// Resize the scatter-gather pool (e.g. tools/benches after open).
  void set_query_threads(std::size_t threads);

  // Thin wrappers over scan(), kept so pre-cursor call sites compile;
  // prefer scan() in new code.
  [[nodiscard]] std::vector<backend::StoredEvent> query(const backend::EventQuery& query) const;
  [[nodiscard]] std::size_t count(const backend::EventQuery& query) const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::vector<backend::StoredEvent> all() const;
  [[nodiscard]] std::vector<packet::FlowKey> distinct_flows(
      const backend::EventQuery& query) const;
  [[nodiscard]] std::uint64_t total_counter(const backend::EventQuery& query) const;

  // ---- Introspection ---------------------------------------------------
  /// Refreshes the WAL/group-commit counters from the writer side.
  [[nodiscard]] const StoreStats& stats() const;
  /// Bumped by every mutation; open cursors assert it stayed put.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  [[nodiscard]] const RecoveryInfo& recovery() const { return recovery_; }
  [[nodiscard]] const StoreOptions& options() const { return options_; }
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  [[nodiscard]] const std::vector<std::unique_ptr<Segment>>& segments() const {
    return segments_;
  }
  [[nodiscard]] bool durable() const { return !options_.dir.empty(); }

  // ---- Crash fault injection (recovery property tests) -----------------
  /// Let only `budget` more bytes reach the WAL, then tear it off
  /// mid-write — the store keeps running in memory as if the disk died.
  void crash_after_wal_bytes(std::uint64_t budget);
  [[nodiscard]] bool wal_dead() const { return wal_ && wal_->dead(); }

 private:
  friend class QueryCursor;
  friend class Subscription;

  struct Pending {
    backend::StoredEvent stored;
    std::uint64_t order = 0;  // global append sequence, pre-LSN
  };
  struct Shard {
    std::vector<Pending> rows;
  };

  void flush_shard(Shard& shard);
  NETSEER_BLOCKING void recover_from_dir() NETSEER_REQUIRES(maint_mu_);
  /// Save memory-only sealed segments to disk (full fsync discipline);
  /// returns segments persisted. Called from maintain()/checkpoint() so
  /// segment-file creation stays off the seal (ingest) path. Segments
  /// on disk are therefore always fully durable, which is what keeps
  /// recovery and the WAL-GC contiguity walk unchanged.
  NETSEER_BLOCKING std::size_t persist_segments_locked() NETSEER_REQUIRES(maint_mu_);

  // The _locked split of the maintenance entry points: the public
  // methods take maint_mu_ and delegate here, and composite rounds
  // (maintain, checkpoint) call these directly so the whole round runs
  // under one acquisition of the non-recursive mutex.
  NETSEER_BLOCKING std::size_t compact_locked() NETSEER_REQUIRES(maint_mu_);
  NETSEER_BLOCKING std::size_t enforce_retention_locked() NETSEER_REQUIRES(maint_mu_);
  /// Delete WAL files fully covered by sealed durable segments.
  NETSEER_BLOCKING void wal_gc_locked() NETSEER_REQUIRES(maint_mu_);
  /// Watermark for WAL GC: max LSN sealed into *durable* segments.
  [[nodiscard]] std::uint64_t sealed_durable_watermark_locked() const
      NETSEER_REQUIRES(maint_mu_);

  StoreOptions options_;
  std::unique_ptr<WalWriter> wal_;
  /// Declared after wal_ so it is destroyed (thread joined) first.
  std::unique_ptr<GroupCommitWriter> writer_;
  std::unique_ptr<QueryPool> pool_;
  RecoveryInfo recovery_;
  mutable StoreStats stats_;  // query counters tick under const

  std::unordered_map<util::NodeId, Shard> shards_;
  std::uint64_t append_seq_ = 0;  // orders rows not yet assigned an LSN
  std::uint64_t next_lsn_ = 1;
  std::uint64_t durable_lsn_ = 0;
  std::uint64_t generation_ = 0;  // mutation counter for cursor validity
  std::uint64_t legacy_wal_deleted_ = 0;  // checkpoint-deleted legacy files

  std::vector<Row> memtable_;
  std::vector<std::unique_ptr<Segment>> segments_;  // oldest first (LSN order)

  /// Serializes the maintenance paths (seal/compact/retention/WAL-GC)
  /// and guards their segment-file bookkeeping. The memtable, shard
  /// buffers, and segments_ vector stay under the store's single-writer
  /// ingest contract (the simulator is single-threaded); this mutex is
  /// scoped to the state a background maintenance pass would touch.
  mutable util::Mutex maint_mu_;
  std::uint32_t next_segment_file_ NETSEER_GUARDED_BY(maint_mu_) = 1;
  /// Max LSN of evicted durable segments: the WAL-GC walk resumes here.
  std::uint64_t sealed_watermark_floor_ NETSEER_GUARDED_BY(maint_mu_) = 0;

  /// WAL files found at recovery (not owned by the current writer);
  /// deletable once checkpoint() has sealed everything they cover.
  std::vector<std::string> legacy_wal_files_ NETSEER_GUARDED_BY(maint_mu_);
  std::uint64_t legacy_wal_max_lsn_ NETSEER_GUARDED_BY(maint_mu_) = 0;
};

/// Parse a compact query spec, shared by `netseer_sim --store-query` and
/// `netseer_store query`. Comma-separated key=value terms:
///
///   type=drop|congestion|path-change|pause|acl-drop
///   switch=<node id>
///   from=<ns>   to=<ns>        (detected_at window, to exclusive)
///   flow=<src>:<sport> ">" <dst>:<dport>/<proto>
///       e.g. flow=10.0.0.1:1234>10.0.0.2:80/6
///
/// Returns nullopt and fills `error` on a malformed spec.
[[nodiscard]] std::optional<backend::EventQuery> parse_query(const std::string& spec,
                                                             std::string* error = nullptr);

}  // namespace netseer::store
