#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "store/format.h"

namespace netseer::store {

/// One WAL file on disk, as listed by list_wal_files.
struct WalFileRef {
  std::uint32_t index = 0;
  std::string path;
  std::uint64_t bytes = 0;
};

/// WAL files under `dir`, sorted by file index.
[[nodiscard]] std::vector<WalFileRef> list_wal_files(const std::string& dir);

/// Outcome of replaying a WAL directory (see replay_wal_dir).
struct WalReplayResult {
  std::uint64_t files = 0;
  std::uint64_t records = 0;       // complete, CRC-clean records replayed
  std::uint64_t rows = 0;          // rows delivered to the callback
  std::uint64_t skipped_rows = 0;  // rows at or below the segment watermark
  std::uint64_t max_lsn = 0;       // highest LSN seen (0 when empty)
  std::uint32_t last_file_index = 0;
  bool torn_tail = false;  // replay stopped at an incomplete/corrupt record
};

/// Replay every WAL file under `dir` in file order, delivering each row
/// with LSN > `watermark` (rows at or below it are already sealed into
/// durable segments). Stops — cleanly, by design — at the first
/// incomplete or CRC-failing record: everything after a torn record is
/// unordered garbage, so recovery keeps the longest valid prefix.
WalReplayResult replay_wal_dir(const std::string& dir, std::uint64_t watermark,
                               const std::function<void(Row&&)>& emit);

/// Segmented, CRC-framed append log. Each append() frames one shard
/// batch as a single record; sync() flushes it to the OS, which is the
/// store's acknowledgement point. Files rotate at `segment_bytes` so
/// checkpointing can reclaim whole files once their rows are sealed
/// into durable segments (remove_obsolete).
///
/// Crash fault injection for the recovery property tests: after
/// fail_after_bytes(n), only the next n bytes reach the file — a write
/// that crosses the budget is truncated mid-record and every later byte
/// is dropped, exactly the torn tail a power cut leaves behind.
class WalWriter {
 public:
  struct Options {
    std::string dir;                            // empty = disabled (in-memory store)
    std::uint64_t segment_bytes = 1ull << 20u;  // rotate after ~1 MiB
  };

  WalWriter() = default;
  explicit WalWriter(const Options& options, std::uint32_t first_file_index = 1);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  [[nodiscard]] bool enabled() const { return !options_.dir.empty(); }

  /// Frame `rows` (which already carry consecutive LSNs) as one record
  /// and append it. Returns false once the writer is dead (fault budget
  /// exhausted or an I/O error), in which case nothing more will reach
  /// disk — the store keeps running in memory, counting the failure.
  bool append(std::span<const Row> rows);

  /// Flush buffered bytes to the OS. Rows appended before a successful
  /// sync() are the store's acknowledged (durable) set.
  bool sync();

  /// Delete every closed WAL file whose rows are all at or below
  /// `sealed_watermark`, rotating away from the current file first when
  /// everything in it is covered too. Returns files deleted.
  std::size_t remove_obsolete(std::uint64_t sealed_watermark);

  /// Fault injection: allow only `budget` more bytes to reach disk.
  void fail_after_bytes(std::uint64_t budget) {
    fail_armed_ = true;
    fail_budget_ = budget;
  }
  [[nodiscard]] bool dead() const { return dead_; }

  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] std::uint64_t records_written() const { return records_written_; }
  [[nodiscard]] std::uint64_t syncs() const { return syncs_; }
  [[nodiscard]] std::uint64_t files_opened() const { return files_opened_; }
  [[nodiscard]] std::uint64_t files_deleted() const { return files_deleted_; }
  [[nodiscard]] std::uint64_t synced_bytes() const { return synced_bytes_; }

 private:
  struct FileInfo {
    std::uint32_t index = 0;
    std::string path;
    std::uint64_t max_lsn = 0;
    bool open = false;
  };

  bool open_next_file();
  void close_current();
  /// Write through the fault gate; flips dead_ when the budget runs out.
  bool write_raw(const std::byte* data, std::size_t n);

  Options options_;
  std::FILE* file_ = nullptr;
  std::uint32_t next_index_ = 1;
  std::uint64_t current_bytes_ = 0;
  std::vector<FileInfo> files_;

  bool fail_armed_ = false;
  std::uint64_t fail_budget_ = 0;
  bool dead_ = false;

  std::uint64_t bytes_written_ = 0;
  std::uint64_t synced_bytes_ = 0;
  std::uint64_t records_written_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t files_opened_ = 0;
  std::uint64_t files_deleted_ = 0;
};

}  // namespace netseer::store
