#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "store/format.h"
#include "util/annotations.h"
#include "util/thread_annotations.h"

namespace netseer::store {

/// One WAL file on disk, as listed by list_wal_files.
struct WalFileRef {
  std::uint32_t index = 0;
  std::string path;
  std::uint64_t bytes = 0;
};

/// WAL files under `dir`, sorted by file index.
[[nodiscard]] std::vector<WalFileRef> list_wal_files(const std::string& dir);

/// Outcome of replaying a WAL directory (see replay_wal_dir).
struct WalReplayResult {
  std::uint64_t files = 0;
  std::uint64_t records = 0;       // complete, CRC-clean records replayed
  std::uint64_t rows = 0;          // rows delivered to the callback
  std::uint64_t skipped_rows = 0;  // rows at or below the segment watermark
  std::uint64_t max_lsn = 0;       // highest LSN seen (0 when empty)
  std::uint64_t repaired_files = 0;  // torn files truncated in place (repair mode)
  std::uint32_t last_file_index = 0;  // max file index on disk, torn or not
  bool torn_tail = false;  // some file ended at an incomplete/corrupt record
};

/// Replay every WAL file under `dir` in file order, delivering each row
/// with LSN > `watermark` (rows at or below it are already sealed into
/// durable segments). Within a file, replay stops — cleanly, by design —
/// at the first incomplete or CRC-failing record: everything after a
/// torn record is unordered garbage, so the file contributes its longest
/// valid prefix. Later files still replay: they were written by a writer
/// that recovered past the tear, so their records are younger, not
/// garbage. A zero-byte file (crash between rotation and the buffered
/// header write) is a clean empty log.
///
/// With `repair` set, a torn file is truncated in place to its valid
/// prefix (a file whose header never made it is emptied), so subsequent
/// opens replay the same rows with no torn tail. The store's own
/// recovery repairs; offline inspection should not.
WalReplayResult replay_wal_dir(const std::string& dir, std::uint64_t watermark,
                               const std::function<void(Row&&)>& emit, bool repair = false);

/// Segmented, CRC-framed append log. Each append() frames one shard
/// batch as a record (split at 65535 rows, the count field's width);
/// sync() fsyncs it to stable storage, which is the store's
/// acknowledgement point. Files rotate at `segment_bytes` so
/// checkpointing can reclaim whole files once their rows are sealed
/// into durable segments (remove_obsolete).
///
/// Crash fault injection for the recovery property tests: after
/// fail_after_bytes(n), only the next n bytes reach the file — a write
/// that crosses the budget is truncated mid-record and every later byte
/// is dropped, exactly the torn tail a power cut leaves behind.
///
/// Thread safety: every public entry point serializes on an internal
/// mutex, so a future maintenance thread can checkpoint (remove_obsolete)
/// concurrently with the ingest path's append/sync without torn file
/// rotation. The guarded-by annotations below are enforced by the clang
/// -Wthread-safety CI legs.
class WalWriter {
 public:
  struct Options {
    std::string dir;                            // empty = disabled (in-memory store)
    std::uint64_t segment_bytes = 1ull << 20u;  // rotate after ~1 MiB
  };

  WalWriter() = default;
  NETSEER_BLOCKING explicit WalWriter(const Options& options,
                                      std::uint32_t first_file_index = 1);
  NETSEER_BLOCKING ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  [[nodiscard]] bool enabled() const { return !options_.dir.empty(); }

  /// Frame `rows` (which already carry consecutive LSNs) as one record
  /// — or several, in row order, when they exceed the u16 row count —
  /// and append it. Returns false once the writer is dead (fault budget
  /// exhausted or an I/O error), in which case nothing more will reach
  /// disk — the store keeps running in memory, counting the failure.
  [[nodiscard]] NETSEER_BLOCKING bool append(std::span<const Row> rows)
      NETSEER_EXCLUDES(mu_);

  /// Flush buffered bytes and fsync them (file, plus its directory entry
  /// the first time after a rotation). Rows appended before a successful
  /// sync() are the store's acknowledged (durable) set.
  [[nodiscard]] NETSEER_BLOCKING bool sync() NETSEER_EXCLUDES(mu_);

  /// Delete every closed WAL file whose rows are all at or below
  /// `sealed_watermark`, rotating away from the current file first when
  /// everything in it is covered too. Returns files deleted.
  NETSEER_BLOCKING std::size_t remove_obsolete(std::uint64_t sealed_watermark)
      NETSEER_EXCLUDES(mu_);

  /// Fault injection: allow only `budget` more bytes to reach disk.
  void fail_after_bytes(std::uint64_t budget) NETSEER_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    fail_armed_ = true;
    fail_budget_ = budget;
  }
  [[nodiscard]] bool dead() const NETSEER_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return dead_;
  }

  [[nodiscard]] std::uint64_t bytes_written() const NETSEER_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return bytes_written_;
  }
  [[nodiscard]] std::uint64_t records_written() const NETSEER_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return records_written_;
  }
  [[nodiscard]] std::uint64_t syncs() const NETSEER_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return syncs_;
  }
  [[nodiscard]] std::uint64_t files_opened() const NETSEER_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return files_opened_;
  }
  [[nodiscard]] std::uint64_t files_deleted() const NETSEER_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return files_deleted_;
  }
  [[nodiscard]] std::uint64_t synced_bytes() const NETSEER_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return synced_bytes_;
  }

 private:
  struct FileInfo {
    std::uint32_t index = 0;
    std::string path;
    std::uint64_t max_lsn = 0;
    bool open = false;
  };

  NETSEER_BLOCKING bool open_next_file() NETSEER_REQUIRES(mu_);
  NETSEER_BLOCKING void close_current() NETSEER_REQUIRES(mu_);
  /// Frame up to kWalMaxRecordRows rows as one record (append's unit).
  [[nodiscard]] NETSEER_BLOCKING bool append_record(std::span<const Row> rows)
      NETSEER_REQUIRES(mu_);
  /// Write through the fault gate; flips dead_ when the budget runs out.
  NETSEER_BLOCKING bool write_raw(const std::byte* data, std::size_t n)
      NETSEER_REQUIRES(mu_);

  Options options_;  // immutable after construction: read lock-free

  /// Serializes every writer entry point; mutable so the read-only
  /// counter accessors can lock on a const writer.
  mutable util::Mutex mu_;

  std::FILE* file_ NETSEER_GUARDED_BY(mu_) = nullptr;
  /// Reusable scratch: record payload encode target and the stdio
  /// buffer handed to setvbuf (must outlive the FILE it backs).
  std::vector<std::byte> payload_ NETSEER_GUARDED_BY(mu_);
  std::vector<char> iobuf_ NETSEER_GUARDED_BY(mu_);
  std::uint32_t next_index_ NETSEER_GUARDED_BY(mu_) = 1;
  std::uint64_t current_bytes_ NETSEER_GUARDED_BY(mu_) = 0;
  // dirent of the current file fsynced?
  bool current_dir_synced_ NETSEER_GUARDED_BY(mu_) = false;
  std::vector<FileInfo> files_ NETSEER_GUARDED_BY(mu_);

  bool fail_armed_ NETSEER_GUARDED_BY(mu_) = false;
  std::uint64_t fail_budget_ NETSEER_GUARDED_BY(mu_) = 0;
  bool dead_ NETSEER_GUARDED_BY(mu_) = false;

  std::uint64_t bytes_written_ NETSEER_GUARDED_BY(mu_) = 0;
  std::uint64_t synced_bytes_ NETSEER_GUARDED_BY(mu_) = 0;
  std::uint64_t records_written_ NETSEER_GUARDED_BY(mu_) = 0;
  std::uint64_t syncs_ NETSEER_GUARDED_BY(mu_) = 0;
  std::uint64_t files_opened_ NETSEER_GUARDED_BY(mu_) = 0;
  std::uint64_t files_deleted_ NETSEER_GUARDED_BY(mu_) = 0;
};

}  // namespace netseer::store
