#include "store/segment.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

namespace netseer::store {

namespace fs = std::filesystem;

namespace {

[[nodiscard]] std::optional<std::uint32_t> seg_index(const std::string& filename) {
  constexpr const char* kPrefix = "seg-";
  constexpr const char* kSuffix = ".seg";
  const std::size_t prefix = std::strlen(kPrefix);
  const std::size_t suffix = std::strlen(kSuffix);
  if (filename.size() <= prefix + suffix) return std::nullopt;
  if (filename.compare(0, prefix, kPrefix) != 0) return std::nullopt;
  if (filename.compare(filename.size() - suffix, suffix, kSuffix) != 0) return std::nullopt;
  std::uint32_t value = 0;
  for (std::size_t i = prefix; i < filename.size() - suffix; ++i) {
    if (filename[i] < '0' || filename[i] > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint32_t>(filename[i] - '0');
  }
  return value;
}

}  // namespace

std::string segment_path(const std::string& dir, std::uint32_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%08u.seg", index);
  return (fs::path(dir) / name).string();
}

std::vector<SegmentFileRef> list_segment_files(const std::string& dir) {
  std::vector<SegmentFileRef> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const auto index = seg_index(entry.path().filename().string());
    if (!index) continue;
    files.push_back(SegmentFileRef{*index, entry.path().string()});
  }
  std::sort(files.begin(), files.end(),
            [](const SegmentFileRef& a, const SegmentFileRef& b) { return a.index < b.index; });
  return files;
}

Segment Segment::build(std::vector<Row> rows, std::uint32_t file_id) {
  Segment seg;
  seg.rows_ = std::move(rows);
  seg.file_id_ = file_id;
  seg.min_lsn_ = seg.rows_.front().lsn;
  seg.max_lsn_ = seg.rows_.back().lsn;
  seg.min_time_ = seg.rows_.front().stored.event.detected_at;
  seg.max_time_ = seg.min_time_;
  // Fences and type counts stay eager (one cheap pass, needed for
  // pruning); the flow/switch maps build lazily on first index lookup
  // so sealing costs no hashing on the ingest path.
  for (std::uint32_t i = 0; i < seg.rows_.size(); ++i) {
    const auto& event = seg.rows_[i].stored.event;
    seg.min_time_ = std::min(seg.min_time_, event.detected_at);
    seg.max_time_ = std::max(seg.max_time_, event.detected_at);
    const auto raw = static_cast<std::size_t>(event.type);
    if (raw < seg.type_counts_.size()) ++seg.type_counts_[raw];
  }
  return seg;
}

void Segment::ensure_indexed() const {
  if (indexed_) return;
  for (std::uint32_t i = 0; i < rows_.size(); ++i) {
    const auto& event = rows_[i].stored.event;
    by_flow_[event.flow.hash64()].push_back(i);
    by_switch_[event.switch_id].push_back(i);
  }
  indexed_ = true;
}

bool Segment::save(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;

  std::array<std::byte, kSegHeaderBytes> header{};
  std::memcpy(header.data(), kSegFileMagic, sizeof(kSegFileMagic));
  put_le<std::uint16_t>(header.data() + 4, kStoreVersion);
  put_le<std::uint16_t>(header.data() + 6, 0);
  put_le<std::uint64_t>(header.data() + 8, rows_.size());
  put_le<std::uint64_t>(header.data() + 16, min_lsn_);
  put_le<std::uint64_t>(header.data() + 24, max_lsn_);
  put_le<std::int64_t>(header.data() + 32, min_time_);
  put_le<std::int64_t>(header.data() + 40, max_time_);

  std::uint32_t crc = util::crc32_update(0, header);
  bool ok = std::fwrite(header.data(), 1, header.size(), f) == header.size();
  for (const Row& row : rows_) {
    if (!ok) break;
    const auto encoded = encode_row(row.stored);
    crc = util::crc32_update(crc, encoded);
    ok = std::fwrite(encoded.data(), 1, encoded.size(), f) == encoded.size();
  }
  std::array<std::byte, 4> footer{};
  put_le<std::uint32_t>(footer.data(), crc);
  ok = ok && std::fwrite(footer.data(), 1, footer.size(), f) == footer.size();
  // fsync before the rename: the rename must never make a segment
  // visible whose bytes could still be lost to an OS crash.
  ok = ok && sync_file(f);
  std::fclose(f);
  if (!ok) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return false;
  sync_dir(fs::path(path).parent_path().string());
  return true;
}

std::optional<Segment> Segment::load(const std::string& path, std::uint32_t file_id) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;

  std::array<std::byte, kSegHeaderBytes> header{};
  if (std::fread(header.data(), 1, header.size(), f) != header.size() ||
      std::memcmp(header.data(), kSegFileMagic, sizeof(kSegFileMagic)) != 0 ||
      get_le<std::uint16_t>(header.data() + 4) != kStoreVersion) {
    std::fclose(f);
    return std::nullopt;
  }
  const std::uint64_t count = get_le<std::uint64_t>(header.data() + 8);
  const std::uint64_t first_lsn = get_le<std::uint64_t>(header.data() + 16);
  if (count == 0) {
    std::fclose(f);
    return std::nullopt;  // empty segments are never written
  }

  std::uint32_t crc = util::crc32_update(0, header);
  std::vector<Row> rows;
  rows.reserve(count);
  std::array<std::byte, kRowBytes> raw{};
  std::uint64_t lsn_cursor = first_lsn;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (std::fread(raw.data(), 1, raw.size(), f) != raw.size()) {
      std::fclose(f);
      return std::nullopt;
    }
    crc = util::crc32_update(crc, raw);
    auto stored = decode_row(raw);
    if (!stored) {
      std::fclose(f);
      return std::nullopt;
    }
    rows.push_back(Row{*stored, lsn_cursor++});
  }
  std::array<std::byte, 4> footer{};
  const bool footer_ok = std::fread(footer.data(), 1, footer.size(), f) == footer.size();
  // The footer must also be the end of the file: trailing bytes mean a
  // mangled count field (or appended garbage), not a smaller segment.
  std::byte trailing{};
  const bool at_eof = std::fread(&trailing, 1, 1, f) == 0;
  std::fclose(f);
  if (!footer_ok || !at_eof || get_le<std::uint32_t>(footer.data()) != crc) return std::nullopt;

  Segment seg = build(std::move(rows), file_id);
  // The header's fences are authoritative for the lsn range (rows only
  // carry the reconstructed consecutive run); sanity-check agreement.
  if (seg.max_lsn_ != get_le<std::uint64_t>(header.data() + 24)) return std::nullopt;
  return seg;
}

}  // namespace netseer::store
