#include "store/subscription.h"

#include <algorithm>

namespace netseer::store {

std::size_t Subscription::poll(
    const std::function<void(const backend::StoredEvent&, std::uint64_t)>& fn,
    std::size_t max_rows) {
  StoreStats& stats = store_->stats_;
  ++stats.subscription_polls;
  const std::uint64_t watermark = store_->durable_lsn();
  if (cursor_ >= watermark || max_rows == 0) return 0;

  // The store retains one contiguous LSN range [oldest, next_lsn_):
  // segments are evicted oldest-first and compaction merges adjacent
  // runs, so whatever is gone is a prefix. Rows in that prefix were
  // dropped by retention policy before this subscriber got to them —
  // count them as lag and jump the cursor past the hole.
  std::uint64_t oldest = store_->next_lsn_;
  if (!store_->segments_.empty()) {
    oldest = store_->segments_.front()->min_lsn();
  } else if (!store_->memtable_.empty()) {
    oldest = store_->memtable_.front().lsn;
  }
  if (oldest > cursor_ + 1) {
    const std::uint64_t skipped = std::min(oldest - 1, watermark) - cursor_;
    lagged_ += skipped;
    stats.subscription_lagged_rows += skipped;
    cursor_ += skipped;
  }

  std::size_t delivered = 0;
  // Rows within a segment (and the memtable) are LSN-consecutive, so
  // the resume point is a direct index, not a search.
  const auto deliver_run = [&](const std::vector<Row>& rows) {
    if (rows.empty() || delivered >= max_rows) return;
    const std::uint64_t first = rows.front().lsn;
    if (rows.back().lsn <= cursor_) return;
    std::size_t i = cursor_ + 1 > first ? static_cast<std::size_t>(cursor_ + 1 - first) : 0;
    for (; i < rows.size(); ++i) {
      const Row& row = rows[i];
      if (row.lsn > watermark || delivered >= max_rows) break;
      cursor_ = row.lsn;
      if (query_.matches(row.stored)) {
        fn(row.stored, row.lsn);
        ++delivered;
      }
    }
  };

  for (const auto& segment : store_->segments_) {
    if (segment->min_lsn() > watermark || delivered >= max_rows) break;
    deliver_run(segment->rows());
  }
  deliver_run(store_->memtable_);

  delivered_ += delivered;
  stats.subscription_rows += delivered;
  return delivered;
}

}  // namespace netseer::store
