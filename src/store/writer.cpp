#include "store/writer.h"

#include <algorithm>

namespace netseer::store {

GroupCommitWriter::GroupCommitWriter(WalWriter& wal, bool sync_every_batch,
                                     std::uint64_t initial_watermark, std::size_t queue_depth)
    : wal_(wal),
      sync_every_batch_(sync_every_batch),
      ring_(queue_depth),
      recycle_(queue_depth),
      watermark_(initial_watermark),
      appended_lsn_(initial_watermark),
      thread_([this] { run(); }) {}

GroupCommitWriter::~GroupCommitWriter() {
  {
    util::CondMutexLock lock(mu_);
    stop_ = true;
    work_cv_.notify_one();
  }
  thread_.join();
}

void GroupCommitWriter::submit(std::vector<Row> batch) {
  if (batch.empty()) return;
  while (!ring_.try_push(batch)) {
    queue_full_waits_.fetch_add(1, std::memory_order_relaxed);
    util::CondMutexLock lock(mu_);
    work_cv_.notify_one();  // make sure the writer is draining
    while (ring_.full()) state_cv_.wait(lock);
  }
  submitted_batches_.fetch_add(1, std::memory_order_relaxed);
  util::CondMutexLock lock(mu_);
  work_cv_.notify_one();
}

std::vector<Row> GroupCommitWriter::take_buffer() {
  std::vector<Row> buffer;
  (void)recycle_.try_pop(buffer);
  buffer.clear();
  return buffer;
}

void GroupCommitWriter::drain() {
  // Everything this (the only) producer submitted, counted by itself.
  const std::uint64_t goal = submitted_batches_.load(std::memory_order_relaxed);
  if (appended_batches_.load(std::memory_order_acquire) >= goal) return;
  util::CondMutexLock lock(mu_);
  work_cv_.notify_one();
  while (appended_batches_.load(std::memory_order_acquire) < goal) state_cv_.wait(lock);
}

bool GroupCommitWriter::sync_to(std::uint64_t lsn) {
  if (watermark_.load(std::memory_order_acquire) >= lsn) return true;
  util::CondMutexLock lock(mu_);
  // Publish the goal under the mutex so the writer either sees it in
  // its sleep predicate or gets the notify.
  std::uint64_t goal = sync_goal_.load(std::memory_order_relaxed);
  while (goal < lsn &&
         !sync_goal_.compare_exchange_weak(goal, lsn, std::memory_order_release)) {
  }
  work_cv_.notify_one();
  while (watermark_.load(std::memory_order_acquire) < lsn) {
    if (wal_.dead()) return false;
    state_cv_.wait(lock);
  }
  return true;
}

std::size_t GroupCommitWriter::drain_available() {
  std::size_t drained = 0;
  std::vector<Row> batch;
  while (ring_.try_pop(batch)) {
    ++drained;
    if (!batch.empty()) {
      const std::uint64_t last_lsn = batch.back().lsn;
      if (!wal_.dead() && wal_.append(batch)) {
        appended_lsn_ = last_lsn;
      } else {
        append_failures_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    batch.clear();
    (void)recycle_.try_push(batch);  // full recycle ring: just drop it
    appended_batches_.fetch_add(1, std::memory_order_release);
    if (sync_every_batch_) (void)commit_group(1);
  }
  return drained;
}

bool GroupCommitWriter::commit_group(std::size_t group_batches) {
  bool ok = true;
  if (appended_lsn_ > watermark_.load(std::memory_order_relaxed)) {
    ok = !wal_.dead() && wal_.sync();
    if (ok) {
      watermark_.store(appended_lsn_, std::memory_order_release);
      groups_committed_.fetch_add(1, std::memory_order_relaxed);
      std::uint64_t seen = max_group_batches_.load(std::memory_order_relaxed);
      while (seen < group_batches && !max_group_batches_.compare_exchange_weak(
                                         seen, group_batches, std::memory_order_relaxed)) {
      }
    }
  } else {
    ok = !wal_.dead();
  }
  if (!ok) {
    // A dead WAL can never meet an outstanding durability goal: abandon
    // it so the loop can sleep instead of spinning. sync_to waiters are
    // notified at the end of the round and observe dead() themselves.
    sync_goal_.store(watermark_.load(std::memory_order_relaxed), std::memory_order_release);
  }
  return ok;
}

void GroupCommitWriter::run() {
  for (;;) {
    bool stopping = false;
    {
      util::CondMutexLock lock(mu_);
      while (ring_.empty() && !stop_ && !sync_pending()) work_cv_.wait(lock);
      stopping = stop_;
    }
    // Drain outside the mutex: the ring keeps filling while we append,
    // and whatever accumulates during the fsync below becomes the next
    // commit group — that is the whole amortization.
    const std::size_t drained = drain_available();
    if ((drained > 0 && !sync_every_batch_) || sync_pending()) (void)commit_group(drained);
    {
      util::CondMutexLock lock(mu_);
      state_cv_.notify_all();
    }
    if (stopping && ring_.empty()) return;
  }
}

}  // namespace netseer::store
