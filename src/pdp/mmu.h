#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.h"

namespace netseer::pdp {

struct MmuConfig {
  /// Per egress queue byte limit (tail drop beyond it).
  std::int64_t queue_capacity_bytes = 300 * 1024;
  /// PFC thresholds on per-(ingress port, class) buffer usage.
  /// xoff == 0 disables PFC generation entirely.
  std::int64_t pfc_xoff_bytes = 0;
  std::int64_t pfc_xon_bytes = 0;
  /// DCTCP-style ECN marking: ECT packets enqueued while the queue holds
  /// more than this get CE-marked. 0 disables marking.
  std::int64_t ecn_mark_bytes = 0;
};

/// The memory-management-unit model: tail-drop admission against per-queue
/// limits plus ingress-side buffer accounting for PFC generation, the two
/// behaviours NetSeer's congestion/pause detection hangs off.
class Mmu {
 public:
  enum class PfcAction : std::uint8_t { kNone, kPause, kResume };

  Mmu(const MmuConfig& config, std::size_t num_ports)
      : config_(config), ingress_bytes_(num_ports * util::kNumQueues, 0),
        upstream_paused_(num_ports * util::kNumQueues, false) {}

  [[nodiscard]] const MmuConfig& config() const { return config_; }

  /// Tail-drop admission: can a packet of `pkt_bytes` join a queue that
  /// currently holds `queue_bytes`?
  [[nodiscard]] bool admit(std::int64_t queue_bytes, std::uint32_t pkt_bytes) const {
    return queue_bytes + pkt_bytes <= config_.queue_capacity_bytes;
  }

  /// Account an admitted packet against its ingress (port, class) buffer.
  /// Returns kPause when usage crosses XOFF and the upstream is not yet
  /// paused.
  PfcAction on_enqueue(util::PortId ingress, util::QueueId cls, std::uint32_t bytes) {
    if (ingress == util::kInvalidPort) return PfcAction::kNone;
    auto& usage = ingress_bytes_[index(ingress, cls)];
    usage += bytes;
    if (usage > peak_ingress_bytes_) peak_ingress_bytes_ = usage;
    if (config_.pfc_xoff_bytes > 0 && usage >= config_.pfc_xoff_bytes &&
        !upstream_paused_[index(ingress, cls)]) {
      upstream_paused_[index(ingress, cls)] = true;
      ++pauses_generated_;
      return PfcAction::kPause;
    }
    return PfcAction::kNone;
  }

  /// Release buffer on dequeue; returns kResume when usage falls to XON
  /// while the upstream is paused.
  PfcAction on_dequeue(util::PortId ingress, util::QueueId cls, std::uint32_t bytes) {
    if (ingress == util::kInvalidPort) return PfcAction::kNone;
    auto& usage = ingress_bytes_[index(ingress, cls)];
    usage -= bytes;
    if (usage < 0) usage = 0;
    if (upstream_paused_[index(ingress, cls)] && usage <= config_.pfc_xon_bytes) {
      upstream_paused_[index(ingress, cls)] = false;
      ++resumes_generated_;
      return PfcAction::kResume;
    }
    return PfcAction::kNone;
  }

  // ---- Telemetry surface --------------------------------------------------
  [[nodiscard]] std::uint64_t pauses_generated() const { return pauses_generated_; }
  [[nodiscard]] std::uint64_t resumes_generated() const { return resumes_generated_; }
  /// High-water mark over every (ingress port, class) buffer.
  [[nodiscard]] std::int64_t peak_ingress_bytes() const { return peak_ingress_bytes_; }

  [[nodiscard]] std::int64_t ingress_usage(util::PortId ingress, util::QueueId cls) const {
    return ingress_bytes_[index(ingress, cls)];
  }
  [[nodiscard]] bool upstream_paused(util::PortId ingress, util::QueueId cls) const {
    return upstream_paused_[index(ingress, cls)];
  }

 private:
  [[nodiscard]] std::size_t index(util::PortId port, util::QueueId cls) const {
    return static_cast<std::size_t>(port) * util::kNumQueues + cls;
  }

  MmuConfig config_;
  std::vector<std::int64_t> ingress_bytes_;
  std::vector<bool> upstream_paused_;
  std::uint64_t pauses_generated_ = 0;
  std::uint64_t resumes_generated_ = 0;
  std::int64_t peak_ingress_bytes_ = 0;
};

}  // namespace netseer::pdp
