#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pdp/acl.h"
#include "pdp/table.h"
#include "pdp/types.h"
#include "util/ids.h"

namespace netseer::pdp {

class Switch;

/// Pipeline stages in the order Switch::receive / run_pipeline / enqueue
/// traverse them. This is the structural skeleton the symbolic executor
/// walks; keep it in sync with the forwarding code (the differential
/// property test in tests/verify enforces agreement).
enum class Stage : std::uint8_t {
  kWire = 0,     // the attached cable (silent loss / corruption happen here)
  kMacRx,        // FCS check, PFC consumption
  kParser,       // header validation, metadata initialization
  kRoute,        // LPM lookup + ECMP member selection
  kAcl,          // ternary ACL, first match wins
  kTtl,          // TTL check / decrement
  kMtu,          // egress MTU check
  kPortHealth,   // egress port / link administrative state
  kQueueSelect,  // DSCP -> priority queue
  kMmuAdmit,     // tail-drop admission
  kEgress,       // scheduler / serialization
};

[[nodiscard]] const char* to_string(Stage stage);

/// PipelineContext fields whose def/use discipline the symbolic executor
/// tracks — the software analog of P4 PHV metadata validity. Fields are
/// "defined" once a stage writes a meaningful value; a consumer that
/// requires a meaningful value before any write is an uninitialized read.
enum class MetaField : std::uint8_t {
  kEgressPort = 0,  // written by the route stage on an LPM hit
  kQueue,           // written by queue selection after the health check
  kAclRuleId,       // written only on the ACL deny branch
};

inline constexpr std::size_t kNumMetaFields = 3;

[[nodiscard]] const char* to_string(MetaField field);

/// Which observation hook (if any) fires when a packet is lost at a drop
/// point. kNone means the loss is invisible to all programmable logic on
/// this switch; kUpstreamSeq means the loss is recovered by inter-switch
/// sequencing and the event is emitted by the upstream switch (§3.3).
enum class DropHook : std::uint8_t {
  kNone = 0,
  kMacRx,         // SwitchAgent::on_mac_rx(corrupted=true)
  kPipelineDrop,  // SwitchAgent::on_pipeline_drop
  kMmuDrop,       // SwitchAgent::on_mmu_drop
  kUpstreamSeq,   // inter-switch gap detection + loss notification
};

/// One place the data path can lose a packet, and how that loss is
/// observable. The set is a static property of the pipeline program, not
/// of any deployed table state.
struct DropPoint {
  Stage stage = Stage::kWire;
  DropReason reason = DropReason::kNone;
  DropHook hook = DropHook::kNone;
};

/// The static drop-point structure of the forwarding pipeline, in stage
/// order. Analyzer passes iterate this instead of re-deriving it from
/// the Switch implementation.
[[nodiscard]] const std::vector<DropPoint>& drop_points();

/// Administrative state of one egress port as the health check sees it.
struct PortView {
  bool up = false;       // Switch::port_up
  bool wired = false;    // a Link is attached
  bool link_up = false;  // the attached Link's admin state (false if unwired)
};

/// Read-only structural snapshot of one constructed switch: everything
/// the symbolic executor needs to enumerate paths, exposed through the
/// Switch's public surface (no friend access). Table pointers reference
/// the live deployed state, so the view is valid only while the switch
/// outlives it and the control plane is quiescent.
struct PipelineView {
  std::string name;
  util::NodeId id = util::kInvalidNode;
  std::uint16_t num_ports = 0;
  std::uint32_t mtu = 0;
  std::uint64_t ecmp_seed = 0;
  std::int64_t queue_capacity_bytes = 0;
  HardwareFault fault = HardwareFault::kNone;
  std::vector<PortView> ports;
  const LpmTable* routes = nullptr;
  const AclTable* acl = nullptr;

  [[nodiscard]] bool port_healthy(util::PortId port) const {
    // Mirrors run_pipeline's check: a down port or a downed link fails;
    // an up port with no cable passes (and blackholes — the coverage
    // pass flags reachable paths into it).
    const PortView& p = ports[port];
    return p.up && (!p.wired || p.link_up);
  }
  [[nodiscard]] bool any_port_wired() const {
    for (const PortView& p : ports) {
      if (p.wired) return true;
    }
    return false;
  }
};

[[nodiscard]] PipelineView make_pipeline_view(const Switch& sw);

}  // namespace netseer::pdp
