#include "pdp/resources.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace netseer::pdp {

const char* to_string(Resource resource) {
  switch (resource) {
    case Resource::kExactXbar: return "Exact xbar";
    case Resource::kTernaryXbar: return "Ternary xbar";
    case Resource::kHashBits: return "Hash bits";
    case Resource::kSram: return "SRAM";
    case Resource::kTcam: return "TCAM";
    case Resource::kVliwActions: return "VLIW actions";
    case Resource::kStatefulAlu: return "Stateful ALU";
    case Resource::kPhv: return "PHV";
  }
  return "?";
}

void ResourceModel::add(const std::string& component, Resource resource, double fraction) {
  const double before = raw_total(resource);
  bool found = false;
  for (auto& c : components_) {
    if (c.name == component) {
      c.usage[static_cast<std::size_t>(resource)] += fraction;
      found = true;
      break;
    }
  }
  if (!found) {
    Component c;
    c.name = component;
    c.usage[static_cast<std::size_t>(resource)] = fraction;
    components_.push_back(std::move(c));
  }
  // Dynamic overflow detection: the moment a class crosses 100% of the
  // chip, count it (telemetry exports the counter) and log the culprit.
  const double after = before + fraction;
  if (before <= 1.0 && after > 1.0) {
    ++overflows_[static_cast<std::size_t>(resource)];
    NETSEER_LOG_WARN("resource overflow: %s at %.1f%% of chip after component '%s'",
                     to_string(resource), 100.0 * after, component.c_str());
  }
}

double ResourceModel::total(Resource resource) const {
  return std::clamp(raw_total(resource), 0.0, 1.0);
}

double ResourceModel::raw_total(Resource resource) const {
  double total = 0.0;
  for (const auto& c : components_) total += c.usage[static_cast<std::size_t>(resource)];
  return total;
}

std::uint64_t ResourceModel::total_overflows() const {
  std::uint64_t total = 0;
  for (const auto count : overflows_) total += count;
  return total;
}

double ResourceModel::component_usage(const std::string& component, Resource resource) const {
  for (const auto& c : components_) {
    if (c.name == component) return c.usage[static_cast<std::size_t>(resource)];
  }
  return 0.0;
}

std::string ResourceModel::report() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-14s %8s", "Resource", "Total");
  out += line;
  for (const auto& c : components_) {
    std::snprintf(line, sizeof(line), " %14s", c.name.c_str());
    out += line;
  }
  out += '\n';
  for (std::size_t r = 0; r < kNumResources; ++r) {
    const auto resource = static_cast<Resource>(r);
    std::snprintf(line, sizeof(line), "%-14s %7.1f%%", to_string(resource),
                  100.0 * total(resource));
    out += line;
    for (const auto& c : components_) {
      std::snprintf(line, sizeof(line), " %13.1f%%", 100.0 * c.usage[r]);
      out += line;
    }
    out += '\n';
  }
  return out;
}

namespace {
// Approximate Tofino 32D capacities used for normalization.
constexpr double kSramBits = 120e6;
constexpr double kTcamBits = 6.2e6;
}  // namespace

double sram_fraction(std::int64_t bytes) {
  return std::clamp(static_cast<double>(bytes) * 8.0 / kSramBits, 0.0, 1.0);
}

double tcam_fraction(std::int64_t bytes) {
  return std::clamp(static_cast<double>(bytes) * 8.0 / kTcamBits, 0.0, 1.0);
}

}  // namespace netseer::pdp
