#pragma once

#include "packet/headers.h"
#include "packet/packet.h"
#include "pdp/types.h"
#include "util/ids.h"
#include "util/time.h"

namespace netseer::pdp {

class Switch;

/// Everything the egress pipeline knows about a departing packet.
struct EgressInfo {
  util::PortId ingress_port = util::kInvalidPort;
  util::PortId egress_port = util::kInvalidPort;
  util::QueueId queue = 0;
  util::SimDuration queue_delay = 0;
};

/// Extension surface of the programmable switch — the software analog of
/// adding NetSeer's P4 blocks to switch.p4 (§4). Agents are invoked in
/// registration order at fixed pipeline attachment points; they may keep
/// per-switch state and may inject packets back through Switch::inject().
///
/// The ground-truth recorder, the baseline monitors, and NetSeer itself
/// all implement this same interface.
class SwitchAgent {
 public:
  virtual ~SwitchAgent() = default;

  /// Called once when the agent is added to a switch.
  virtual void attach(Switch& sw) { (void)sw; }

  /// A frame arrived at a MAC. If `corrupted`, the MAC discards it right
  /// after this call and nothing else ever sees it.
  virtual void on_mac_rx(Switch& sw, const packet::Packet& pkt, util::PortId port,
                         bool corrupted) {
    (void)sw; (void)pkt; (void)port; (void)corrupted;
  }

  /// Start of the ingress pipeline. May mutate the packet (e.g. strip a
  /// sequence shim). Returning false consumes the packet — later agents
  /// and the forwarding pipeline never see it.
  [[nodiscard]] virtual bool on_ingress(Switch& sw, packet::Packet& pkt, PipelineContext& ctx) {
    (void)sw; (void)pkt; (void)ctx;
    return true;
  }

  /// The ingress pipeline dropped the packet (reason in ctx.drop).
  virtual void on_pipeline_drop(Switch& sw, const packet::Packet& pkt,
                                const PipelineContext& ctx) {
    (void)sw; (void)pkt; (void)ctx;
  }

  /// The MMU refused the packet (queue full). ctx.drop == kCongestion.
  virtual void on_mmu_drop(Switch& sw, const packet::Packet& pkt, const PipelineContext& ctx) {
    (void)sw; (void)pkt; (void)ctx;
  }

  /// The packet was admitted to an egress queue. `queue_paused` reports
  /// whether that queue is currently PFC-paused (pause events, §3.3).
  virtual void on_enqueue(Switch& sw, const packet::Packet& pkt, const PipelineContext& ctx,
                          bool queue_paused) {
    (void)sw; (void)pkt; (void)ctx; (void)queue_paused;
  }

  /// Egress pipeline: the packet left its queue and is about to hit the
  /// wire. May mutate (e.g. insert a sequence shim).
  virtual void on_egress(Switch& sw, packet::Packet& pkt, const EgressInfo& info) {
    (void)sw; (void)pkt; (void)info;
  }

  /// A PFC frame arrived on `port` (and was applied to that port's
  /// transmitter before this call).
  virtual void on_pfc_rx(Switch& sw, const packet::PfcFrame& pfc, util::PortId port) {
    (void)sw; (void)pfc; (void)port;
  }

  /// This switch generated a PFC pause/resume toward `port`.
  virtual void on_pfc_tx(Switch& sw, util::PortId port, util::QueueId cls, bool pause) {
    (void)sw; (void)port; (void)cls; (void)pause;
  }
};

}  // namespace netseer::pdp
