#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace netseer::pdp {

/// Resource classes of a Tofino-style RMT pipeline (the axes of paper
/// Figure 7a).
enum class Resource : std::uint8_t {
  kExactXbar = 0,
  kTernaryXbar,
  kHashBits,
  kSram,
  kTcam,
  kVliwActions,
  kStatefulAlu,
  kPhv,
};
inline constexpr std::size_t kNumResources = 8;

[[nodiscard]] const char* to_string(Resource resource);

/// Static resource-occupation model: components declare what fraction of
/// each chip resource they consume, and the model reports per-component
/// and overall usage. This reproduces how P4 compilers report utilization
/// — the *shape* of Figure 7 — from this repo's actual configuration
/// (table sizes, register array sizes) rather than hardware compilation.
class ResourceModel {
 public:
  struct Component {
    std::string name;
    std::array<double, kNumResources> usage{};  // fraction of chip, 0..1
  };

  /// Declare (or extend) a component's usage of one resource. Crossing
  /// 100% of a chip resource is recorded as an overflow (per resource
  /// class) and logged — the telemetry layer exports these counters so
  /// runs can assert zero overflows (see telemetry::collect).
  void add(const std::string& component, Resource resource, double fraction);

  /// Total usage of `resource` across all components, clamped to [0, 1].
  [[nodiscard]] double total(Resource resource) const;

  /// Unclamped total usage of `resource` — above 1.0 when the
  /// configuration does not fit the chip. The static verifier (and the
  /// overflow counters) check this, not the clamped report value.
  [[nodiscard]] double raw_total(Resource resource) const;

  /// Times add() pushed `resource` past 100% of the chip.
  [[nodiscard]] std::uint64_t overflows(Resource resource) const {
    return overflows_[static_cast<std::size_t>(resource)];
  }
  /// Sum of overflows() over every resource class.
  [[nodiscard]] std::uint64_t total_overflows() const;

  /// Usage of `resource` by one component (0 when unknown).
  [[nodiscard]] double component_usage(const std::string& component, Resource resource) const;

  [[nodiscard]] const std::vector<Component>& components() const { return components_; }

  /// Render the Figure-7-style report.
  [[nodiscard]] std::string report() const;

 private:
  std::vector<Component> components_;
  std::array<std::uint64_t, kNumResources> overflows_{};
};

/// SRAM cost model helpers used to derive fractions from configuration.
/// A Tofino 32D exposes roughly 120 Mb of MAU SRAM and 6.2 Mb of TCAM;
/// normalized against those, register/table sizes become chip fractions.
[[nodiscard]] double sram_fraction(std::int64_t bytes);
[[nodiscard]] double tcam_fraction(std::int64_t bytes);

}  // namespace netseer::pdp
