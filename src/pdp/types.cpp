#include "pdp/types.h"

namespace netseer::pdp {

const char* to_string(DropReason reason) {
  switch (reason) {
    case DropReason::kNone: return "none";
    case DropReason::kRouteMiss: return "route-miss";
    case DropReason::kPortDown: return "port-down";
    case DropReason::kAclDeny: return "acl-deny";
    case DropReason::kTtlExpired: return "ttl-expired";
    case DropReason::kMtuExceeded: return "mtu-exceeded";
    case DropReason::kParserError: return "parser-error";
    case DropReason::kCongestion: return "congestion";
    case DropReason::kLinkLoss: return "link-loss";
    case DropReason::kCorruption: return "corruption";
  }
  return "?";
}

const char* to_string(HardwareFault fault) {
  switch (fault) {
    case HardwareFault::kNone: return "none";
    case HardwareFault::kAsicFailure: return "asic-failure";
    case HardwareFault::kMmuFailure: return "mmu-failure";
  }
  return "?";
}

}  // namespace netseer::pdp
