#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "packet/addr.h"
#include "packet/flow_key.h"

namespace netseer::pdp {

/// One ternary ACL rule. Unset (nullopt / length-0 prefix) fields are
/// wildcards. First matching rule in priority order wins.
struct AclRule {
  std::uint16_t rule_id = 0;
  packet::Ipv4Prefix src{};   // length 0 = any
  packet::Ipv4Prefix dst{};   // length 0 = any
  std::optional<std::uint8_t> proto;
  std::uint16_t sport_lo = 0, sport_hi = 0xffff;
  std::uint16_t dport_lo = 0, dport_hi = 0xffff;
  bool permit = false;

  [[nodiscard]] bool matches(const packet::FlowKey& flow) const {
    if (!src.contains(flow.src) || !dst.contains(flow.dst)) return false;
    if (proto && *proto != flow.proto) return false;
    if (flow.sport < sport_lo || flow.sport > sport_hi) return false;
    if (flow.dport < dport_lo || flow.dport > dport_hi) return false;
    return true;
  }
};

/// Ordered ACL with a per-rule hit counter (the counters back NetSeer's
/// ACL-granularity drop aggregation, §3.4). Default action is permit.
class AclTable {
 public:
  void add_rule(AclRule rule) {
    rules_.push_back(Match{std::move(rule), 0});
  }

  bool remove_rule(std::uint16_t rule_id) {
    const auto it = std::find_if(rules_.begin(), rules_.end(), [&](const Match& m) {
      return m.rule.rule_id == rule_id;
    });
    if (it == rules_.end()) return false;
    rules_.erase(it);
    return true;
  }

  struct Verdict {
    bool permit = true;
    std::uint16_t rule_id = 0;  // 0 = default rule
  };

  /// Evaluate `flow`; bumps the matched rule's hit counter.
  [[nodiscard]] Verdict evaluate(const packet::FlowKey& flow) {
    for (auto& m : rules_) {
      if (m.rule.matches(flow)) {
        ++m.hits;
        return Verdict{m.rule.permit, m.rule.rule_id};
      }
    }
    return Verdict{};
  }

  [[nodiscard]] std::uint64_t hits(std::uint16_t rule_id) const {
    for (const auto& m : rules_) {
      if (m.rule.rule_id == rule_id) return m.hits;
    }
    return 0;
  }

  [[nodiscard]] const AclRule* find(std::uint16_t rule_id) const {
    for (const auto& m : rules_) {
      if (m.rule.rule_id == rule_id) return &m.rule;
    }
    return nullptr;
  }

  [[nodiscard]] std::size_t size() const { return rules_.size(); }

  /// Visit every rule in priority (evaluation) order — the order
  /// evaluate() consults them, so index 0 is the highest priority.
  template <typename Fn>
  void for_each_rule(Fn&& fn) const {
    for (const auto& m : rules_) fn(m.rule);
  }

 private:
  struct Match {
    AclRule rule;
    std::uint64_t hits = 0;
  };
  std::vector<Match> rules_;
};

}  // namespace netseer::pdp
