#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "packet/addr.h"
#include "packet/flow_key.h"
#include "util/hash.h"
#include "util/ids.h"

namespace netseer::pdp {

/// A set of equal-cost next-hop ports. Member selection hashes the flow
/// key with a per-switch seed so different switches pick independently,
/// like hardware ECMP hash-seed rotation.
struct EcmpGroup {
  std::vector<util::PortId> ports;

  [[nodiscard]] bool empty() const { return ports.empty(); }

  [[nodiscard]] util::PortId select(const packet::FlowKey& flow, std::uint64_t seed) const {
    if (ports.empty()) return util::kInvalidPort;
    const std::uint64_t h = util::hash_combine(flow.hash64(), util::mix64(seed));
    return ports[h % ports.size()];
  }
};

/// Longest-prefix-match routing table. Entries can be marked corrupted to
/// model SRAM parity errors: a corrupted entry is skipped by lookups, so
/// exactly the flows it covered silently lose their route — the Case-#3
/// failure mode in §5.1.
class LpmTable {
 public:
  struct Entry {
    packet::Ipv4Prefix prefix;
    EcmpGroup nexthops;
    bool corrupted = false;
  };

  /// Insert or replace the entry for `prefix`.
  void insert(const packet::Ipv4Prefix& prefix, EcmpGroup nexthops) {
    for (auto& entry : entries_) {
      if (entry.prefix == prefix) {
        entry.nexthops = std::move(nexthops);
        entry.corrupted = false;
        return;
      }
    }
    entries_.push_back(Entry{prefix, std::move(nexthops), false});
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) { return a.prefix.length > b.prefix.length; });
  }

  /// Remove the entry for `prefix`; returns whether it existed.
  bool remove(const packet::Ipv4Prefix& prefix) {
    const auto it = std::find_if(entries_.begin(), entries_.end(),
                                 [&](const Entry& e) { return e.prefix == prefix; });
    if (it == entries_.end()) return false;
    entries_.erase(it);
    return true;
  }

  /// Flip the parity-error flag on the entry for `prefix`.
  bool set_corrupted(const packet::Ipv4Prefix& prefix, bool corrupted) {
    for (auto& entry : entries_) {
      if (entry.prefix == prefix) {
        entry.corrupted = corrupted;
        return true;
      }
    }
    return false;
  }

  /// Longest matching healthy entry, or nullptr on miss.
  [[nodiscard]] const EcmpGroup* lookup(packet::Ipv4Addr dst) const {
    for (const auto& entry : entries_) {  // sorted longest-first
      if (!entry.corrupted && entry.prefix.contains(dst)) return &entry.nexthops;
    }
    return nullptr;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace netseer::pdp
