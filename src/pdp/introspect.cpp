#include "pdp/introspect.h"

#include "net/link.h"
#include "pdp/switch.h"

namespace netseer::pdp {

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kWire: return "wire";
    case Stage::kMacRx: return "mac-rx";
    case Stage::kParser: return "parser";
    case Stage::kRoute: return "route";
    case Stage::kAcl: return "acl";
    case Stage::kTtl: return "ttl";
    case Stage::kMtu: return "mtu";
    case Stage::kPortHealth: return "port-health";
    case Stage::kQueueSelect: return "queue-select";
    case Stage::kMmuAdmit: return "mmu-admit";
    case Stage::kEgress: return "egress";
  }
  return "?";
}

const char* to_string(MetaField field) {
  switch (field) {
    case MetaField::kEgressPort: return "egress_port";
    case MetaField::kQueue: return "queue";
    case MetaField::kAclRuleId: return "acl_rule_id";
  }
  return "?";
}

const std::vector<DropPoint>& drop_points() {
  // Stage order mirrors Switch::receive -> run_pipeline -> enqueue.
  static const std::vector<DropPoint> kPoints = {
      {Stage::kWire, DropReason::kLinkLoss, DropHook::kUpstreamSeq},
      {Stage::kWire, DropReason::kCorruption, DropHook::kUpstreamSeq},
      {Stage::kMacRx, DropReason::kCorruption, DropHook::kMacRx},
      {Stage::kParser, DropReason::kParserError, DropHook::kPipelineDrop},
      {Stage::kRoute, DropReason::kRouteMiss, DropHook::kPipelineDrop},
      {Stage::kAcl, DropReason::kAclDeny, DropHook::kPipelineDrop},
      {Stage::kTtl, DropReason::kTtlExpired, DropHook::kPipelineDrop},
      {Stage::kMtu, DropReason::kMtuExceeded, DropHook::kPipelineDrop},
      {Stage::kPortHealth, DropReason::kPortDown, DropHook::kPipelineDrop},
      {Stage::kMmuAdmit, DropReason::kCongestion, DropHook::kMmuDrop},
  };
  return kPoints;
}

PipelineView make_pipeline_view(const Switch& sw) {
  PipelineView view;
  view.name = sw.name();
  view.id = sw.id();
  view.num_ports = sw.config().num_ports;
  view.mtu = sw.config().mtu;
  view.ecmp_seed = sw.config().ecmp_seed;
  view.queue_capacity_bytes = sw.config().mmu.queue_capacity_bytes;
  view.fault = sw.hardware_fault();
  view.ports.reserve(view.num_ports);
  for (util::PortId p = 0; p < view.num_ports; ++p) {
    PortView port;
    port.up = sw.port_up(p);
    const net::Link* link = sw.link(p);
    port.wired = link != nullptr;
    port.link_up = port.wired && link->is_up();
    view.ports.push_back(port);
  }
  view.routes = &sw.routes();
  view.acl = &sw.acl();
  return view;
}

}  // namespace netseer::pdp
