#pragma once

#include <cstdint>

#include "util/ids.h"
#include "util/time.h"

namespace netseer::pdp {

/// Why the data plane discarded a packet. Encoded into the 1-byte drop
/// code of NetSeer drop events (§4 event formats), so it must stay small.
/// The grouping mirrors Figure 4 of the paper.
enum class DropReason : std::uint8_t {
  kNone = 0,

  // Pipeline drops (Figure 4 "Pipeline drop").
  kRouteMiss = 1,     // table lookup miss: blackhole or parity error
  kPortDown = 2,      // target port / link is administratively down
  kAclDeny = 3,       // blocked by an ACL rule
  kTtlExpired = 4,    // forwarding loop protection
  kMtuExceeded = 5,   // frame larger than egress MTU
  kParserError = 6,   // pathological packet format

  // MMU drops.
  kCongestion = 7,    // queue full, tail drop

  // Link-level losses (observable only via inter-switch detection).
  kLinkLoss = 8,      // silent drop on the wire
  kCorruption = 9,    // FCS failure at the downstream MAC
};

[[nodiscard]] const char* to_string(DropReason reason);

/// Hardware failure modes NetSeer explicitly cannot cover (§3.7 /
/// Figure 4 "malfunctioning"): a dead ASIC or MMU silently eats packets
/// without ever invoking the programmable pipeline. Modern switches'
/// self-checks usually (not always) raise a Syslog alert instead.
enum class HardwareFault : std::uint8_t {
  kNone = 0,
  kAsicFailure,  // the switch stops processing packets entirely
  kMmuFailure,   // every enqueue silently fails; pipeline still runs
};

[[nodiscard]] const char* to_string(HardwareFault fault);

[[nodiscard]] constexpr bool is_pipeline_drop(DropReason reason) {
  return reason >= DropReason::kRouteMiss && reason <= DropReason::kParserError;
}

/// Per-packet pipeline metadata — the software analog of the PHV fields a
/// P4 program would carry between stages. Created at ingress, consumed at
/// egress; never serialized.
struct PipelineContext {
  util::PortId ingress_port = util::kInvalidPort;
  util::SimTime ingress_time = 0;
  util::PortId egress_port = util::kInvalidPort;
  util::QueueId queue = 0;
  DropReason drop = DropReason::kNone;
  std::uint16_t acl_rule_id = 0;  // valid when drop == kAclDeny
};

}  // namespace netseer::pdp
