#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/link.h"
#include "net/node.h"
#include "net/tx_port.h"
#include "pdp/acl.h"
#include "pdp/agent.h"
#include "pdp/mmu.h"
#include "pdp/table.h"
#include "pdp/types.h"
#include "sim/simulator.h"
#include "util/rate.h"

namespace netseer::pdp {

struct SwitchConfig {
  std::uint16_t num_ports = 32;
  util::BitRate port_rate = util::BitRate::gbps(100);
  MmuConfig mmu{};
  std::uint32_t mtu = packet::kDefaultMtu;
  /// Fixed ingress-pipeline processing latency applied before enqueue.
  util::SimDuration pipeline_latency = util::nanoseconds(400);
  /// ECMP hash seed; defaults to the node id so neighbouring switches
  /// hash flows independently.
  std::uint64_t ecmp_seed = 0;
};

/// Per-port counters — the surface SNMP-style monitoring can see.
struct PortCounters {
  std::uint64_t rx_packets = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t rx_fcs_errors = 0;  // corrupted frames discarded by the MAC
  std::uint64_t egress_drops = 0;   // MMU drops targeting this port
};

/// Per-stage table hit counters across the forwarding pipeline — the
/// introspection surface the telemetry layer exports (what a P4 compiler
/// would report as per-table hit counts).
struct StageCounters {
  std::uint64_t parsed = 0;        // packets entering the L3 pipeline
  std::uint64_t lpm_hits = 0;      // route lookups that matched a group
  std::uint64_t lpm_misses = 0;    // blackholes / parity-corrupted entries
  std::uint64_t acl_evaluated = 0;
  std::uint64_t acl_denied = 0;
  std::uint64_t ecn_marked = 0;    // CE marks applied at enqueue
};

/// Per-queue-class counters, aggregated over all ports of the switch.
struct QueueCounters {
  std::uint64_t enqueues = 0;
  std::uint64_t drops = 0;        // MMU tail drops against this class
  std::int64_t peak_bytes = 0;    // occupancy high-water, sampled at enqueue
};

/// The programmable switch: parser, L3 LPM forwarding with ECMP, ACL,
/// TTL/MTU checks, an MMU with per-queue tail drop and PFC generation,
/// strict-priority egress scheduling, and an agent extension surface at
/// every pipeline attachment point (see SwitchAgent).
class Switch : public net::Node {
 public:
  Switch(sim::Simulator& sim, util::NodeId id, std::string name, const SwitchConfig& config);

  [[nodiscard]] const SwitchConfig& config() const { return config_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  // ---- Wiring -----------------------------------------------------------
  /// Attach the egress side of `port` to `link`.
  void connect(util::PortId port, net::Link* link);
  void set_port_up(util::PortId port, bool up);
  [[nodiscard]] bool port_up(util::PortId port) const { return port_up_[port]; }
  [[nodiscard]] net::TxPort& port(util::PortId port) { return *ports_[port]; }
  [[nodiscard]] const net::TxPort& port(util::PortId port) const { return *ports_[port]; }
  [[nodiscard]] net::Link* link(util::PortId port) const { return links_[port]; }

  // ---- Control plane state ----------------------------------------------
  [[nodiscard]] LpmTable& routes() { return routes_; }
  [[nodiscard]] const LpmTable& routes() const { return routes_; }
  [[nodiscard]] AclTable& acl() { return acl_; }
  [[nodiscard]] const AclTable& acl() const { return acl_; }
  [[nodiscard]] Mmu& mmu() { return mmu_; }
  [[nodiscard]] const Mmu& mmu() const { return mmu_; }

  void add_agent(SwitchAgent* agent);

  /// Inject an ASIC/MMU hardware failure (§3.7). If `self_check_detects`
  /// (the common case on modern switches), the syslog callback fires;
  /// the Case-#3 class of fault is a failure OUTSIDE the detection zone,
  /// i.e. self_check_detects = false. kNone heals the switch.
  void inject_hardware_fault(HardwareFault fault, bool self_check_detects = true);
  [[nodiscard]] HardwareFault hardware_fault() const { return hardware_fault_; }
  /// Packets eaten by a failed ASIC/MMU (invisible to all agents).
  [[nodiscard]] std::uint64_t hardware_discards() const { return hardware_discards_; }

  using SyslogFn = std::function<void(util::NodeId node, const std::string& message)>;
  void set_syslog(SyslogFn fn) { syslog_ = std::move(fn); }

  // ---- Data path ----------------------------------------------------------
  void receive(packet::Packet&& pkt, util::PortId in_port) override;

  /// Agent backdoor: enqueue a locally generated packet (loss
  /// notification, mirror copy...) directly on an egress queue, skipping
  /// the forwarding pipeline.
  void inject(packet::Packet&& pkt, util::PortId egress_port, util::QueueId queue);

  // ---- Observability -------------------------------------------------------
  [[nodiscard]] const PortCounters& counters(util::PortId port) const {
    return counters_[port];
  }
  [[nodiscard]] std::uint64_t drops(DropReason reason) const {
    return drop_counters_[static_cast<std::size_t>(reason)];
  }
  [[nodiscard]] std::uint64_t total_drops() const;
  [[nodiscard]] const StageCounters& stages() const { return stages_; }
  [[nodiscard]] const QueueCounters& queue_counters(util::QueueId queue) const {
    return queue_counters_[queue];
  }

 private:
  void run_pipeline(packet::Packet&& pkt, PipelineContext ctx);
  void enqueue(packet::Packet&& pkt, const PipelineContext& ctx);
  void handle_egress(packet::Packet& pkt, util::PortId port, util::QueueId queue,
                     util::SimDuration queue_delay);
  void handle_pfc(const packet::Packet& pkt, util::PortId in_port);
  void send_pfc(util::PortId port, util::QueueId cls, bool pause);
  void drop(const packet::Packet& pkt, PipelineContext& ctx, DropReason reason);

  sim::Simulator& sim_;
  SwitchConfig config_;
  std::vector<std::unique_ptr<net::TxPort>> ports_;
  std::vector<net::Link*> links_;
  std::vector<bool> port_up_;
  std::vector<PortCounters> counters_;
  std::array<std::uint64_t, 16> drop_counters_{};
  StageCounters stages_;
  std::array<QueueCounters, util::kNumQueues> queue_counters_{};
  LpmTable routes_;
  AclTable acl_;
  Mmu mmu_;
  std::vector<SwitchAgent*> agents_;
  HardwareFault hardware_fault_ = HardwareFault::kNone;
  std::uint64_t hardware_discards_ = 0;
  SyslogFn syslog_;
};

}  // namespace netseer::pdp
