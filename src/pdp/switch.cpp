#include "pdp/switch.h"

#include "net/host.h"
#include "packet/builder.h"
#include "packet/pool.h"

namespace netseer::pdp {

Switch::Switch(sim::Simulator& sim, util::NodeId id, std::string name,
               const SwitchConfig& config)
    : Node(id, std::move(name)), sim_(sim), config_(config),
      links_(config.num_ports, nullptr), port_up_(config.num_ports, true),
      counters_(config.num_ports), mmu_(config.mmu, config.num_ports) {
  if (config_.ecmp_seed == 0) config_.ecmp_seed = id;
  ports_.reserve(config_.num_ports);
  for (std::uint16_t p = 0; p < config_.num_ports; ++p) {
    auto port = std::make_unique<net::TxPort>(sim_, config_.port_rate);
    const util::PortId port_id = p;
    port->set_dequeue_hook(
        [this, port_id](packet::Packet& pkt, util::QueueId queue, util::SimDuration delay) {
          handle_egress(pkt, port_id, queue, delay);
        });
    ports_.push_back(std::move(port));
  }
}

void Switch::connect(util::PortId port, net::Link* link) {
  links_[port] = link;
  ports_[port]->set_out(link);
}

void Switch::set_port_up(util::PortId port, bool up) {
  port_up_[port] = up;
  ports_[port]->set_up(up);
}

void Switch::add_agent(SwitchAgent* agent) {
  agents_.push_back(agent);
  agent->attach(*this);
}

std::uint64_t Switch::total_drops() const {
  std::uint64_t total = 0;
  for (auto c : drop_counters_) total += c;
  return total;
}

void Switch::receive(packet::Packet&& pkt, util::PortId in_port) {
  // A dead ASIC eats everything before any programmable logic runs —
  // the one failure class NetSeer cannot cover (§3.7).
  if (hardware_fault_ == HardwareFault::kAsicFailure) {
    ++hardware_discards_;
    return;
  }

  auto& counters = counters_[in_port];
  pkt.meta.ingress_port = in_port;
  pkt.meta.ingress_time = sim_.now();

  // MAC layer: frames failing the FCS check are discarded silently; the
  // only trace is a per-port error counter (and, with NetSeer, the
  // sequence gap the upstream detector will be told about).
  if (pkt.corrupted) {
    ++counters.rx_fcs_errors;
    for (auto* agent : agents_) agent->on_mac_rx(*this, pkt, in_port, /*corrupted=*/true);
    return;
  }
  ++counters.rx_packets;
  counters.rx_bytes += pkt.wire_bytes();
  for (auto* agent : agents_) agent->on_mac_rx(*this, pkt, in_port, /*corrupted=*/false);

  // MAC control: PFC pause/resume is consumed here, before the pipeline.
  if (pkt.kind == packet::PacketKind::kPfc && pkt.pfc) {
    handle_pfc(pkt, in_port);
    return;
  }

  PipelineContext ctx;
  ctx.ingress_port = in_port;
  ctx.ingress_time = sim_.now();

  for (auto* agent : agents_) {
    if (!agent->on_ingress(*this, pkt, ctx)) return;  // consumed (e.g. loss notify)
  }
  run_pipeline(std::move(pkt), ctx);
}

void Switch::run_pipeline(packet::Packet&& pkt, PipelineContext ctx) {
  // Parser: anything non-IPv4 that survived the control-frame checks is a
  // pathological format for this L3 pipeline.
  if (!pkt.ip) {
    drop(pkt, ctx, DropReason::kParserError);
    return;
  }

  ++stages_.parsed;

  // L3 route lookup + ECMP member selection.
  const packet::FlowKey flow = pkt.flow();
  const EcmpGroup* group = routes_.lookup(pkt.ip->dst);
  if (group == nullptr || group->empty()) {
    ++stages_.lpm_misses;
    drop(pkt, ctx, DropReason::kRouteMiss);
    return;
  }
  ++stages_.lpm_hits;
  ctx.egress_port = group->select(flow, config_.ecmp_seed);
  if (ctx.egress_port >= ports_.size()) {
    drop(pkt, ctx, DropReason::kRouteMiss);
    return;
  }

  // ACL.
  ++stages_.acl_evaluated;
  const auto verdict = acl_.evaluate(flow);
  if (!verdict.permit) {
    ++stages_.acl_denied;
    ctx.acl_rule_id = verdict.rule_id;
    drop(pkt, ctx, DropReason::kAclDeny);
    return;
  }

  // TTL.
  if (pkt.ip->ttl <= 1) {
    drop(pkt, ctx, DropReason::kTtlExpired);
    return;
  }
  --pkt.ip->ttl;

  // Egress MTU.
  const std::uint32_t ip_bytes = pkt.wire_bytes() - packet::kEthHeaderBytes -
                                 packet::kEthFcsBytes -
                                 (pkt.vlan ? packet::kVlanTagBytes : 0) -
                                 (pkt.seq_tag ? packet::kSeqTagBytes : 0);
  if (ip_bytes > config_.mtu) {
    drop(pkt, ctx, DropReason::kMtuExceeded);
    return;
  }

  // Target port / link health.
  if (!port_up_[ctx.egress_port] ||
      (links_[ctx.egress_port] != nullptr && !links_[ctx.egress_port]->is_up())) {
    drop(pkt, ctx, DropReason::kPortDown);
    return;
  }

  ctx.queue = net::queue_for(pkt);

  if (config_.pipeline_latency > 0) {
    (void)sim_.schedule_after(config_.pipeline_latency,
                        [this, slot = packet::Pool::local().acquire(std::move(pkt)),
                         ctx]() mutable { enqueue(slot.take(), ctx); });
  } else {
    enqueue(std::move(pkt), ctx);
  }
}

void Switch::enqueue(packet::Packet&& pkt, const PipelineContext& ctx) {
  // A failed MMU loses the packet without the drop-redirect path ever
  // firing: no agent callback, no counter a collector could read.
  if (hardware_fault_ == HardwareFault::kMmuFailure) {
    ++hardware_discards_;
    (void)pkt;
    return;
  }

  auto& port = *ports_[ctx.egress_port];

  // MMU admission (tail drop).
  if (!mmu_.admit(port.queue_bytes(ctx.queue), pkt.wire_bytes())) {
    ++drop_counters_[static_cast<std::size_t>(DropReason::kCongestion)];
    ++counters_[ctx.egress_port].egress_drops;
    ++queue_counters_[ctx.queue].drops;
    PipelineContext drop_ctx = ctx;
    drop_ctx.drop = DropReason::kCongestion;
    for (auto* agent : agents_) agent->on_mmu_drop(*this, pkt, drop_ctx);
    return;
  }

  // PFC ingress-buffer accounting.
  const auto action = mmu_.on_enqueue(ctx.ingress_port, ctx.queue, pkt.wire_bytes());
  if (action == Mmu::PfcAction::kPause) send_pfc(ctx.ingress_port, ctx.queue, /*pause=*/true);

  const bool paused = port.is_paused(ctx.queue);
  for (auto* agent : agents_) agent->on_enqueue(*this, pkt, ctx, paused);

  // DCTCP-style ECN: CE-mark ECT packets above the marking threshold.
  if (config_.mmu.ecn_mark_bytes > 0 && pkt.ip && pkt.ip->ecn != 0 &&
      port.queue_bytes(ctx.queue) > config_.mmu.ecn_mark_bytes) {
    pkt.ip->ecn = 3;  // CE
    ++stages_.ecn_marked;
  }

  pkt.meta.mmu_accounted = true;
  auto& queue_stats = queue_counters_[ctx.queue];
  ++queue_stats.enqueues;
  port.enqueue(std::move(pkt), ctx.queue);
  const std::int64_t occupancy = port.queue_bytes(ctx.queue);
  if (occupancy > queue_stats.peak_bytes) queue_stats.peak_bytes = occupancy;
}

void Switch::handle_egress(packet::Packet& pkt, util::PortId port, util::QueueId queue,
                           util::SimDuration queue_delay) {
  // Release PFC accounting for the ingress this packet came from.
  if (pkt.meta.mmu_accounted) {
    pkt.meta.mmu_accounted = false;
    const auto action = mmu_.on_dequeue(pkt.meta.ingress_port, queue, pkt.wire_bytes());
    if (action == Mmu::PfcAction::kResume) {
      send_pfc(pkt.meta.ingress_port, queue, /*pause=*/false);
    }
  }

  EgressInfo info;
  info.ingress_port = pkt.meta.ingress_port;
  info.egress_port = port;
  info.queue = queue;
  info.queue_delay = queue_delay;
  for (auto* agent : agents_) agent->on_egress(*this, pkt, info);
}

void Switch::handle_pfc(const packet::Packet& pkt, util::PortId in_port) {
  for (std::uint8_t cls = 0; cls < util::kNumQueues; ++cls) {
    if (pkt.pfc->class_enable & (1u << cls)) {
      ports_[in_port]->apply_pause(cls, pkt.pfc->pause_quanta[cls]);
    }
  }
  for (auto* agent : agents_) agent->on_pfc_rx(*this, *pkt.pfc, in_port);
}

void Switch::send_pfc(util::PortId port, util::QueueId cls, bool pause) {
  if (links_[port] == nullptr) return;
  packet::Packet frame = packet::make_pfc(cls, pause ? 0xffff : 0);
  frame.eth.src = packet::MacAddr::from_node_id(id());
  frame.meta.origin_node = id();
  frame.meta.created_time = sim_.now();
  for (auto* agent : agents_) agent->on_pfc_tx(*this, port, cls, pause);
  // PFC frames are MAC-generated: they bypass the egress queues.
  links_[port]->send(std::move(frame));
}

void Switch::inject(packet::Packet&& pkt, util::PortId egress_port, util::QueueId queue) {
  if (egress_port >= ports_.size() || !port_up_[egress_port]) return;
  pkt.meta.origin_node = id();
  ports_[egress_port]->enqueue(std::move(pkt), queue);
}

void Switch::inject_hardware_fault(HardwareFault fault, bool self_check_detects) {
  hardware_fault_ = fault;
  if (fault != HardwareFault::kNone && self_check_detects && syslog_) {
    syslog_(id(), std::string("self-check: ") + to_string(fault));
  }
}

void Switch::drop(const packet::Packet& pkt, PipelineContext& ctx, DropReason reason) {
  ctx.drop = reason;
  ++drop_counters_[static_cast<std::size_t>(reason)];
  for (auto* agent : agents_) agent->on_pipeline_drop(*this, pkt, ctx);
}

}  // namespace netseer::pdp
