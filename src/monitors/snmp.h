#pragma once

#include <cstdint>
#include <vector>

#include "pdp/switch.h"
#include "sim/simulator.h"

namespace netseer::monitors {

/// SNMP-style counter polling [RFC 1157 era]: periodically reads each
/// switch's aggregate drop counters. It can tell *that* a device dropped
/// packets within a poll interval — never *whose* packets (the Case-#2
/// pain in §2.1). Flow-level coverage is zero by construction.
class SnmpMonitor {
 public:
  struct Poll {
    util::SimTime at;
    util::NodeId node;
    std::uint64_t total_drops;      // cumulative
    std::uint64_t drops_delta;      // since previous poll
    std::uint64_t congestion_drops; // cumulative MMU drops
  };

  SnmpMonitor(sim::Simulator& sim, std::vector<pdp::Switch*> switches,
              util::SimDuration interval)
      : switches_(std::move(switches)) {
    last_.resize(switches_.size(), 0);
    task_ = sim.schedule_every(interval, [this, &sim] { poll(sim.now()); });
  }
  ~SnmpMonitor() { stop(); }

  /// Cancel the polling task (required before draining the simulator).
  void stop() { task_.cancel(); }

  [[nodiscard]] const std::vector<Poll>& polls() const { return polls_; }

  /// Did any poll show new drops at `node`? (Existence-level detection.)
  [[nodiscard]] bool saw_drops_at(util::NodeId node) const {
    for (const auto& poll : polls_) {
      if (poll.node == node && poll.drops_delta > 0) return true;
    }
    return false;
  }

  /// ~100 B per switch per poll of management traffic.
  [[nodiscard]] std::uint64_t overhead_bytes() const { return polls_.size() * 100; }

  void poll(util::SimTime now) {
    for (std::size_t i = 0; i < switches_.size(); ++i) {
      const auto total = switches_[i]->total_drops();
      polls_.push_back(Poll{now, switches_[i]->id(), total, total - last_[i],
                            switches_[i]->drops(pdp::DropReason::kCongestion)});
      last_[i] = total;
    }
  }

 private:
  std::vector<pdp::Switch*> switches_;
  std::vector<std::uint64_t> last_;
  std::vector<Poll> polls_;
  sim::TaskHandle task_;
};

}  // namespace netseer::monitors
