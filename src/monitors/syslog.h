#pragma once

#include <string>
#include <vector>

#include "pdp/switch.h"
#include "util/ids.h"
#include "util/time.h"

namespace netseer::monitors {

/// Collects switch self-check alerts — the channel through which the
/// hardware failures NetSeer cannot cover (§3.7, Figure 4
/// "malfunctioning") reach operators. Attach to every switch; a Case-#3
/// style fault outside the detection zone produces nothing here, which
/// is exactly the gap flow event telemetry fills.
class SyslogCollector {
 public:
  struct Alert {
    util::SimTime at;
    util::NodeId node;
    std::string message;
  };

  explicit SyslogCollector(sim::Simulator& sim) : sim_(sim) {}

  void attach(pdp::Switch& sw) {
    sw.set_syslog([this](util::NodeId node, const std::string& message) {
      alerts_.push_back(Alert{sim_.now(), node, message});
    });
  }

  [[nodiscard]] const std::vector<Alert>& alerts() const { return alerts_; }

  [[nodiscard]] bool has_alert_for(util::NodeId node) const {
    for (const auto& alert : alerts_) {
      if (alert.node == node) return true;
    }
    return false;
  }

 private:
  sim::Simulator& sim_;
  std::vector<Alert> alerts_;
};

}  // namespace netseer::monitors
