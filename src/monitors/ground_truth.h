#pragma once

#include <unordered_map>
#include <vector>

#include "core/event.h"
#include "monitors/observation.h"
#include "net/link.h"
#include "pdp/agent.h"
#include "pdp/switch.h"

namespace netseer::monitors {

/// One actual data-plane event, as only an omniscient observer can know
/// it. Used to score every monitor's coverage and NetSeer's FP/FN rates;
/// no monitor is allowed to read this.
struct TrueEvent {
  core::EventType type;
  packet::FlowKey flow{};
  util::NodeId node = util::kInvalidNode;  // where it happened (link faults: upstream end)
  pdp::DropReason drop_reason = pdp::DropReason::kNone;
  util::SimTime at = 0;
  util::PacketUid uid = 0;
  std::uint8_t ingress_port = 0xff;
  std::uint8_t egress_port = 0xff;
  util::SimDuration queue_delay = 0;
};

/// Omniscient event recorder: attach to every switch (FIRST, before any
/// packet-mutating agent) and to every link. Uses unbounded exact state,
/// which hardware could never afford — that is the point.
class GroundTruth final : public pdp::SwitchAgent, public net::LinkObserver {
 public:
  explicit GroundTruth(util::SimDuration congestion_threshold = util::microseconds(20))
      : congestion_threshold_(congestion_threshold) {}

  // ---- SwitchAgent ------------------------------------------------------
  void on_pipeline_drop(pdp::Switch& sw, const packet::Packet& pkt,
                        const pdp::PipelineContext& ctx) override {
    record_drop(sw.id(), pkt, ctx.drop, ctx.ingress_port, ctx.egress_port,
                sw.simulator().now());
  }

  void on_mmu_drop(pdp::Switch& sw, const packet::Packet& pkt,
                   const pdp::PipelineContext& ctx) override {
    record_drop(sw.id(), pkt, pdp::DropReason::kCongestion, ctx.ingress_port, ctx.egress_port,
                sw.simulator().now());
  }

  void on_enqueue(pdp::Switch& sw, const packet::Packet& pkt, const pdp::PipelineContext& ctx,
                  bool queue_paused) override {
    if (!queue_paused || !pkt.is_ipv4()) return;
    TrueEvent ev;
    ev.type = core::EventType::kPause;
    ev.flow = pkt.flow();
    ev.node = sw.id();
    ev.at = sw.simulator().now();
    ev.egress_port = static_cast<std::uint8_t>(ctx.egress_port);
    ev.uid = pkt.uid;
    events_.push_back(ev);
  }

  void on_egress(pdp::Switch& sw, packet::Packet& pkt, const pdp::EgressInfo& info) override {
    if (!pkt.is_ipv4() || pkt.kind != packet::PacketKind::kData) return;
    const auto now = sw.simulator().now();

    if (info.queue_delay > congestion_threshold_) {
      TrueEvent ev;
      ev.type = core::EventType::kCongestion;
      ev.flow = pkt.flow();
      ev.node = sw.id();
      ev.at = now;
      ev.egress_port = static_cast<std::uint8_t>(info.egress_port);
      ev.queue_delay = info.queue_delay;
      ev.uid = pkt.uid;
      events_.push_back(ev);
    }

    // Exact, unbounded path tracking: first packet of a flow at a switch
    // and any later port change are path events.
    const PathKey key{sw.id(), pkt.flow().hash64()};
    auto [it, inserted] = paths_.try_emplace(key, Ports{info.ingress_port, info.egress_port});
    const bool changed =
        !inserted && (it->second.in != info.ingress_port || it->second.out != info.egress_port);
    if (inserted || changed) {
      it->second = Ports{info.ingress_port, info.egress_port};
      TrueEvent ev;
      ev.type = core::EventType::kPathChange;
      ev.flow = pkt.flow();
      ev.node = sw.id();
      ev.at = now;
      ev.ingress_port = static_cast<std::uint8_t>(info.ingress_port);
      ev.egress_port = static_cast<std::uint8_t>(info.egress_port);
      ev.uid = pkt.uid;
      events_.push_back(ev);
    }
  }

  // ---- LinkObserver -----------------------------------------------------
  void on_link_fault(const packet::Packet& pkt, util::NodeId from, util::NodeId to,
                     net::LinkFault fault) override {
    (void)to;
    if (pkt.kind == packet::PacketKind::kLossNotify ||
        pkt.kind == packet::PacketKind::kPfc) {
      return;  // monitoring/control traffic, not a flow event
    }
    TrueEvent ev;
    ev.type = core::EventType::kDrop;
    ev.flow = pkt.flow();
    ev.node = from;  // attributed to the upstream end, like NetSeer's report
    ev.drop_reason = fault == net::LinkFault::kSilentDrop ? pdp::DropReason::kLinkLoss
                                                          : pdp::DropReason::kCorruption;
    ev.at = pkt.meta.created_time;
    ev.uid = pkt.uid;
    events_.push_back(ev);
  }

  // ---- Scoring ------------------------------------------------------------
  [[nodiscard]] const std::vector<TrueEvent>& events() const { return events_; }

  [[nodiscard]] std::size_t count(core::EventType type) const {
    std::size_t n = 0;
    for (const auto& ev : events_) n += (ev.type == type);
    return n;
  }

  /// Ground-truth (node, flow, type) groups, the denominators of every
  /// coverage figure. Inter-switch link losses and corruptions report as
  /// drop groups at the upstream node, exactly how NetSeer reports them.
  [[nodiscard]] EventGroupSet groups(std::optional<core::EventType> type = {}) const {
    EventGroupSet set;
    for (const auto& ev : events_) {
      if (type && ev.type != *type) continue;
      // Link-level corruption reports as a plain drop group: NetSeer and
      // the scoring treat loss and corruption identically (§3.3).
      set.insert(EventGroup{ev.node, ev.flow.hash64(), ev.type});
    }
    return set;
  }

  /// Drop groups restricted to one drop reason.
  [[nodiscard]] EventGroupSet drop_groups(pdp::DropReason reason) const {
    EventGroupSet set;
    for (const auto& ev : events_) {
      if (ev.type != core::EventType::kDrop || ev.drop_reason != reason) continue;
      set.insert(EventGroup{ev.node, ev.flow.hash64(), core::EventType::kDrop});
    }
    return set;
  }

  void clear() {
    events_.clear();
    paths_.clear();
  }

 private:
  void record_drop(util::NodeId node, const packet::Packet& pkt, pdp::DropReason reason,
                   util::PortId in, util::PortId out, util::SimTime now) {
    if (!pkt.is_ipv4()) return;
    TrueEvent ev;
    ev.type = core::EventType::kDrop;
    ev.flow = pkt.flow();
    ev.node = node;
    ev.drop_reason = reason;
    ev.at = now;
    ev.uid = pkt.uid;
    ev.ingress_port = static_cast<std::uint8_t>(in);
    ev.egress_port = static_cast<std::uint8_t>(out);
    events_.push_back(ev);
  }

  struct PathKey {
    util::NodeId node;
    std::uint64_t flow_hash;
    bool operator==(const PathKey&) const = default;
  };
  struct PathKeyHash {
    std::size_t operator()(const PathKey& key) const noexcept {
      return util::hash_combine(key.node, key.flow_hash);
    }
  };
  struct Ports {
    util::PortId in;
    util::PortId out;
  };

  util::SimDuration congestion_threshold_;
  std::vector<TrueEvent> events_;
  std::unordered_map<PathKey, Ports, PathKeyHash> paths_;
};

}  // namespace netseer::monitors
