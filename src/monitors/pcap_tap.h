#pragma once

#include "net/pcap.h"
#include "pdp/agent.h"
#include "pdp/switch.h"

namespace netseer::monitors {

/// Switch agent that taps every frame departing a chosen port into a
/// pcap stream — a virtual SPAN/mirror session. Dumps open directly in
/// Wireshark/tcpdump (valid FCS and IP checksums), NetSeer sequence
/// shims included.
class PcapTapAgent final : public pdp::SwitchAgent {
 public:
  /// Tap egress of `port` on whichever switch this agent is added to
  /// (use one agent per tap). kInvalidPort taps every port.
  explicit PcapTapAgent(net::PcapWriter& writer, util::PortId port = util::kInvalidPort)
      : writer_(writer), port_(port) {}

  void on_egress(pdp::Switch& sw, packet::Packet& pkt, const pdp::EgressInfo& info) override {
    if (port_ != util::kInvalidPort && info.egress_port != port_) return;
    writer_.write(pkt, sw.simulator().now());
  }

 private:
  net::PcapWriter& writer_;
  util::PortId port_;
};

}  // namespace netseer::monitors
