#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "monitors/netsight.h"
#include "monitors/observation.h"
#include "pdp/agent.h"
#include "pdp/switch.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace netseer::monitors {

/// EverFlow-style match-and-mirror [Zhu et al., SIGCOMM'15], configured
/// as in the paper's evaluation (§5): switches mirror TCP SYN/FIN
/// packets via ERSPAN, and an on-demand packet-telemetry mode repeatedly
/// picks 1,000 random flows per minute and mirrors *all* their packets
/// at every hop during that window. Events hitting unselected flows at
/// unselected times are invisible — hence <1% coverage in Figure 9.
class EverflowMonitor final : public pdp::SwitchAgent {
 public:
  struct Config {
    std::size_t telemetry_flows = 1000;
    util::SimDuration reselect_interval = util::seconds(60);
  };

  EverflowMonitor(sim::Simulator& sim, const Config& config, util::Rng rng)
      : config_(config), rng_(rng) {
    task_ = sim.schedule_every(config.reselect_interval, [this] { reselect(); });
    // First selection happens as soon as flows have been observed; until
    // then the telemetry set is empty, as in a cold-started deployment.
  }
  ~EverflowMonitor() { stop(); }

  /// Cancel the periodic reselection task. Required before draining the
  /// simulator with run() — periodic tasks never let the queue empty.
  void stop() { task_.cancel(); }

  // ---- SwitchAgent ------------------------------------------------------
  bool on_ingress(pdp::Switch& sw, packet::Packet& pkt, pdp::PipelineContext& ctx) override {
    if (!pkt.is_ipv4() || pkt.kind != packet::PacketKind::kData) return true;
    const auto flow = pkt.flow();
    known_flows_.insert(flow);

    const bool syn_fin =
        pkt.is_tcp() && (pkt.l4.flags & (packet::tcp_flags::kSyn | packet::tcp_flags::kFin));
    if (syn_fin) {
      Observation obs;
      obs.node = sw.id();
      obs.flow = flow;
      obs.type = core::EventType::kPathChange;  // SYN/FIN mirrors reveal paths
      obs.at = sw.simulator().now();
      obs.ingress_port = static_cast<std::uint8_t>(ctx.ingress_port & 0xff);
      mirrors_.record(std::move(obs));
      mirrors_.add_overhead_bytes(64);
    }
    return true;
  }

  void on_pipeline_drop(pdp::Switch& sw, const packet::Packet& pkt,
                        const pdp::PipelineContext& ctx) override {
    if (selected(pkt)) telemetry_.on_pipeline_drop(sw, pkt, ctx);
  }
  void on_mmu_drop(pdp::Switch& sw, const packet::Packet& pkt,
                   const pdp::PipelineContext& ctx) override {
    if (selected(pkt)) telemetry_.on_mmu_drop(sw, pkt, ctx);
  }
  void on_egress(pdp::Switch& sw, packet::Packet& pkt, const pdp::EgressInfo& info) override {
    if (selected(pkt)) telemetry_.on_egress(sw, pkt, info);
  }

  /// Telemetry-derived groups (only selected flows during their window).
  /// No delivery records at hosts -> wire losses cannot be inferred.
  [[nodiscard]] EventGroupSet drop_groups() const {
    return telemetry_.drop_groups(/*infer_wire_losses=*/false);
  }
  [[nodiscard]] EventGroupSet congestion_groups(util::SimDuration threshold) const {
    return telemetry_.congestion_groups(threshold);
  }
  /// Paths: SYN/FIN mirrors plus telemetry windows.
  [[nodiscard]] EventGroupSet path_groups() const {
    EventGroupSet set = telemetry_.path_groups();
    for (const auto& obs : mirrors_.observations()) {
      set.insert(EventGroup{obs.node, obs.flow->hash64(), core::EventType::kPathChange});
    }
    return set;
  }

  [[nodiscard]] std::uint64_t overhead_bytes() const {
    return mirrors_.overhead_bytes() + telemetry_.overhead_bytes();
  }
  [[nodiscard]] std::size_t known_flow_count() const { return known_flows_.size(); }
  [[nodiscard]] std::size_t selected_flow_count() const { return selected_.size(); }

  /// Re-pick the on-demand telemetry flow set (also runs periodically).
  void reselect() {
    selected_.clear();
    if (known_flows_.empty()) return;
    std::vector<packet::FlowKey> pool(known_flows_.begin(), known_flows_.end());
    const std::size_t want = std::min(config_.telemetry_flows, pool.size());
    for (std::size_t i = 0; i < want; ++i) {
      const auto j = i + rng_.uniform(pool.size() - i);
      std::swap(pool[i], pool[j]);
      selected_.insert(pool[i].hash64());
    }
  }

 private:
  [[nodiscard]] bool selected(const packet::Packet& pkt) const {
    return pkt.is_ipv4() && selected_.contains(pkt.flow().hash64());
  }

  Config config_;
  util::Rng rng_;
  sim::TaskHandle task_;
  std::unordered_set<packet::FlowKey, packet::FlowKeyHash> known_flows_;
  std::unordered_set<std::uint64_t> selected_;
  ObservationLog mirrors_;
  NetSightMonitor telemetry_;  // reused as the mirror-record store
};

}  // namespace netseer::monitors
