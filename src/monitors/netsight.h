#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "monitors/observation.h"
#include "net/host.h"
#include "pdp/agent.h"
#include "pdp/switch.h"

namespace netseer::monitors {

/// NetSight-style per-packet telemetry [Handigol et al., NSDI'14]: every
/// switch mirrors a 64-byte postcard for every packet at every hop, with
/// forwarding ports and latency. Full event coverage — at enormous cost
/// (the paper measures ~18% bandwidth overhead; Fig. 11).
///
/// Postcard records are kept raw; derive_*() reconstructs packet
/// histories the way the NetSight collector would: a packet whose last
/// postcard is an egress at switch S, and which never reached its
/// destination host, died on the wire after S.
class NetSightMonitor final : public pdp::SwitchAgent {
 public:
  enum class Stage : std::uint8_t { kIngress, kEgress, kDropped };

  struct Postcard {
    util::PacketUid uid;
    packet::FlowKey flow;
    util::NodeId node;
    Stage stage;
    std::uint8_t ingress_port;
    std::uint8_t egress_port;
    util::SimDuration queue_delay;
    pdp::DropReason drop_reason;
    util::SimTime at;
  };

  /// Attach to every host so delivery is known (the real NetSight
  /// shim spans the network edge as well).
  class DeliveryTracker final : public net::HostApp {
   public:
    explicit DeliveryTracker(NetSightMonitor& monitor) : monitor_(monitor) {}
    void on_receive(net::Host&, const packet::Packet& pkt) override {
      monitor_.delivered_.insert(pkt.uid);
    }

   private:
    NetSightMonitor& monitor_;
  };

  // ---- SwitchAgent ------------------------------------------------------
  // (One postcard per hop: recorded at egress or at the drop point; the
  // collector needs no separate ingress record for reconstruction.)

  void on_pipeline_drop(pdp::Switch& sw, const packet::Packet& pkt,
                        const pdp::PipelineContext& ctx) override {
    if (!pkt.is_ipv4()) return;
    add(pkt, sw.id(), Stage::kDropped, ctx.ingress_port, ctx.egress_port, 0, ctx.drop,
        sw.simulator().now());
  }

  void on_mmu_drop(pdp::Switch& sw, const packet::Packet& pkt,
                   const pdp::PipelineContext& ctx) override {
    if (!pkt.is_ipv4()) return;
    add(pkt, sw.id(), Stage::kDropped, ctx.ingress_port, ctx.egress_port, 0,
        pdp::DropReason::kCongestion, sw.simulator().now());
  }

  void on_egress(pdp::Switch& sw, packet::Packet& pkt, const pdp::EgressInfo& info) override {
    // NetSight mirrors every packet — probes included (only NetSeer's
    // non-IP link-local control frames are invisible to it).
    if (!pkt.is_ipv4()) return;
    add(pkt, sw.id(), Stage::kEgress, info.ingress_port, info.egress_port, info.queue_delay,
        pdp::DropReason::kNone, sw.simulator().now());
  }

  // ---- Collector-side reconstruction ---------------------------------------
  /// All drop groups: explicit drop postcards plus — when
  /// `infer_wire_losses` and delivery records exist — packets whose
  /// history ends at an egress without reaching the destination (link
  /// loss or downstream MAC discard, attributed upstream like NetSeer).
  [[nodiscard]] EventGroupSet drop_groups(bool infer_wire_losses = true) const {
    EventGroupSet set;
    std::unordered_map<util::PacketUid, const Postcard*> last_egress;
    for (const auto& pc : postcards_) {
      if (pc.stage == Stage::kDropped) {
        set.insert(EventGroup{pc.node, pc.flow.hash64(), core::EventType::kDrop});
      } else if (pc.stage == Stage::kEgress) {
        auto [it, inserted] = last_egress.try_emplace(pc.uid, &pc);
        if (!inserted && pc.at > it->second->at) it->second = &pc;
      }
    }
    if (!infer_wire_losses) return set;
    // Wire losses: last egress exists, never delivered, never explicitly
    // dropped downstream (the explicit case was already counted above).
    std::unordered_set<util::PacketUid> explicitly_dropped;
    for (const auto& pc : postcards_) {
      if (pc.stage == Stage::kDropped) explicitly_dropped.insert(pc.uid);
    }
    for (const auto& [uid, pc] : last_egress) {
      if (delivered_.contains(uid) || explicitly_dropped.contains(uid)) continue;
      set.insert(EventGroup{pc->node, pc->flow.hash64(), core::EventType::kDrop});
    }
    return set;
  }

  [[nodiscard]] EventGroupSet congestion_groups(util::SimDuration threshold) const {
    EventGroupSet set;
    for (const auto& pc : postcards_) {
      if (pc.stage == Stage::kEgress && pc.queue_delay > threshold) {
        set.insert(EventGroup{pc.node, pc.flow.hash64(), core::EventType::kCongestion});
      }
    }
    return set;
  }

  [[nodiscard]] EventGroupSet path_groups() const {
    EventGroupSet set;
    std::unordered_map<EventGroup, std::pair<std::uint8_t, std::uint8_t>, EventGroupHash> seen;
    for (const auto& pc : postcards_) {
      if (pc.stage != Stage::kEgress) continue;
      const EventGroup group{pc.node, pc.flow.hash64(), core::EventType::kPathChange};
      const auto ports = std::make_pair(pc.ingress_port, pc.egress_port);
      auto [it, inserted] = seen.try_emplace(group, ports);
      if (inserted || it->second != ports) {
        it->second = ports;
        set.insert(group);
      }
    }
    return set;
  }

  [[nodiscard]] const std::vector<Postcard>& postcards() const { return postcards_; }
  [[nodiscard]] std::uint64_t overhead_bytes() const { return overhead_bytes_; }

 private:
  void add(const packet::Packet& pkt, util::NodeId node, Stage stage, util::PortId in,
           util::PortId out, util::SimDuration delay, pdp::DropReason reason,
           util::SimTime now) {
    postcards_.push_back(Postcard{pkt.uid, pkt.flow(), node, stage,
                                  static_cast<std::uint8_t>(in & 0xff),
                                  static_cast<std::uint8_t>(out & 0xff), delay, reason, now});
    overhead_bytes_ += 64;  // one truncated mirror per packet per hop
  }

  std::vector<Postcard> postcards_;
  std::unordered_set<util::PacketUid> delivered_;
  std::uint64_t overhead_bytes_ = 0;
};

}  // namespace netseer::monitors
