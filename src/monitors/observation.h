#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "core/event.h"
#include "packet/flow_key.h"
#include "util/hash.h"
#include "util/ids.h"
#include "util/time.h"

namespace netseer::monitors {

/// What a monitoring system managed to see: a flow (or not — counters
/// can't attribute flows), at a device, with some event evidence. The
/// coverage benches score each monitor by which ground-truth event groups
/// its observations explain.
struct Observation {
  util::NodeId node = util::kInvalidNode;
  std::optional<packet::FlowKey> flow;  // nullopt: device/port-level only
  core::EventType type = core::EventType::kDrop;
  util::SimTime at = 0;
  std::uint8_t ingress_port = 0xff;
  std::uint8_t egress_port = 0xff;
  util::SimDuration queue_delay = 0;
};

/// The identity used for coverage scoring: one ground-truth "flow event"
/// is (node, flow, type) — did the monitor ever explain it?
struct EventGroup {
  util::NodeId node;
  std::uint64_t flow_hash;
  core::EventType type;

  bool operator==(const EventGroup&) const = default;
};

struct EventGroupHash {
  std::size_t operator()(const EventGroup& g) const noexcept {
    return util::hash_combine(util::hash_combine(g.node, g.flow_hash),
                              static_cast<std::uint64_t>(g.type));
  }
};

using EventGroupSet = std::unordered_set<EventGroup, EventGroupHash>;

/// Accumulates a monitor's observations plus its mirrored-byte cost.
class ObservationLog {
 public:
  void record(Observation obs) { observations_.push_back(std::move(obs)); }
  void add_overhead_bytes(std::uint64_t bytes) { overhead_bytes_ += bytes; }

  [[nodiscard]] const std::vector<Observation>& observations() const { return observations_; }
  [[nodiscard]] std::uint64_t overhead_bytes() const { return overhead_bytes_; }

  /// Distinct (node, flow, type) groups this monitor explained.
  [[nodiscard]] EventGroupSet groups() const {
    EventGroupSet set;
    for (const auto& obs : observations_) {
      if (!obs.flow) continue;
      set.insert(EventGroup{obs.node, obs.flow->hash64(), obs.type});
    }
    return set;
  }

  void clear() {
    observations_.clear();
    overhead_bytes_ = 0;
  }

 private:
  std::vector<Observation> observations_;
  std::uint64_t overhead_bytes_ = 0;
};

}  // namespace netseer::monitors
