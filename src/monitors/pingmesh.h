#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/host.h"
#include "packet/builder.h"
#include "sim/simulator.h"

namespace netseer::monitors {

/// Pingmesh-style full-mesh active probing [Guo et al., SIGCOMM'15]:
/// every host probes every other host each interval and records RTT or
/// loss. Probes are real packets through the real fabric, so their cost
/// is real too. Probing sees *its own* packets only — it can detect that
/// some path is slow or lossy, never which application flow suffered
/// (Case-#1/2 in §2.1). The paper configures one full mesh per second.
class PingmeshProber {
 public:
  struct ProbeResult {
    util::NodeId src;
    util::NodeId dst;
    util::SimTime sent_at;
    util::SimDuration rtt = -1;  // -1: lost (no reply)
  };

  PingmeshProber(sim::Simulator& sim, std::vector<net::Host*> hosts,
                 util::SimDuration interval, util::SimDuration timeout = util::milliseconds(100))
      : sim_(sim), hosts_(std::move(hosts)), timeout_(timeout) {
    apps_.reserve(hosts_.size());
    for (auto* host : hosts_) {
      apps_.push_back(std::make_unique<ReplyListener>(*this));
      host->add_app(apps_.back().get());
    }
    task_ = sim_.schedule_every(interval, [this] { probe_round(); });
  }
  ~PingmeshProber() { stop(); }

  /// Cancel the probing task (required before draining the simulator).
  void stop() { task_.cancel(); }

  void probe_round() {
    for (auto* src : hosts_) {
      for (auto* dst : hosts_) {
        if (src == dst) continue;
        const std::uint32_t id = next_probe_id_++;
        auto probe = packet::make_udp(
            packet::FlowKey{src->addr(), dst->addr(), 17, 7777, 7}, 16);
        probe.kind = packet::PacketKind::kProbe;
        probe.l4.seq = id;
        outstanding_[id] = Outstanding{src->id(), dst->id(), sim_.now()};
        probe_bytes_ += 2 * probe.wire_bytes();  // probe + expected reply
        src->send(std::move(probe));
        // Timeout: record as loss if no reply by then.
        (void)sim_.schedule_after(timeout_, [this, id] {
          const auto it = outstanding_.find(id);
          if (it == outstanding_.end()) return;
          results_.push_back(ProbeResult{it->second.src, it->second.dst, it->second.sent_at, -1});
          outstanding_.erase(it);
        });
      }
    }
  }

  [[nodiscard]] const std::vector<ProbeResult>& results() const { return results_; }
  [[nodiscard]] std::uint64_t probe_bytes() const { return probe_bytes_; }

  /// Existence-level detection: any probe in [from, to) with RTT above
  /// `rtt_threshold` or lost?
  [[nodiscard]] bool anomaly_in_window(util::SimTime from, util::SimTime to,
                                       util::SimDuration rtt_threshold) const {
    for (const auto& result : results_) {
      if (result.sent_at < from || result.sent_at >= to) continue;
      if (result.rtt < 0 || result.rtt > rtt_threshold) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t lost_probes() const {
    std::size_t n = 0;
    for (const auto& result : results_) n += (result.rtt < 0);
    return n;
  }

 private:
  struct Outstanding {
    util::NodeId src;
    util::NodeId dst;
    util::SimTime sent_at;
  };

  class ReplyListener final : public net::HostApp {
   public:
    explicit ReplyListener(PingmeshProber& prober) : prober_(prober) {}
    void on_receive(net::Host&, const packet::Packet& pkt) override {
      if (pkt.kind != packet::PacketKind::kProbeReply) return;
      const auto it = prober_.outstanding_.find(pkt.l4.seq);
      if (it == prober_.outstanding_.end()) return;
      prober_.results_.push_back(ProbeResult{it->second.src, it->second.dst,
                                             it->second.sent_at,
                                             prober_.sim_.now() - it->second.sent_at});
      prober_.outstanding_.erase(it);
    }

   private:
    PingmeshProber& prober_;
  };

  sim::Simulator& sim_;
  std::vector<net::Host*> hosts_;
  util::SimDuration timeout_;
  sim::TaskHandle task_;
  std::vector<std::unique_ptr<ReplyListener>> apps_;
  std::unordered_map<std::uint32_t, Outstanding> outstanding_;
  std::vector<ProbeResult> results_;
  std::uint32_t next_probe_id_ = 1;
  std::uint64_t probe_bytes_ = 0;
};

}  // namespace netseer::monitors
