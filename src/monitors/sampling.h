#pragma once

#include <unordered_map>
#include <utility>

#include "monitors/observation.h"
#include "pdp/agent.h"
#include "pdp/switch.h"
#include "util/rng.h"

namespace netseer::monitors {

/// sFlow-style 1:N packet sampling: forwarded packets are mirrored
/// (truncated to 64 B) to a collector with probability 1/N, using
/// randomized skip counts exactly because deterministic every-Nth
/// sampling phase-locks with periodic traffic (sFlow spec, RFC 3176 §4).
/// Sampled packets carry ports and, in our generous model, the queuing
/// delay they personally experienced — so a congestion event is
/// observable only if one of its own packets happened to be sampled.
/// Dropped packets are gone before the sampler sees an egress
/// occurrence, so drop coverage is zero — matching Figure 9.
class SamplingMonitor final : public pdp::SwitchAgent {
 public:
  explicit SamplingMonitor(std::uint32_t rate_denominator, std::uint64_t seed = 0x5f10)
      : denominator_(rate_denominator), rng_(seed, rate_denominator) {
    skip_ = next_skip();
  }

  void on_egress(pdp::Switch& sw, packet::Packet& pkt, const pdp::EgressInfo& info) override {
    if (!pkt.is_ipv4() || pkt.kind != packet::PacketKind::kData) return;
    if (skip_-- > 0) return;
    skip_ = next_skip();
    Observation obs;
    obs.node = sw.id();
    obs.flow = pkt.flow();
    obs.at = sw.simulator().now();
    obs.ingress_port = static_cast<std::uint8_t>(info.ingress_port);
    obs.egress_port = static_cast<std::uint8_t>(info.egress_port);
    obs.queue_delay = info.queue_delay;
    obs.type = core::EventType::kCongestion;  // interpreted by the scorer
    log_.record(std::move(obs));
    log_.add_overhead_bytes(64);  // truncated mirror
  }

  [[nodiscard]] const ObservationLog& log() const { return log_; }
  [[nodiscard]] std::uint32_t denominator() const { return denominator_; }

  /// Congestion groups: samples that themselves experienced the event.
  [[nodiscard]] EventGroupSet congestion_groups(util::SimDuration threshold) const {
    EventGroupSet set;
    for (const auto& obs : log_.observations()) {
      if (obs.queue_delay > threshold) {
        set.insert(EventGroup{obs.node, obs.flow->hash64(), core::EventType::kCongestion});
      }
    }
    return set;
  }

  /// Path groups derivable from samples: first sample of a flow at a
  /// node, or a sample with changed ports.
  [[nodiscard]] EventGroupSet path_groups() const {
    EventGroupSet set;
    std::unordered_map<EventGroup, std::pair<std::uint8_t, std::uint8_t>, EventGroupHash> seen;
    for (const auto& obs : log_.observations()) {
      const EventGroup group{obs.node, obs.flow->hash64(), core::EventType::kPathChange};
      const auto ports = std::make_pair(obs.ingress_port, obs.egress_port);
      auto [it, inserted] = seen.try_emplace(group, ports);
      if (inserted || it->second != ports) {
        it->second = ports;
        set.insert(group);
      }
    }
    return set;
  }

 private:
  /// Uniform skip in [0, 2N): mean N, like sFlow's randomized sampling.
  [[nodiscard]] std::int64_t next_skip() {
    return static_cast<std::int64_t>(rng_.uniform(2 * denominator_));
  }

  std::uint32_t denominator_;
  util::Rng rng_;
  std::int64_t skip_ = 0;
  ObservationLog log_;
};

}  // namespace netseer::monitors
