#include <cstdio>

#include "core/capacity.h"
#include "verify/passes.h"

namespace netseer::verify {

namespace {

constexpr char kPass[] = "recirculation";

Diagnostic make(Severity severity, const std::string& switch_name, util::NodeId switch_id,
                std::string component, std::string message, double measured = 0.0,
                double limit = 0.0) {
  Diagnostic d;
  d.severity = severity;
  d.pass = kPass;
  d.switch_name = switch_name;
  d.switch_id = switch_id;
  d.component = std::move(component);
  d.message = std::move(message);
  d.measured = measured;
  d.limit = limit;
  return d;
}

}  // namespace

void check_recirculation(Report& report, const core::NetSeerConfig& config, std::uint32_t mtu,
                         const std::string& switch_name, util::NodeId switch_id) {
  report.mark_pass(kPass);
  char buf[224];
  const auto& cebp = config.cebp;

  // ---- Progress: the collection loop must be able to terminate ----------
  if (cebp.num_cebps < 1) {
    report.add(make(Severity::kError, switch_name, switch_id, "cebp",
                    "no CEBPs configured — events pushed onto the stack are never collected",
                    cebp.num_cebps, 1));
  }
  if (cebp.batch_size < 1) {
    report.add(make(Severity::kError, switch_name, switch_id, "cebp",
                    "batch_size < 1 — a CEBP can never fill and flush, so collection "
                    "livelocks",
                    cebp.batch_size, 1));
  }
  if (cebp.recirc_latency <= 0) {
    report.add(make(Severity::kError, switch_name, switch_id, "cebp",
                    "recirculation latency must be positive — a zero-latency loop recirculates "
                    "unboundedly within one simulated instant",
                    static_cast<double>(cebp.recirc_latency), 1));
  }

  // ---- Termination: a CEBP must survive its trip around the pipeline ----
  // A recirculating packet larger than the MTU is dropped at the internal
  // port, so the batch (and every event in it) would be lost and the
  // collection loop starved for that CEBP slot.
  const std::size_t cebp_bytes =
      core::EventBatch::kHeaderSize +
      static_cast<std::size_t>(cebp.batch_size > 0 ? cebp.batch_size : 0) *
          core::FlowEvent::kWireSize;
  if (cebp_bytes > mtu) {
    std::snprintf(buf, sizeof(buf),
                  "a full CEBP is %zu B but the MTU is %u B — the batch would be dropped "
                  "mid-recirculation and its events lost",
                  cebp_bytes, mtu);
    report.add(make(Severity::kError, switch_name, switch_id, "cebp", buf,
                    static_cast<double>(cebp_bytes), mtu));
  }

  // ---- Loss-notification loop bounds ------------------------------------
  if (config.interswitch.notify_copies < 1) {
    report.add(make(Severity::kError, switch_name, switch_id, "iswitch.notify",
                    "notify_copies < 1 — gaps detected downstream are never reported "
                    "upstream, so inter-switch drops go unrecovered",
                    config.interswitch.notify_copies, 1));
  } else if (config.interswitch.notify_copies > 8) {
    report.add(make(Severity::kWarning, switch_name, switch_id, "iswitch.notify",
                    "more than 8 redundant notification copies per gap wastes reverse-path "
                    "bandwidth (the paper uses 3)",
                    config.interswitch.notify_copies, 8));
  }
  if (config.interswitch.max_gap == 0) {
    report.add(make(Severity::kError, switch_name, switch_id, "iswitch.rx",
                    "max_gap = 0 — every out-of-order arrival resynchronizes silently and "
                    "no loss is ever reported"));
  } else if (config.interswitch.max_gap > (1u << 30)) {
    report.add(make(Severity::kWarning, switch_name, switch_id, "iswitch.rx",
                    "max_gap exceeds a quarter of the sequence space — a peer restart is "
                    "indistinguishable from a giant loss and queues unbounded lookups",
                    config.interswitch.max_gap, static_cast<double>(1u << 30)));
  }

  // ---- Internal-port bandwidth fit ---------------------------------------
  // Steady-state CEBP output (batches leaving for the CPU) shares the
  // internal port with event packets; it must fit the configured budget.
  if (cebp.num_cebps >= 1 && cebp.batch_size >= 1 && cebp.recirc_latency > 0) {
    const double batch_gbps = core::capacity::cebp_throughput_gbps(cebp, cebp.batch_size);
    const double budget_gbps = config.internal_port_rate.gbps_value();
    if (budget_gbps > 0 && batch_gbps > budget_gbps) {
      std::snprintf(buf, sizeof(buf),
                    "steady-state CEBP batch output %.1f Gb/s exceeds the internal-port "
                    "budget %.1f Gb/s",
                    batch_gbps, budget_gbps);
      report.add(make(Severity::kError, switch_name, switch_id, "internal_port", buf,
                      batch_gbps, budget_gbps));
    }
  }

  // The MMU redirect ceiling also drains through the internal port; a
  // redirect rate above the port rate is unservable by construction.
  if (config.mmu_redirect_rate > config.internal_port_rate &&
      !config.internal_port_rate.is_zero()) {
    std::snprintf(buf, sizeof(buf),
                  "MMU redirect ceiling %.0f Gb/s exceeds the internal-port rate %.0f Gb/s",
                  config.mmu_redirect_rate.gbps_value(),
                  config.internal_port_rate.gbps_value());
    report.add(make(Severity::kError, switch_name, switch_id, "mmu_redirect", buf,
                    config.mmu_redirect_rate.gbps_value(),
                    config.internal_port_rate.gbps_value()));
  }
}

}  // namespace netseer::verify
