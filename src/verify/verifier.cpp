#include "verify/verifier.h"

#include "fabric/fat_tree.h"
#include "pdp/switch.h"
#include "verify/symbolic.h"

namespace netseer::verify {

Report verify_switch(const pdp::Switch& sw, const core::NetSeerConfig& config,
                     const VerifyOptions& options) {
  return verify_switch(sw, config, netseer_layout(config), options);
}

Report verify_switch(const pdp::Switch& sw, const core::NetSeerConfig& config,
                     const PipelineLayout& layout, const VerifyOptions& options) {
  Report report;
  check_resources(report, sw, config, options);
  check_hazards(report, layout, sw.name(), sw.id());
  check_recirculation(report, config, sw.config().mtu, sw.name(), sw.id());
  check_acl(report, sw);
  check_capacity(report, sw, config, options);
  if (options.symbolic) check_symbolic(report, sw, config, options);
  return report;
}

Report verify_switches(const std::vector<pdp::Switch*>& switches,
                       const core::NetSeerConfig& config, const VerifyOptions& options) {
  Report merged;
  for (const pdp::Switch* sw : switches) {
    if (sw == nullptr) continue;
    merged.merge(verify_switch(*sw, config, options));
  }
  // The canonical layout is config-derived, not per-switch: checking it
  // once per switch is redundant but keeps per-switch reports complete.
  return merged;
}

Report verify_testbed(const fabric::Testbed& testbed, const core::NetSeerConfig& config,
                      const VerifyOptions& options) {
  return verify_switches(testbed.all_switches(), config, options);
}

}  // namespace netseer::verify
