#pragma once

#include <vector>

#include "core/netseer_app.h"
#include "verify/diagnostics.h"
#include "verify/layout.h"
#include "verify/passes.h"

namespace netseer::pdp {
class Switch;
}  // namespace netseer::pdp

namespace netseer::fabric {
struct Testbed;
}  // namespace netseer::fabric

namespace netseer::verify {

/// Run all five passes over one constructed (not yet run) switch:
/// resource fitting, stage hazards, recirculation termination, ACL
/// shadowing, and the capacity proofs — plus the symbolic pipeline
/// executor pass family when `options.symbolic` is set. The switch's
/// deployed state (routes, ACL, links) is read but never mutated.
[[nodiscard]] Report verify_switch(const pdp::Switch& sw, const core::NetSeerConfig& config,
                                   const VerifyOptions& options = {});

/// Same, but hazard-check a caller-supplied register-array layout
/// instead of the canonical NetSeer one — the hook tests use to seed
/// pipelines with deliberate same-stage conflicts.
[[nodiscard]] Report verify_switch(const pdp::Switch& sw, const core::NetSeerConfig& config,
                                   const PipelineLayout& layout,
                                   const VerifyOptions& options = {});

/// Verify every switch of a fabric under one shared NetSeer config;
/// per-switch findings are merged into a single report.
[[nodiscard]] Report verify_switches(const std::vector<pdp::Switch*>& switches,
                                     const core::NetSeerConfig& config,
                                     const VerifyOptions& options = {});

/// Convenience: verify all switches of a constructed testbed/fat-tree.
[[nodiscard]] Report verify_testbed(const fabric::Testbed& testbed,
                                    const core::NetSeerConfig& config,
                                    const VerifyOptions& options = {});

}  // namespace netseer::verify
