#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "verify/passes.h"

namespace netseer::verify {

namespace {

constexpr char kPass[] = "hazards";

bool writes(AccessMode mode) { return mode != AccessMode::kRead; }

Diagnostic make(Severity severity, const std::string& switch_name, util::NodeId switch_id,
                std::string component, std::string message) {
  Diagnostic d;
  d.severity = severity;
  d.pass = kPass;
  d.switch_name = switch_name;
  d.switch_id = switch_id;
  d.component = std::move(component);
  d.message = std::move(message);
  return d;
}

}  // namespace

void check_hazards(Report& report, const PipelineLayout& layout, const std::string& switch_name,
                   util::NodeId switch_id) {
  report.mark_pass(kPass);
  char buf[224];

  // Group accesses per register array — the nodes of the dependency graph.
  std::map<std::string, std::vector<const RegisterAccess*>> by_array;
  for (const auto& access : layout.accesses) {
    by_array[access.array].push_back(&access);

    if (access.stage < 0 || access.stage >= layout.num_stages) {
      std::snprintf(buf, sizeof(buf),
                    "placed in stage %d but the pipeline has %d stages (actor '%s')",
                    access.stage, layout.num_stages, access.actor.c_str());
      report.add(make(Severity::kError, switch_name, switch_id, access.array, buf));
    }
  }

  for (const auto& [array, accesses] : by_array) {
    // A register array physically lives in one stage of one gress;
    // touching it from two stages means the program aliases two copies
    // that silently diverge.
    std::set<int> stages;
    std::set<Gress> gresses;
    for (const auto* access : accesses) {
      stages.insert(access->stage);
      gresses.insert(access->gress);
    }
    if (stages.size() > 1) {
      std::snprintf(buf, sizeof(buf),
                    "accessed from %zu different stages — a register array occupies exactly "
                    "one stage; later stages read a stale copy",
                    stages.size());
      report.add(make(Severity::kError, switch_name, switch_id, array, buf));
    }
    if (gresses.size() > 1) {
      std::snprintf(buf, sizeof(buf),
                    "aliased across ingress and egress pipelines — Tofino-class registers "
                    "are owned by one gress; cross-pipeline access is not coherent");
      report.add(make(Severity::kError, switch_name, switch_id, array, buf));
    }

    // Same-stage dependency edges between DISTINCT actors. Intra-stage
    // ordering is undefined, so any write racing another access is a
    // hazard: write/write -> WAW, read vs write -> RAW.
    for (std::size_t i = 0; i < accesses.size(); ++i) {
      for (std::size_t j = i + 1; j < accesses.size(); ++j) {
        const auto& a = *accesses[i];
        const auto& b = *accesses[j];
        if (a.stage != b.stage || a.gress != b.gress || a.actor == b.actor) continue;
        if (writes(a.mode) && writes(b.mode)) {
          std::snprintf(buf, sizeof(buf),
                        "same-stage WAW hazard in %s stage %d: actors '%s' and '%s' both "
                        "write with undefined ordering",
                        to_string(a.gress), a.stage, a.actor.c_str(), b.actor.c_str());
          report.add(make(Severity::kError, switch_name, switch_id, array, buf));
        } else if (writes(a.mode) || writes(b.mode)) {
          const auto& writer = writes(a.mode) ? a : b;
          const auto& reader = writes(a.mode) ? b : a;
          std::snprintf(buf, sizeof(buf),
                        "same-stage RAW hazard in %s stage %d: '%s' reads while '%s' writes; "
                        "the read may observe either value",
                        to_string(a.gress), a.stage, reader.actor.c_str(),
                        writer.actor.c_str());
          report.add(make(Severity::kError, switch_name, switch_id, array, buf));
        }
      }
    }
  }

  // Per-(gress, stage) stateful ALU budget: each array with any write
  // access occupies one stateful ALU in its stage.
  std::map<std::pair<Gress, int>, std::set<std::string>> alus;
  for (const auto& access : layout.accesses) {
    if (writes(access.mode)) alus[{access.gress, access.stage}].insert(access.array);
  }
  for (const auto& [slot, arrays] : alus) {
    if (static_cast<int>(arrays.size()) <= layout.stateful_alus_per_stage) continue;
    std::snprintf(buf, sizeof(buf),
                  "%s stage %d needs %zu stateful ALUs but the chip provides %d per stage",
                  to_string(slot.first), slot.second, arrays.size(),
                  layout.stateful_alus_per_stage);
    Diagnostic d = make(Severity::kError, switch_name, switch_id,
                        "stage " + std::to_string(slot.second), buf);
    d.measured = static_cast<double>(arrays.size());
    d.limit = layout.stateful_alus_per_stage;
    report.add(std::move(d));
  }
}

}  // namespace netseer::verify
