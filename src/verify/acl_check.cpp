#include <cstdio>

#include "pdp/acl.h"
#include "pdp/switch.h"
#include "verify/passes.h"

namespace netseer::verify {

namespace {

constexpr char kPass[] = "acl";

/// Does prefix `a` contain every address prefix `b` matches?
bool prefix_covers(const packet::Ipv4Prefix& a, const packet::Ipv4Prefix& b) {
  return a.length <= b.length && a.contains(b.network);
}

/// Do the two prefixes match at least one common address? Prefixes are
/// either nested or disjoint, so overlap == one contains the other.
bool prefixes_intersect(const packet::Ipv4Prefix& a, const packet::Ipv4Prefix& b) {
  return a.length <= b.length ? a.contains(b.network) : b.contains(a.network);
}

}  // namespace

bool rule_covers(const pdp::AclRule& a, const pdp::AclRule& b) {
  if (!prefix_covers(a.src, b.src) || !prefix_covers(a.dst, b.dst)) return false;
  if (a.proto && (!b.proto || *a.proto != *b.proto)) return false;
  if (a.sport_lo > b.sport_lo || a.sport_hi < b.sport_hi) return false;
  if (a.dport_lo > b.dport_lo || a.dport_hi < b.dport_hi) return false;
  return true;
}

bool rules_intersect(const pdp::AclRule& a, const pdp::AclRule& b) {
  if (!prefixes_intersect(a.src, b.src) || !prefixes_intersect(a.dst, b.dst)) return false;
  if (a.proto && b.proto && *a.proto != *b.proto) return false;
  if (a.sport_lo > b.sport_hi || b.sport_lo > a.sport_hi) return false;
  if (a.dport_lo > b.dport_hi || b.dport_lo > a.dport_hi) return false;
  return true;
}

void check_acl(Report& report, const pdp::Switch& sw) {
  report.mark_pass(kPass);
  char buf[224];

  // AclTable evaluates rules in insertion order (first match wins), so
  // insertion order IS priority order.
  std::vector<const pdp::AclRule*> rules;
  rules.reserve(sw.acl().size());
  sw.acl().for_each_rule([&rules](const pdp::AclRule& rule) { rules.push_back(&rule); });

  for (std::size_t j = 0; j < rules.size(); ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      const auto& hi = *rules[i];  // higher priority (matched first)
      const auto& lo = *rules[j];
      if (rule_covers(hi, lo)) {
        const char* effect = hi.permit == lo.permit ? "same action — redundant entry"
                                                    : "conflicting action — never applied";
        std::snprintf(buf, sizeof(buf),
                      "rule %u is dead: fully shadowed by higher-priority rule %u (%s)",
                      lo.rule_id, hi.rule_id, effect);
        Diagnostic d;
        d.severity = Severity::kError;
        d.pass = kPass;
        d.switch_name = sw.name();
        d.switch_id = sw.id();
        d.component = "acl rule " + std::to_string(lo.rule_id);
        d.message = buf;
        report.add(std::move(d));
        break;  // one shadowing witness per dead rule is enough
      }
      if (hi.permit != lo.permit && rules_intersect(hi, lo)) {
        std::snprintf(buf, sizeof(buf),
                      "rules %u (%s) and %u (%s) overlap with conflicting actions; flows in "
                      "the intersection take rule %u's action",
                      hi.rule_id, hi.permit ? "permit" : "deny", lo.rule_id,
                      lo.permit ? "permit" : "deny", hi.rule_id);
        Diagnostic d;
        d.severity = Severity::kWarning;
        d.pass = kPass;
        d.switch_name = sw.name();
        d.switch_id = sw.id();
        d.component = "acl rule " + std::to_string(lo.rule_id);
        d.message = buf;
        report.add(std::move(d));
      }
    }
  }
}

}  // namespace netseer::verify
