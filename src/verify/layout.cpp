#include "verify/layout.h"

namespace netseer::verify {

const char* to_string(Gress gress) {
  switch (gress) {
    case Gress::kIngress: return "ingress";
    case Gress::kEgress: return "egress";
  }
  return "?";
}

const char* to_string(AccessMode mode) {
  switch (mode) {
    case AccessMode::kRead: return "read";
    case AccessMode::kWrite: return "write";
    case AccessMode::kReadModifyWrite: return "rmw";
  }
  return "?";
}

PipelineLayout netseer_layout(const core::NetSeerConfig& config) {
  PipelineLayout layout;

  // Ingress: detection state, in pipeline order after the forwarding
  // tables (LPM/ACL occupy stages 0-2 but hold no register arrays).
  layout.add("detect.path_table", "path-change detect", 3, Gress::kIngress,
             AccessMode::kReadModifyWrite);
  layout.add("detect.pause_state", "pause detect", 4, Gress::kIngress,
             AccessMode::kReadModifyWrite);

  // Group caches: one array per event type, two stages (drop/congestion,
  // then pause/spare) so each stage stays within its stateful-ALU budget.
  layout.add("dedup.cache.drop", "group-cache drop", 5, Gress::kIngress,
             AccessMode::kReadModifyWrite);
  layout.add("dedup.cache.congestion", "group-cache congestion", 5, Gress::kIngress,
             AccessMode::kReadModifyWrite);
  layout.add("dedup.cache.pause", "group-cache pause", 6, Gress::kIngress,
             AccessMode::kReadModifyWrite);
  layout.add("dedup.cache.spare", "group-cache spare", 6, Gress::kIngress,
             AccessMode::kReadModifyWrite);

  // The event stack: pushes (event extraction) and pops (CEBP hitting the
  // stack) are the same stateful ALU op selected by packet type, so a
  // single RMW actor owns the array.
  layout.add("batch.stack", "event-stack push/pop", 7, Gress::kIngress,
             AccessMode::kReadModifyWrite);

  // Egress: inter-switch drop detection state, per port.
  layout.add("iswitch.seq", "seq-stamp", 9, Gress::kEgress, AccessMode::kReadModifyWrite);
  if (config.interswitch.ring_slots > 0) {
    layout.add("iswitch.ring", "ring record+lookup", 10, Gress::kEgress,
               AccessMode::kReadModifyWrite);
  }

  // Congestion detection reads the queue depth the traffic manager
  // exports; the MAU never writes it.
  layout.add("detect.queue_depth", "congestion compare", 8, Gress::kEgress, AccessMode::kRead);

  return layout;
}

}  // namespace netseer::verify
