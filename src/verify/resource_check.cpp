#include <cstdio>
#include <string>

#include "core/capacity.h"
#include "pdp/switch.h"
#include "verify/passes.h"

namespace netseer::verify {

namespace {

constexpr char kPass[] = "resources";

// Per-entry SRAM/TCAM cost of the deployed tables, in bytes. Sized from
// the wire formats this repo actually uses: LPM entry = prefix (5 B) +
// ECMP group (up to 8 ports x 2 B); ternary ACL rule = 2x(prefix +
// mask) + proto + two port ranges + action, padded to the 40 B slice a
// ternary key of this width occupies.
constexpr std::int64_t kLpmEntryBytes = 5 + 16;
constexpr std::int64_t kAclRuleBytes = 40;
constexpr std::int64_t kPathEntryBytes = 13 + 2 + 2 + 4;   // flow + ports + stamp
constexpr std::int64_t kCacheEntryBytes = 13 + 4 + 4 + 4;  // flow + count/reported/target
constexpr std::int64_t kSeqCounterBytes = 4;               // per-port sequence register

}  // namespace

pdp::ResourceModel build_resource_model(const pdp::Switch& sw,
                                        const core::NetSeerConfig& config) {
  using pdp::Resource;
  pdp::ResourceModel model;

  // Baseline usage of the reference L3 program (switch.p4), as reported
  // for the figure-7 axes. NetSeer rides on top of this.
  const char* base = "switch.p4";
  model.add(base, Resource::kExactXbar, 0.30);
  model.add(base, Resource::kTernaryXbar, 0.28);
  model.add(base, Resource::kHashBits, 0.30);
  model.add(base, Resource::kSram, 0.28);
  model.add(base, Resource::kTcam, 0.30);
  model.add(base, Resource::kVliwActions, 0.30);
  model.add(base, Resource::kStatefulAlu, 0.12);
  model.add(base, Resource::kPhv, 0.40);

  // Control-plane tables as actually populated on this switch.
  const char* tables = "tables";
  model.add(tables, Resource::kSram,
            pdp::sram_fraction(static_cast<std::int64_t>(sw.routes().size()) * kLpmEntryBytes));
  model.add(tables, Resource::kTcam,
            pdp::tcam_fraction(static_cast<std::int64_t>(sw.acl().size()) * kAclRuleBytes));

  // Event detection: path-change flow table, congestion compare, pause
  // state.
  const char* detect = "event detection";
  model.add(detect, Resource::kSram,
            pdp::sram_fraction(static_cast<std::int64_t>(config.path_change.entries) *
                               kPathEntryBytes));
  model.add(detect, Resource::kStatefulAlu, 0.04);
  model.add(detect, Resource::kPhv, 0.03);
  model.add(detect, Resource::kVliwActions, 0.02);
  model.add(detect, Resource::kHashBits, 0.02);

  // Inter-switch drop detection: per-port ring buffers + seq counters.
  const char* interswitch = "inter-switch";
  const auto ports = static_cast<int>(sw.config().num_ports);
  const std::int64_t ring_bytes = static_cast<std::int64_t>(
      core::capacity::ring_sram_bytes(ports, config.interswitch.ring_slots));
  model.add(interswitch, Resource::kSram,
            pdp::sram_fraction(ring_bytes + ports * kSeqCounterBytes));
  model.add(interswitch, Resource::kStatefulAlu, 0.13);
  model.add(interswitch, Resource::kPhv, 0.02);
  model.add(interswitch, Resource::kHashBits, 0.01);

  // Deduplication: one group-cache register array per event type.
  const char* dedup = "dedup";
  model.add(dedup, Resource::kSram,
            pdp::sram_fraction(4 * static_cast<std::int64_t>(config.group_cache.entries) *
                               kCacheEntryBytes));
  model.add(dedup, Resource::kStatefulAlu, 0.08);
  model.add(dedup, Resource::kHashBits, 0.04);
  model.add(dedup, Resource::kExactXbar, 0.03);

  // Batching: event stack registers + CEBP circulation actions.
  const char* batching = "batching";
  model.add(batching, Resource::kSram,
            pdp::sram_fraction(static_cast<std::int64_t>(config.event_stack_capacity) *
                               static_cast<std::int64_t>(core::FlowEvent::kWireSize)));
  model.add(batching, Resource::kStatefulAlu, 0.15);
  model.add(batching, Resource::kVliwActions, 0.04);
  model.add(batching, Resource::kPhv, 0.03);

  return model;
}

void check_resources(Report& report, const pdp::Switch& sw, const core::NetSeerConfig& config,
                     const VerifyOptions& options) {
  report.mark_pass(kPass);
  const pdp::ResourceModel model = build_resource_model(sw, config);

  for (std::size_t r = 0; r < pdp::kNumResources; ++r) {
    const auto resource = static_cast<pdp::Resource>(r);
    const double usage = model.raw_total(resource);
    if (usage <= options.assumptions.headroom) continue;

    // Name the largest consumer so the diagnostic is actionable.
    std::string dominant;
    double dominant_usage = 0.0;
    for (const auto& component : model.components()) {
      if (component.usage[r] > dominant_usage) {
        dominant_usage = component.usage[r];
        dominant = component.name;
      }
    }

    Diagnostic d;
    d.pass = kPass;
    d.switch_name = sw.name();
    d.switch_id = sw.id();
    d.component = pdp::to_string(resource);
    d.measured = usage;
    d.limit = 1.0;
    char buf[192];
    if (usage > 1.0) {
      d.severity = Severity::kError;
      std::snprintf(buf, sizeof(buf),
                    "%s budget exceeded: %.1f%% of chip (largest consumer: %s at %.1f%%)",
                    pdp::to_string(resource), 100.0 * usage, dominant.c_str(),
                    100.0 * dominant_usage);
    } else {
      d.severity = Severity::kWarning;
      std::snprintf(buf, sizeof(buf),
                    "%s within %.0f%% of budget: %.1f%% of chip (largest consumer: %s)",
                    pdp::to_string(resource),
                    100.0 * (1.0 - options.assumptions.headroom), 100.0 * usage,
                    dominant.c_str());
    }
    d.message = buf;
    report.add(std::move(d));
  }
}

}  // namespace netseer::verify
