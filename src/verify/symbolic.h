#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "packet/addr.h"
#include "packet/packet.h"
#include "pdp/introspect.h"
#include "verify/diagnostics.h"
#include "verify/passes.h"

namespace netseer::verify {

// ---- Symbolic value domain --------------------------------------------------
//
// A deliberately small abstract domain: closed integer intervals for the
// scalar header fields the pipeline compares against thresholds, and
// exact unions of disjoint prefixes for the address fields it matches
// with masks. Both are closed under every constraint the pipeline model
// generates, so path conditions never need widening.

/// Closed interval [lo, hi] over a 32-bit field; empty when lo > hi.
struct Interval {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0xffffffffU;

  [[nodiscard]] static constexpr Interval exact(std::uint32_t v) { return Interval{v, v}; }

  [[nodiscard]] constexpr bool empty() const { return lo > hi; }
  [[nodiscard]] constexpr bool contains(std::uint32_t v) const { return v >= lo && v <= hi; }

  /// Intersect with [other.lo, other.hi]; returns whether non-empty.
  bool intersect(const Interval& other) {
    if (other.lo > lo) lo = other.lo;
    if (other.hi < hi) hi = other.hi;
    return !empty();
  }
};

/// Exact union of pairwise-disjoint IPv4 prefixes — the symbolic value of
/// an address field. Exact subtraction is what makes the LPM path
/// conditions exact ("first healthy entry containing dst") instead of
/// over-approximate.
class PrefixSet {
 public:
  /// The full address space, as a single /0.
  [[nodiscard]] static PrefixSet any();
  /// Exactly one prefix.
  [[nodiscard]] static PrefixSet of(const packet::Ipv4Prefix& prefix);

  /// Keep only addresses inside `prefix`.
  void intersect(const packet::Ipv4Prefix& prefix);
  /// Remove all addresses inside `prefix` (splits containing prefixes
  /// into their uncovered siblings).
  void subtract(const packet::Ipv4Prefix& prefix);

  [[nodiscard]] bool empty() const { return prefixes_.empty(); }
  [[nodiscard]] bool contains(packet::Ipv4Addr addr) const;
  /// Number of addresses covered (exact; the members are disjoint).
  [[nodiscard]] std::uint64_t address_count() const;
  [[nodiscard]] const std::vector<packet::Ipv4Prefix>& prefixes() const { return prefixes_; }

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<packet::Ipv4Prefix> prefixes_;  // pairwise disjoint, unordered
};

/// Per-field symbolic packet: the constraint store a path accumulates.
/// Address fields are exact prefix unions; scalars are intervals; shape
/// booleans are fixed per path (the executor branches on them at the
/// root, so inside a path they are concrete).
struct SymPacket {
  PrefixSet src = PrefixSet::any();
  PrefixSet dst = PrefixSet::any();
  Interval proto{0, 0xff};
  Interval sport{0, 0xffff};
  Interval dport{0, 0xffff};
  Interval ttl{0, 0xff};
  /// L3 datagram length as the MTU check computes it (wire bytes minus
  /// L2 overhead, so padding to the 64 B minimum is already applied).
  Interval ip_bytes{0, 0xffff};
  bool is_ipv4 = true;
  bool corrupted = false;
  bool is_pfc = false;

  [[nodiscard]] bool empty() const {
    return src.empty() || dst.empty() || proto.empty() || sport.empty() || dport.empty() ||
           ttl.empty() || ip_bytes.empty();
  }

  /// Does the concrete packet satisfy every stored field constraint?
  [[nodiscard]] bool admits(const packet::Packet& pkt) const;
};

/// The L3 datagram length run_pipeline compares against the egress MTU,
/// recomputed from a concrete packet (shared with the differential test).
[[nodiscard]] std::uint32_t mtu_check_bytes(const packet::Packet& pkt);

// ---- Paths ------------------------------------------------------------------

enum class PathVerdict : std::uint8_t {
  kForward = 0,  // admitted to an egress queue toward a wired port
  kDrop,         // discarded; `reason` says where (kNone = hardware eats it)
  kConsumed,     // MAC-control traffic consumed before the pipeline
  kBlackhole,    // admitted to the queue of an unwired port: never
                 // delivered, never reported — the silent-loss class
};

[[nodiscard]] const char* to_string(PathVerdict verdict);

/// A point on a path where the deployed NetSeer program emits (or
/// recovers) a flow event for the packet.
struct Emission {
  pdp::Stage stage = pdp::Stage::kWire;
  std::string point;  // "event.pipeline_drop", "event.mmu_drop", "iswitch.recovery", ...
};

struct PathStep {
  pdp::Stage stage = pdp::Stage::kWire;
  std::string note;
};

/// One enumerated execution path through a switch's pipeline model. The
/// constraint store plus the recorded branch choices (LPM entry, ECMP
/// member, first-matching ACL rule) form the path condition.
struct SymbolicPath {
  SymPacket packet;
  std::vector<PathStep> steps;
  PathVerdict verdict = PathVerdict::kForward;
  pdp::DropReason reason = pdp::DropReason::kNone;
  util::PortId egress_port = util::kInvalidPort;
  /// Index into routes->entries() of the matched LPM entry; -1 = miss.
  int lpm_entry = -1;
  /// Whether this path fixes an ECMP member (egress_port meaningful).
  bool ecmp_selected = false;
  /// Index (evaluation order) of the first-matching ACL rule; -1 = no
  /// rule matched (default permit). Only meaningful past the ACL stage.
  int acl_rule_index = -1;
  bool acl_evaluated = false;
  /// Wire-level pseudo path (loss on the attached cable): enumerated for
  /// the coverage proof but never taken by a packet handed to the MAC.
  bool synthetic = false;
  std::vector<Emission> emissions;
  /// Requires-def metadata reads that no stage wrote first ("stage/field
  /// by actor"); non-empty only for defective pipeline models.
  std::vector<std::string> uninit_reads;

  /// Path-condition membership: would `pkt`, handed to this switch's MAC
  /// on a healthy ingress port, take exactly this path? Branch choices
  /// (ECMP selection, ACL first match) are evaluated against the deployed
  /// tables in `view`. Synthetic wire paths admit nothing.
  [[nodiscard]] bool admits(const packet::Packet& pkt, const pdp::PipelineView& view) const;

  [[nodiscard]] std::string describe() const;
};

// ---- Executor ---------------------------------------------------------------

/// Structural defects injected into the *pipeline model* (not the switch),
/// mirroring how the stage-hazard fixture plants conflicts in a custom
/// PipelineLayout. Used by seeded-defect fixtures and tests to prove the
/// symbolic passes actually fire.
struct SymbolicDefects {
  /// An additional event-emission point: fires on every path that crosses
  /// `stage` and (when `reason` != kNone) drops for `reason` there.
  struct ExtraEmission {
    pdp::Stage stage = pdp::Stage::kAcl;
    pdp::DropReason reason = pdp::DropReason::kNone;
    std::string point;
  };
  /// An additional requires-def metadata read at entry to `stage`.
  struct ExtraRead {
    pdp::Stage stage = pdp::Stage::kMmuAdmit;
    pdp::MetaField field = pdp::MetaField::kAclRuleId;
    std::string actor;
  };
  std::vector<ExtraEmission> extra_emissions;
  std::vector<ExtraRead> extra_reads;

  [[nodiscard]] bool empty() const { return extra_emissions.empty() && extra_reads.empty(); }
};

struct SymbolicOptions {
  SymbolicDefects defects;
  /// Hard stop for pathological table states; exceeding it is reported
  /// as a verification error (never silently truncated).
  std::size_t max_paths = 1U << 20;
};

/// Aggregate facts the executor derives while enumerating, beyond the
/// per-path stream: dead deployed state and enumeration bookkeeping.
struct ExecNotes {
  std::vector<int> dead_lpm_entries;       // indices into routes->entries()
  std::vector<int> corrupted_lpm_entries;  // parity-corrupted (skipped) entries
  std::vector<std::uint16_t> dead_acl_rules;  // rule ids shadowed by one earlier rule
  bool admit_unreachable = false;  // queue capacity below the minimum frame
  bool truncated = false;          // max_paths exceeded
  std::size_t paths = 0;
};

/// Enumerate every execution path of `view`'s pipeline under `config`'s
/// NetSeer deployment, calling `sink` once per path. Deterministic: path
/// order is a function of the deployed state only.
ExecNotes enumerate_paths(const pdp::PipelineView& view, const core::NetSeerConfig& config,
                          const SymbolicOptions& options,
                          const std::function<void(const SymbolicPath&)>& sink);

/// Convenience: materialize the full path set (tests, differential
/// harness, path dumps).
[[nodiscard]] std::vector<SymbolicPath> collect_paths(const pdp::PipelineView& view,
                                                      const core::NetSeerConfig& config,
                                                      const SymbolicOptions& options = {});

// ---- Passes -----------------------------------------------------------------

/// What the symbolic pass family proved about one switch; returned for
/// tests and machine consumers, independent of the Report diagnostics.
struct SymbolicSummary {
  std::size_t paths = 0;
  std::size_t drop_paths = 0;
  std::size_t covered_drop_paths = 0;
  std::size_t silent_drop_paths = 0;   // reachable loss with no emission
  std::size_t double_report_paths = 0;
  std::size_t uninit_read_paths = 0;
  int max_emissions_per_packet = 0;
  /// Indexed by static_cast<size_t>(DropReason): is any path with this
  /// reason reachable?
  std::array<bool, 16> reason_reachable{};
  double structural_event_rate_eps = 0.0;
  double path_sensitive_event_rate_eps = 0.0;
};

/// Run the symbolic pass family over one constructed switch: path
/// enumeration plus the drop-coverage, double-report, reachability,
/// metadata-initialization, and path-sensitive capacity checks. Adds
/// diagnostics to `report` under the "symbolic.*" pass names.
SymbolicSummary check_symbolic(Report& report, const pdp::Switch& sw,
                               const core::NetSeerConfig& config, const VerifyOptions& options,
                               const SymbolicOptions& symbolic = {});

}  // namespace netseer::verify
