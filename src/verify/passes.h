#pragma once

#include <cstdint>

#include "core/netseer_app.h"
#include "pdp/resources.h"
#include "verify/diagnostics.h"
#include "verify/layout.h"

namespace netseer::pdp {
class Switch;
struct AclRule;
}  // namespace netseer::pdp

namespace netseer::verify {

/// Worst-case traffic assumptions the capacity proofs are evaluated
/// against. Defaults model the paper's deployment envelope; tighten them
/// to prove a stronger guarantee (e.g. event_fraction = 1.0 proves the
/// pipeline survives every packet being an event — no real config does).
struct Assumptions {
  /// Smallest frame that can overwrite ring-buffer slots back to back.
  std::uint32_t ring_pkt_bytes = 64;
  /// Average size of a packet that experiences an event, used to turn
  /// line rate into a worst-case event rate.
  std::uint32_t event_pkt_bytes = 256;
  /// Worst-case fraction of packets experiencing an event at peak (§4
  /// sizes the event path for rare events; 2% is already pathological).
  double event_fraction = 0.02;
  /// Back-to-back losses the ring buffer must survive (Fig. 15a).
  int consecutive_drops = 4;
  /// Budget fraction above which a pass warns even though the hard limit
  /// still holds.
  double headroom = 0.9;
};

struct VerifyOptions {
  bool strict = false;  // promote warnings to failures in ok()
  /// Also run the symbolic pipeline executor passes (path enumeration,
  /// drop coverage, double-report, reachability, metadata, path-sensitive
  /// capacity — see verify/symbolic.h).
  bool symbolic = false;
  Assumptions assumptions{};
};

// ---- Pass 1: resource fitting ---------------------------------------------

/// Fold the switch's deployed state (LPM entries, ACL rules, NetSeer
/// register arrays) plus the switch.p4 baseline through the Fig. 7
/// resource model. This is the model the resource pass checks, and the
/// one Harness::collect_metrics exports overflow counters from.
[[nodiscard]] pdp::ResourceModel build_resource_model(const pdp::Switch& sw,
                                                      const core::NetSeerConfig& config);

/// Fail when any Tofino-class budget (SRAM, TCAM, xbar, hash bits, VLIW,
/// stateful ALU, PHV) is exceeded; warn above `headroom` of a budget.
void check_resources(Report& report, const pdp::Switch& sw, const core::NetSeerConfig& config,
                     const VerifyOptions& options);

// ---- Pass 2: stage hazard analysis ----------------------------------------

/// Build the read/write dependency graph over `layout`'s register arrays
/// and flag: same-stage RAW/WAW between distinct actors, arrays split
/// across stages, cross-pipeline (ingress/egress) aliasing, stage-count
/// and per-stage stateful-ALU budget violations.
void check_hazards(Report& report, const PipelineLayout& layout, const std::string& switch_name,
                   util::NodeId switch_id);

// ---- Pass 3: recirculation termination ------------------------------------

/// Prove the CEBP/internal-port recirculation loop terminates and fits:
/// progress conditions (CEBPs exist, batches fill, latencies positive),
/// CEBP packets fit one MTU (an oversized recirculating packet would be
/// dropped and livelock collection), steady-state batch output and the
/// MMU redirect ceiling fit the internal-port bandwidth.
void check_recirculation(Report& report, const core::NetSeerConfig& config, std::uint32_t mtu,
                         const std::string& switch_name, util::NodeId switch_id);

// ---- Pass 4: ACL shadowing -------------------------------------------------

/// Does rule `a` match every flow rule `b` matches? (a deployed earlier
/// than b therefore makes b dead).
[[nodiscard]] bool rule_covers(const pdp::AclRule& a, const pdp::AclRule& b);
/// Do the two rules match at least one common flow?
[[nodiscard]] bool rules_intersect(const pdp::AclRule& a, const pdp::AclRule& b);

/// Flag ternary rules fully shadowed by a higher-priority entry (dead
/// rules, error) and partially overlapping rules whose actions conflict
/// (warning). Shadowing by a *combination* of earlier rules is not
/// checked (that problem is NP-hard; single-rule shadowing catches the
/// operational mistakes in practice).
void check_acl(Report& report, const pdp::Switch& sw);

// ---- Pass 5: capacity proofs ----------------------------------------------

/// Worst-case flow-event rate of one switch (events/second) under
/// `assumptions`: every port at line rate, `event_fraction` of packets
/// eventful.
[[nodiscard]] double worst_case_event_rate_eps(const pdp::Switch& sw,
                                               const Assumptions& assumptions);

/// Statically verify the paper's no-overflow conditions at the worst-case
/// event rate: ring buffers sized for the notification round trip
/// (Fig. 15a), CEBP and PCIe drains keep up with event arrival, the event
/// stack absorbs the flush-window burst, and the event path fits the
/// internal-port bandwidth budget.
void check_capacity(Report& report, const pdp::Switch& sw, const core::NetSeerConfig& config,
                    const VerifyOptions& options);

}  // namespace netseer::verify
