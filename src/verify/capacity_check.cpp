#include <algorithm>
#include <cstdio>

#include "core/capacity.h"
#include "core/pcie.h"
#include "pdp/switch.h"
#include "verify/passes.h"

namespace netseer::verify {

namespace {

constexpr char kPass[] = "capacity";
constexpr std::uint32_t kNotifyFrameBytes = 64;  // notification packet incl. L2 overhead

Diagnostic make(Severity severity, const pdp::Switch& sw, std::string component,
                std::string message, double measured = 0.0, double limit = 0.0) {
  Diagnostic d;
  d.severity = severity;
  d.pass = kPass;
  d.switch_name = sw.name();
  d.switch_id = sw.id();
  d.component = std::move(component);
  d.message = std::move(message);
  d.measured = measured;
  d.limit = limit;
  return d;
}

}  // namespace

double worst_case_event_rate_eps(const pdp::Switch& sw, const Assumptions& assumptions) {
  std::int64_t connected_bps = 0;
  for (util::PortId p = 0; p < sw.config().num_ports; ++p) {
    if (sw.link(p) != nullptr) connected_bps += sw.config().port_rate.bits_per_second();
  }
  const double pps = static_cast<double>(connected_bps) /
                     (8.0 * static_cast<double>(assumptions.event_pkt_bytes));
  return pps * assumptions.event_fraction;
}

void check_capacity(Report& report, const pdp::Switch& sw, const core::NetSeerConfig& config,
                    const VerifyOptions& options) {
  report.mark_pass(kPass);
  char buf[240];
  const Assumptions& a = options.assumptions;

  // ---- Fig. 15a: ring buffers must cover the notification round trip ----
  // While a loss notification is in flight, line-rate minimum-size frames
  // keep overwriting the ring; the dropped packet's slot must survive
  // until the lookup. Evaluate the worst connected port.
  if (config.enable_interswitch) {
    std::size_t worst_required = 0;
    util::PortId worst_port = util::kInvalidPort;
    for (util::PortId p = 0; p < sw.config().num_ports; ++p) {
      const net::Link* link = sw.link(p);
      if (link == nullptr) continue;
      const util::SimDuration notify_rtt =
          2 * link->delay() + 2 * sw.config().pipeline_latency +
          sw.config().port_rate.serialization_delay(
              static_cast<std::int64_t>(kNotifyFrameBytes) *
              std::max(1, config.interswitch.notify_copies));
      const std::size_t required = core::capacity::slots_for_consecutive_drops(
          a.consecutive_drops, sw.config().port_rate, notify_rtt, a.ring_pkt_bytes);
      if (required > worst_required) {
        worst_required = required;
        worst_port = p;
      }
    }
    if (worst_required > 0) {
      const std::size_t configured = config.interswitch.ring_slots;
      if (configured < worst_required) {
        std::snprintf(buf, sizeof(buf),
                      "ring buffer undersized: %zu slots configured but port %u needs %zu to "
                      "survive %d back-to-back drops of %u B frames during the notification "
                      "round trip — dropped flows become unrecoverable",
                      configured, worst_port, worst_required, a.consecutive_drops,
                      a.ring_pkt_bytes);
        report.add(make(Severity::kError, sw, "iswitch.ring", buf,
                        static_cast<double>(configured),
                        static_cast<double>(worst_required)));
      } else if (static_cast<double>(configured) * a.headroom <
                 static_cast<double>(worst_required)) {
        std::snprintf(buf, sizeof(buf),
                      "ring buffer within %.0f%% of its safety bound (%zu slots, %zu needed)",
                      100.0 * (1.0 - a.headroom), configured, worst_required);
        report.add(make(Severity::kWarning, sw, "iswitch.ring", buf,
                        static_cast<double>(configured),
                        static_cast<double>(worst_required)));
      }
    }
  }

  // ---- Event path drains vs the worst-case event rate --------------------
  const double event_rate = worst_case_event_rate_eps(sw, a);

  if (config.event_stack_capacity == 0) {
    report.add(make(Severity::kError, sw, "batch.stack",
                    "event stack capacity is 0 — every extracted event overflows"));
  }
  if (config.group_cache.report_interval == 0) {
    report.add(make(Severity::kError, sw, "dedup.cache",
                    "group-cache report interval C = 0 — aggregated counts are never "
                    "re-reported, losing the paper's counter guarantee"));
  }
  if (config.group_cache.entries == 0) {
    report.add(make(Severity::kWarning, sw, "dedup.cache",
                    "group cache disabled (0 entries): every event packet is reported "
                    "individually, forfeiting the Fig. 13 dedup reduction"));
  }

  const auto& cebp = config.cebp;
  if (cebp.num_cebps >= 1 && cebp.batch_size >= 1 && cebp.recirc_latency > 0) {
    const double drain = core::capacity::cebp_throughput_eps(cebp, cebp.batch_size);
    if (event_rate > drain) {
      std::snprintf(buf, sizeof(buf),
                    "CEBP drain %.2g events/s cannot keep up with the worst-case event rate "
                    "%.2g events/s — the event stack overflows under sustained load",
                    drain, event_rate);
      report.add(make(Severity::kError, sw, "cebp", buf, event_rate, drain));
    } else if (event_rate > drain * a.headroom) {
      std::snprintf(buf, sizeof(buf),
                    "CEBP drain within %.0f%% of the worst-case event rate",
                    100.0 * (1.0 - a.headroom));
      report.add(make(Severity::kWarning, sw, "cebp", buf, event_rate, drain));
    }

    // Burst absorption: while a CEBP pays its flush latency it collects
    // nothing; the stack must absorb the events arriving in that window.
    const double flush_burst =
        event_rate * static_cast<double>(cebp.flush_latency) / 1e9;
    if (config.event_stack_capacity > 0 &&
        flush_burst > static_cast<double>(config.event_stack_capacity)) {
      std::snprintf(buf, sizeof(buf),
                    "event stack (%zu entries) cannot absorb the %.0f events arriving during "
                    "one CEBP flush window",
                    config.event_stack_capacity, flush_burst);
      report.add(make(Severity::kError, sw, "batch.stack", buf, flush_burst,
                      static_cast<double>(config.event_stack_capacity)));
    }

    // PCIe: the pipeline-to-CPU channel must sustain the same rate.
    const double pcie_drain = core::PcieChannel::throughput_eps(
        config.pcie, static_cast<std::size_t>(cebp.batch_size));
    if (event_rate > pcie_drain) {
      std::snprintf(buf, sizeof(buf),
                    "PCIe channel drains %.2g events/s at batch size %d, below the "
                    "worst-case event rate %.2g events/s",
                    pcie_drain, cebp.batch_size, event_rate);
      report.add(make(Severity::kError, sw, "pcie", buf, event_rate, pcie_drain));
    }
  }

  // ---- §4 internal-port budget for event packets --------------------------
  // Pause, pipeline-drop, and redirected MMU-drop packets share the
  // internal port; at the worst-case event rate their bytes must fit it.
  if (!config.internal_port_rate.is_zero()) {
    const double event_gbps =
        event_rate * static_cast<double>(a.event_pkt_bytes) * 8.0 / 1e9;
    const double budget_gbps = config.internal_port_rate.gbps_value();
    if (event_gbps > budget_gbps) {
      std::snprintf(buf, sizeof(buf),
                    "worst-case event-packet traffic %.1f Gb/s exceeds the internal-port "
                    "budget %.1f Gb/s — events would be dropped at the internal port",
                    event_gbps, budget_gbps);
      report.add(make(Severity::kError, sw, "internal_port", buf, event_gbps, budget_gbps));
    } else if (event_gbps > budget_gbps * a.headroom) {
      std::snprintf(buf, sizeof(buf),
                    "worst-case event-packet traffic within %.0f%% of the internal-port "
                    "budget",
                    100.0 * (1.0 - a.headroom));
      report.add(make(Severity::kWarning, sw, "internal_port", buf, event_gbps, budget_gbps));
    }
  }
}

}  // namespace netseer::verify
