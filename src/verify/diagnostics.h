#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/ids.h"

namespace netseer::verify {

enum class Severity : std::uint8_t {
  kWarning = 0,  // suspicious but deployable (strict mode promotes to error)
  kError,        // the configuration cannot be deployed safely
};

[[nodiscard]] const char* to_string(Severity severity);

/// One finding of a verification pass. Every field that names a pipeline
/// object (switch, component, resource) is filled whenever it is known,
/// so CI can diff findings structurally instead of by message text.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string pass;         // "resources", "hazards", "recirculation", "acl", "capacity"
  std::string switch_name;  // empty for fabric-wide findings
  util::NodeId switch_id = util::kInvalidNode;
  std::string component;    // table / register array / resource class
  std::string message;
  /// Quantitative payload: measured value vs the budget it violates
  /// (both 0 for purely structural findings).
  double measured = 0.0;
  double limit = 0.0;
};

/// The result of running one or more passes: an ordered list of
/// diagnostics plus pass bookkeeping for the summary line.
class Report {
 public:
  void add(Diagnostic diagnostic);
  /// Record that a pass ran (even if it found nothing), for the summary.
  void mark_pass(const std::string& pass);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  [[nodiscard]] std::size_t error_count() const;
  [[nodiscard]] std::size_t warning_count() const;
  [[nodiscard]] const std::vector<std::string>& passes_run() const { return passes_; }

  /// Deployable? Errors always fail; `strict` also fails on warnings.
  [[nodiscard]] bool ok(bool strict = false) const;

  /// Human-readable rendering: one line per diagnostic plus a summary.
  [[nodiscard]] std::string render_text() const;
  /// Machine-readable rendering:
  /// {"passes":[...],"errors":N,"warnings":N,"diagnostics":[{...}]}.
  [[nodiscard]] std::string render_json() const;

  /// Merge another report: diagnostics are concatenated in order; the
  /// pass list is deduplicated (merging per-switch reports that ran the
  /// same passes must not double-count them in the summary).
  void merge(const Report& other);

 private:
  std::vector<Diagnostic> diagnostics_;
  std::vector<std::string> passes_;
};

}  // namespace netseer::verify
