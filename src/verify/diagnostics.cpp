#include "verify/diagnostics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace netseer::verify {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

void Report::add(Diagnostic diagnostic) { diagnostics_.push_back(std::move(diagnostic)); }

void Report::mark_pass(const std::string& pass) {
  if (std::find(passes_.begin(), passes_.end(), pass) == passes_.end()) {
    passes_.push_back(pass);
  }
}

std::size_t Report::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [](const Diagnostic& d) { return d.severity == Severity::kError; }));
}

std::size_t Report::warning_count() const { return diagnostics_.size() - error_count(); }

bool Report::ok(bool strict) const {
  if (error_count() > 0) return false;
  return !strict || warning_count() == 0;
}

void Report::merge(const Report& other) {
  for (const auto& d : other.diagnostics_) diagnostics_.push_back(d);
  for (const auto& p : other.passes_) mark_pass(p);
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string Report::render_text() const {
  std::string out;
  for (const auto& d : diagnostics_) {
    out += to_string(d.severity);
    out += " [";
    out += d.pass;
    out += "]";
    if (!d.switch_name.empty()) {
      out += " ";
      out += d.switch_name;
    }
    if (!d.component.empty()) {
      out += " ";
      out += d.component;
    }
    out += ": ";
    out += d.message;
    if (d.limit != 0.0 || d.measured != 0.0) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), " (measured %.6g, limit %.6g)", d.measured, d.limit);
      out += buf;
    }
    out += '\n';
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%zu error(s), %zu warning(s) across %zu pass(es)\n",
                error_count(), warning_count(), passes_.size());
  out += buf;
  return out;
}

std::string Report::render_json() const {
  std::string out = "{\n  \"passes\": [";
  for (std::size_t i = 0; i < passes_.size(); ++i) {
    if (i > 0) out += ", ";
    append_json_string(out, passes_[i]);
  }
  out += "],\n  \"errors\": " + std::to_string(error_count());
  out += ",\n  \"warnings\": " + std::to_string(warning_count());
  out += ",\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    const auto& d = diagnostics_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"severity\": ";
    append_json_string(out, to_string(d.severity));
    out += ", \"pass\": ";
    append_json_string(out, d.pass);
    out += ", \"switch\": ";
    append_json_string(out, d.switch_name);
    out += ", \"switch_id\": ";
    if (d.switch_id == util::kInvalidNode) {
      out += "null";
    } else {
      out += std::to_string(d.switch_id);
    }
    out += ", \"component\": ";
    append_json_string(out, d.component);
    out += ", \"message\": ";
    append_json_string(out, d.message);
    out += ", \"measured\": ";
    append_json_double(out, d.measured);
    out += ", \"limit\": ";
    append_json_double(out, d.limit);
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace netseer::verify
