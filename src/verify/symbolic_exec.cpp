#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/netseer_app.h"
#include "verify/symbolic.h"

namespace netseer::verify {

namespace {

/// Emission-point names, shared with the checkers and fixtures.
constexpr char kEmitPipelineDrop[] = "event.pipeline_drop";
constexpr char kEmitMmuDrop[] = "event.mmu_drop";
constexpr char kEmitInterSwitch[] = "iswitch.recovery";

/// DFS state threaded through the stage walk. One Walker enumerates the
/// whole path set; `path` is mutated in place and snapshotted at leaves.
class Walker {
 public:
  Walker(const pdp::PipelineView& view, const core::NetSeerConfig& config,
         const SymbolicOptions& options, const std::function<void(const SymbolicPath&)>& sink)
      : view_(view), config_(config), options_(options), sink_(sink) {
    if (view_.acl != nullptr) acl_branch_taken_.assign(view_.acl->size(), false);
  }

  void run() {
    enumerate_wire_paths();
    if (view_.fault == pdp::HardwareFault::kAsicFailure) {
      // A dead ASIC eats everything before any programmable logic runs:
      // the single remaining path covers all packets and emits nothing.
      SymbolicPath path;
      path.verdict = PathVerdict::kDrop;
      path.reason = pdp::DropReason::kNone;
      path.steps.push_back({pdp::Stage::kMacRx, "hardware: failed ASIC discards all frames"});
      emit(path);
      finish();
      return;
    }
    enumerate_mac_paths();
    enumerate_ip_paths();
    finish();
  }

  [[nodiscard]] ExecNotes take_notes() { return std::move(notes_); }

 private:
  // ---- Leaf handling --------------------------------------------------------

  void emit(SymbolicPath path) {
    if (notes_.truncated) return;
    if (notes_.paths >= options_.max_paths) {
      notes_.truncated = true;
      return;
    }
    apply_defects(path);
    ++notes_.paths;
    sink_(path);
  }

  void apply_defects(SymbolicPath& path) const {
    const auto crosses = [&path](pdp::Stage stage) {
      return std::any_of(path.steps.begin(), path.steps.end(),
                         [stage](const PathStep& s) { return s.stage == stage; });
    };
    for (const auto& extra : options_.defects.extra_emissions) {
      if (!crosses(extra.stage)) continue;
      if (extra.reason != pdp::DropReason::kNone && path.reason != extra.reason) continue;
      path.emissions.push_back(Emission{extra.stage, extra.point});
    }
    for (const auto& extra : options_.defects.extra_reads) {
      if (!crosses(extra.stage)) continue;
      if (field_defined_before(path, extra.stage, extra.field)) continue;
      std::string read = pdp::to_string(extra.stage);
      read += "/";
      read += pdp::to_string(extra.field);
      read += " by ";
      read += extra.actor;
      path.uninit_reads.push_back(std::move(read));
    }
  }

  /// Is `field` carrying a meaningful value when stage `at` begins on
  /// this path? Mirrors the writes in Switch::run_pipeline: egress_port
  /// on an ECMP selection, queue at queue-select, acl_rule_id only on
  /// the ACL deny branch (whose path terminates at the ACL stage).
  [[nodiscard]] static bool field_defined_before(const SymbolicPath& path, pdp::Stage at,
                                                 pdp::MetaField field) {
    switch (field) {
      case pdp::MetaField::kEgressPort:
        return path.ecmp_selected && at > pdp::Stage::kRoute;
      case pdp::MetaField::kQueue:
        return at > pdp::Stage::kQueueSelect &&
               std::any_of(path.steps.begin(), path.steps.end(), [](const PathStep& s) {
                 return s.stage == pdp::Stage::kQueueSelect;
               });
      case pdp::MetaField::kAclRuleId:
        return at == pdp::Stage::kAcl && path.verdict == PathVerdict::kDrop &&
               path.reason == pdp::DropReason::kAclDeny;
    }
    return false;
  }

  void finish() {
    if (view_.acl != nullptr) {
      std::size_t index = 0;
      view_.acl->for_each_rule([&](const pdp::AclRule& rule) {
        if (!acl_branch_taken_[index]) notes_.dead_acl_rules.push_back(rule.rule_id);
        ++index;
      });
    }
  }

  // ---- Wire / MAC stages ----------------------------------------------------

  void enumerate_wire_paths() {
    // Loss and corruption on the attached cables: the packet never
    // reaches this switch's programmable logic, so coverage (if any)
    // comes from inter-switch sequencing — the upstream egress logged
    // the packet and the downstream gap detector triggers recovery.
    if (!view_.any_port_wired()) return;
    for (const pdp::DropReason reason :
         {pdp::DropReason::kLinkLoss, pdp::DropReason::kCorruption}) {
      SymbolicPath path;
      path.synthetic = true;
      path.verdict = PathVerdict::kDrop;
      path.reason = reason;
      path.steps.push_back({pdp::Stage::kWire, pdp::to_string(reason)});
      if (config_.enable_interswitch) {
        path.emissions.push_back(Emission{pdp::Stage::kWire, kEmitInterSwitch});
      }
      emit(path);
    }
  }

  void enumerate_mac_paths() {
    {
      // FCS failure: the MAC discards silently; with inter-switch
      // detection enabled the loss surfaces as a sequence gap and the
      // upstream ring lookup recovers the flow.
      SymbolicPath path;
      path.packet.corrupted = true;
      path.verdict = PathVerdict::kDrop;
      path.reason = pdp::DropReason::kCorruption;
      path.steps.push_back({pdp::Stage::kMacRx, "fcs failure"});
      if (config_.enable_interswitch) {
        path.emissions.push_back(Emission{pdp::Stage::kMacRx, kEmitInterSwitch});
      }
      emit(path);
    }
    {
      // PFC pause/resume: consumed by the MAC-control layer; nothing is
      // lost, so no event is owed.
      SymbolicPath path;
      path.packet.is_pfc = true;
      path.verdict = PathVerdict::kConsumed;
      path.steps.push_back({pdp::Stage::kMacRx, "pfc consumed"});
      emit(path);
    }
  }

  // ---- L3 pipeline ----------------------------------------------------------

  void enumerate_ip_paths() {
    {
      // Parser: any surviving non-IPv4 frame is a pipeline drop.
      SymbolicPath path;
      path.packet.is_ipv4 = false;
      path.steps.push_back({pdp::Stage::kMacRx, ""});
      drop_leaf(path, pdp::Stage::kParser, pdp::DropReason::kParserError, "non-ipv4");
    }

    SymbolicPath base;
    base.steps.push_back({pdp::Stage::kMacRx, ""});
    base.steps.push_back({pdp::Stage::kParser, "ipv4"});

    // LPM: entries are sorted longest-prefix-first and equal-length
    // prefixes are disjoint, so subtracting each live entry's prefix from
    // the running remainder yields the exact match set of every entry —
    // and the final remainder is the exact miss set. Corrupted entries
    // are skipped by lookups: their traffic falls through to the miss
    // path (or a shorter live entry), which is why a parity error shows
    // up as route-miss drops rather than silence in this model.
    PrefixSet remaining = PrefixSet::any();
    if (view_.routes != nullptr) {
      const auto& entries = view_.routes->entries();
      for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto& entry = entries[i];
        if (entry.corrupted) {
          notes_.corrupted_lpm_entries.push_back(static_cast<int>(i));
          continue;
        }
        PrefixSet covered = remaining;
        covered.intersect(entry.prefix);
        remaining.subtract(entry.prefix);
        if (covered.empty()) {
          notes_.dead_lpm_entries.push_back(static_cast<int>(i));
          continue;
        }
        enumerate_route_hit(base, static_cast<int>(i), entry, covered);
      }
    }
    if (!remaining.empty()) {
      SymbolicPath path = base;
      path.packet.dst = remaining;
      drop_leaf(path, pdp::Stage::kRoute, pdp::DropReason::kRouteMiss, "lpm miss");
    }
  }

  void enumerate_route_hit(const SymbolicPath& base, int entry_index,
                           const pdp::LpmTable::Entry& entry, const PrefixSet& covered) {
    if (entry.nexthops.empty()) {
      SymbolicPath path = base;
      path.packet.dst = covered;
      path.lpm_entry = entry_index;
      drop_leaf(path, pdp::Stage::kRoute, pdp::DropReason::kRouteMiss, "empty ecmp group");
      return;
    }
    // One branch per distinct ECMP member. The selector hashes the
    // 5-tuple modulo the member count, so every member is reachable for
    // some flow (hash-surjectivity assumption, see DESIGN.md).
    std::vector<util::PortId> members;
    for (const util::PortId port : entry.nexthops.ports) {
      if (std::find(members.begin(), members.end(), port) == members.end()) {
        members.push_back(port);
      }
    }
    for (const util::PortId member : members) {
      SymbolicPath path = base;
      path.packet.dst = covered;
      path.lpm_entry = entry_index;
      path.egress_port = member;
      path.ecmp_selected = true;
      std::string note = "entry ";
      note += entry.prefix.to_string();
      note += " -> port ";
      note += std::to_string(member);
      if (member >= view_.num_ports) {
        drop_leaf(path, pdp::Stage::kRoute, pdp::DropReason::kRouteMiss,
                  note + " (out of range)");
        continue;
      }
      path.steps.push_back({pdp::Stage::kRoute, std::move(note)});
      enumerate_acl(path);
    }
  }

  void enumerate_acl(const SymbolicPath& base) {
    if (view_.acl != nullptr && view_.acl->size() > 0) {
      std::vector<const pdp::AclRule*> rules;
      view_.acl->for_each_rule([&rules](const pdp::AclRule& rule) { rules.push_back(&rule); });
      for (std::size_t j = 0; j < rules.size(); ++j) {
        // A rule fully covered by one earlier rule can never be the
        // first match; its branch is exactly infeasible.
        bool shadowed = false;
        for (std::size_t k = 0; k < j && !shadowed; ++k) {
          shadowed = rule_covers(*rules[k], *rules[j]);
        }
        if (shadowed) continue;
        SymbolicPath path = base;
        if (!constrain_to_rule(path.packet, *rules[j])) continue;  // unsat in this context
        path.acl_evaluated = true;
        path.acl_rule_index = static_cast<int>(j);
        acl_branch_taken_[j] = true;
        std::string note = "rule ";
        note += std::to_string(rules[j]->rule_id);
        if (rules[j]->permit) {
          path.steps.push_back({pdp::Stage::kAcl, note + " permit"});
          enumerate_ttl(path);
        } else {
          drop_leaf(path, pdp::Stage::kAcl, pdp::DropReason::kAclDeny, note + " deny");
        }
      }
    }
    // Default action: permit. The "matched no rule" exclusion is not
    // encoded per-field (the complement of a ternary rule is not a
    // product of intervals); the branch over-approximates and admits()
    // restores exactness by concrete first-match evaluation.
    SymbolicPath path = base;
    path.acl_evaluated = true;
    path.acl_rule_index = -1;
    path.steps.push_back({pdp::Stage::kAcl, "default permit"});
    enumerate_ttl(path);
  }

  /// Constrain `pkt` to match `rule`; false if the result is empty.
  static bool constrain_to_rule(SymPacket& pkt, const pdp::AclRule& rule) {
    if (rule.src.length > 0) pkt.src.intersect(rule.src);
    if (rule.dst.length > 0) pkt.dst.intersect(rule.dst);
    if (rule.proto && !pkt.proto.intersect(Interval::exact(*rule.proto))) return false;
    if (!pkt.sport.intersect(Interval{rule.sport_lo, rule.sport_hi})) return false;
    if (!pkt.dport.intersect(Interval{rule.dport_lo, rule.dport_hi})) return false;
    return !pkt.src.empty() && !pkt.dst.empty();
  }

  void enumerate_ttl(const SymbolicPath& base) {
    {
      SymbolicPath path = base;
      if (path.packet.ttl.intersect(Interval{0, 1})) {
        drop_leaf(path, pdp::Stage::kTtl, pdp::DropReason::kTtlExpired, "ttl <= 1");
      }
    }
    SymbolicPath path = base;
    if (!path.packet.ttl.intersect(Interval{2, 0xff})) return;
    path.steps.push_back({pdp::Stage::kTtl, "decrement"});
    enumerate_mtu(path);
  }

  void enumerate_mtu(const SymbolicPath& base) {
    if (view_.mtu < 0xffff) {
      SymbolicPath path = base;
      if (path.packet.ip_bytes.intersect(Interval{view_.mtu + 1, 0xffff})) {
        drop_leaf(path, pdp::Stage::kMtu, pdp::DropReason::kMtuExceeded, "over egress mtu");
      }
    }
    SymbolicPath path = base;
    if (!path.packet.ip_bytes.intersect(Interval{0, view_.mtu})) return;
    path.steps.push_back({pdp::Stage::kMtu, ""});
    enumerate_port_health(path);
  }

  void enumerate_port_health(const SymbolicPath& base) {
    // Static per (view, egress port): no packet field influences it.
    if (!view_.port_healthy(base.egress_port)) {
      SymbolicPath path = base;
      drop_leaf(path, pdp::Stage::kPortHealth, pdp::DropReason::kPortDown, "egress unhealthy");
      return;
    }
    SymbolicPath path = base;
    path.steps.push_back({pdp::Stage::kPortHealth, "healthy"});
    path.steps.push_back({pdp::Stage::kQueueSelect, "dscp -> queue"});
    enumerate_mmu(path);
  }

  void enumerate_mmu(const SymbolicPath& base) {
    if (view_.fault == pdp::HardwareFault::kMmuFailure) {
      // Every enqueue silently fails: no hook, no counter. One path.
      SymbolicPath path = base;
      path.verdict = PathVerdict::kDrop;
      path.reason = pdp::DropReason::kNone;
      path.steps.push_back({pdp::Stage::kMmuAdmit, "hardware: failed MMU discards enqueue"});
      emit(path);
      return;
    }
    {
      // Tail drop is reachable whenever queues can fill — a dynamic
      // condition the static model keeps as an unconditional branch.
      SymbolicPath path = base;
      drop_leaf(path, pdp::Stage::kMmuAdmit, pdp::DropReason::kCongestion, "tail drop");
    }
    if (view_.queue_capacity_bytes < static_cast<std::int64_t>(packet::kMinFrameBytes)) {
      // Even an empty queue rejects a minimum frame: forwarding is
      // structurally impossible on this switch.
      notes_.admit_unreachable = true;
      return;
    }
    SymbolicPath path = base;
    path.steps.push_back({pdp::Stage::kMmuAdmit, "admitted"});
    path.steps.push_back({pdp::Stage::kEgress, ""});
    if (view_.ports[path.egress_port].wired) {
      path.verdict = PathVerdict::kForward;
    } else {
      // An up-but-unwired egress passes the health check and enqueues,
      // but the TxPort can never transmit: the packet is lost with no
      // drop point ever crossed. The coverage pass flags this.
      path.verdict = PathVerdict::kBlackhole;
      path.steps.back().note = "unwired egress: frame never leaves";
    }
    emit(path);
  }

  void drop_leaf(SymbolicPath& path, pdp::Stage stage, pdp::DropReason reason,
                 const std::string& note) {
    path.verdict = PathVerdict::kDrop;
    path.reason = reason;
    path.steps.push_back({stage, note});
    if (stage == pdp::Stage::kMmuAdmit) {
      path.emissions.push_back(Emission{stage, kEmitMmuDrop});
    } else {
      path.emissions.push_back(Emission{stage, kEmitPipelineDrop});
    }
    emit(path);
  }

  const pdp::PipelineView& view_;
  const core::NetSeerConfig& config_;
  const SymbolicOptions& options_;
  const std::function<void(const SymbolicPath&)>& sink_;
  std::vector<bool> acl_branch_taken_;
  ExecNotes notes_;
};

}  // namespace

ExecNotes enumerate_paths(const pdp::PipelineView& view, const core::NetSeerConfig& config,
                          const SymbolicOptions& options,
                          const std::function<void(const SymbolicPath&)>& sink) {
  Walker walker(view, config, options, sink);
  walker.run();
  return walker.take_notes();
}

std::vector<SymbolicPath> collect_paths(const pdp::PipelineView& view,
                                        const core::NetSeerConfig& config,
                                        const SymbolicOptions& options) {
  std::vector<SymbolicPath> paths;
  enumerate_paths(view, config, options, [&paths](const SymbolicPath& p) { paths.push_back(p); });
  return paths;
}

bool SymbolicPath::admits(const packet::Packet& pkt, const pdp::PipelineView& view) const {
  if (synthetic) return false;
  if (view.fault == pdp::HardwareFault::kAsicFailure) {
    return verdict == PathVerdict::kDrop && reason == pdp::DropReason::kNone;
  }
  if (!packet.admits(pkt)) return false;
  if (packet.corrupted || packet.is_pfc || !packet.is_ipv4) return true;

  const packet::FlowKey flow = pkt.flow();

  // The stored dst PrefixSet is the exact match set of the chosen LPM
  // entry (or the exact miss set), so LPM agreement is already implied by
  // packet.admits(). ECMP member choice is evaluated concretely.
  if (ecmp_selected && view.routes != nullptr) {
    const auto& entries = view.routes->entries();
    const util::PortId selected =
        entries[static_cast<std::size_t>(lpm_entry)].nexthops.select(flow, view.ecmp_seed);
    if (selected != egress_port) return false;
  }

  // The ACL "no earlier rule matched" exclusion is over-approximated in
  // the constraint store; restore exactness with a concrete first-match.
  if (acl_evaluated && view.acl != nullptr) {
    int first_match = -1;
    int index = 0;
    view.acl->for_each_rule([&](const pdp::AclRule& rule) {
      if (first_match < 0 && rule.matches(flow)) first_match = index;
      ++index;
    });
    if (first_match != acl_rule_index) return false;
  }
  return true;
}

}  // namespace netseer::verify
