#pragma once

#include <string>
#include <vector>

#include "verify/symbolic.h"

namespace netseer::verify {

/// One loss class a deployment can exhibit, extracted from a symbolic
/// verify run in the machine-readable form `netseer_verify
/// --coverage-out` emits. The detection cross-check consumes this list:
/// every class must map to a detect rule that observes its event stream,
/// or carry an explicit waiver in the RuleSet.
struct CoverageClass {
  /// "drop.<reason>" for reachable drop paths (events exist to detect),
  /// "path.<stage>" / "path.blackhole" for silent loss (no emission
  /// crossed), "lpm.<prefix>" / "acl.rule.<id>" for dead deployed state
  /// (can never match traffic, so can never generate events).
  std::string name;
  /// True when no event-emission point covers the class — a runtime
  /// detector over the event stream is structurally blind to it.
  bool silent = false;
  std::string source;  // "symbolic.summary" or the diagnostic pass name
};

/// Derive the class list from an already-run symbolic pass: reachable
/// drop reasons from `summary`, silent-loss and dead-state classes from
/// the "symbolic.*" diagnostics in `report`. Deduplicated by name,
/// deterministic order.
[[nodiscard]] std::vector<CoverageClass> coverage_classes(const Report& report,
                                                          const SymbolicSummary& summary);

/// Run check_symbolic over every switch (adding its diagnostics to
/// `report`), merge the summaries, and derive the classes in one go.
[[nodiscard]] std::vector<CoverageClass> collect_coverage(
    Report& report, const std::vector<pdp::Switch*>& switches,
    const core::NetSeerConfig& config, const VerifyOptions& options,
    const SymbolicOptions& symbolic = {});

/// {"classes":[{"name":...,"silent":...,"source":...}]}
[[nodiscard]] std::string render_coverage_json(const std::vector<CoverageClass>& classes);

}  // namespace netseer::verify
