#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/netseer_app.h"

namespace netseer::verify {

/// Which pipeline a match-action stage access belongs to. Tofino-class
/// chips share MAU stages between ingress and egress, but a register
/// array is owned by exactly one gress — accessing it from both is the
/// cross-pipeline aliasing the hazard pass flags.
enum class Gress : std::uint8_t { kIngress = 0, kEgress };

[[nodiscard]] const char* to_string(Gress gress);

/// One stage's access to a register array. A stateful ALU performs a
/// single atomic read-modify-write per packet pass, so an RMW by ONE
/// actor is hazard-free; separate read and write accesses (or two
/// actors touching the same array in the same stage) are not.
enum class AccessMode : std::uint8_t { kRead = 0, kWrite, kReadModifyWrite };

[[nodiscard]] const char* to_string(AccessMode mode);

struct RegisterAccess {
  std::string array;  // logical register array, e.g. "iswitch.ring"
  std::string actor;  // table/action performing the access
  int stage = 0;      // MAU stage index, 0-based
  Gress gress = Gress::kIngress;
  AccessMode mode = AccessMode::kReadModifyWrite;
};

/// Static placement of every register array a pipeline program touches,
/// plus the chip's stage geometry. The hazard pass runs entirely against
/// this structure, so tests (and seeded-defect fixtures) can construct
/// arbitrary layouts without a switch.
struct PipelineLayout {
  /// Tofino-class geometry: 12 shared MAU stages, 4 stateful ALUs per
  /// stage per gress.
  int num_stages = 12;
  int stateful_alus_per_stage = 4;
  std::vector<RegisterAccess> accesses;

  PipelineLayout& add(std::string array, std::string actor, int stage, Gress gress,
                      AccessMode mode) {
    accesses.push_back(RegisterAccess{std::move(array), std::move(actor), stage, gress, mode});
    return *this;
  }
};

/// The stage map of the deployed NetSeer program (Fig. 6 left to right),
/// derived from one switch's NetSeer configuration. Each logical register
/// array lands in one stage with one owning actor; the event stack's
/// push and pop share a single stateful ALU op (the packet type selects
/// the operation), so it appears as one RMW actor.
[[nodiscard]] PipelineLayout netseer_layout(const core::NetSeerConfig& config);

}  // namespace netseer::verify
