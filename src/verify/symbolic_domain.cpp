#include <cstdint>
#include <string>

#include "packet/headers.h"
#include "verify/symbolic.h"

namespace netseer::verify {

namespace {

/// Does `outer` contain every address of `inner`?
[[nodiscard]] bool prefix_contains(const packet::Ipv4Prefix& outer,
                                   const packet::Ipv4Prefix& inner) {
  return outer.length <= inner.length && outer.contains(inner.network);
}

/// Do the two prefixes share any address? (Prefixes are nested or
/// disjoint, never partially overlapping.)
[[nodiscard]] bool prefixes_overlap(const packet::Ipv4Prefix& a, const packet::Ipv4Prefix& b) {
  return prefix_contains(a, b) || prefix_contains(b, a);
}

}  // namespace

PrefixSet PrefixSet::any() {
  PrefixSet set;
  set.prefixes_.push_back(packet::Ipv4Prefix{});  // 0.0.0.0/0
  return set;
}

PrefixSet PrefixSet::of(const packet::Ipv4Prefix& prefix) {
  PrefixSet set;
  set.prefixes_.push_back(prefix);
  return set;
}

void PrefixSet::intersect(const packet::Ipv4Prefix& prefix) {
  std::vector<packet::Ipv4Prefix> kept;
  for (const auto& p : prefixes_) {
    if (prefix_contains(prefix, p)) {
      kept.push_back(p);  // already inside
    } else if (prefix_contains(p, prefix)) {
      kept.push_back(prefix);  // members are disjoint, so this happens at most once
    }
    // disjoint: drop
  }
  prefixes_ = std::move(kept);
}

void PrefixSet::subtract(const packet::Ipv4Prefix& prefix) {
  std::vector<packet::Ipv4Prefix> kept;
  for (const auto& p : prefixes_) {
    if (!prefixes_overlap(p, prefix)) {
      kept.push_back(p);
      continue;
    }
    if (prefix_contains(prefix, p)) continue;  // fully removed
    // p strictly contains prefix: walk from p toward prefix, keeping the
    // sibling half at each bit — the exact set difference.
    for (std::uint8_t len = p.length; len < prefix.length; ++len) {
      const std::uint32_t branch_bit = std::uint32_t{1} << (31 - len);
      packet::Ipv4Prefix sibling;
      sibling.length = static_cast<std::uint8_t>(len + 1);
      sibling.network.value =
          ((prefix.network.value ^ branch_bit) & sibling.mask());
      kept.push_back(sibling);
    }
  }
  prefixes_ = std::move(kept);
}

bool PrefixSet::contains(packet::Ipv4Addr addr) const {
  for (const auto& p : prefixes_) {
    if (p.contains(addr)) return true;
  }
  return false;
}

std::uint64_t PrefixSet::address_count() const {
  std::uint64_t total = 0;
  for (const auto& p : prefixes_) total += std::uint64_t{1} << (32 - p.length);
  return total;
}

std::string PrefixSet::to_string() const {
  if (prefixes_.empty()) return "{}";
  std::string out = "{";
  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += prefixes_[i].to_string();
  }
  out += "}";
  return out;
}

std::uint32_t mtu_check_bytes(const packet::Packet& pkt) {
  // Mirrors the expression in Switch::run_pipeline exactly.
  return pkt.wire_bytes() - packet::kEthHeaderBytes - packet::kEthFcsBytes -
         (pkt.vlan ? packet::kVlanTagBytes : 0) - (pkt.seq_tag ? packet::kSeqTagBytes : 0);
}

bool SymPacket::admits(const packet::Packet& pkt) const {
  if (pkt.corrupted != corrupted) return false;
  if (corrupted) return true;  // the MAC discards before any other branch
  const bool pkt_pfc = pkt.kind == packet::PacketKind::kPfc && pkt.pfc.has_value();
  if (pkt_pfc != is_pfc) return false;
  if (is_pfc) return true;
  if (pkt.is_ipv4() != is_ipv4) return false;
  if (!is_ipv4) return true;
  const packet::FlowKey flow = pkt.flow();
  return src.contains(flow.src) && dst.contains(flow.dst) && proto.contains(flow.proto) &&
         sport.contains(flow.sport) && dport.contains(flow.dport) &&
         ttl.contains(pkt.ip->ttl) && ip_bytes.contains(mtu_check_bytes(pkt));
}

const char* to_string(PathVerdict verdict) {
  switch (verdict) {
    case PathVerdict::kForward: return "forward";
    case PathVerdict::kDrop: return "drop";
    case PathVerdict::kConsumed: return "consumed";
    case PathVerdict::kBlackhole: return "blackhole";
  }
  return "?";
}

std::string SymbolicPath::describe() const {
  std::string out = to_string(verdict);
  if (verdict == PathVerdict::kDrop) {
    out += "(";
    out += pdp::to_string(reason);
    out += ")";
  }
  if (synthetic) out += " [synthetic]";
  for (const auto& step : steps) {
    out += " -> ";
    out += pdp::to_string(step.stage);
    if (!step.note.empty()) {
      out += "[";
      out += step.note;
      out += "]";
    }
  }
  for (const auto& e : emissions) {
    out += " !";
    out += e.point;
  }
  return out;
}

}  // namespace netseer::verify
