#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "core/capacity.h"
#include "core/pcie.h"
#include "pdp/switch.h"
#include "verify/symbolic.h"

namespace netseer::verify {

namespace {

constexpr char kPassCoverage[] = "symbolic.coverage";
constexpr char kPassDuplicate[] = "symbolic.duplicate";
constexpr char kPassReach[] = "symbolic.reachability";
constexpr char kPassMeta[] = "symbolic.metadata";
constexpr char kPassCapacity[] = "symbolic.capacity";

Diagnostic make(Severity severity, const char* pass, const pdp::Switch& sw,
                std::string component, std::string message, double measured = 0.0,
                double limit = 0.0) {
  Diagnostic d;
  d.severity = severity;
  d.pass = pass;
  d.switch_name = sw.name();
  d.switch_id = sw.id();
  d.component = std::move(component);
  d.message = std::move(message);
  d.measured = measured;
  d.limit = limit;
  return d;
}

[[nodiscard]] pdp::Stage terminal_stage(const SymbolicPath& path) {
  return path.steps.empty() ? pdp::Stage::kWire : path.steps.back().stage;
}

/// Everything the passes need from the path stream, folded online so the
/// full path set is never materialized.
struct Folded {
  // (reason, terminal stage) -> count, for silent drop paths.
  std::map<std::pair<pdp::DropReason, pdp::Stage>, std::size_t> silent;
  // blackhole egress ports -> count.
  std::map<util::PortId, std::size_t> blackholes;
  // (first emission point, second emission point) -> count.
  std::map<std::pair<std::string, std::string>, std::size_t> doubles;
  // emission point -> count, on forward/consumed paths (false positives).
  std::map<std::string, std::size_t> spurious;
  // distinct uninitialized-read descriptions -> path count.
  std::map<std::string, std::size_t> uninit;
  SymbolicSummary summary;
};

void fold_path(Folded& f, const SymbolicPath& path) {
  SymbolicSummary& s = f.summary;
  ++s.paths;
  const auto emissions = static_cast<int>(path.emissions.size());
  s.max_emissions_per_packet = std::max(s.max_emissions_per_packet, emissions);
  if (path.verdict == PathVerdict::kDrop) {
    ++s.drop_paths;
    s.reason_reachable[static_cast<std::size_t>(path.reason)] = true;
    if (emissions == 0) {
      ++s.silent_drop_paths;
      ++f.silent[{path.reason, terminal_stage(path)}];
    } else {
      ++s.covered_drop_paths;
    }
  } else if (path.verdict == PathVerdict::kBlackhole) {
    ++s.drop_paths;
    ++s.silent_drop_paths;
    ++f.blackholes[path.egress_port];
  } else if (emissions > 0) {
    // Forward/consumed paths owe no loss event: any emission here is a
    // false positive by construction.
    for (const auto& e : path.emissions) ++f.spurious[e.point];
  }
  if (emissions >= 2) {
    ++s.double_report_paths;
    ++f.doubles[{path.emissions[0].point, path.emissions[1].point}];
  }
  if (!path.uninit_reads.empty()) {
    ++s.uninit_read_paths;
    for (const auto& read : path.uninit_reads) ++f.uninit[read];
  }
}

void report_coverage(Report& report, const pdp::Switch& sw, const core::NetSeerConfig& config,
                     const Folded& f, const ExecNotes& notes) {
  report.mark_pass(kPassCoverage);
  char buf[240];
  if (notes.truncated) {
    std::snprintf(buf, sizeof(buf),
                  "path enumeration truncated at %zu paths — coverage cannot be proven for "
                  "this deployed state",
                  notes.paths);
    report.add(make(Severity::kError, kPassCoverage, sw, "executor", buf,
                    static_cast<double>(notes.paths)));
    return;
  }
  for (const auto& [key, count] : f.silent) {
    const auto [reason, stage] = key;
    std::string component = "path.";
    component += pdp::to_string(stage);
    if (reason == pdp::DropReason::kNone) {
      std::snprintf(buf, sizeof(buf),
                    "%zu reachable path(s) where hardware discards the packet with no "
                    "emission point crossed — losses in this state are invisible to NetSeer "
                    "(the §3.7 malfunction class)",
                    count);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "%zu reachable drop path(s) with reason %s cross no event-emission "
                    "point — a false negative by construction",
                    count, pdp::to_string(reason));
    }
    report.add(make(Severity::kError, kPassCoverage, sw, std::move(component), buf,
                    static_cast<double>(count)));
  }
  for (const auto& [port, count] : f.blackholes) {
    std::snprintf(buf, sizeof(buf),
                  "%zu reachable path(s) forward into port %u, which is up but unwired: the "
                  "frame is enqueued and never transmitted, with no drop point crossed — "
                  "silent loss",
                  count, port);
    report.add(make(Severity::kError, kPassCoverage, sw, "path.blackhole", buf,
                    static_cast<double>(count), static_cast<double>(port)));
  }
  if (!config.monitored_prefixes.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "partial deployment: %zu monitored prefix(es) configured — drops of "
                  "unmonitored flows are recovered but not reported, so zero-FN holds only "
                  "for monitored traffic",
                  config.monitored_prefixes.size());
    report.add(make(Severity::kWarning, kPassCoverage, sw, "deploy.monitored_prefixes", buf,
                    static_cast<double>(config.monitored_prefixes.size())));
  }
}

void report_duplicate(Report& report, const pdp::Switch& sw, const Folded& f) {
  report.mark_pass(kPassDuplicate);
  char buf[240];
  for (const auto& [points, count] : f.doubles) {
    std::snprintf(buf, sizeof(buf),
                  "%zu reachable path(s) cross two emission points (%s then %s): the same "
                  "packet is reported twice before dedup — a false positive the CPU cannot "
                  "reconcile",
                  count, points.first.c_str(), points.second.c_str());
    report.add(make(Severity::kError, kPassDuplicate, sw, points.second, buf,
                    static_cast<double>(count), 1.0));
  }
  for (const auto& [point, count] : f.spurious) {
    std::snprintf(buf, sizeof(buf),
                  "emission point %s fires on %zu path(s) where the packet is delivered or "
                  "consumed — events reported for packets that were never lost",
                  point.c_str(), count);
    report.add(make(Severity::kError, kPassDuplicate, sw, point, buf,
                    static_cast<double>(count)));
  }
}

void report_reachability(Report& report, const pdp::Switch& sw, const ExecNotes& notes) {
  report.mark_pass(kPassReach);
  char buf[240];
  const auto& entries = sw.routes().entries();
  for (const int index : notes.dead_lpm_entries) {
    const auto& entry = entries[static_cast<std::size_t>(index)];
    std::snprintf(buf, sizeof(buf),
                  "LPM entry %s is dead: every address it covers is claimed by "
                  "longer-prefix entries, so no packet can ever match it",
                  entry.prefix.to_string().c_str());
    report.add(make(Severity::kWarning, kPassReach, sw, "lpm." + entry.prefix.to_string(),
                    buf));
  }
  for (const int index : notes.corrupted_lpm_entries) {
    const auto& entry = entries[static_cast<std::size_t>(index)];
    std::snprintf(buf, sizeof(buf),
                  "LPM entry %s is parity-corrupted and skipped by lookups: its flows now "
                  "take the route-miss drop path (covered, but a service outage)",
                  entry.prefix.to_string().c_str());
    report.add(make(Severity::kWarning, kPassReach, sw, "lpm." + entry.prefix.to_string(),
                    buf));
  }
  for (const std::uint16_t rule_id : notes.dead_acl_rules) {
    std::snprintf(buf, sizeof(buf),
                  "ACL rule %u is unreachable on every enumerated path (shadowed by an "
                  "earlier rule or outside all routed destinations)",
                  rule_id);
    report.add(make(Severity::kWarning, kPassReach, sw, "acl.rule." + std::to_string(rule_id),
                    buf));
  }
  if (notes.admit_unreachable) {
    std::snprintf(buf, sizeof(buf),
                  "MMU queue capacity %lld B is below the %u B minimum frame: no packet can "
                  "ever be admitted — forwarding is structurally impossible",
                  static_cast<long long>(sw.config().mmu.queue_capacity_bytes),
                  packet::kMinFrameBytes);
    report.add(make(Severity::kWarning, kPassReach, sw, "mmu.capacity", buf,
                    static_cast<double>(sw.config().mmu.queue_capacity_bytes),
                    static_cast<double>(packet::kMinFrameBytes)));
  }
}

void report_metadata(Report& report, const pdp::Switch& sw, const Folded& f) {
  report.mark_pass(kPassMeta);
  char buf[240];
  for (const auto& [read, count] : f.uninit) {
    std::snprintf(buf, sizeof(buf),
                  "uninitialized metadata read on %zu reachable path(s): %s — the consumer "
                  "observes a stale or sentinel value",
                  count, read.c_str());
    report.add(make(Severity::kError, kPassMeta, sw, "meta." + read, buf,
                    static_cast<double>(count)));
  }
}

void report_capacity(Report& report, const pdp::Switch& sw, const core::NetSeerConfig& config,
                     const VerifyOptions& options, SymbolicSummary& summary) {
  report.mark_pass(kPassCapacity);
  char buf[240];
  const Assumptions& a = options.assumptions;

  // The structural bound assumes `event_fraction` of line-rate traffic is
  // eventful. The path-sensitive bound is a theorem: every enumerated
  // path crosses at most max_emissions_per_packet emission points, and
  // every event packet crosses the internal port, whose rate caps the
  // event stream no matter what traffic does.
  summary.structural_event_rate_eps = worst_case_event_rate_eps(sw, a);
  double per_packet_rate = summary.structural_event_rate_eps;
  if (!config.internal_port_rate.is_zero()) {
    const double internal_ceiling_eps =
        static_cast<double>(config.internal_port_rate.bits_per_second()) /
        (8.0 * static_cast<double>(a.event_pkt_bytes));
    per_packet_rate = std::min(per_packet_rate, internal_ceiling_eps);
  }
  summary.path_sensitive_event_rate_eps =
      per_packet_rate * static_cast<double>(summary.max_emissions_per_packet);
  const double rate = summary.path_sensitive_event_rate_eps;

  if (summary.max_emissions_per_packet > 1) {
    std::snprintf(buf, sizeof(buf),
                  "a single packet can trigger up to %d emissions, inflating the worst-case "
                  "event rate to %.3g events/s — downstream drains are checked against the "
                  "inflated rate",
                  summary.max_emissions_per_packet, rate);
    report.add(make(Severity::kWarning, kPassCapacity, sw, "emissions", buf,
                    static_cast<double>(summary.max_emissions_per_packet), 1.0));
  }

  const auto& cebp = config.cebp;
  if (cebp.num_cebps >= 1 && cebp.batch_size >= 1 && cebp.recirc_latency > 0) {
    const double drain = core::capacity::cebp_throughput_eps(cebp, cebp.batch_size);
    if (rate > drain) {
      std::snprintf(buf, sizeof(buf),
                    "path-sensitive worst-case event rate %.3g events/s exceeds the CEBP "
                    "drain %.3g events/s — the event stack overflows on the proven "
                    "worst-case path mix",
                    rate, drain);
      report.add(make(Severity::kError, kPassCapacity, sw, "cebp", buf, rate, drain));
    }
    const double flush_burst = rate * static_cast<double>(cebp.flush_latency) / 1e9;
    if (config.event_stack_capacity > 0 &&
        flush_burst > static_cast<double>(config.event_stack_capacity)) {
      std::snprintf(buf, sizeof(buf),
                    "event stack (%zu entries) cannot absorb the %.0f events arriving during "
                    "one CEBP flush window at the path-sensitive rate",
                    config.event_stack_capacity, flush_burst);
      report.add(make(Severity::kError, kPassCapacity, sw, "batch.stack", buf, flush_burst,
                      static_cast<double>(config.event_stack_capacity)));
    }
    const double pcie_drain = core::PcieChannel::throughput_eps(
        config.pcie, static_cast<std::size_t>(cebp.batch_size));
    if (rate > pcie_drain) {
      std::snprintf(buf, sizeof(buf),
                    "path-sensitive worst-case event rate %.3g events/s exceeds the PCIe "
                    "drain %.3g events/s at batch size %d",
                    rate, pcie_drain, cebp.batch_size);
      report.add(make(Severity::kError, kPassCapacity, sw, "pcie", buf, rate, pcie_drain));
    }
  }
}

}  // namespace

SymbolicSummary check_symbolic(Report& report, const pdp::Switch& sw,
                               const core::NetSeerConfig& config, const VerifyOptions& options,
                               const SymbolicOptions& symbolic) {
  const pdp::PipelineView view = pdp::make_pipeline_view(sw);
  Folded folded;
  const ExecNotes notes = enumerate_paths(
      view, config, symbolic, [&folded](const SymbolicPath& path) { fold_path(folded, path); });

  report_coverage(report, sw, config, folded, notes);
  report_duplicate(report, sw, folded);
  report_reachability(report, sw, notes);
  report_metadata(report, sw, folded);
  report_capacity(report, sw, config, options, folded.summary);
  return folded.summary;
}

}  // namespace netseer::verify
