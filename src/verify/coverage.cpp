#include "verify/coverage.h"

#include <algorithm>
#include <unordered_set>

#include "pdp/switch.h"

namespace netseer::verify {

std::vector<CoverageClass> coverage_classes(const Report& report,
                                            const SymbolicSummary& summary) {
  std::vector<CoverageClass> classes;
  std::unordered_set<std::string> seen;
  const auto add = [&](std::string name, bool silent, std::string source) {
    if (!seen.insert(name).second) return;
    classes.push_back({std::move(name), silent, std::move(source)});
  };

  // Reachable drop reasons: every one of these produces flow events at
  // an emission point, so a runtime detector CAN observe it — the
  // cross-check demands that one actually does.
  for (std::size_t r = 1; r < summary.reason_reachable.size(); ++r) {
    if (!summary.reason_reachable[r]) continue;
    add(std::string("drop.") + pdp::to_string(static_cast<pdp::DropReason>(r)), false,
        "symbolic.summary");
  }

  // Silent loss and dead deployed state, from the symbolic diagnostics.
  for (const Diagnostic& d : report.diagnostics()) {
    const bool silent_loss =
        d.pass == "symbolic.coverage" && d.component.starts_with("path.");
    const bool dead_state = d.pass == "symbolic.reachability" &&
                            (d.component.starts_with("lpm.") ||
                             d.component.starts_with("acl.rule."));
    if (silent_loss || dead_state) add(d.component, true, d.pass);
  }

  std::sort(classes.begin(), classes.end(),
            [](const CoverageClass& a, const CoverageClass& b) { return a.name < b.name; });
  return classes;
}

std::vector<CoverageClass> collect_coverage(Report& report,
                                            const std::vector<pdp::Switch*>& switches,
                                            const core::NetSeerConfig& config,
                                            const VerifyOptions& options,
                                            const SymbolicOptions& symbolic) {
  SymbolicSummary merged;
  for (pdp::Switch* sw : switches) {
    const SymbolicSummary s = check_symbolic(report, *sw, config, options, symbolic);
    for (std::size_t r = 0; r < merged.reason_reachable.size(); ++r) {
      merged.reason_reachable[r] = merged.reason_reachable[r] || s.reason_reachable[r];
    }
  }
  return coverage_classes(report, merged);
}

std::string render_coverage_json(const std::vector<CoverageClass>& classes) {
  std::string out = "{\"classes\":[";
  bool first = true;
  for (const CoverageClass& c : classes) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += c.name;
    out += "\",\"silent\":";
    out += c.silent ? "true" : "false";
    out += ",\"source\":\"";
    out += c.source;
    out += "\"}";
  }
  out += "]}\n";
  return out;
}

}  // namespace netseer::verify
