#pragma once

#include <cstdint>
#include <string>

#include "net/node.h"
#include "sim/simulator.h"
#include "util/rate.h"
#include "util/rng.h"

namespace netseer::net {

/// Why a link mangled a packet (reported to the LinkObserver only —
/// the data plane has no visibility, which is the whole point of §3.3).
enum class LinkFault : std::uint8_t {
  kSilentDrop,   // frame vanished (connector / transmitter failure)
  kCorruption,   // frame arrives with a broken FCS
};

/// Ground-truth observation hook for link faults. Monitors must NOT use
/// this — it exists so experiments can score coverage.
class LinkObserver {
 public:
  virtual ~LinkObserver() = default;
  virtual void on_link_fault(const packet::Packet& pkt, util::NodeId from, util::NodeId to,
                             LinkFault fault) = 0;
};

/// Fault injection model for one link direction. Faults can be steady
/// (Bernoulli per packet) or bursty (a Gilbert-Elliott bad state during
/// which the burst probabilities apply instead).
struct LinkFaultModel {
  double drop_prob = 0.0;     // steady-state silent drop probability
  double corrupt_prob = 0.0;  // steady-state corruption probability

  // Gilbert-Elliott burstiness. Probability of entering the bad state per
  // packet, of leaving it per packet, and the bad-state fault rates.
  double burst_enter_prob = 0.0;
  double burst_exit_prob = 0.1;
  double burst_drop_prob = 0.0;
  double burst_corrupt_prob = 0.0;

  [[nodiscard]] bool is_lossless() const {
    return drop_prob == 0.0 && corrupt_prob == 0.0 && burst_enter_prob == 0.0;
  }
};

/// One direction of a cable: after `delay`, delivers to `peer` at
/// `peer_port`. Serialization time is paid by the transmitting port, so a
/// Link is purely propagation plus fault injection.
class Link : public PacketSink {
 public:
  Link(sim::Simulator& sim, util::Rng rng, Node& peer, util::PortId peer_port,
       util::SimDuration delay, util::NodeId from_node)
      : sim_(sim), rng_(rng), peer_(peer), peer_port_(peer_port), delay_(delay),
        from_node_(from_node) {}

  void set_fault_model(const LinkFaultModel& model) { faults_ = model; }
  [[nodiscard]] const LinkFaultModel& fault_model() const { return faults_; }
  void set_observer(LinkObserver* observer) { observer_ = observer; }

  /// Administrative state: a downed link discards everything (both the
  /// topology and the transmitter usually know, but packets already in
  /// flight are lost).
  void set_up(bool up) { up_ = up; }
  [[nodiscard]] bool is_up() const { return up_; }

  [[nodiscard]] util::SimDuration delay() const { return delay_; }
  [[nodiscard]] Node& peer() const { return peer_; }
  [[nodiscard]] util::PortId peer_port() const { return peer_port_; }
  /// NodeId of the transmitting end (the partitioner walks links as
  /// (from_node, peer) edges to find cut links and the lookahead bound).
  [[nodiscard]] util::NodeId from_node() const { return from_node_; }

  [[nodiscard]] std::uint64_t packets_carried() const { return carried_; }
  [[nodiscard]] std::uint64_t bytes_carried() const { return bytes_carried_; }
  [[nodiscard]] std::uint64_t packets_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t packets_corrupted() const { return corrupted_; }

  void send(packet::Packet&& pkt) override;

 private:
  [[nodiscard]] LinkFault roll_fault();
  [[nodiscard]] bool roll(double steady, double burst) {
    return rng_.chance(in_burst_ ? burst : steady);
  }

  sim::Simulator& sim_;
  util::Rng rng_;
  Node& peer_;
  util::PortId peer_port_;
  util::SimDuration delay_;
  util::NodeId from_node_;
  LinkFaultModel faults_{};
  LinkObserver* observer_ = nullptr;
  bool up_ = true;
  bool in_burst_ = false;
  std::uint64_t carried_ = 0;
  std::uint64_t bytes_carried_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t corrupted_ = 0;
};

}  // namespace netseer::net
