#include "net/pcap.h"

namespace netseer::net {

namespace {
constexpr std::uint32_t kMagic = 0xa1b2c3d4;  // microsecond timestamps
constexpr std::uint32_t kLinkTypeEthernet = 1;
constexpr std::uint32_t kSnapLen = 65535;
}  // namespace

PcapWriter::PcapWriter(std::ostream& out) : out_(out) {
  put_u32(kMagic);
  put_u16(2);  // version 2.4
  put_u16(4);
  put_u32(0);  // thiszone
  put_u32(0);  // sigfigs
  put_u32(kSnapLen);
  put_u32(kLinkTypeEthernet);
}

void PcapWriter::write(const packet::Packet& pkt, util::SimTime at) {
  const auto bytes = packet::wire::serialize(pkt);
  put_u32(static_cast<std::uint32_t>(at / util::kSecond));
  put_u32(static_cast<std::uint32_t>((at % util::kSecond) / util::kMicrosecond));
  put_u32(static_cast<std::uint32_t>(bytes.size()));  // captured
  put_u32(static_cast<std::uint32_t>(bytes.size()));  // original
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  ++frames_;
}

void PcapWriter::put_u16(std::uint16_t v) {
  // Native-order header fields per the classic pcap format; write
  // little-endian explicitly for portability.
  const char raw[2] = {static_cast<char>(v & 0xff), static_cast<char>(v >> 8)};
  out_.write(raw, 2);
}

void PcapWriter::put_u32(std::uint32_t v) {
  const char raw[4] = {static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
                       static_cast<char>((v >> 16) & 0xff), static_cast<char>(v >> 24)};
  out_.write(raw, 4);
}

}  // namespace netseer::net
