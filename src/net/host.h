#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/link.h"
#include "net/node.h"
#include "net/tx_port.h"
#include "sim/simulator.h"

namespace netseer::net {

class Host;

/// Application attached to a host (traffic generator, RPC client/server,
/// probe responder...). Receives every non-control packet addressed to
/// the host.
class HostApp {
 public:
  virtual ~HostApp() = default;
  virtual void on_receive(Host& host, const packet::Packet& pkt) = 0;
};

/// NIC-level extension hooks — where NetSeer's inter-switch drop
/// detection modules run at the network edge (§4 "NIC"). on_rx returning
/// false consumes the packet (e.g. a loss notification addressed to the
/// NIC itself).
class NicAgent {
 public:
  virtual ~NicAgent() = default;
  virtual void on_tx(Host& host, packet::Packet& pkt) = 0;
  [[nodiscard]] virtual bool on_rx(Host& host, packet::Packet& pkt) = 0;
};

/// An end host with one NIC port. It transmits at NIC line rate, honors
/// PFC pause frames, auto-answers probes (so a Pingmesh-style prober
/// works against any host), discards corrupted frames at the MAC, and
/// hands everything else to the attached apps.
class Host : public Node {
 public:
  Host(sim::Simulator& sim, util::NodeId id, std::string name, packet::Ipv4Addr addr,
       util::BitRate nic_rate);

  [[nodiscard]] packet::Ipv4Addr addr() const { return addr_; }
  [[nodiscard]] packet::MacAddr mac() const { return packet::MacAddr::from_node_id(id()); }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  void set_uplink(Link* link) { tx_.set_out(link); }
  void add_app(HostApp* app) { apps_.push_back(app); }
  void set_nic_agent(NicAgent* agent) { nic_agent_ = agent; }

  /// Queue a packet for transmission. Fills in source MAC/IP defaults if
  /// unset and maps DSCP to the egress priority queue.
  void send(packet::Packet&& pkt);

  void receive(packet::Packet&& pkt, util::PortId in_port) override;

  [[nodiscard]] TxPort& nic() { return tx_; }

  // Counters.
  [[nodiscard]] std::uint64_t rx_packets() const { return rx_packets_; }
  [[nodiscard]] std::uint64_t rx_bytes() const { return rx_bytes_; }
  [[nodiscard]] std::uint64_t rx_corrupt_discards() const { return rx_corrupt_; }

 private:
  void reply_to_probe(const packet::Packet& probe);

  sim::Simulator& sim_;
  packet::Ipv4Addr addr_;
  TxPort tx_;
  std::vector<HostApp*> apps_;
  NicAgent* nic_agent_ = nullptr;
  std::uint64_t rx_packets_ = 0;
  std::uint64_t rx_bytes_ = 0;
  std::uint64_t rx_corrupt_ = 0;
};

/// Map a packet's DSCP to its egress priority queue: the top three DSCP
/// bits select the class, matching common datacenter QoS configs.
[[nodiscard]] inline util::QueueId queue_for(const packet::Packet& pkt) {
  if (pkt.kind == packet::PacketKind::kLossNotify) return 7;  // §3.3: high priority
  if (!pkt.ip) return 7;                                      // control frames
  return static_cast<util::QueueId>((pkt.ip->dscp >> 3) & 0x7);
}

}  // namespace netseer::net
