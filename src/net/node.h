#pragma once

#include <string>

#include "packet/packet.h"
#include "util/ids.h"

namespace netseer::net {

/// Anything that can accept a packet (a link endpoint, a port, a sink in a
/// test). Decouples senders from the concrete receiver type.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void send(packet::Packet&& pkt) = 0;
};

/// A device attached to the network: switch, host, or collector.
/// Frames arrive via receive() with the local port they came in on.
class Node {
 public:
  Node(util::NodeId id, std::string name) : id_(id), name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] util::NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  virtual void receive(packet::Packet&& pkt, util::PortId in_port) = 0;

 private:
  util::NodeId id_;
  std::string name_;
};

}  // namespace netseer::net
