#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/simulator.h"
#include "util/ids.h"
#include "util/rng.h"

namespace netseer::net {

/// The out-of-band management network between switch CPUs and the backend
/// storage. Datagram semantics: fixed delay, optional loss — the reliable
/// transport in core/ is responsible for retransmission, exactly like the
/// paper's TCP session from switch CPU to backend (§3.6).
///
/// Message type T must be copyable; delivery invokes the destination's
/// registered handler after `delay`.
template <typename T>
class MgmtChannel {
 public:
  using Handler = std::function<void(util::NodeId from, const T& msg)>;

  MgmtChannel(sim::Simulator& sim, util::Rng rng, util::SimDuration delay, double loss_prob)
      : sim_(sim), rng_(rng), delay_(delay), loss_prob_(loss_prob) {}

  void register_endpoint(util::NodeId id, Handler handler) {
    handlers_[id] = std::move(handler);
  }

  /// Send `msg`; silently dropped with probability loss_prob or when the
  /// destination is unknown.
  void send(util::NodeId from, util::NodeId to, T msg) {
    ++sent_;
    if (rng_.chance(loss_prob_)) {
      ++lost_;
      return;
    }
    (void)sim_.schedule_after(delay_, [this, from, to, msg = std::move(msg)]() {
      auto it = handlers_.find(to);
      if (it != handlers_.end()) it->second(from, msg);
    });
  }

  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_lost() const { return lost_; }
  [[nodiscard]] util::SimDuration delay() const { return delay_; }

 private:
  sim::Simulator& sim_;
  util::Rng rng_;
  util::SimDuration delay_;
  double loss_prob_;
  std::unordered_map<util::NodeId, Handler> handlers_;
  std::uint64_t sent_ = 0;
  std::uint64_t lost_ = 0;
};

}  // namespace netseer::net
