#include "net/link.h"

#include "packet/pool.h"

namespace netseer::net {

void Link::send(packet::Packet&& pkt) {
  if (!up_) {
    ++dropped_;
    if (observer_) observer_->on_link_fault(pkt, from_node_, peer_.id(), LinkFault::kSilentDrop);
    return;
  }

  // Gilbert-Elliott state transition, evaluated per packet.
  if (in_burst_) {
    if (rng_.chance(faults_.burst_exit_prob)) in_burst_ = false;
  } else if (faults_.burst_enter_prob > 0.0) {
    if (rng_.chance(faults_.burst_enter_prob)) in_burst_ = true;
  }

  if (roll(faults_.drop_prob, faults_.burst_drop_prob)) {
    ++dropped_;
    if (observer_) observer_->on_link_fault(pkt, from_node_, peer_.id(), LinkFault::kSilentDrop);
    return;
  }
  if (roll(faults_.corrupt_prob, faults_.burst_corrupt_prob)) {
    ++corrupted_;
    pkt.corrupted = true;
    if (observer_) observer_->on_link_fault(pkt, from_node_, peer_.id(), LinkFault::kCorruption);
    // Corrupted frames still propagate; the downstream MAC discards them.
  }

  ++carried_;
  bytes_carried_ += pkt.wire_bytes();
  // The frame rides in a pooled slot so the hop capture (this + handle)
  // stays inside the Task's inline buffer — no heap traffic per hop.
  (void)sim_.schedule_after(delay_,
                      [this, slot = packet::Pool::local().acquire(std::move(pkt))]() mutable {
                        peer_.receive(slot.take(), peer_port_);
                      });
}

}  // namespace netseer::net
