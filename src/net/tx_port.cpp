#include "net/tx_port.h"

#include "packet/pool.h"

namespace netseer::net {

void TxPort::set_up(bool up) {
  up_ = up;
  if (up_) maybe_start_transmission();
}

void TxPort::enqueue(packet::Packet&& pkt, util::QueueId queue) {
  pkt.meta.enqueue_time = sim_.now();
  pkt.meta.queue = queue;
  queue_bytes_[queue] += pkt.wire_bytes();
  queues_[queue].push_back(std::move(pkt));
  maybe_start_transmission();
}

std::int64_t TxPort::total_bytes() const {
  std::int64_t total = 0;
  for (auto b : queue_bytes_) total += b;
  return total;
}

void TxPort::apply_pause(util::QueueId queue, std::uint16_t quanta) {
  if (quanta == 0) {
    paused_until_[queue] = 0;
    maybe_start_transmission();
    return;
  }
  // One quantum is 512 bit-times at the port rate.
  const util::SimDuration pause_time =
      rate_.is_zero() ? 0 : rate_.serialization_delay(static_cast<std::int64_t>(quanta) * 64);
  paused_until_[queue] = sim_.now() + pause_time;
  // Re-kick the scheduler when the pause lapses (a RESUME may come first).
  (void)sim_.schedule_at(paused_until_[queue], [this] { maybe_start_transmission(); });
}

bool TxPort::is_paused(util::QueueId queue) const {
  return paused_until_[queue] > sim_.now();
}

int TxPort::pick_queue() const {
  // Strict priority, highest class first.
  for (int q = util::kNumQueues - 1; q >= 0; --q) {
    if (!queues_[q].empty() && !is_paused(static_cast<util::QueueId>(q))) return q;
  }
  return -1;
}

void TxPort::maybe_start_transmission() {
  if (busy_ || !up_ || out_ == nullptr) return;
  const int q = pick_queue();
  if (q < 0) return;

  packet::Packet pkt = std::move(queues_[q].front());
  queues_[q].pop_front();
  const std::uint32_t bytes = pkt.wire_bytes();
  queue_bytes_[q] -= bytes;

  if (dequeue_hook_) {
    dequeue_hook_(pkt, static_cast<util::QueueId>(q), sim_.now() - pkt.meta.enqueue_time);
  }

  busy_ = true;
  const util::SimDuration ser = rate_.serialization_delay(pkt.wire_bytes());
  ++tx_packets_;
  tx_bytes_ += pkt.wire_bytes();
  (void)sim_.schedule_after(ser,
                      [this, slot = packet::Pool::local().acquire(std::move(pkt))]() mutable {
                        busy_ = false;
                        if (out_ != nullptr && up_) out_->send(slot.take());
                        maybe_start_transmission();
                      });
}

}  // namespace netseer::net
