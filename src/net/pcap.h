#pragma once

#include <ostream>

#include "packet/wire.h"
#include "util/time.h"

namespace netseer::net {

/// Classic libpcap file writer (magic 0xa1b2c3d4, LINKTYPE_ETHERNET).
/// Frames are rendered through the byte-exact wire serializer, so dumps
/// open in Wireshark/tcpdump with valid checksums — including NetSeer's
/// sequence shims (ethertype 0x88b5) and PFC frames.
class PcapWriter {
 public:
  explicit PcapWriter(std::ostream& out);

  /// Append one frame with the given simulated timestamp.
  void write(const packet::Packet& pkt, util::SimTime at);

  [[nodiscard]] std::size_t frames_written() const { return frames_; }

 private:
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);

  std::ostream& out_;
  std::size_t frames_ = 0;
};

}  // namespace netseer::net
