#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>

#include "net/node.h"
#include "sim/simulator.h"
#include "util/rate.h"

namespace netseer::net {

/// An output port: eight priority queues, a strict-priority scheduler, a
/// line-rate transmitter, and 802.1Qbb per-class pause state. Used both by
/// switch egress ports (behind the MMU's admission control) and by host
/// NICs (directly).
class TxPort {
 public:
  /// Called when a packet is dequeued for transmission, before it goes on
  /// the wire — the egress-pipeline attachment point. `queue_delay` is the
  /// residence time in the queue.
  using DequeueHook =
      std::function<void(packet::Packet&, util::QueueId, util::SimDuration queue_delay)>;

  TxPort(sim::Simulator& sim, util::BitRate rate) : sim_(sim), rate_(rate) {}

  void set_out(PacketSink* out) { out_ = out; }
  [[nodiscard]] PacketSink* out() const { return out_; }
  void set_dequeue_hook(DequeueHook hook) { dequeue_hook_ = std::move(hook); }

  void set_up(bool up);
  [[nodiscard]] bool is_up() const { return up_; }

  [[nodiscard]] util::BitRate rate() const { return rate_; }

  /// Unconditional enqueue. Admission control (MMU limits) is the
  /// caller's job; the port itself never drops.
  void enqueue(packet::Packet&& pkt, util::QueueId queue);

  /// Bytes currently queued in `queue`.
  [[nodiscard]] std::int64_t queue_bytes(util::QueueId queue) const {
    return queue_bytes_[queue];
  }
  [[nodiscard]] std::size_t queue_depth(util::QueueId queue) const {
    return queues_[queue].size();
  }
  [[nodiscard]] std::int64_t total_bytes() const;

  /// PFC pause handling (applied by the owner when a pause frame arrives).
  /// quanta are in 512-bit times at the port rate; 0 resumes.
  void apply_pause(util::QueueId queue, std::uint16_t quanta);
  [[nodiscard]] bool is_paused(util::QueueId queue) const;

  [[nodiscard]] std::uint64_t tx_packets() const { return tx_packets_; }
  [[nodiscard]] std::uint64_t tx_bytes() const { return tx_bytes_; }

 private:
  void maybe_start_transmission();
  [[nodiscard]] int pick_queue() const;

  sim::Simulator& sim_;
  util::BitRate rate_;
  PacketSink* out_ = nullptr;
  DequeueHook dequeue_hook_;
  std::array<std::deque<packet::Packet>, util::kNumQueues> queues_;
  std::array<std::int64_t, util::kNumQueues> queue_bytes_{};
  std::array<util::SimTime, util::kNumQueues> paused_until_{};
  bool up_ = true;
  bool busy_ = false;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t tx_bytes_ = 0;
};

}  // namespace netseer::net
