#include "net/host.h"

namespace netseer::net {

Host::Host(sim::Simulator& sim, util::NodeId id, std::string name, packet::Ipv4Addr addr,
           util::BitRate nic_rate)
    : Node(id, std::move(name)), sim_(sim), addr_(addr), tx_(sim, nic_rate) {}

void Host::send(packet::Packet&& pkt) {
  if (pkt.eth.src == packet::MacAddr{}) pkt.eth.src = mac();
  if (pkt.ip && pkt.ip->src == packet::Ipv4Addr{}) pkt.ip->src = addr_;
  pkt.meta.origin_node = id();
  pkt.meta.created_time = sim_.now();
  if (nic_agent_) nic_agent_->on_tx(*this, pkt);
  const util::QueueId queue = queue_for(pkt);
  tx_.enqueue(std::move(pkt), queue);
}

void Host::receive(packet::Packet&& pkt, util::PortId in_port) {
  pkt.meta.ingress_port = in_port;
  pkt.meta.ingress_time = sim_.now();

  // MAC layer: FCS failure discards the frame before anything sees it.
  if (pkt.corrupted) {
    ++rx_corrupt_;
    return;
  }

  if (nic_agent_ && !nic_agent_->on_rx(*this, pkt)) return;

  // PFC pause aimed at the host NIC.
  if (pkt.kind == packet::PacketKind::kPfc && pkt.pfc) {
    for (std::uint8_t cls = 0; cls < util::kNumQueues; ++cls) {
      if (pkt.pfc->class_enable & (1u << cls)) tx_.apply_pause(cls, pkt.pfc->pause_quanta[cls]);
    }
    return;
  }

  ++rx_packets_;
  rx_bytes_ += pkt.wire_bytes();

  if (pkt.kind == packet::PacketKind::kProbe && pkt.ip && pkt.ip->dst == addr_) {
    reply_to_probe(pkt);
    return;
  }

  for (auto* app : apps_) app->on_receive(*this, pkt);
}

void Host::reply_to_probe(const packet::Packet& probe) {
  packet::Packet reply;
  reply.uid = packet::next_packet_uid();
  reply.kind = packet::PacketKind::kProbeReply;
  reply.ip = packet::Ipv4Header{};
  reply.ip->src = addr_;
  reply.ip->dst = probe.ip->src;
  reply.ip->proto = probe.ip->proto;
  reply.ip->dscp = probe.ip->dscp;
  reply.l4.sport = probe.l4.dport;
  reply.l4.dport = probe.l4.sport;
  reply.l4.seq = probe.l4.seq;  // echo the probe sequence for RTT matching
  reply.payload_bytes = probe.payload_bytes;
  reply.control = probe.control;  // echo probe payload (send timestamp etc.)
  send(std::move(reply));
}

}  // namespace netseer::net
