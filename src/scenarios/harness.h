#pragma once

#include <memory>
#include <optional>
#include <typeindex>
#include <vector>

#include "backend/collector.h"
#include "core/netseer_app.h"
#include "core/nic_agent.h"
#include "fabric/fat_tree.h"
#include "monitors/everflow.h"
#include "monitors/ground_truth.h"
#include "monitors/netsight.h"
#include "monitors/pingmesh.h"
#include "monitors/sampling.h"
#include "monitors/snmp.h"
#include "store/store.h"
#include "telemetry/metrics.h"
#include "traffic/generator.h"
#include "verify/verifier.h"

namespace netseer::scenarios {

struct HarnessOptions {
  fabric::TestbedConfig topo{};
  core::NetSeerConfig netseer{};
  std::uint64_t seed = 1;

  bool enable_netseer = true;
  bool enable_netsight = false;
  /// Sampling denominators to instantiate (e.g. {10, 100, 1000}).
  std::vector<std::uint32_t> sampling_rates;
  bool enable_everflow = false;
  monitors::EverflowMonitor::Config everflow{};
  bool enable_pingmesh = false;
  util::SimDuration pingmesh_interval = util::seconds(1);
  bool enable_snmp = false;
  util::SimDuration snmp_interval = util::seconds(30);

  /// Backend store placement and tuning. Leave `store.dir` empty for the
  /// default in-memory run; set it (e.g. via --store-dir) to make every
  /// collected event durable under that directory.
  store::StoreOptions store{};
  /// Cadence of the store's background maintenance task (compaction,
  /// retention, WAL GC) while run_and_settle is driving the simulation.
  /// Off by default: the periodic task holds the event queue open to the
  /// full run length, which shifts the drain-phase retransmit timers and
  /// with them the golden end-to-end signatures. Durable runs (e.g.
  /// netseer_sim --store-dir) turn it on.
  util::SimDuration store_maintenance_interval = 0;
};

/// The paper's instrumented testbed (§5): the 10-switch fat-tree with
/// ground truth everywhere, NetSeer on every switch and NIC, the baseline
/// monitors on demand, and a backend collector. Agent order matters and
/// is handled here: ground truth first, baselines next, NetSeer last.
class Harness {
 public:
  explicit Harness(const HarnessOptions& options);

  [[nodiscard]] fabric::Network& net() { return *testbed_.net; }
  [[nodiscard]] sim::Simulator& simulator() { return testbed_.net->simulator(); }
  [[nodiscard]] fabric::Testbed& testbed() { return testbed_; }
  [[nodiscard]] const HarnessOptions& options() const { return options_; }

  [[nodiscard]] monitors::GroundTruth& truth() { return *truth_; }
  [[nodiscard]] store::FlowEventStore& store() { return *store_; }
  [[nodiscard]] const store::FlowEventStore& store() const { return *store_; }
  [[nodiscard]] core::NetSeerApp& app(std::size_t switch_index) { return *apps_[switch_index]; }
  [[nodiscard]] std::size_t app_count() const { return apps_.size(); }
  [[nodiscard]] core::NetSeerApp* app_for(util::NodeId switch_id);

  /// Typed monitor registry. Every baseline monitor the options enabled
  /// is registered under its concrete type; look one up with
  /// `harness.monitor<monitors::NetSightMonitor>()` (nullptr when the
  /// option was off). Monitors that come in several flavours —
  /// SamplingMonitor, one instance per 1/N denominator — take the
  /// flavour as the key: `harness.monitor<monitors::SamplingMonitor>(100)`.
  template <typename M>
  [[nodiscard]] M* monitor(std::uint32_t key = 0) const {
    for (const auto& entry : monitors_) {
      if (entry.type == std::type_index(typeid(M)) && entry.key == key) {
        return static_cast<M*>(entry.ptr);
      }
    }
    return nullptr;
  }

  /// Attach Poisson workload generators to every host, all-to-all.
  void add_workload(const traffic::GeneratorConfig& config);
  [[nodiscard]] const std::vector<std::unique_ptr<traffic::FlowGenerator>>& generators() const {
    return generators_;
  }
  [[nodiscard]] std::uint64_t total_generated_bytes() const;

  /// Run the simulation until `until`, then drain in-flight traffic and
  /// flush every NetSeer stage so backend totals reconcile.
  void run_and_settle(util::SimTime until);

  /// NetSeer's detected (node, flow, type) groups from the backend.
  [[nodiscard]] monitors::EventGroupSet netseer_groups(
      std::optional<core::EventType> type = {}) const;

  /// Fraction of `actual` groups present in `detected`.
  [[nodiscard]] static double coverage(const monitors::EventGroupSet& detected,
                                       const monitors::EventGroupSet& actual);

  /// Aggregate funnel stats over all switches (Fig. 13 numerators).
  [[nodiscard]] core::FunnelStats total_funnel() const;

  /// Statically verify the constructed deployment (resource fitting,
  /// stage hazards, recirculation termination, ACL shadowing, capacity
  /// proofs) without running it — the --verify[=strict] entry point of
  /// the experiment drivers. Reflects the CURRENT control-plane state,
  /// so a fault that installs ACL rules mid-run changes the result.
  [[nodiscard]] verify::Report verify_deployment(
      const verify::VerifyOptions& options = {}) const;

  /// Fold every layer's counters (switches, NetSeer apps, collector,
  /// store, simulator) into `registry` — the testbed-wide metrics
  /// snapshot behind every --metrics-out flag. Additive: safe to call
  /// once per harness across several harnesses sharing one registry.
  /// Includes each switch's Fig. 7 resource model, whose overflow
  /// counters let smoke runs assert the deployment never exceeded a
  /// chip budget.
  void collect_metrics(telemetry::Registry& registry) const;

  /// Wall-clock seconds spent inside run_and_settle so far.
  [[nodiscard]] double wall_seconds() const { return wall_seconds_; }

 private:
  struct MonitorEntry {
    std::type_index type;
    std::uint32_t key;
    void* ptr;
  };

  template <typename M>
  void register_monitor(M* instance, std::uint32_t key = 0) {
    monitors_.push_back(MonitorEntry{std::type_index(typeid(M)), key, instance});
  }

  HarnessOptions options_;
  fabric::Testbed testbed_;
  std::unique_ptr<monitors::GroundTruth> truth_;
  std::unique_ptr<core::ReportChannel> channel_;
  std::unique_ptr<store::FlowEventStore> store_;
  std::unique_ptr<backend::Collector> collector_;
  std::vector<std::unique_ptr<core::NetSeerApp>> apps_;
  std::vector<std::unique_ptr<core::NetSeerNicAgent>> nics_;
  std::unique_ptr<monitors::NetSightMonitor> netsight_;
  std::unique_ptr<monitors::NetSightMonitor::DeliveryTracker> delivery_;
  std::vector<std::pair<std::uint32_t, std::unique_ptr<monitors::SamplingMonitor>>> samplers_;
  std::unique_ptr<monitors::EverflowMonitor> everflow_;
  std::unique_ptr<monitors::PingmeshProber> pingmesh_;
  std::unique_ptr<monitors::SnmpMonitor> snmp_;
  std::vector<std::unique_ptr<traffic::FlowGenerator>> generators_;
  std::vector<MonitorEntry> monitors_;
  double wall_seconds_ = 0.0;
};

inline constexpr util::NodeId kCollectorId = 100000;

}  // namespace netseer::scenarios
