#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace netseer::telemetry {
class Registry;
}  // namespace netseer::telemetry

namespace netseer::scenarios {

/// The §5.1 "troubleshooting occasional SLA violations" study (Fig. 8b):
/// an RPC application runs over the testbed while application-side slow
/// periods and network faults (incast congestion, a lossy link window)
/// are injected. Each slow RPC is then attributed using three data
/// sources of increasing power:
///   host        — coarse host metrics only (the paper's 15 s counters,
///                 scaled to the simulation's metric window)
///   host+ping   — plus Pingmesh probe anomalies
///   host+netseer— plus backend flow events for exactly that RPC's flow
struct SlaBreakdown {
  double app = 0;      // attributed to the application
  double net = 0;      // attributed to the network
  double both = 0;     // both contributed
  double unknown = 0;  // unexplained

  [[nodiscard]] double explained() const { return app + net + both; }
};

struct SlaStudyResult {
  std::size_t total_rpcs = 0;
  std::size_t slow_rpcs = 0;
  SlaBreakdown host_only;
  SlaBreakdown host_pingmesh;
  SlaBreakdown host_netseer;
  /// Ground-truth composition of the slow RPCs, for validation.
  SlaBreakdown truth;
  /// Fraction of slow RPCs each source attributed to the same category
  /// as the ground truth ("explained" alone rewards confident guessing).
  double host_only_accuracy = 0;
  double host_pingmesh_accuracy = 0;
  double host_netseer_accuracy = 0;
};

struct SlaStudyConfig {
  std::uint64_t seed = 1;
  util::SimTime duration = util::milliseconds(60);
  /// RPC slower than this violates the SLA.
  util::SimDuration slow_threshold = util::milliseconds(1);
  /// Host metric aggregation window (the paper's 15 s, scaled).
  util::SimDuration metric_window = util::milliseconds(10);
  /// When non-null, the study folds its harness counters in after settling.
  telemetry::Registry* metrics = nullptr;
};

[[nodiscard]] SlaStudyResult run_sla_study(const SlaStudyConfig& config = {});

[[nodiscard]] std::string format_breakdown(const char* source, const SlaBreakdown& b);

}  // namespace netseer::scenarios
