#include "scenarios/sla.h"

#include <cstdio>
#include <memory>

#include "scenarios/harness.h"
#include "traffic/rpc.h"

namespace netseer::scenarios {

namespace {

struct Attribution {
  bool app = false;
  bool net = false;

  void count_into(SlaBreakdown& b) const {
    if (app && net) {
      b.both += 1;
    } else if (app) {
      b.app += 1;
    } else if (net) {
      b.net += 1;
    } else {
      b.unknown += 1;
    }
  }

  bool operator==(const Attribution&) const = default;
};

void normalize(SlaBreakdown& b, double total) {
  if (total <= 0) return;
  b.app /= total;
  b.net /= total;
  b.both /= total;
  b.unknown /= total;
}

}  // namespace

SlaStudyResult run_sla_study(const SlaStudyConfig& config) {
  HarnessOptions options;
  options.seed = config.seed;
  options.enable_pingmesh = true;
  options.pingmesh_interval = util::milliseconds(2);  // scaled from 1 s
  options.netseer.congestion_threshold = util::microseconds(20);
  Harness harness{options};
  auto& tb = harness.testbed();
  auto& sim = harness.simulator();

  // Storage backend under pod 1; clients in pod 0.
  net::Host& server_host = *tb.hosts[16];
  traffic::RpcServer::Config server_config;
  server_config.processing_delay = util::microseconds(20);
  traffic::RpcServer server(server_config);
  server_host.add_app(&server);

  // Application-side slow windows (the SSD-bug class of cause). The
  // second window deliberately overlaps the lossy-link fault below, so
  // some violations genuinely have BOTH causes (the Fig. 8b insight that
  // some "application" NPAs were partially network-caused too).
  const util::SimTime loss_from = config.duration * 5 / 6;
  server.add_slow_period(config.duration / 6, config.duration / 6 + util::milliseconds(3),
                         util::milliseconds(3));
  server.add_slow_period(loss_from + util::milliseconds(2),
                         loss_from + util::milliseconds(6), util::milliseconds(3));

  std::vector<std::unique_ptr<traffic::RpcClient>> clients;
  for (int c = 0; c < 4; ++c) {
    traffic::RpcClient::Config cc;
    cc.server = server_host.addr();
    cc.interval = util::microseconds(300);
    cc.stop = config.duration;
    cc.timeout = util::milliseconds(20);
    clients.push_back(std::make_unique<traffic::RpcClient>(*tb.hosts[c], cc,
                                                           harness.net().rng().fork()));
    tb.hosts[c]->add_app(clients.back().get());
    clients.back()->start();
  }

  // Network fault 1: incast bursts congesting the server's ToR downlink
  // (drops RPC requests -> timeouts).
  std::vector<net::Host*> noise(tb.hosts.begin() + 24, tb.hosts.begin() + 32);
  const std::vector<util::SimTime> incasts = {config.duration / 3, config.duration * 9 / 20,
                                              config.duration * 11 / 20};
  for (const auto at : incasts) {
    traffic::launch_incast(noise, server_host.addr(), 250 * 1000, 1000, at);
  }

  // Network fault 2: a lossy window on one pod-0 uplink used by clients.
  net::Link* lossy = nullptr;
  {
    // tor0-0's first uplink (port hosts_per_tor) toward agg0-0.
    const auto up_port = static_cast<util::PortId>(options.topo.hosts_per_tor);
    lossy = tb.tors[0]->link(up_port);
  }
  const util::SimTime loss_to = loss_from + util::milliseconds(10);
  (void)sim.schedule_at(loss_from, [lossy] {
    net::LinkFaultModel faults;
    faults.drop_prob = 0.15;
    lossy->set_fault_model(faults);
  });
  (void)sim.schedule_at(loss_to, [lossy] { lossy->set_fault_model(net::LinkFaultModel{}); });

  harness.run_and_settle(config.duration + util::milliseconds(30));
  if (config.metrics != nullptr) harness.collect_metrics(*config.metrics);
  for (auto& client : clients) client->finish();

  // ---- Host metrics model: per metric window, did the server report an
  // elevated average processing delay? (That is all a 15 s counter shows.)
  const auto window_has_app_slowness = [&](util::SimTime at) {
    const util::SimTime window_start = (at / config.metric_window) * config.metric_window;
    // Sample the window at 10 points; elevated if >= 2 are slow.
    int slow_points = 0;
    for (int i = 0; i < 10; ++i) {
      if (server.slow_at(window_start + i * config.metric_window / 10)) ++slow_points;
    }
    return slow_points >= 2;
  };

  SlaStudyResult result;
  auto* pingmesh = harness.monitor<monitors::PingmeshProber>();

  for (std::size_t c = 0; c < clients.size(); ++c) {
    for (const auto& record : clients[c]->records()) {
      ++result.total_rpcs;
      const bool slow = record.latency < 0 || record.latency > config.slow_threshold;
      if (!slow) continue;
      ++result.slow_rpcs;

      const util::SimTime from = record.sent_at;
      const util::SimTime to =
          record.sent_at + (record.latency < 0 ? util::milliseconds(20) : record.latency);

      // Ground truth for validation: the omniscient recorder knows
      // whether THIS RPC's flow actually lost packets or sat in a
      // congested queue (window overlap alone would over-attribute).
      Attribution truth;
      truth.app = server.slow_at(record.sent_at);
      const packet::FlowKey truth_flow{tb.hosts[c]->addr(), server_host.addr(), 6,
                                       static_cast<std::uint16_t>(30000 + (record.id % 8000)),
                                       9000};
      for (const auto& ev : harness.truth().events()) {
        if (ev.type == core::EventType::kPathChange) continue;
        if (ev.at < from - util::milliseconds(1) || ev.at > to + util::milliseconds(1)) {
          continue;
        }
        if (ev.flow == truth_flow || ev.flow == truth_flow.reversed()) {
          truth.net = true;
          break;
        }
      }
      truth.count_into(result.truth);

      // Source 1: host metrics only.
      Attribution host;
      host.app = window_has_app_slowness(record.sent_at);
      host.count_into(result.host_only);

      // Source 2: host metrics + Pingmesh existence signals.
      Attribution ping = host;
      if (pingmesh &&
          pingmesh->anomaly_in_window(from - util::milliseconds(2), to + util::milliseconds(2),
                                      util::microseconds(200))) {
        ping.net = true;
      }
      ping.count_into(result.host_pingmesh);

      // Source 3: host metrics + NetSeer flow events for THIS RPC's flow.
      Attribution netseer = host;
      const packet::FlowKey request{tb.hosts[c]->addr(), server_host.addr(), 6,
                                    static_cast<std::uint16_t>(30000 + (record.id % 8000)),
                                    9000};
      // Drops / congestion / pauses on this RPC's own flow are network
      // evidence. Path-change events are NOT: every new flow reports its
      // path once, that is informational, not anomalous.
      const auto has_anomaly = [&](const packet::FlowKey& flow) {
        backend::EventQuery query;
        query.flow = flow;
        query.from = from - util::milliseconds(1);
        query.to = to + util::milliseconds(1);
        for (const auto& stored : harness.store().query(query)) {
          if (stored.event.type != core::EventType::kPathChange) return true;
        }
        return false;
      };
      if (has_anomaly(request) || has_anomaly(request.reversed())) netseer.net = true;
      netseer.count_into(result.host_netseer);

      result.host_only_accuracy += (host == truth);
      result.host_pingmesh_accuracy += (ping == truth);
      result.host_netseer_accuracy += (netseer == truth);
    }
  }
  if (result.slow_rpcs > 0) {
    result.host_only_accuracy /= static_cast<double>(result.slow_rpcs);
    result.host_pingmesh_accuracy /= static_cast<double>(result.slow_rpcs);
    result.host_netseer_accuracy /= static_cast<double>(result.slow_rpcs);
  }

  normalize(result.host_only, static_cast<double>(result.slow_rpcs));
  normalize(result.host_pingmesh, static_cast<double>(result.slow_rpcs));
  normalize(result.host_netseer, static_cast<double>(result.slow_rpcs));
  normalize(result.truth, static_cast<double>(result.slow_rpcs));
  return result;
}

std::string format_breakdown(const char* source, const SlaBreakdown& b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%-14s app=%5.1f%% net=%5.1f%% both=%5.1f%% unknown=%5.1f%% (explained %5.1f%%)",
                source, 100 * b.app, 100 * b.net, 100 * b.both, 100 * b.unknown,
                100 * b.explained());
  return buf;
}

}  // namespace netseer::scenarios
