#pragma once

#include <memory>
#include <string>
#include <vector>

#include "detect/rules.h"
#include "scenarios/harness.h"

namespace netseer::detect {
struct Alert;
}

namespace netseer::scenarios {

/// A detection-service alert, detached from the service that raised it
/// (the service dies with the incident's harness). The e2e suite pins
/// exact expected sets of these per incident.
struct IncidentAlert {
  std::string rule;           // rule name ("drop-burst", ...)
  std::string severity;       // "warning" / "critical"
  std::string state;          // "active" / "resolved"
  util::NodeId switch_id = util::kInvalidNode;
  std::uint64_t group = 0;    // flow hash / ACL rule id / 0, per rule scope
  packet::FlowKey flow{};     // representative flow from the alert sample
  util::SimTime raised_at = 0;
  std::uint32_t firing_windows = 0;
  std::uint32_t flaps = 0;
};

/// Outcome of replaying one of the paper's five real incidents (§5.1,
/// Fig. 8a) on the simulated testbed. "Location time with NetSeer" is
/// measured as the time from fault onset until the backend holds an
/// event that names the victim flow and the faulty device; the
/// without-NetSeer number is the paper's reported operator time (human
/// troubleshooting cannot be simulated).
struct IncidentReport {
  std::string id;
  std::string name;
  double paper_without_minutes;  // Fig. 8a, w/o NetSeer
  double paper_with_seconds;     // Fig. 8a, w. NetSeer
  util::SimTime fault_onset = 0;
  /// -1 when no attributable event reached the backend.
  util::SimDuration detection_latency = -1;
  std::size_t attributable_events = 0;
  bool network_exonerated = false;  // only meaningful for incident #5
  std::string evidence;

  /// What the streaming detection service raised over this incident's
  /// event stream (every alert, active and resolved, in raise order).
  std::vector<IncidentAlert> alerts;

  [[nodiscard]] bool located() const { return detection_latency >= 0; }

  /// Alerts of `rule` whose fingerprint names `switch_id` (any group).
  [[nodiscard]] std::size_t alert_count(std::string_view rule, util::NodeId switch_id) const;
};

/// Replays of the five §5.1 incidents. Each builds its own harness,
/// drives background traffic plus the victim workload, injects the
/// fault, and answers "when could an operator, querying the backend by
/// the victim flow, have located the cause?".
class IncidentSuite {
 public:
  explicit IncidentSuite(std::uint64_t seed = 1) : seed_(seed) {}

  /// When set, every replay folds its harness counters into `registry`
  /// after settling (see Harness::collect_metrics).
  void set_metrics(telemetry::Registry* registry) { metrics_ = registry; }

  /// Replace the detection configuration every replay runs with (the
  /// default is detect::RuleSet::defaults()).
  void set_detect_rules(detect::RuleSet rules) { rules_ = std::move(rules); }

  /// #1 Routing error due to network update: wrong route installed at
  /// the core layer; victim traffic loops and dies by TTL.
  [[nodiscard]] IncidentReport routing_error();

  /// #2 ACL configuration error: a deny rule blackholes a new VM.
  [[nodiscard]] IncidentReport acl_misconfiguration();

  /// #3 Silent drop due to parity error: a bit-flipped route entry on
  /// one aggregation switch probabilistically blackholes flows that ECMP
  /// onto it.
  [[nodiscard]] IncidentReport parity_error();

  /// #4 Congestion due to unexpected volume: a bully flow congests a
  /// fabric link; operators must identify which flow to migrate.
  [[nodiscard]] IncidentReport unexpected_volume();

  /// #5 SSD firmware bug: the slowness is server-side; NetSeer's value
  /// is exonerating the network quickly.
  [[nodiscard]] IncidentReport server_side_bug();

  /// Fault-free control: the same testbed and victim-style traffic with
  /// no fault injected. The detection service must stay silent here —
  /// the e2e suite asserts alerts is empty.
  [[nodiscard]] IncidentReport baseline();

  [[nodiscard]] std::vector<IncidentReport> run_all();

 private:
  std::uint64_t seed_;
  telemetry::Registry* metrics_ = nullptr;
  detect::RuleSet rules_ = detect::RuleSet::defaults();
};

}  // namespace netseer::scenarios
