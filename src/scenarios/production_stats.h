#pragma once

#include <array>
#include <string_view>

namespace netseer::scenarios::stats {

/// Published production statistics from the paper's motivation section.
/// These are NOT reproducible from simulation — they summarize O(100)
/// real Alibaba service tickets (2018-2019). They are encoded here
/// because the incident scenarios (§5.1) weight their fault mix by these
/// fractions, and bench_fig3_drop_mix prints them next to the simulator's
/// reproduced drop-type mix.

/// Figure 3 (left): fraction of NPA-causing packet drops by type.
struct DropMixEntry {
  std::string_view type;
  double fraction;
  double avg_location_minutes;  // §3.3 text: inter-switch/card ~161 min
};
inline constexpr std::array<DropMixEntry, 6> kDropMix = {{
    {"pipeline", 0.62, 45.0},      // ">60% ... routing blackholes, ACL, TTL, MTU"
    {"congestion", 0.10, 30.0},    // "about 10%, mostly large-scale incasts"
    {"inter-switch", 0.12, 161.0}, // "inter-switch and inter-card together 18%"
    {"inter-card", 0.06, 161.0},
    {"asic-failure", 0.05, 60.0},  // "~10% from malfunctioning hardware"
    {"mmu-failure", 0.05, 60.0},
}};

/// Figure 3 (right): of the drops taking >180 minutes to locate, half
/// are inter-switch/inter-card.
inline constexpr double kSlowLocationInterSwitchShare = 0.50;

/// §3.3: fraction of NPAs caused by packet drops of some kind.
inline constexpr double kNpaFractionFromDrops = 0.86;

/// §2.1: NPAs as a share of all network faults in 2019.
inline constexpr double kNpaShareOfFaults2019 = 0.80;

/// Figure 1(b): fraction of NPAs actually caused by the network, by NPA
/// symptom (the rest are servers, provisioning, power, attacks).
struct NpaSourceEntry {
  std::string_view symptom;
  double network;
  double server;
  double other;
};
inline constexpr std::array<NpaSourceEntry, 3> kNpaSources = {{
    {"long-tail-latency", 0.35, 0.40, 0.25},
    {"bandwidth-loss", 0.50, 0.30, 0.20},
    {"packet-timeout", 0.45, 0.35, 0.20},
}};

/// §5.2 capacity discussion: 99th-percentile per-second MMU drop rate in
/// production, and the corrupted-link statistics from [Zhuo et al. 2017].
inline constexpr double kMmuDropRateP99 = 2.9e-5;
inline constexpr double kCorruptedLinksBelow1e3Ratio = 0.8733;

}  // namespace netseer::scenarios::stats
