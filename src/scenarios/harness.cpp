#include "scenarios/harness.h"

#include <chrono>

#include "telemetry/collect.h"

namespace netseer::scenarios {

Harness::Harness(const HarnessOptions& options)
    : options_(options), testbed_(fabric::make_testbed(options.topo, options.seed)) {
  auto& net = *testbed_.net;
  auto& sim = net.simulator();

  truth_ = std::make_unique<monitors::GroundTruth>(options_.netseer.congestion_threshold);
  net.set_link_observer(truth_.get());
  net.add_agent_everywhere(truth_.get());

  if (options_.enable_netsight) {
    netsight_ = std::make_unique<monitors::NetSightMonitor>();
    net.add_agent_everywhere(netsight_.get());
    register_monitor(netsight_.get());
    delivery_ = std::make_unique<monitors::NetSightMonitor::DeliveryTracker>(*netsight_);
    for (auto& host : net.hosts()) host->add_app(delivery_.get());
  }
  for (const auto rate : options_.sampling_rates) {
    samplers_.emplace_back(rate, std::make_unique<monitors::SamplingMonitor>(rate));
    net.add_agent_everywhere(samplers_.back().second.get());
    register_monitor(samplers_.back().second.get(), rate);
  }
  if (options_.enable_everflow) {
    everflow_ = std::make_unique<monitors::EverflowMonitor>(sim, options_.everflow,
                                                            net.rng().fork());
    net.add_agent_everywhere(everflow_.get());
    register_monitor(everflow_.get());
  }
  if (options_.enable_pingmesh) {
    pingmesh_ = std::make_unique<monitors::PingmeshProber>(sim, testbed_.hosts,
                                                           options_.pingmesh_interval);
    register_monitor(pingmesh_.get());
  }
  if (options_.enable_snmp) {
    std::vector<pdp::Switch*> switches = testbed_.all_switches();
    snmp_ = std::make_unique<monitors::SnmpMonitor>(sim, std::move(switches),
                                                    options_.snmp_interval);
    register_monitor(snmp_.get());
  }

  if (options_.enable_netseer) {
    channel_ = std::make_unique<core::ReportChannel>(sim, net.rng().fork(),
                                                     util::milliseconds(1), 0.0);
    store_ = std::make_unique<store::FlowEventStore>(options_.store);
    collector_ = std::make_unique<backend::Collector>(sim, kCollectorId, *channel_, *store_);
    for (auto* sw : testbed_.all_switches()) {
      apps_.push_back(std::make_unique<core::NetSeerApp>(*sw, options_.netseer, channel_.get(),
                                                         kCollectorId));
    }
    for (auto* host : testbed_.hosts) {
      nics_.push_back(std::make_unique<core::NetSeerNicAgent>(options_.netseer.interswitch));
      host->set_nic_agent(nics_.back().get());
    }
  } else {
    store_ = std::make_unique<store::FlowEventStore>(options_.store);  // empty store
  }
}

core::NetSeerApp* Harness::app_for(util::NodeId switch_id) {
  const auto all = testbed_.all_switches();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i]->id() == switch_id) return apps_.empty() ? nullptr : apps_[i].get();
  }
  return nullptr;
}

void Harness::add_workload(const traffic::GeneratorConfig& config) {
  std::vector<packet::Ipv4Addr> addresses;
  addresses.reserve(testbed_.hosts.size());
  for (auto* host : testbed_.hosts) addresses.push_back(host->addr());

  for (auto* host : testbed_.hosts) {
    std::vector<packet::Ipv4Addr> peers;
    for (const auto& addr : addresses) {
      if (addr != host->addr()) peers.push_back(addr);
    }
    generators_.push_back(std::make_unique<traffic::FlowGenerator>(
        *host, std::move(peers), config, net().rng().fork()));
    generators_.back()->start();
  }
}

std::uint64_t Harness::total_generated_bytes() const {
  std::uint64_t total = 0;
  for (const auto& gen : generators_) total += gen->bytes_sent();
  return total;
}

void Harness::run_and_settle(util::SimTime until) {
  const auto wall_start = std::chrono::steady_clock::now();
  auto& sim = simulator();
  sim::TaskHandle maintenance;
  if (store_ && options_.store_maintenance_interval > 0) {
    maintenance = store_->start_maintenance(sim, options_.store_maintenance_interval);
  }
  sim.run_until(until);
  // Periodic monitors (and the store maintenance task) would keep the
  // event queue alive forever.
  maintenance.cancel();
  if (everflow_) everflow_->stop();
  if (pingmesh_) pingmesh_->stop();
  if (snmp_) snmp_->stop();
  // Drain everything already in flight (queues, notifications, reports).
  sim.run();
  for (auto& app : apps_) app->flush();
  sim.run();
  for (auto& app : apps_) app->flush();
  sim.run();
  // Late-arriving reports sit in the store's shard buffers; push them
  // through the WAL so a durable run's files reflect the whole run.
  if (store_) store_->flush();
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
}

verify::Report Harness::verify_deployment(const verify::VerifyOptions& options) const {
  return verify::verify_testbed(testbed_, options_.netseer, options);
}

void Harness::collect_metrics(telemetry::Registry& registry) const {
  for (const auto* sw : testbed_.all_switches()) {
    telemetry::collect(registry, *sw);
    telemetry::collect(registry, verify::build_resource_model(*sw, options_.netseer),
                       sw->id());
  }
  for (const auto& app : apps_) telemetry::collect(registry, *app);
  if (collector_) telemetry::collect(registry, *collector_);
  if (store_) telemetry::collect(registry, *store_);
  telemetry::collect(registry, testbed_.net->simulator(), wall_seconds_);
}

monitors::EventGroupSet Harness::netseer_groups(std::optional<core::EventType> type) const {
  monitors::EventGroupSet set;
  for (const auto& stored : store_->all()) {
    if (type && stored.event.type != *type) continue;
    set.insert(monitors::EventGroup{stored.event.switch_id, stored.event.flow.hash64(),
                                    stored.event.type});
  }
  return set;
}

double Harness::coverage(const monitors::EventGroupSet& detected,
                         const monitors::EventGroupSet& actual) {
  if (actual.empty()) return 1.0;
  std::size_t hit = 0;
  for (const auto& group : actual) hit += detected.contains(group);
  return static_cast<double>(hit) / static_cast<double>(actual.size());
}

core::FunnelStats Harness::total_funnel() const {
  core::FunnelStats total;
  for (const auto& app : apps_) {
    const auto& f = app->funnel();
    total.traffic_bytes += f.traffic_bytes;
    total.traffic_packets += f.traffic_packets;
    total.event_packet_bytes += f.event_packet_bytes;
    total.event_packets += f.event_packets;
    total.dedup_reports += f.dedup_reports;
    total.eligible_event_packets += f.eligible_event_packets;
    total.eligible_reports += f.eligible_reports;
    total.extracted_bytes += f.extracted_bytes;
    total.cpu_forwarded_events += f.cpu_forwarded_events;
    total.report_bytes += f.report_bytes;
    total.notify_bytes += f.notify_bytes;
    total.shim_bytes += f.shim_bytes;
  }
  return total;
}

}  // namespace netseer::scenarios
