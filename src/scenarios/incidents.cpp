#include "scenarios/incidents.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "detect/service.h"
#include "packet/builder.h"
#include "telemetry/collect.h"

namespace netseer::scenarios {

std::size_t IncidentReport::alert_count(std::string_view rule, util::NodeId switch_id) const {
  std::size_t count = 0;
  for (const auto& alert : alerts) {
    count += alert.rule == rule && alert.switch_id == switch_id;
  }
  return count;
}

namespace {

/// Send `count` packets of `flow` from `host`, one every `interval`.
void send_paced(net::Host& host, const packet::FlowKey& flow, int count,
                util::SimDuration interval, std::uint32_t payload = 1000,
                util::SimTime start = 0) {
  auto& sim = host.simulator();
  for (int i = 0; i < count; ++i) {
    (void)sim.schedule_at(start + i * interval, [&host, flow, payload] {
      host.send(packet::make_tcp(flow, payload));
    });
  }
}

/// First backend event for `flow` of one of `types` at/after `onset`.
util::SimDuration first_detection(store::FlowEventStore& store, const packet::FlowKey& flow,
                                  std::initializer_list<core::EventType> types,
                                  util::SimTime onset, std::size_t* count_out = nullptr) {
  util::SimTime first = -1;
  std::size_t count = 0;
  backend::EventQuery query;
  query.flow = flow;
  for (const auto& stored : store.query(query)) {
    if (stored.event.detected_at < onset) continue;
    if (std::find(types.begin(), types.end(), stored.event.type) == types.end()) continue;
    ++count;
    if (first < 0 || stored.event.detected_at < first) first = stored.event.detected_at;
  }
  if (count_out) *count_out = count;
  return first < 0 ? -1 : first - onset;
}

std::string format_evidence(const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return buf;
}

/// Run the streaming detection service over everything the settled
/// harness stored, exactly as an online deployment would have seen it
/// (windows are event-time, so offline replay == online detection).
std::vector<IncidentAlert> detect_alerts(Harness& harness, const detect::RuleSet& rules,
                                         telemetry::Registry* metrics) {
  (void)harness.store().sync();  // the subscription tails the durable watermark
  detect::DetectOptions options;
  options.rules = rules;
  detect::DetectService service(harness.store(), std::move(options));
  service.pump();
  service.finish();
  if (metrics != nullptr) telemetry::collect(*metrics, service);

  std::vector<IncidentAlert> out;
  out.reserve(service.alerts().alerts().size());
  for (const auto& alert : service.alerts().alerts()) {
    IncidentAlert a;
    a.rule = alert.rule->name;
    a.severity = detect::to_string(alert.severity);
    a.state = detect::to_string(alert.state);
    a.switch_id = alert.key.switch_id;
    a.group = alert.key.group;
    a.flow = alert.sample.flow;
    a.raised_at = alert.raised_at;
    a.firing_windows = alert.firing_windows;
    a.flaps = alert.flaps;
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace

IncidentReport IncidentSuite::routing_error() {
  IncidentReport report;
  report.id = "#1";
  report.name = "Routing error due to network update";
  report.paper_without_minutes = 162.0;
  report.paper_with_seconds = 14.0;  // "0.232" min in Fig. 8a ~ 14 s

  HarnessOptions options;
  options.seed = seed_;
  Harness harness{options};
  auto& tb = harness.testbed();
  net::Host& src = *tb.hosts.front();    // pod 0
  net::Host& dst = *tb.hosts.back();     // pod 1
  const packet::FlowKey victim{src.addr(), dst.addr(), 6, 5001, 80};

  // Victim traffic before and after the bad update.
  send_paced(src, victim, 400, util::microseconds(10));

  // The faulty update: at 2 ms, both cores get a wrong route for the
  // victim's destination — pointing back down into pod 0, where the aggs
  // route it up again: a forwarding loop, killed by TTL.
  const util::SimTime onset = util::milliseconds(2);
  report.fault_onset = onset;
  (void)harness.simulator().schedule_at(onset, [&tb, &dst] {
    for (auto* core : tb.cores) {
      // Port 0 on a core faces pod 0's first agg (wrong for a pod-1 dst).
      core->routes().insert(packet::Ipv4Prefix{dst.addr(), 32}, pdp::EcmpGroup{{0}});
    }
  });

  harness.run_and_settle(util::milliseconds(8));
  if (metrics_ != nullptr) harness.collect_metrics(*metrics_);
  report.alerts = detect_alerts(harness, rules_, metrics_);

  std::size_t events = 0;
  report.detection_latency = first_detection(
      harness.store(), victim, {core::EventType::kDrop, core::EventType::kPathChange}, onset,
      &events);
  report.attributable_events = events;
  report.evidence = format_evidence(
      "victim flow shows %zu drop/path-change events after the update; first in %.1f us",
      events, util::to_microseconds(std::max<util::SimDuration>(report.detection_latency, 0)));
  return report;
}

IncidentReport IncidentSuite::acl_misconfiguration() {
  IncidentReport report;
  report.id = "#2";
  report.name = "ACL configuration error";
  report.paper_without_minutes = 33.0;
  report.paper_with_seconds = 33.0 * 60.0 * (1.0 - 0.61);  // paper: cut by 61%

  HarnessOptions options;
  options.seed = seed_;
  Harness harness{options};
  auto& tb = harness.testbed();
  net::Host& vm = *tb.hosts[5];        // the newly created VM
  net::Host& remote = *tb.hosts[20];

  // The bad rule exists before the VM comes up (it never worked).
  const util::SimTime onset = util::milliseconds(1);
  report.fault_onset = onset;
  pdp::AclRule rule;
  rule.rule_id = 501;
  rule.src = packet::Ipv4Prefix{vm.addr(), 32};
  rule.permit = false;
  tb.tors[0]->acl().add_rule(rule);  // hosts[5] sits under tor0-0

  const packet::FlowKey victim{vm.addr(), remote.addr(), 6, 6001, 443};
  send_paced(vm, victim, 100, util::microseconds(20), 400, onset);

  harness.run_and_settle(util::milliseconds(6));
  if (metrics_ != nullptr) harness.collect_metrics(*metrics_);
  report.alerts = detect_alerts(harness, rules_, metrics_);

  // ACL drops aggregate by rule: query the device for kAclDrop events.
  backend::EventQuery query;
  query.type = core::EventType::kAclDrop;
  query.switch_id = tb.tors[0]->id();
  util::SimTime first = -1;
  for (const auto& stored : harness.store().query(query)) {
    if (stored.event.acl_rule_id != 501) continue;
    ++report.attributable_events;
    if (first < 0 || stored.event.detected_at < first) first = stored.event.detected_at;
  }
  report.detection_latency = first < 0 ? -1 : first - onset;
  report.evidence = format_evidence(
      "%zu acl-drop events name rule 501 at %s; rule match covers the VM's flows",
      report.attributable_events, tb.tors[0]->name().c_str());
  return report;
}

IncidentReport IncidentSuite::parity_error() {
  IncidentReport report;
  report.id = "#3";
  report.name = "Silent drop due to parity error";
  // paper Fig. 8a shows ~1008 min for this incident ("42" on the hours axis)
  report.paper_with_seconds = 30.0;
  report.paper_without_minutes = 1008.0;

  HarnessOptions options;
  options.seed = seed_;
  Harness harness{options};
  auto& tb = harness.testbed();
  net::Host& redis = *tb.hosts[2];  // the Redis endpoint, under tor0-0

  // Bit flip: agg0-0's route entry for the Redis host goes bad. Flows
  // that ECMP onto agg0-0 blackhole; flows via agg0-1 are fine.
  const util::SimTime onset = util::milliseconds(1);
  report.fault_onset = onset;
  (void)harness.simulator().schedule_at(onset, [&tb, &redis] {
    tb.aggs[0]->routes().set_corrupted(packet::Ipv4Prefix{redis.addr(), 32}, true);
  });

  // Many PHP clients from the other pod (cross-pod paths traverse aggs).
  for (std::uint16_t c = 0; c < 12; ++c) {
    net::Host& client = *tb.hosts[16 + c];
    const packet::FlowKey flow{client.addr(), redis.addr(), 6,
                               static_cast<std::uint16_t>(7000 + c), 6379};
    send_paced(client, flow, 60, util::microseconds(30), 300);
  }

  harness.run_and_settle(util::milliseconds(8));
  if (metrics_ != nullptr) harness.collect_metrics(*metrics_);
  report.alerts = detect_alerts(harness, rules_, metrics_);

  // Operators query drop events toward the Redis service.
  backend::EventQuery query;
  query.type = core::EventType::kDrop;
  query.switch_id = tb.aggs[0]->id();
  util::SimTime first = -1;
  for (const auto& stored : harness.store().query(query)) {
    if (stored.event.flow.dst != redis.addr()) continue;
    if (stored.event.drop_code != static_cast<std::uint8_t>(pdp::DropReason::kRouteMiss)) {
      continue;
    }
    ++report.attributable_events;
    if (first < 0 || stored.event.detected_at < first) first = stored.event.detected_at;
  }
  report.detection_latency = first < 0 ? -1 : first - onset;
  report.evidence = format_evidence(
      "table-lookup-miss drops for %zu Redis flows localize to %s only (probabilistic per "
      "ECMP), matching a corrupted entry",
      report.attributable_events, tb.aggs[0]->name().c_str());
  return report;
}

IncidentReport IncidentSuite::unexpected_volume() {
  IncidentReport report;
  report.id = "#4";
  report.name = "Congestion due to unexpected volume";
  report.paper_without_minutes = 60.0;
  report.paper_with_seconds = 0.258 * 60.0;

  HarnessOptions options;
  options.seed = seed_;
  options.netseer.congestion_threshold = util::microseconds(10);
  Harness harness{options};
  auto& tb = harness.testbed();
  net::Host& victim_src = *tb.hosts[24];
  net::Host& shared_dst = *tb.hosts[0];

  // Victim: steady light traffic to hosts[0].
  const packet::FlowKey victim{victim_src.addr(), shared_dst.addr(), 6, 8001, 22};
  send_paced(victim_src, victim, 600, util::microseconds(10), 200);

  // At 2 ms, bully senders flood the same destination (incast on the
  // 25G host downlink of tor0-0).
  const util::SimTime onset = util::milliseconds(2);
  report.fault_onset = onset;
  std::vector<net::Host*> bullies(tb.hosts.begin() + 16, tb.hosts.begin() + 24);
  traffic::launch_incast(bullies, shared_dst.addr(), 200 * 1000, 1000, onset);

  harness.run_and_settle(util::milliseconds(10));
  if (metrics_ != nullptr) harness.collect_metrics(*metrics_);
  report.alerts = detect_alerts(harness, rules_, metrics_);

  // The victim's congestion events point at the device...
  std::size_t victim_events = 0;
  report.detection_latency = first_detection(harness.store(), victim,
                                             {core::EventType::kCongestion,
                                              core::EventType::kDrop},
                                             onset, &victim_events);

  // ... and grouping that device's events by flow ranks the bullies.
  backend::EventQuery at_tor;
  at_tor.switch_id = tb.tors[0]->id();
  at_tor.from = onset;
  std::unordered_map<std::uint64_t, std::uint64_t> counters;
  for (const auto& stored : harness.store().query(at_tor)) {
    if (stored.event.type != core::EventType::kCongestion &&
        stored.event.drop_code != static_cast<std::uint8_t>(pdp::DropReason::kCongestion)) {
      continue;
    }
    counters[stored.event.flow.hash64()] += stored.event.counter;
  }
  std::uint64_t top_hash = 0, top_count = 0;
  for (const auto& [hash, count] : counters) {
    if (count > top_count) {
      top_count = count;
      top_hash = hash;
    }
  }
  bool top_is_bully = false;
  for (std::size_t i = 0; i < bullies.size(); ++i) {
    const packet::FlowKey bully_flow{bullies[i]->addr(), shared_dst.addr(), 6,
                                     static_cast<std::uint16_t>(20000 + i), 80};
    if (bully_flow.hash64() == top_hash) top_is_bully = true;
  }
  report.attributable_events = victim_events;
  report.evidence = format_evidence(
      "victim saw %zu congestion events; top contributor at %s by counter (%llu pkts) %s a "
      "bully flow -> operators know which flow to migrate",
      victim_events, tb.tors[0]->name().c_str(), static_cast<unsigned long long>(top_count),
      top_is_bully ? "IS" : "IS NOT");
  return report;
}

IncidentReport IncidentSuite::server_side_bug() {
  IncidentReport report;
  report.id = "#5";
  report.name = "SSD firmware driver bug (server-side)";
  report.paper_without_minutes = 284.0;
  report.paper_with_seconds = 42.0;

  HarnessOptions options;
  options.seed = seed_;
  Harness harness{options};
  auto& tb = harness.testbed();
  net::Host& client = *tb.hosts[0];
  net::Host& storage = *tb.hosts[16];

  // Storage traffic (the suspect flows).
  const packet::FlowKey victim{client.addr(), storage.addr(), 6, 9001, 3260};
  send_paced(client, victim, 500, util::microseconds(10), 800);

  // Red herring: unrelated incast causes MMU drops at the storage POD's
  // ToR — the counters that misled operators for hours.
  const util::SimTime onset = util::milliseconds(2);
  report.fault_onset = onset;
  std::vector<net::Host*> noise(tb.hosts.begin() + 24, tb.hosts.begin() + 32);
  traffic::launch_incast(noise, tb.hosts[17]->addr(), 400 * 1000, 1000, onset);

  harness.run_and_settle(util::milliseconds(10));
  if (metrics_ != nullptr) harness.collect_metrics(*metrics_);
  report.alerts = detect_alerts(harness, rules_, metrics_);

  // Query the victim's flows: no events -> network exonerated.
  std::size_t victim_events = 0;
  (void)first_detection(harness.store(), victim,
                        {core::EventType::kDrop, core::EventType::kCongestion,
                         core::EventType::kPause},
                        0, &victim_events);
  report.attributable_events = victim_events;
  report.network_exonerated = (victim_events == 0);
  report.detection_latency = report.network_exonerated ? 0 : -1;

  // Meanwhile the ToR really did drop packets — of other flows.
  backend::EventQuery at_tor;
  at_tor.switch_id = tb.tors[2]->id();  // hosts[16..23] sit under tor1-0
  const auto unrelated = harness.store().query(at_tor).size();
  report.evidence = format_evidence(
      "storage flow has %zu events while %zu unrelated drop/congestion events exist at the "
      "same ToR: network exonerated, suspicion moves to the server",
      victim_events, unrelated);
  return report;
}

IncidentReport IncidentSuite::baseline() {
  IncidentReport report;
  report.id = "#0";
  report.name = "Fault-free baseline (control)";
  report.paper_without_minutes = 0.0;
  report.paper_with_seconds = 0.0;

  HarnessOptions options;
  options.seed = seed_;
  Harness harness{options};
  auto& tb = harness.testbed();

  // The same shapes the incidents use as victim traffic — paced flows
  // within and across pods — with nothing broken underneath them.
  const packet::FlowKey intra{tb.hosts[0]->addr(), tb.hosts[2]->addr(), 6, 5001, 80};
  send_paced(*tb.hosts[0], intra, 400, util::microseconds(10));
  const packet::FlowKey cross{tb.hosts[5]->addr(), tb.hosts[20]->addr(), 6, 6001, 443};
  send_paced(*tb.hosts[5], cross, 100, util::microseconds(20), 400, util::milliseconds(1));
  for (std::uint16_t c = 0; c < 4; ++c) {
    net::Host& client = *tb.hosts[16 + c];
    const packet::FlowKey flow{client.addr(), tb.hosts[2]->addr(), 6,
                               static_cast<std::uint16_t>(7000 + c), 6379};
    send_paced(client, flow, 60, util::microseconds(30), 300);
  }

  harness.run_and_settle(util::milliseconds(8));
  if (metrics_ != nullptr) harness.collect_metrics(*metrics_);
  report.alerts = detect_alerts(harness, rules_, metrics_);

  report.fault_onset = 0;
  report.detection_latency = report.alerts.empty() ? 0 : -1;
  report.attributable_events = report.alerts.size();
  report.evidence = format_evidence("fault-free run raised %zu alerts (must be 0)",
                                    report.alerts.size());
  return report;
}

std::vector<IncidentReport> IncidentSuite::run_all() {
  return {routing_error(), acl_misconfiguration(), parity_error(), unexpected_volume(),
          server_side_bug()};
}

}  // namespace netseer::scenarios
