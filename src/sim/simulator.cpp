#include "sim/simulator.h"

namespace netseer::sim {

TaskHandle Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  auto alive = std::make_shared<bool>(true);
  if (when < now_) when = now_;
  queue_.push(Entry{when, next_seq_++, std::move(fn), alive, /*oneshot=*/true});
  return TaskHandle(std::move(alive));
}

TaskHandle Simulator::schedule_every(SimDuration interval, std::function<void()> fn) {
  auto alive = std::make_shared<bool>(true);
  // Each firing reschedules itself while the shared token stays alive.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, interval, fn = std::move(fn), alive, tick]() {
    if (!*alive) return;
    fn();
    if (!*alive) return;
    queue_.push(Entry{now_ + interval, next_seq_++, *tick, alive, /*oneshot=*/false});
  };
  queue_.push(Entry{now_ + interval, next_seq_++, *tick, alive, /*oneshot=*/false});
  return TaskHandle(std::move(alive));
}

void Simulator::execute(Entry& entry) {
  ++processed_;
  entry.fn();
  // One-shot handles report inactive after firing, so owners can re-arm
  // timers by checking handle.active().
  if (entry.oneshot && entry.alive) *entry.alive = false;
}

void Simulator::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.when;
    if (entry.alive && !*entry.alive) continue;
    execute(entry);
  }
}

void Simulator::run_until(SimTime limit) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().when <= limit) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.when;
    if (entry.alive && !*entry.alive) continue;
    execute(entry);
  }
  if (!stopped_ && now_ < limit) now_ = limit;
}

}  // namespace netseer::sim
