#include "sim/simulator.h"

#include <algorithm>
#include <bit>

namespace netseer::sim {

Simulator::Simulator() = default;

TaskHandle Simulator::enqueue_slot(SimTime when, std::uint32_t slot) {
  if (when < now_) when = now_;
  Slot& cell = slot_ref(slot);
  cell.when = when;
  cell.seq = next_seq_++;
  const std::uint64_t gen = cell.gen;
  push_slot(slot);
  return TaskHandle(this, slot, gen);
}

std::uint32_t Simulator::acquire_slot() {
  std::uint32_t index;
  if (free_slot_ != kNoSlot) {
    index = free_slot_;
    free_slot_ = slot_ref(index).next;
  } else {
    index = slot_count_++;
    if ((index >> kChunkShift) == chunks_.size()) {
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    }
  }
  Slot& slot = slot_ref(index);
  slot.in_use = true;
  slot.cancelled = false;
  return index;
}

void Simulator::release_slot(std::uint32_t index) {
  Slot& slot = slot_ref(index);
  slot.fn.reset();  // drop captures eagerly (cancelled tasks may pin buffers)
  ++slot.gen;       // invalidate outstanding handles
  slot.in_use = false;
  slot.cancelled = false;
  slot.next = free_slot_;
  free_slot_ = index;
}

void Simulator::append(Bucket& bucket, std::uint32_t slot) {
  slot_ref(slot).next = kNoSlot;
  if (bucket.tail == kNoSlot) {
    bucket.head = slot;
  } else {
    slot_ref(bucket.tail).next = slot;
  }
  bucket.tail = slot;
}

void Simulator::push_slot(std::uint32_t slot) {
  ++size_;
  const Slot& cell = slot_ref(slot);
  const auto epoch = epoch_of(cell.when);
  if (epoch <= cursor_epoch_) {
    // current_ is the catch-all for everything at or before the cursor.
    // During a normal drain appends are same-instant with monotonic seq,
    // so FIFO tail order holds; but a run_until() that claimed a bucket
    // beyond its limit and broke early leaves the cursor ahead of now,
    // and a later schedule can land before the stranded chain — detect
    // that and re-sort (rare: only a paused/idle port re-armed between
    // runs hits it).
    const bool out_of_order =
        current_.tail != kNoSlot && slot_ref(current_.tail).when > cell.when;
    append(current_, slot);
    if (out_of_order) sort_current();
  } else if (epoch < cursor_epoch_ + kBucketCount) {
    const std::size_t index = epoch % kBucketCount;
    append(ring_[index], slot);
    mark(index);
  } else {
    overflow_.push_back(Entry{cell.when, cell.seq, slot});
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
  }
}

void Simulator::migrate_overflow() {
  const std::uint64_t horizon = cursor_epoch_ + kBucketCount;
  while (!overflow_.empty() && epoch_of(overflow_.front().when) < horizon) {
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    const Entry entry = overflow_.back();
    overflow_.pop_back();
    const std::size_t index = epoch_of(entry.when) % kBucketCount;
    Bucket& bucket = ring_[index];
    // A cursor jump can expose this epoch to direct pushes before the
    // overflow entries for it migrate in; appending an older seq after a
    // newer one breaks the chain's FIFO order, so flag the bucket for a
    // claim-time sort.
    if (bucket.tail != kNoSlot && slot_ref(bucket.tail).seq > entry.seq) {
      mark_disorder(index);
    }
    append(bucket, entry.slot);
    mark(index);
  }
}

std::size_t Simulator::next_occupied(std::size_t base) const {
  std::size_t word = base >> 6;
  const std::uint64_t head = occupied_[word] >> (base & 63);
  if (head != 0) return static_cast<std::size_t>(std::countr_zero(head));
  std::size_t dist = 64 - (base & 63);
  for (;;) {
    word = (word + 1) % kWords;
    if (occupied_[word] != 0) {
      return dist + static_cast<std::size_t>(std::countr_zero(occupied_[word]));
    }
    dist += 64;
  }
}

void Simulator::sort_current() {
  scratch_.clear();
  for (std::uint32_t s = current_.head; s != kNoSlot; s = slot_ref(s).next) {
    scratch_.push_back(s);
  }
  std::sort(scratch_.begin(), scratch_.end(), [this](std::uint32_t a, std::uint32_t b) {
    const Slot& sa = slot_ref(a);
    const Slot& sb = slot_ref(b);
    return sa.when != sb.when ? sa.when < sb.when : sa.seq < sb.seq;
  });
  current_ = Bucket{};
  for (const std::uint32_t s : scratch_) append(current_, s);
}

bool Simulator::prepare() {
  if (current_.head != kNoSlot) return true;
  current_.tail = kNoSlot;
  if (size_ == 0) return false;
  // Pull newly-in-horizon overflow entries into the ring BEFORE picking
  // the next bucket: after a jump, the overflow minimum can precede the
  // ring minimum, and claiming the ring bucket first would fire events
  // out of order.
  if (!overflow_.empty()) {
    migrate_overflow();
    if (size_ == overflow_.size()) {
      // Everything pending sits beyond the ring horizon: slide the
      // window so the earliest overflow epoch migrates in.
      cursor_epoch_ = epoch_of(overflow_.front().when) - 1;
      migrate_overflow();
    }
  }
  const std::size_t dist = next_occupied((cursor_epoch_ + 1) % kBucketCount);
  cursor_epoch_ += 1 + dist;
  const std::size_t index = cursor_epoch_ % kBucketCount;
  current_ = ring_[index];
  ring_[index] = Bucket{};
  unmark(index);
  if (take_disorder(index)) sort_current();
  return true;
}

std::uint32_t Simulator::pop_current() {
  const std::uint32_t slot = current_.head;
  current_.head = slot_ref(slot).next;
  if (current_.head == kNoSlot) current_.tail = kNoSlot;
  --size_;
  return slot;
}

void Simulator::fire(std::uint32_t index) {
  // Chunked slab cells never move, so the Task runs in place even if the
  // callback grows the slab or cancels its own handle.
  Slot& cell = slot_ref(index);
  if (cell.cancelled) {
    release_slot(index);
    return;
  }
  ++processed_;
  cell.fn();
  if (cell.oneshot) {
    // One-shot handles report inactive after firing, so owners can re-arm
    // timers by checking handle.active().
    release_slot(index);
  } else if (cell.cancelled) {
    // Periodic cancelled from inside its own firing: retire the slot.
    release_slot(index);
  } else {
    cell.when = now_ + cell.interval;
    cell.seq = next_seq_++;
    push_slot(index);
  }
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && prepare()) {
    const std::uint32_t slot = pop_current();
    now_ = slot_ref(slot).when;  // cancelled entries still advance time (as before)
    fire(slot);
  }
}

void Simulator::run_until(SimTime limit) {
  stopped_ = false;
  while (!stopped_ && prepare()) {
    if (peek_when() > limit) break;
    const std::uint32_t slot = pop_current();
    now_ = slot_ref(slot).when;
    fire(slot);
  }
  if (!stopped_ && now_ < limit) now_ = limit;
}

}  // namespace netseer::sim
