#include "sim/simulator.h"

namespace netseer::sim {

TaskHandle Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  auto alive = std::make_shared<bool>(true);
  if (when < now_) when = now_;
  queue_.push(Entry{when, next_seq_++, std::move(fn), alive, /*oneshot=*/true});
  return TaskHandle(std::move(alive));
}

TaskHandle Simulator::schedule_every(SimDuration interval, std::function<void()> fn) {
  auto alive = std::make_shared<bool>(true);
  // execute() reschedules interval-tagged entries, so the closure never
  // has to reference itself (a self-owning cycle that would never free).
  queue_.push(
      Entry{now_ + interval, next_seq_++, std::move(fn), alive, /*oneshot=*/false, interval});
  return TaskHandle(std::move(alive));
}

void Simulator::execute(Entry& entry) {
  ++processed_;
  entry.fn();
  // One-shot handles report inactive after firing, so owners can re-arm
  // timers by checking handle.active().
  if (entry.oneshot) {
    if (entry.alive) *entry.alive = false;
  } else if (entry.interval > 0 && (!entry.alive || *entry.alive)) {
    // Periodic: requeue unless the handle was cancelled during this firing.
    queue_.push(Entry{now_ + entry.interval, next_seq_++, std::move(entry.fn), entry.alive,
                      /*oneshot=*/false, entry.interval});
  }
}

void Simulator::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.when;
    if (entry.alive && !*entry.alive) continue;
    execute(entry);
  }
}

void Simulator::run_until(SimTime limit) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().when <= limit) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.when;
    if (entry.alive && !*entry.alive) continue;
    execute(entry);
  }
  if (!stopped_ && now_ < limit) now_ = limit;
}

}  // namespace netseer::sim
