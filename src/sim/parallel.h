#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "sim/task.h"
#include "util/sync.h"
#include "util/thread_annotations.h"
#include "util/time.h"

namespace netseer::sim {

/// Identifies one logical process of the parallel engine — a switch in
/// the fabric benches, an abstract actor in the tests. Every event
/// executes on behalf of exactly one actor, on the shard that owns it.
using ActorId = std::uint32_t;
inline constexpr ActorId kInvalidActor = 0xffffffffu;

struct ParallelConfig {
  /// Number of shards. Each shard owns a sim::Simulator, a task slab,
  /// and the event state of every actor assigned to it.
  std::uint32_t shards = 1;
  /// Conservative lookahead: the minimum cross-actor delivery latency,
  /// in practice the minimum link propagation delay of the partitioned
  /// topology (fabric::PartitionPlan::lookahead). Must be >= 1 ns. For
  /// the cross-shard-count determinism guarantee it must be the SAME
  /// value for every shard count compared (the partitioner derives it
  /// from all switch-switch links, not just the cut ones, for exactly
  /// this reason).
  SimDuration lookahead = 1;
  /// false runs the identical window algorithm on the calling thread,
  /// round-robining shards — the serial reference the determinism tests
  /// compare threaded runs against.
  bool use_threads = true;
  /// Messages buffered per directed shard pair before the producer hits
  /// backpressure (rounded up to a power of two). While stalled, the
  /// producer drains its own inboxes, so mailbox cycles cannot deadlock.
  std::size_t mailbox_capacity = 512;
};

class ParallelSimulator;

/// Cancellation token for an event scheduled on a shard. Generation
/// counted like sim::TaskHandle: once the event has fired (or been
/// cancelled) the slot recycles and the handle degrades to an inactive
/// no-op. Shard-affine: cancel()/active() may only be called from the
/// owning shard's execution context (or while the engine is not
/// running) — handles must not be shared across shards mid-run.
class ShardTaskHandle {
 public:
  ShardTaskHandle() = default;

  void cancel();
  [[nodiscard]] bool active() const;

 private:
  friend class ParallelSimulator;
  ShardTaskHandle(ParallelSimulator* engine, std::uint32_t shard, std::uint32_t slot,
                  std::uint64_t gen)
      : engine_(engine), shard_(shard), slot_(slot), gen_(gen) {}

  ParallelSimulator* engine_ = nullptr;
  std::uint32_t shard_ = 0;
  std::uint32_t slot_ = 0;
  std::uint64_t gen_ = 0;
};

/// Per-shard counters, quiescent snapshot after run_until returns.
struct ShardStats {
  std::uint64_t events = 0;          // events fired by the shard's Simulator
  std::uint64_t mailbox_stalls = 0;  // full-ring waits while sending cross-shard
  std::uint64_t sends_cross = 0;     // messages through SPSC mailboxes
  std::uint64_t sends_local = 0;     // same-shard sends (local outbox path)
  std::uint64_t sends_clamped = 0;   // sends below the lookahead floor, bumped up
  std::uint64_t task_heap_allocs = 0;
};

/// Conservative parallel discrete-event engine: the simulation is
/// partitioned into shards (by switch, via fabric::partition_*), each
/// owning its actors' event queues (a sim::Simulator calendar queue +
/// overflow heap), task slab, and handles. Cross-actor communication
/// goes through send(), which enforces the lookahead floor and carries
/// the message over an SPSC mailbox when the destination lives on
/// another shard.
///
/// Synchronization is the classic Chandy–Misra–Bryant bound made
/// barrier-synchronous: every round, each shard publishes the timestamp
/// of its earliest pending work (queued events and undelivered
/// arrivals); a barrier reduction takes the global minimum G and opens
/// the window [G, G + lookahead). Every shard may execute that window
/// without speculation — any message generated inside it arrives at
/// G + lookahead or later, because sends are floored at now + lookahead.
/// A second barrier closes the window so no shard starts the next
/// reduction while a neighbour is still producing messages for it.
///
/// Determinism: per-actor event ordering is bit-identical for ANY shard
/// count (1/2/4/8/...), including the single-threaded reference
/// (use_threads = false), provided the workload obeys two rules — an
/// event may only schedule() onto its own actor and send() to others,
/// and actors touch no shared mutable state outside message payloads.
/// The proof shape: arrivals due in a window are injected at its start
/// in the canonical (when, src actor, per-src seq) order, so same-instant
/// arrivals never depend on mailbox drain timing; self-scheduled events
/// inherit the actor's own deterministic execution order; and the window
/// boundaries themselves depend only on event timestamps and the (fixed)
/// lookahead, not on the partition. tests/sim/parallel_golden_test.cpp
/// checks the resulting per-actor signatures across shard counts, and
/// the parallel-determinism CI job re-runs them under TSan and ASan.
class ParallelSimulator {
 public:
  explicit ParallelSimulator(const ParallelConfig& config);
  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;
  ~ParallelSimulator();

  /// Register an actor on `shard` (< shards()). Setup only — actors are
  /// fixed once run_until has been called.
  ActorId add_actor(std::uint32_t shard);

  [[nodiscard]] std::uint32_t shards() const { return nshards_; }
  [[nodiscard]] std::uint32_t shard_of(ActorId actor) const { return actors_[actor].shard; }
  [[nodiscard]] SimDuration lookahead() const { return lookahead_; }

  /// Schedule `fn` on `actor` at absolute time `when`. During a run this
  /// is the SELF-scheduling path: only the currently-executing actor's
  /// shard may call it, targeting an actor it owns. Use send() for any
  /// cross-actor work.
  template <typename F>
  [[nodiscard]] ShardTaskHandle schedule(ActorId actor, SimTime when, F&& fn) {
    return schedule_task(actor, when, Task(std::forward<F>(fn)));
  }

  /// Deliver `fn` to `to` at `when`, stamped with `from`'s next send
  /// sequence number (the canonical tie-break). `when` below the
  /// conservative floor now(from) + lookahead is bumped to the floor and
  /// counted in ShardStats::sends_clamped — a correct workload (message
  /// latency modeled on real link delays >= lookahead) never trips it.
  /// During a run, `from` must be the actor currently executing.
  template <typename F>
  void send(ActorId from, ActorId to, SimTime when, F&& fn) {
    send_task(from, to, when, Task(std::forward<F>(fn)));
  }

  /// Run every shard up to and including `limit`; afterwards each
  /// shard's clock reads `limit` and later work stays queued. Spawns one
  /// thread per shard (unless use_threads is false) and joins them
  /// before returning. Callable repeatedly with increasing limits.
  ///
  /// An exception escaping an actor callback aborts the run: the
  /// erroring shard keeps pairing with its peers' barriers (so nobody
  /// deadlocks mid-protocol), the next window reduction raises the done
  /// flag for everyone, and after every worker joined the FIRST recorded
  /// exception is rethrown here. The engine's queues survive, but a
  /// window was cut short — treat the engine as tainted and rebuild it
  /// rather than resuming.
  void run_until(SimTime limit);

  /// Virtual time every shard has reached (== the last run_until limit).
  [[nodiscard]] SimTime now() const { return now_; }
  /// The executing shard's local clock; callable from actor callbacks.
  [[nodiscard]] SimTime now_on(ActorId actor) const;

  [[nodiscard]] std::uint64_t events_processed() const;
  /// Conservative windows executed across the whole run so far.
  [[nodiscard]] std::uint64_t windows() const { return windows_; }
  [[nodiscard]] ShardStats shard_stats(std::uint32_t shard) const;

 private:
  friend class ShardTaskHandle;
  struct Shard;

  [[nodiscard]] ShardTaskHandle schedule_task(ActorId actor, SimTime when, Task fn);
  void send_task(ActorId from, ActorId to, SimTime when, Task fn);

  void worker(std::uint32_t shard, SimTime limit);
  void run_inline(SimTime limit);
  /// Record a worker's exception (first one wins) and trip the abort
  /// flag that short-circuits the next window reduction.
  void record_worker_error(std::exception_ptr err) NETSEER_EXCLUDES(error_mu_);
  /// Steal the recorded exception, if any (clears it). Called once per
  /// run_until, after the join.
  [[nodiscard]] std::exception_ptr take_worker_error() NETSEER_EXCLUDES(error_mu_);
  /// Two-phase barrier; when `reduce` is set the last arriver folds the
  /// published shard minima into the next window (or the done flag).
  void barrier(Shard& me, bool reduce, SimTime limit);
  void reduce_window(SimTime limit);

  /// Padded per-actor record: `send_seq` is written on every send by the
  /// owning shard's thread, so neighbours on other shards must not share
  /// its cache line.
  struct alignas(64) ActorInfo {
    std::uint32_t shard = 0;
    std::uint64_t send_seq = 0;
  };

  /// The shard whose window the calling thread is executing (assertion
  /// state for the shard-affinity contracts; null outside a run).
  static thread_local Shard* tls_shard_;

  std::uint32_t nshards_;
  SimDuration lookahead_;
  bool use_threads_;
  std::size_t mailbox_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<ActorInfo> actors_;

  SimTime now_ = 0;
  std::uint64_t windows_ = 0;
  bool running_ = false;

  // Barrier + window reduction state (see barrier()).
  alignas(64) std::atomic<std::uint32_t> arrived_{0};
  alignas(64) std::atomic<std::uint64_t> round_{0};
  std::unique_ptr<std::atomic<SimTime>[]> shard_min_;
  std::atomic<SimTime> window_end_{0};
  std::atomic<bool> done_{false};

  // Worker failure channel (see run_until).
  std::atomic<bool> abort_{false};
  util::Mutex error_mu_;
  std::exception_ptr first_error_ NETSEER_GUARDED_BY(error_mu_);
};

}  // namespace netseer::sim
