#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "mc/shim.h"
#include "util/annotations.h"

namespace netseer::sim {

/// Bounded single-producer single-consumer ring, the cross-shard mailbox
/// primitive of the parallel engine. Exactly one thread may push and one
/// may pop; the indices carry acquire/release ordering so the payload
/// write in try_push happens-before the payload read in try_pop without
/// any lock on the message path.
///
/// Capacity is rounded up to a power of two. A full ring rejects the
/// push (try_push returns false WITHOUT consuming the value) — the
/// caller owns the backpressure policy; the engine drains its own
/// inboxes while it waits so producer/consumer cycles cannot deadlock.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Producer-side fullness probe: pure loads, so a producer can poll
  /// (or an mc::await predicate can watch) without attempting a push.
  /// Only the producer may act on a false result — space never shrinks
  /// under it, so !full() guarantees its next try_push succeeds.
  [[nodiscard]] bool full() const {
    return tail_.load(std::memory_order_relaxed) - head_.load(std::memory_order_acquire) ==
           slots_.size();
  }

  /// Consumer-side emptiness probe, same contract mirrored: !empty()
  /// guarantees the consumer's next try_pop succeeds.
  [[nodiscard]] bool empty() const {
    return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_relaxed);
  }

  /// Producer side. Returns false (value untouched) when the ring is full.
  [[nodiscard]] NETSEER_HOT bool try_push(T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == slots_.size()) return false;
    NETSEER_MC_WRITE(&slots_[tail & mask_], "SpscRing::slots_[tail]");
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty. The drained
  /// slot is reset so pooled captures are not pinned by the ring.
  [[nodiscard]] NETSEER_HOT bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == head) return false;
    NETSEER_MC_WRITE(&slots_[head & mask_], "SpscRing::slots_[head]");
    out = std::move(slots_[head & mask_]);
    slots_[head & mask_] = T{};
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) mc_shim::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(64) mc_shim::atomic<std::size_t> tail_{0};  // producer cursor
};

}  // namespace netseer::sim
