#include "sim/parallel.h"

#include <algorithm>
#include <cassert>
#include <thread>

#include "sim/spsc.h"

namespace netseer::sim {

namespace {

/// A cross-actor message in flight: the canonical ordering key plus the
/// payload Task. (when, from, seq) is a total order — seq is per-source
/// and strictly increasing — so sorting due arrivals at injection time
/// is independent of mailbox drain interleaving.
struct Message {
  SimTime when = 0;
  ActorId from = kInvalidActor;
  ActorId to = kInvalidActor;
  std::uint64_t seq = 0;
  Task fn;
};

/// Min-heap-by-when comparator for the pending buffer (ties arbitrary —
/// the due batch is canonically re-sorted before injection).
struct LaterWhen {
  bool operator()(const Message& a, const Message& b) const { return a.when > b.when; }
};

bool canonical_before(const Message& a, const Message& b) {
  if (a.when != b.when) return a.when < b.when;
  if (a.from != b.from) return a.from < b.from;
  return a.seq < b.seq;
}

}  // namespace

/// One shard: a Simulator, the shard-local task slab the actor callbacks
/// live in, the arrival buffers, and one SPSC inbox per peer shard.
/// Everything here is single-writer — only the shard's thread touches it
/// during a run — except the inbox rings (their producers are the peer
/// shards) and the slab cells reachable through fire().
struct ParallelSimulator::Shard {
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr std::uint32_t kChunkShift = 8;  // 256 slots per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  /// Slab cell: the actor callback plus cancellation state. `gen`
  /// increments on release, so a ShardTaskHandle to a recycled slot
  /// degrades to an inactive no-op (same scheme as Simulator's slab).
  struct Slot {
    Task fn;
    ActorId actor = kInvalidActor;
    std::uint64_t gen = 0;
    std::uint32_t next_free = kNoSlot;
    bool cancelled = false;
    bool in_use = false;
  };

  Shard(std::uint32_t id_in, std::uint32_t nshards, std::size_t mailbox_capacity) : id(id_in) {
    inbox.reserve(nshards);
    for (std::uint32_t s = 0; s < nshards; ++s) {
      inbox.push_back(s == id ? nullptr
                              : std::make_unique<SpscRing<Message>>(mailbox_capacity));
    }
  }

  [[nodiscard]] Slot& slot_ref(std::uint32_t index) {
    return chunks[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  std::uint32_t acquire_slot() {
    std::uint32_t index;
    if (free_slot != kNoSlot) {
      index = free_slot;
      free_slot = slot_ref(index).next_free;
    } else {
      index = slot_count++;
      if ((index >> kChunkShift) == chunks.size()) {
        chunks.push_back(std::make_unique<Slot[]>(kChunkSize));
      }
    }
    Slot& cell = slot_ref(index);
    cell.in_use = true;
    cell.cancelled = false;
    return index;
  }

  void release_slot(std::uint32_t index) {
    Slot& cell = slot_ref(index);
    cell.fn.reset();  // drop captures eagerly (cancelled tasks may pin buffers)
    ++cell.gen;
    cell.in_use = false;
    cell.cancelled = false;
    cell.next_free = free_slot;
    free_slot = index;
  }

  /// The Simulator-side wrapper target: run the slab cell's callback as
  /// its actor, then recycle the cell. Cancelled cells still consume
  /// their virtual-time slot (exactly like Simulator's own cancellation).
  void fire(std::uint32_t index) {
    Slot& cell = slot_ref(index);
    if (!cell.cancelled) {
      current_actor = cell.actor;
      cell.fn();
      current_actor = kInvalidActor;
    }
    release_slot(index);
  }

  /// Move everything the peers have published into the pending heap.
  /// Called at window starts, while waiting at a barrier, and while
  /// stalled on a full outbound ring — the latter two keep producer
  /// cycles deadlock-free and are order-safe because injection re-sorts.
  void drain_inboxes() {
    Message msg;
    for (auto& ring : inbox) {
      if (ring == nullptr) continue;
      while (ring->try_pop(msg)) {
        pending.push_back(std::move(msg));
        std::push_heap(pending.begin(), pending.end(), LaterWhen{});
      }
    }
  }

  /// Fold same-shard sends into pending (phase A of every round).
  void fold_local_outbox() {
    for (Message& msg : outbox_local) {
      pending.push_back(std::move(msg));
      std::push_heap(pending.begin(), pending.end(), LaterWhen{});
    }
    outbox_local.clear();
  }

  /// Extract arrivals due before `window_end`, sort them canonically,
  /// and schedule them — the step that makes same-instant cross-actor
  /// ordering independent of shard count and drain timing.
  void inject_due(SimTime window_end) {
    due.clear();
    while (!pending.empty() && pending.front().when < window_end) {
      std::pop_heap(pending.begin(), pending.end(), LaterWhen{});
      due.push_back(std::move(pending.back()));
      pending.pop_back();
    }
    std::sort(due.begin(), due.end(), canonical_before);
    for (Message& msg : due) {
      const std::uint32_t index = acquire_slot();
      Slot& cell = slot_ref(index);
      cell.fn = std::move(msg.fn);
      cell.actor = msg.to;
      Shard* self = this;
      // The shard's slot/gen bookkeeping is the cancellation surface;
      // the inner Simulator handle is never used to cancel injections.
      (void)sim.schedule_at(msg.when, [self, index] { self->fire(index); });
    }
    due.clear();
  }

  const std::uint32_t id;
  Simulator sim;

  std::vector<std::unique_ptr<Slot[]>> chunks;
  std::uint32_t slot_count = 0;
  std::uint32_t free_slot = kNoSlot;

  std::vector<Message> pending;       // min-heap by when (arrivals not yet due)
  std::vector<Message> outbox_local;  // same-shard sends awaiting the next fold
  std::vector<Message> due;           // injection scratch
  std::vector<std::unique_ptr<SpscRing<Message>>> inbox;  // indexed by source shard

  ActorId current_actor = kInvalidActor;
  std::uint64_t mailbox_stalls = 0;
  std::uint64_t sends_cross = 0;
  std::uint64_t sends_local = 0;
  std::uint64_t sends_clamped = 0;
};

thread_local ParallelSimulator::Shard* ParallelSimulator::tls_shard_ = nullptr;

ParallelSimulator::ParallelSimulator(const ParallelConfig& config)
    : nshards_(config.shards < 1 ? 1 : config.shards),
      lookahead_(config.lookahead < 1 ? 1 : config.lookahead),
      use_threads_(config.use_threads),
      mailbox_capacity_(config.mailbox_capacity < 2 ? 2 : config.mailbox_capacity) {
  shards_.reserve(nshards_);
  for (std::uint32_t s = 0; s < nshards_; ++s) {
    shards_.push_back(std::make_unique<Shard>(s, nshards_, mailbox_capacity_));
  }
  shard_min_ = std::make_unique<std::atomic<SimTime>[]>(nshards_);
}

ParallelSimulator::~ParallelSimulator() = default;

ActorId ParallelSimulator::add_actor(std::uint32_t shard) {
  assert(!running_);
  assert(shard < nshards_);
  actors_.push_back(ActorInfo{shard, 0});
  return static_cast<ActorId>(actors_.size() - 1);
}

SimTime ParallelSimulator::now_on(ActorId actor) const {
  return shards_[actors_[actor].shard]->sim.now();
}

std::uint64_t ParallelSimulator::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->sim.events_processed();
  return total;
}

ShardStats ParallelSimulator::shard_stats(std::uint32_t shard) const {
  const Shard& s = *shards_[shard];
  return ShardStats{s.sim.events_processed(), s.mailbox_stalls,  s.sends_cross,
                    s.sends_local,            s.sends_clamped,   s.sim.task_heap_allocs()};
}

ShardTaskHandle ParallelSimulator::schedule_task(ActorId actor, SimTime when, Task fn) {
  Shard& s = *shards_[actors_[actor].shard];
  assert(!running_ || tls_shard_ == &s);
  const std::uint32_t index = s.acquire_slot();
  Shard::Slot& cell = s.slot_ref(index);
  cell.fn = std::move(fn);
  cell.actor = actor;
  const std::uint64_t gen = cell.gen;
  Shard* self = &s;
  // Cancellation goes through the returned ShardTaskHandle (shard/index/
  // gen), not the inner Simulator handle.
  (void)s.sim.schedule_at(when, [self, index] { self->fire(index); });
  return ShardTaskHandle(this, s.id, index, gen);
}

void ParallelSimulator::send_task(ActorId from, ActorId to, SimTime when, Task fn) {
  ActorInfo& src = actors_[from];
  Shard& s = *shards_[src.shard];
  assert(!running_ || tls_shard_ == &s);
  // Conservative floor: a message below now + lookahead would be able to
  // land inside the window that produced it, on a shard that already
  // executed past its timestamp. Bump it (deterministically) and count.
  const SimTime floor = s.sim.now() + lookahead_;
  if (when < floor) {
    when = floor;
    ++s.sends_clamped;
  }
  Message msg{when, from, to, src.send_seq++, std::move(fn)};
  Shard& dst = *shards_[actors_[to].shard];
  if (&dst == &s) {
    ++s.sends_local;
    s.outbox_local.push_back(std::move(msg));
    return;
  }
  ++s.sends_cross;
  SpscRing<Message>& ring = *dst.inbox[s.id];
  while (!ring.try_push(msg)) {
    // Backpressure: the consumer drains at every window start and while
    // it waits at a barrier, so this resolves once it catches up. Drain
    // our own inboxes meanwhile — two shards stalled on each other's
    // full rings would otherwise deadlock.
    ++s.mailbox_stalls;
    if (running_ && use_threads_) {
      s.drain_inboxes();
      std::this_thread::yield();
    } else {
      // Single-threaded (setup or inline run): we own the consumer too.
      dst.drain_inboxes();
    }
  }
}

void ParallelSimulator::reduce_window(SimTime limit) {
  SimTime global_min = Simulator::kNoPending;
  for (std::uint32_t s = 0; s < nshards_; ++s) {
    global_min = std::min(global_min, shard_min_[s].load(std::memory_order_relaxed));
  }
  if (abort_.load(std::memory_order_acquire) || global_min > limit) {
    done_.store(true, std::memory_order_relaxed);
    return;
  }
  // min(global_min + lookahead, limit + 1), written overflow-safe.
  const SimTime end =
      (limit - global_min >= lookahead_) ? global_min + lookahead_ : limit + 1;
  window_end_.store(end, std::memory_order_relaxed);
  ++windows_;  // single writer per round; ordered across rounds by round_
}

void ParallelSimulator::barrier(Shard& me, bool reduce, SimTime limit) {
  const std::uint64_t round = round_.load(std::memory_order_acquire);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) == nshards_ - 1) {
    // Last arriver: the acq_rel RMW chain on arrived_ makes every peer's
    // published shard_min_ visible here.
    arrived_.store(0, std::memory_order_relaxed);
    if (reduce) reduce_window(limit);
    round_.fetch_add(1, std::memory_order_acq_rel);
  } else {
    int spins = 0;
    while (round_.load(std::memory_order_acquire) == round) {
      // Keep consuming while parked so producers stalled on our full
      // rings make progress (see send_task).
      me.drain_inboxes();
      if (++spins > 64) std::this_thread::yield();
    }
  }
}

void ParallelSimulator::worker(std::uint32_t shard, SimTime limit) {
  Shard& s = *shards_[shard];
  tls_shard_ = &s;
  // Which barrier the round protocol owes next, so the catch path below
  // can fall back into lockstep no matter where the exception left us.
  bool owe_close = false;
  try {
    for (;;) {
      // Phase A: publish this shard's earliest pending timestamp; the
      // barrier reduction turns the global minimum G into the conservative
      // window [G, G + lookahead).
      s.drain_inboxes();
      s.fold_local_outbox();
      SimTime local_min = s.sim.next_event_time();
      if (!s.pending.empty() && s.pending.front().when < local_min) {
        local_min = s.pending.front().when;
      }
      shard_min_[shard].store(local_min, std::memory_order_relaxed);
      barrier(s, /*reduce=*/true, limit);
      if (done_.load(std::memory_order_relaxed)) break;
      // Phase B: inject due arrivals in canonical order, execute the
      // window, then close it — no shard may start the next reduction
      // while a peer is still producing messages for it.
      owe_close = true;
      const SimTime end = window_end_.load(std::memory_order_relaxed);
      s.inject_due(end);
      s.sim.run_until(end - 1);
      barrier(s, /*reduce=*/false, limit);
      owe_close = false;
    }
    // Nothing at or before limit remains anywhere; advance the clock.
    s.sim.run_until(limit);
  } catch (...) {
    // An actor callback threw mid-window. The peers are parked at (or
    // heading into) a barrier and would spin forever if this shard just
    // left, so keep pairing with them: finish the round we broke out of,
    // then publish "no work" each round until the reduction — which now
    // sees abort_ — raises the done flag for everyone.
    record_worker_error(std::current_exception());
    shard_min_[shard].store(Simulator::kNoPending, std::memory_order_relaxed);
    if (owe_close) barrier(s, /*reduce=*/false, limit);
    while (!done_.load(std::memory_order_relaxed)) {
      shard_min_[shard].store(Simulator::kNoPending, std::memory_order_relaxed);
      barrier(s, /*reduce=*/true, limit);
      if (done_.load(std::memory_order_relaxed)) break;
      barrier(s, /*reduce=*/false, limit);
    }
  }
  tls_shard_ = nullptr;
}

void ParallelSimulator::run_inline(SimTime limit) {
  for (;;) {
    SimTime global_min = Simulator::kNoPending;
    for (auto& shard : shards_) {
      Shard& s = *shard;
      tls_shard_ = &s;
      s.drain_inboxes();
      s.fold_local_outbox();
      SimTime local_min = s.sim.next_event_time();
      if (!s.pending.empty() && s.pending.front().when < local_min) {
        local_min = s.pending.front().when;
      }
      global_min = std::min(global_min, local_min);
    }
    if (global_min > limit) break;
    const SimTime end =
        (limit - global_min >= lookahead_) ? global_min + lookahead_ : limit + 1;
    ++windows_;
    for (auto& shard : shards_) {
      Shard& s = *shard;
      tls_shard_ = &s;
      s.inject_due(end);
      s.sim.run_until(end - 1);
    }
  }
  for (auto& shard : shards_) {
    tls_shard_ = shard.get();
    shard->sim.run_until(limit);
  }
  tls_shard_ = nullptr;
}

void ParallelSimulator::record_worker_error(std::exception_ptr err) {
  abort_.store(true, std::memory_order_release);
  util::MutexLock lock(error_mu_);
  if (first_error_ == nullptr) first_error_ = std::move(err);
}

std::exception_ptr ParallelSimulator::take_worker_error() {
  util::MutexLock lock(error_mu_);
  std::exception_ptr err = std::move(first_error_);
  first_error_ = nullptr;
  return err;
}

void ParallelSimulator::run_until(SimTime limit) {
  running_ = true;
  done_.store(false, std::memory_order_relaxed);
  abort_.store(false, std::memory_order_relaxed);
  if (!use_threads_) {
    try {
      run_inline(limit);
    } catch (...) {
      tls_shard_ = nullptr;
      now_ = limit;
      running_ = false;
      throw;
    }
  } else {
    std::vector<std::thread> threads;
    threads.reserve(nshards_);
    for (std::uint32_t s = 0; s < nshards_; ++s) {
      threads.emplace_back([this, s, limit] { worker(s, limit); });
    }
    for (std::thread& t : threads) t.join();
  }
  now_ = limit;
  running_ = false;
  if (std::exception_ptr err = take_worker_error()) std::rethrow_exception(err);
}

void ShardTaskHandle::cancel() {
  if (engine_ == nullptr) return;
  ParallelSimulator::Shard& s = *engine_->shards_[shard_];
  assert(!engine_->running_ || ParallelSimulator::tls_shard_ == &s);
  ParallelSimulator::Shard::Slot& cell = s.slot_ref(slot_);
  if (cell.in_use && cell.gen == gen_) cell.cancelled = true;
}

bool ShardTaskHandle::active() const {
  if (engine_ == nullptr) return false;
  ParallelSimulator::Shard& s = *engine_->shards_[shard_];
  assert(!engine_->running_ || ParallelSimulator::tls_shard_ == &s);
  ParallelSimulator::Shard::Slot& cell = s.slot_ref(slot_);
  return cell.in_use && cell.gen == gen_ && !cell.cancelled;
}

}  // namespace netseer::sim
