#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/time.h"

namespace netseer::sim {

using util::SimDuration;
using util::SimTime;

/// Cancellation token for a scheduled callback. Destroying the handle does
/// NOT cancel (fire-and-forget is the common case); call cancel().
/// A one-shot task's handle reports active() == false once it has fired;
/// a periodic task stays active until cancelled.
class TaskHandle {
 public:
  TaskHandle() = default;

  void cancel() {
    if (alive_) *alive_ = false;
  }
  [[nodiscard]] bool active() const { return alive_ && *alive_; }

 private:
  friend class Simulator;
  explicit TaskHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

/// Single-threaded discrete-event simulator with integer-nanosecond
/// virtual time. Events scheduled for the same instant run in scheduling
/// order, so runs are bit-reproducible for a fixed seed.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }

  /// Schedule `fn` at absolute time `when` (clamped to now for past times).
  TaskHandle schedule_at(SimTime when, std::function<void()> fn);

  /// Schedule `fn` `delay` after now.
  TaskHandle schedule_after(SimDuration delay, std::function<void()> fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Schedule `fn` every `interval`, first firing at now + interval.
  /// Cancel via the returned handle.
  TaskHandle schedule_every(SimDuration interval, std::function<void()> fn);

  /// Run until the queue drains or stop() is called.
  void run();

  /// Run all events with time <= `limit`; afterwards now() == limit (if
  /// the simulation reached it) and later events remain queued.
  void run_until(SimTime limit);

  /// Stop the current run() / run_until() after the in-flight event.
  void stop() { stopped_ = true; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
    bool oneshot = true;         // expire the handle after firing
    SimDuration interval = 0;    // > 0: execute() reschedules after firing
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void execute(Entry& entry);

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace netseer::sim
