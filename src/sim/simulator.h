#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "sim/task.h"
#include "util/time.h"

namespace netseer::sim {

using util::SimDuration;
using util::SimTime;

class Simulator;

/// Cancellation token for a scheduled callback. Destroying the handle does
/// NOT cancel (fire-and-forget is the common case); call cancel().
/// A one-shot task's handle reports active() == false once it has fired;
/// a periodic task stays active until cancelled.
///
/// Handles are generation-counted references into the simulator's slab:
/// copying is trivial, and a stale handle (task fired / cancelled / slot
/// recycled) degrades to an inactive no-op. Handles must not outlive the
/// Simulator that issued them.
class TaskHandle {
 public:
  TaskHandle() = default;

  void cancel();
  [[nodiscard]] bool active() const;

 private:
  friend class Simulator;
  TaskHandle(Simulator* owner, std::uint32_t slot, std::uint64_t gen)
      : owner_(owner), slot_(slot), gen_(gen) {}

  Simulator* owner_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t gen_ = 0;
};

/// Single-threaded discrete-event simulator with integer-nanosecond
/// virtual time. Events scheduled for the same instant run in scheduling
/// order, so runs are bit-reproducible for a fixed seed.
///
/// The hot path is allocation-free: callbacks are sim::Task values whose
/// captures live inline in a recycled slot slab (≤ Task::kInlineBytes, no
/// per-event heap cell), cancellation state is a generation counter in the
/// same slot instead of a shared_ptr per event, and the pending set is a
/// two-level calendar queue — a ring of kBucketWidth-wide buckets for the
/// near-monotonic bulk of link/queue events, plus a binary-heap overflow
/// for far-out timers (RTOs, pollers) that migrate into the ring as time
/// advances. Each bucket is an intrusive FIFO threaded through the slab
/// slots themselves (an 8-byte head/tail pair per bucket, a next link in
/// each slot), so scheduling never allocates and claiming a bucket
/// touches only the slots that are about to fire; the Task never moves
/// while queued. With 1 ns buckets a claimed bucket is a single instant,
/// and entries land in it in seq (scheduling) order, so the active chain
/// drains front-to-back — no per-event heap sift. The one way a bucket
/// can be out of seq order is an overflow migration into an epoch that a
/// cursor jump already exposed to direct pushes; migration flags that
/// bucket in a disorder bitmap and the claim re-sorts it, so pops stay
/// bit-identical to a global priority queue including same-instant FIFO.
class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Entries currently queued (including cancelled-but-unreaped ones).
  [[nodiscard]] std::size_t pending() const { return size_; }

  /// Tasks whose capture spilled to the heap (see Task::on_heap). Zero on
  /// the intended hot paths; the sim.alloc_per_event gauge watches it.
  [[nodiscard]] std::uint64_t task_heap_allocs() const { return task_heap_allocs_; }
  /// Total schedule_* calls, the denominator for spill ratios.
  [[nodiscard]] std::uint64_t tasks_scheduled() const { return next_seq_; }

  /// Schedule `fn` at absolute time `when` (clamped to now for past times).
  /// `fn` is any void() callable; it is stored as a sim::Task built in
  /// place in the slab cell (deduced so the capture never moves twice).
  template <typename F>
  [[nodiscard]] TaskHandle schedule_at(SimTime when, F&& fn) {
    return schedule_task(when, std::forward<F>(fn), /*oneshot=*/true, 0);
  }

  /// Schedule `fn` `delay` after now.
  template <typename F>
  [[nodiscard]] TaskHandle schedule_after(SimDuration delay, F&& fn) {
    return schedule_task(now_ + (delay < 0 ? 0 : delay), std::forward<F>(fn), /*oneshot=*/true,
                         0);
  }

  /// Schedule `fn` every `interval`, first firing at now + interval.
  /// Cancel via the returned handle. Non-positive intervals are clamped
  /// to 1 ns (a zero-interval periodic used to leak a forever-active
  /// handle that never fired again).
  template <typename F>
  [[nodiscard]] TaskHandle schedule_every(SimDuration interval, F&& fn) {
    if (interval < 1) interval = 1;
    return schedule_task(now_ + interval, std::forward<F>(fn), /*oneshot=*/false, interval);
  }

  /// Sentinel returned by next_event_time() when nothing is pending.
  static constexpr SimTime kNoPending = std::numeric_limits<SimTime>::max();

  /// Fire time of the earliest pending entry (cancelled-but-unreaped
  /// entries included), or kNoPending when the queue is empty. May claim
  /// internal queue structures (exactly like the run loop does) but never
  /// fires an event or advances now(); the parallel engine uses it to
  /// publish each shard's conservative local minimum.
  [[nodiscard]] SimTime next_event_time() { return prepare() ? peek_when() : kNoPending; }

  /// Run until the queue drains or stop() is called. Must not be called
  /// re-entrantly from inside a callback.
  void run();

  /// Run all events with time <= `limit`; afterwards now() == limit (if
  /// the simulation reached it) and later events remain queued.
  void run_until(SimTime limit);

  /// Stop the current run() / run_until() after the in-flight event.
  /// A pending stop is consumed (reset) when the next run starts, so
  /// calling stop() while idle does not suppress a future run.
  void stop() { stopped_ = true; }

 private:
  friend class TaskHandle;

  /// Overflow-heap key: trivially copyable so heap sifts are memcpys.
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  /// Slab cell holding the callback and its control state. `gen`
  /// increments on release, invalidating every outstanding handle to the
  /// old incarnation. The slab is chunked so cells never move: a callback
  /// that schedules new tasks may append a chunk, but the cell being
  /// invoked stays put, so fire() runs the Task in place with no move.
  /// `when`/`seq`/`next` double as the queue entry while the slot is
  /// queued in a ring bucket; `next` is also the free-list link (the two
  /// lifetimes never overlap).
  struct Slot {
    Task fn;
    SimTime when = 0;
    std::uint64_t seq = 0;
    SimDuration interval = 0;  // > 0: periodic, requeued after firing
    std::uint64_t gen = 0;
    std::uint32_t next = kNoSlot;  // bucket chain when queued, free list when free
    bool oneshot = true;
    bool cancelled = false;
    bool in_use = false;
  };

  /// Intrusive FIFO of slab slots chained by Slot::next.
  struct Bucket {
    std::uint32_t head = kNoSlot;
    std::uint32_t tail = kNoSlot;
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  /// log2 of the bucket width in ns. 1 ns buckets make a bucket exactly
  /// one instant, so the active bucket drains as a plain FIFO (see the
  /// class comment); the occupancy bitmap makes skipping the empty
  /// buckets in between nearly free, and anything past the 4.1 us
  /// horizon rides the overflow heap until its window arrives. The FIFO
  /// drain leans on one-instant buckets, so widening needs a re-think.
  static constexpr int kBucketShift = 0;
  /// Sized so store-and-forward hop delays (tens of ns to ~8 us of
  /// serialization) stay in-ring; RTO/poller timers beyond the horizon
  /// take the overflow heap, which is exactly what it is for.
  static constexpr std::size_t kBucketCount = 8192;  // ring horizon ≈ 8.2 us

  [[nodiscard]] static std::uint64_t epoch_of(SimTime t) {
    return static_cast<std::uint64_t>(t) >> kBucketShift;
  }
  [[nodiscard]] static bool earlier(const Entry& a, const Entry& b) {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }
  /// Heap comparator as a stateless functor so std::*_heap inlines the
  /// compare (a function pointer would cost an indirect call per sift).
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const { return earlier(b, a); }
  };

  static constexpr std::uint32_t kChunkShift = 8;  // 256 slots per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  [[nodiscard]] Slot& slot_ref(std::uint32_t index) {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }
  [[nodiscard]] const Slot& slot_ref(std::uint32_t index) const {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  template <typename F>
  [[nodiscard]] TaskHandle schedule_task(SimTime when, F&& fn, bool oneshot,
                                         SimDuration interval) {
    const std::uint32_t slot = acquire_slot();
    Slot& cell = slot_ref(slot);
    cell.fn = std::forward<F>(fn);  // in-place Task construction
    if (cell.fn.on_heap()) ++task_heap_allocs_;
    cell.interval = interval;
    cell.oneshot = oneshot;
    return enqueue_slot(when, slot);
  }

  [[nodiscard]] TaskHandle enqueue_slot(SimTime when, std::uint32_t slot);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);

  void append(Bucket& bucket, std::uint32_t slot);
  void push_slot(std::uint32_t slot);
  void migrate_overflow();
  /// Re-chain current_ into (when, seq) order (rare: set-up by a
  /// disorder-flagged migration, see push_slot/migrate_overflow).
  void sort_current();
  /// Ensure the head of current_ is the earliest pending entry; false
  /// when the queue is empty.
  bool prepare();
  /// The earliest pending slot's fire time; valid only after prepare()
  /// returned true.
  [[nodiscard]] SimTime peek_when() { return slot_ref(current_.head).when; }
  /// Detach the earliest slot from current_ (FIFO head advance).
  std::uint32_t pop_current();
  void fire(std::uint32_t slot);

  static constexpr std::size_t kWords = kBucketCount / 64;

  void mark(std::size_t index) { occupied_[index >> 6] |= 1ull << (index & 63); }
  void unmark(std::size_t index) { occupied_[index >> 6] &= ~(1ull << (index & 63)); }
  void mark_disorder(std::size_t index) { disorder_[index >> 6] |= 1ull << (index & 63); }
  /// Read-and-clear the disorder bit for a bucket being claimed.
  [[nodiscard]] bool take_disorder(std::size_t index) {
    const std::uint64_t bit = 1ull << (index & 63);
    const bool was_set = (disorder_[index >> 6] & bit) != 0;
    disorder_[index >> 6] &= ~bit;
    return was_set;
  }
  /// Circular distance from ring index `base` to the first occupied
  /// bucket (0 if `base` itself is occupied). Requires ring_size_ > 0.
  [[nodiscard]] std::size_t next_occupied(std::size_t base) const;

  // Two-level calendar queue.
  std::array<Bucket, kBucketCount> ring_;
  std::array<std::uint64_t, kWords> occupied_{};  // bitmap of non-empty buckets
  std::array<std::uint64_t, kWords> disorder_{};  // buckets needing a claim-time sort
  std::vector<Entry> overflow_;  // min-heap by (when, seq) via Later{}
  Bucket current_;               // claimed chain being drained, FIFO
  std::vector<std::uint32_t> scratch_;  // sort_current work buffer (rare)
  std::uint64_t cursor_epoch_ = 0;      // epoch of the active bucket
  std::size_t size_ = 0;                // all pending entries

  // Task + cancellation slab (chunked; cells have stable addresses).
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;  // slots handed out so far (high-water)
  std::uint32_t free_slot_ = kNoSlot;

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t task_heap_allocs_ = 0;
  bool stopped_ = false;
};

inline void TaskHandle::cancel() {
  if (owner_ == nullptr) return;
  Simulator::Slot& slot = owner_->slot_ref(slot_);
  if (slot.in_use && slot.gen == gen_) slot.cancelled = true;
}

inline bool TaskHandle::active() const {
  if (owner_ == nullptr) return false;
  const Simulator::Slot& slot = owner_->slot_ref(slot_);
  return slot.in_use && slot.gen == gen_ && !slot.cancelled;
}

}  // namespace netseer::sim
