#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "util/annotations.h"

namespace netseer::sim {

/// Move-only callable with small-buffer optimization, the scheduling
/// payload of the event engine. Captures up to kInlineBytes live inline
/// in the Entry itself — no heap allocation on the per-event hot path —
/// while larger captures transparently spill to a single heap cell
/// (observable via on_heap(), which feeds the sim.alloc_per_event
/// telemetry gauge so spills show up in snapshots instead of profiles).
///
/// Inline storage additionally requires a nothrow move constructor so
/// entries can relocate between calendar buckets without ever throwing
/// mid-queue-surgery; throwing movers also spill.
class Task {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  Task() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Task> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  // NOLINTNEXTLINE(google-explicit-constructor) — implicit like std::function
  Task(F&& fn) {
    construct(std::forward<F>(fn));
  }

  /// Assign a callable in place — no temporary Task, no extra relocate.
  /// The scheduler hot path builds the capture directly in its slab cell.
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Task> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Task& operator=(F&& fn) {
    reset();
    construct(std::forward<F>(fn));
    return *this;
  }

  Task(Task&& other) noexcept { move_from(other); }
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { reset(); }

  NETSEER_HOT void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }
  /// The capture spilled to the heap (too big / overaligned / throwing move).
  [[nodiscard]] bool on_heap() const noexcept { return ops_ != nullptr && ops_->heap; }

  NETSEER_HOT void reset() noexcept {
    if (ops_ != nullptr) {
      // destroy is null for trivially-destructible inline captures — the
      // common timer-lambda case — turning the per-event teardown into a
      // predictable branch instead of an indirect call.
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);                  // null: trivially destructible
    bool heap;
  };

  NETSEER_HOT void move_from(Task& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) ops_->relocate(storage_, other.storage_);
    other.ops_ = nullptr;
  }

  // ALLOW_INIT: the oversized-capture heap spill below is the documented
  // fallback path; on_heap() surfaces it in telemetry instead of the lint.
  template <typename F>
  NETSEER_HOT_ALLOW_INIT void construct(F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
      /*heap=*/false};

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
      [](void* dst, void* src) { ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src))); },
      [](void* p) { delete *std::launder(reinterpret_cast<Fn**>(p)); },
      /*heap=*/true};

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace netseer::sim
