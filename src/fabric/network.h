#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/host.h"
#include "net/link.h"
#include "pdp/switch.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace netseer::fabric {

/// Owns a simulated network: the simulator, every switch, host, and link,
/// and the wiring between them. Provides shortest-path ECMP route
/// installation so experiments only describe topology.
class Network {
 public:
  explicit Network(std::uint64_t seed = 1);

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] util::Rng& rng() { return rng_; }

  // ---- Construction -------------------------------------------------------
  pdp::Switch& add_switch(const std::string& name, const pdp::SwitchConfig& config);
  net::Host& add_host(const std::string& name, packet::Ipv4Addr addr, util::BitRate nic_rate);

  /// Wire switch `a` port `pa` to switch `b` port `pb` with a full-duplex
  /// cable. Returns the two unidirectional links (a->b, b->a).
  std::pair<net::Link*, net::Link*> connect_switches(pdp::Switch& a, util::PortId pa,
                                                     pdp::Switch& b, util::PortId pb,
                                                     util::SimDuration delay);

  /// Wire host `h` to switch `sw` port `p`. Returns (host->switch,
  /// switch->host).
  std::pair<net::Link*, net::Link*> connect_host(pdp::Switch& sw, util::PortId port,
                                                 net::Host& host, util::SimDuration delay);

  /// Install /32 shortest-path ECMP routes for every host on every
  /// switch. Call after the topology is complete; idempotent.
  void compute_routes();

  /// Apply `observer` to every link (existing and future).
  void set_link_observer(net::LinkObserver* observer);

  /// Attach `agent` to every switch.
  void add_agent_everywhere(pdp::SwitchAgent* agent);

  // ---- Lookup ---------------------------------------------------------------
  [[nodiscard]] const std::vector<std::unique_ptr<pdp::Switch>>& switches() const {
    return switches_;
  }
  [[nodiscard]] std::vector<std::unique_ptr<pdp::Switch>>& switches() { return switches_; }
  [[nodiscard]] const std::vector<std::unique_ptr<net::Host>>& hosts() const { return hosts_; }
  [[nodiscard]] std::vector<std::unique_ptr<net::Host>>& hosts() { return hosts_; }
  [[nodiscard]] const std::vector<std::unique_ptr<net::Link>>& links() const { return links_; }

  [[nodiscard]] pdp::Switch* find_switch(const std::string& name);
  [[nodiscard]] net::Host* find_host(const std::string& name);
  [[nodiscard]] net::Node* node(util::NodeId id);

  /// Total application-level bytes carried across all links (for overhead
  /// ratio accounting in the benches).
  [[nodiscard]] std::uint64_t total_link_bytes_carried() const;

 private:
  net::Link* make_link(net::Node& to, util::PortId to_port, util::SimDuration delay,
                       util::NodeId from);

  struct Adjacency {
    util::NodeId peer;
    util::PortId local_port;
  };

  sim::Simulator sim_;
  util::Rng rng_;
  util::NodeId next_id_ = 1;
  std::vector<std::unique_ptr<pdp::Switch>> switches_;
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::vector<std::vector<Adjacency>> adjacency_;  // indexed by NodeId
  net::LinkObserver* link_observer_ = nullptr;
};

}  // namespace netseer::fabric
