#include "fabric/partition.h"

#include <algorithm>
#include <unordered_set>

namespace netseer::fabric {

namespace {

/// Fill in lookahead and the cross/intra link counts from the network's
/// links, given a complete switch assignment.
void finish_plan(const Network& net, PartitionPlan& plan) {
  std::unordered_set<util::NodeId> switch_ids;
  switch_ids.reserve(net.switches().size());
  for (const auto& sw : net.switches()) switch_ids.insert(sw->id());

  util::SimDuration min_delay = 0;
  for (const auto& link : net.links()) {
    const util::NodeId from = link->from_node();
    const util::NodeId to = link->peer().id();
    if (!switch_ids.contains(from) || !switch_ids.contains(to)) continue;
    if (min_delay == 0 || link->delay() < min_delay) min_delay = link->delay();
    if (plan.assignment.at(from) == plan.assignment.at(to)) {
      ++plan.intra_shard_links;
    } else {
      ++plan.cross_shard_links;
    }
  }
  plan.lookahead = min_delay > 0 ? min_delay : 1;

  plan.shard_sizes.assign(plan.shards, 0);
  for (const auto& [node, shard] : plan.assignment) {
    (void)node;
    ++plan.shard_sizes[shard];
  }
}

}  // namespace

PartitionPlan partition_switches(const Network& net, std::uint32_t shards) {
  PartitionPlan plan;
  plan.shards = std::max<std::uint32_t>(1, shards);
  std::uint32_t next = 0;
  for (const auto& sw : net.switches()) {
    plan.assignment.emplace(sw->id(), next);
    next = (next + 1) % plan.shards;
  }
  finish_plan(net, plan);
  return plan;
}

PartitionPlan partition_testbed(const Testbed& bed, const TestbedConfig& config,
                                std::uint32_t shards) {
  PartitionPlan plan;
  plan.shards = std::max<std::uint32_t>(1, shards);

  // Pods whole, striped round-robin: every agg<->tor link stays internal.
  const auto pod_shard = [&](int pod) {
    return static_cast<std::uint32_t>(pod) % plan.shards;
  };
  for (int pod = 0; pod < config.num_pods; ++pod) {
    for (int a = 0; a < config.aggs_per_pod; ++a) {
      plan.assignment.emplace(bed.aggs[pod * config.aggs_per_pod + a]->id(), pod_shard(pod));
    }
    for (int t = 0; t < config.tors_per_pod; ++t) {
      plan.assignment.emplace(bed.tors[pod * config.tors_per_pod + t]->id(), pod_shard(pod));
    }
  }
  // Cores talk to every pod, so any placement cuts links; spread them for
  // balance.
  for (std::size_t c = 0; c < bed.cores.size(); ++c) {
    plan.assignment.emplace(bed.cores[c]->id(), static_cast<std::uint32_t>(c % plan.shards));
  }

  finish_plan(*bed.net, plan);
  return plan;
}

}  // namespace netseer::fabric
