#pragma once

#include <memory>
#include <vector>

#include "fabric/network.h"

namespace netseer::fabric {

/// Parameters for the paper's testbed topology (§5): a 4-ary fat-tree cut
/// down to 10 Tofino switches — 2 cores, 2 pods of (2 aggregation + 2
/// ToR), 8 hosts per ToR at 25G, 100G fabric links.
struct TestbedConfig {
  int num_pods = 2;
  int aggs_per_pod = 2;
  int tors_per_pod = 2;
  int num_cores = 2;
  int hosts_per_tor = 8;
  util::BitRate fabric_rate = util::BitRate::gbps(100);
  util::BitRate host_rate = util::BitRate::gbps(25);
  util::SimDuration link_delay = util::microseconds(1);
  pdp::MmuConfig mmu{};
  util::SimDuration pipeline_latency = util::nanoseconds(400);
};

/// Handles to the constructed topology (the Network owns the objects).
struct Testbed {
  std::unique_ptr<Network> net;
  std::vector<pdp::Switch*> cores;
  std::vector<pdp::Switch*> aggs;  // pod-major order
  std::vector<pdp::Switch*> tors;  // pod-major order
  std::vector<net::Host*> hosts;   // tor-major order

  [[nodiscard]] std::vector<pdp::Switch*> all_switches() const {
    std::vector<pdp::Switch*> all = cores;
    all.insert(all.end(), aggs.begin(), aggs.end());
    all.insert(all.end(), tors.begin(), tors.end());
    return all;
  }
};

/// Build the testbed topology with routes installed. Host addresses are
/// 10.<pod>.<tor-in-pod>.<host+1>.
[[nodiscard]] Testbed make_testbed(const TestbedConfig& config = {}, std::uint64_t seed = 1);

/// Build a canonical k-ary fat-tree (k even): (k/2)^2 cores, k pods of
/// k/2 aggregation and k/2 edge switches, k/2 hosts per edge switch.
[[nodiscard]] Testbed make_fat_tree(int k, const TestbedConfig& config = {},
                                    std::uint64_t seed = 1);

}  // namespace netseer::fabric
