#include "fabric/network.h"

#include <deque>
#include <limits>

namespace netseer::fabric {

Network::Network(std::uint64_t seed) : rng_(seed) {
  adjacency_.emplace_back();  // NodeId 0 unused
}

pdp::Switch& Network::add_switch(const std::string& name, const pdp::SwitchConfig& config) {
  auto sw = std::make_unique<pdp::Switch>(sim_, next_id_++, name, config);
  adjacency_.emplace_back();
  switches_.push_back(std::move(sw));
  return *switches_.back();
}

net::Host& Network::add_host(const std::string& name, packet::Ipv4Addr addr,
                             util::BitRate nic_rate) {
  auto host = std::make_unique<net::Host>(sim_, next_id_++, name, addr, nic_rate);
  adjacency_.emplace_back();
  hosts_.push_back(std::move(host));
  return *hosts_.back();
}

net::Link* Network::make_link(net::Node& to, util::PortId to_port, util::SimDuration delay,
                              util::NodeId from) {
  auto link = std::make_unique<net::Link>(sim_, rng_.fork(), to, to_port, delay, from);
  if (link_observer_) link->set_observer(link_observer_);
  links_.push_back(std::move(link));
  return links_.back().get();
}

std::pair<net::Link*, net::Link*> Network::connect_switches(pdp::Switch& a, util::PortId pa,
                                                            pdp::Switch& b, util::PortId pb,
                                                            util::SimDuration delay) {
  net::Link* ab = make_link(b, pb, delay, a.id());
  net::Link* ba = make_link(a, pa, delay, b.id());
  a.connect(pa, ab);
  b.connect(pb, ba);
  adjacency_[a.id()].push_back({b.id(), pa});
  adjacency_[b.id()].push_back({a.id(), pb});
  return {ab, ba};
}

std::pair<net::Link*, net::Link*> Network::connect_host(pdp::Switch& sw, util::PortId port,
                                                        net::Host& host,
                                                        util::SimDuration delay) {
  net::Link* up = make_link(sw, port, delay, host.id());      // host -> switch
  net::Link* down = make_link(host, 0, delay, sw.id());       // switch -> host
  host.set_uplink(up);
  sw.connect(port, down);
  adjacency_[sw.id()].push_back({host.id(), port});
  adjacency_[host.id()].push_back({sw.id(), 0});
  return {up, down};
}

void Network::compute_routes() {
  constexpr int kUnreached = std::numeric_limits<int>::max();

  for (const auto& host : hosts_) {
    // BFS hop distances from the destination host over the whole graph.
    std::vector<int> dist(adjacency_.size(), kUnreached);
    dist[host->id()] = 0;
    std::deque<util::NodeId> frontier{host->id()};
    while (!frontier.empty()) {
      const util::NodeId u = frontier.front();
      frontier.pop_front();
      for (const auto& adj : adjacency_[u]) {
        if (dist[adj.peer] == kUnreached) {
          dist[adj.peer] = dist[u] + 1;
          frontier.push_back(adj.peer);
        }
      }
    }

    // Each switch routes toward every neighbour one hop closer.
    const packet::Ipv4Prefix prefix{host->addr(), 32};
    for (auto& sw : switches_) {
      if (dist[sw->id()] == kUnreached) continue;
      pdp::EcmpGroup group;
      for (const auto& adj : adjacency_[sw->id()]) {
        if (dist[adj.peer] == dist[sw->id()] - 1) group.ports.push_back(adj.local_port);
      }
      if (!group.empty()) sw->routes().insert(prefix, std::move(group));
    }
  }
}

void Network::set_link_observer(net::LinkObserver* observer) {
  link_observer_ = observer;
  for (auto& link : links_) link->set_observer(observer);
}

void Network::add_agent_everywhere(pdp::SwitchAgent* agent) {
  for (auto& sw : switches_) sw->add_agent(agent);
}

pdp::Switch* Network::find_switch(const std::string& name) {
  for (auto& sw : switches_) {
    if (sw->name() == name) return sw.get();
  }
  return nullptr;
}

net::Host* Network::find_host(const std::string& name) {
  for (auto& host : hosts_) {
    if (host->name() == name) return host.get();
  }
  return nullptr;
}

net::Node* Network::node(util::NodeId id) {
  for (auto& sw : switches_) {
    if (sw->id() == id) return sw.get();
  }
  for (auto& host : hosts_) {
    if (host->id() == id) return host.get();
  }
  return nullptr;
}

std::uint64_t Network::total_link_bytes_carried() const {
  std::uint64_t total = 0;
  for (const auto& link : links_) total += link->bytes_carried();
  return total;
}

}  // namespace netseer::fabric
