#pragma once

#include "fabric/network.h"

namespace netseer::fabric {

/// A multi-board (multi-card) chassis switch, modeled as two forwarding
/// boards joined by an internal backplane (§3.3: "In multi-board (card)
/// switches, we use a similar idea to detect inter-card packet drop").
/// Backplane transfers can silently fail exactly like an external link —
/// Figure 4's "inter-card drop" rows — and NetSeer's inter-switch
/// sequencing on the backplane ports recovers them the same way.
struct MultiBoardSwitch {
  pdp::Switch* board_a = nullptr;
  pdp::Switch* board_b = nullptr;
  /// The two backplane directions (fault-injectable).
  net::Link* backplane_ab = nullptr;
  net::Link* backplane_ba = nullptr;
  /// The backplane port index on each board.
  util::PortId backplane_port_a = 0;
  util::PortId backplane_port_b = 0;
};

/// Create the chassis inside `net`. Each board gets `config` (its last
/// port becomes the backplane); front-panel ports 0..num_ports-2 of each
/// board remain available for connect_host / connect_switches.
[[nodiscard]] inline MultiBoardSwitch add_multiboard_switch(Network& net,
                                                            const std::string& name,
                                                            pdp::SwitchConfig config,
                                                            util::SimDuration backplane_delay =
                                                                util::nanoseconds(200)) {
  MultiBoardSwitch chassis;
  chassis.backplane_port_a = static_cast<util::PortId>(config.num_ports - 1);
  chassis.backplane_port_b = chassis.backplane_port_a;
  chassis.board_a = &net.add_switch(name + "/boardA", config);
  chassis.board_b = &net.add_switch(name + "/boardB", config);
  auto [ab, ba] = net.connect_switches(*chassis.board_a, chassis.backplane_port_a,
                                       *chassis.board_b, chassis.backplane_port_b,
                                       backplane_delay);
  chassis.backplane_ab = ab;
  chassis.backplane_ba = ba;
  return chassis;
}

}  // namespace netseer::fabric
