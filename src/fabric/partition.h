#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fabric/fat_tree.h"
#include "fabric/network.h"
#include "util/time.h"

namespace netseer::fabric {

/// Output of the topology partitioner: which shard owns each switch, and
/// the conservative lookahead the parallel engine may use with that
/// assignment.
struct PartitionPlan {
  std::uint32_t shards = 1;

  /// min propagation delay over ALL switch-switch links — deliberately
  /// not just the cut links, so the value (and therefore every window
  /// boundary of the parallel run) is identical for every shard count.
  /// That invariance is what lets the golden tests compare 1/2/4/8-shard
  /// runs bit-for-bit.
  util::SimDuration lookahead = 1;

  /// NodeId -> shard for every switch in the network.
  std::unordered_map<util::NodeId, std::uint32_t> assignment;

  /// Switch-switch links whose endpoints landed on different / the same
  /// shard (host links are shard-internal by construction and excluded).
  std::size_t cross_shard_links = 0;
  std::size_t intra_shard_links = 0;

  /// Switches per shard, indexed by shard.
  std::vector<std::size_t> shard_sizes;

  [[nodiscard]] std::uint32_t shard_of(util::NodeId node) const {
    return assignment.at(node);
  }
};

/// Partition a network's switches round-robin into `shards` shards (in
/// switch construction order, so the assignment is deterministic for a
/// given topology). Works on any Network; lookahead falls back to 1 ns if
/// the network has no switch-switch links.
[[nodiscard]] PartitionPlan partition_switches(const Network& net, std::uint32_t shards);

/// Topology-aware variant for the testbed/fat-tree builders: keeps each
/// pod's aggregation and ToR switches on one shard (pods are striped
/// round-robin across shards) and distributes the cores evenly, which
/// turns most traffic shard-internal — only pod<->core hops cross.
[[nodiscard]] PartitionPlan partition_testbed(const Testbed& bed, const TestbedConfig& config,
                                              std::uint32_t shards);

}  // namespace netseer::fabric
