#include "fabric/fat_tree.h"

#include <cstdio>
#include <stdexcept>
#include <string>

namespace netseer::fabric {

namespace {

/// printf-style device names ("agg0-1", "h0-1-7"). GCC 12's -Wrestrict
/// misfires on chained operator+ over std::to_string temporaries, so the
/// names are formatted into a bounded buffer instead.
std::string device_name(const char* format, int a, int b = -1, int c = -1) {
  char buf[48];  // worst case: three full 10-digit ints plus separators
  if (c >= 0) {
    std::snprintf(buf, sizeof(buf), format, a, b, c);
  } else if (b >= 0) {
    std::snprintf(buf, sizeof(buf), format, a, b);
  } else {
    std::snprintf(buf, sizeof(buf), format, a);
  }
  return buf;
}

pdp::SwitchConfig switch_config(const TestbedConfig& config, int num_ports) {
  pdp::SwitchConfig sc;
  sc.num_ports = static_cast<std::uint16_t>(num_ports);
  sc.port_rate = config.fabric_rate;
  sc.mmu = config.mmu;
  sc.pipeline_latency = config.pipeline_latency;
  return sc;
}

}  // namespace

Testbed make_testbed(const TestbedConfig& config, std::uint64_t seed) {
  Testbed tb;
  tb.net = std::make_unique<Network>(seed);
  Network& net = *tb.net;

  const int ports_needed =
      std::max({config.hosts_per_tor + config.aggs_per_pod,
                config.tors_per_pod + config.num_cores, config.num_pods * config.aggs_per_pod});
  const auto sc = switch_config(config, ports_needed);

  for (int c = 0; c < config.num_cores; ++c) {
    tb.cores.push_back(&net.add_switch(device_name("core%d", c), sc));
  }
  for (int p = 0; p < config.num_pods; ++p) {
    for (int a = 0; a < config.aggs_per_pod; ++a) {
      tb.aggs.push_back(
          &net.add_switch(device_name("agg%d-%d", p, a), sc));
    }
    for (int t = 0; t < config.tors_per_pod; ++t) {
      tb.tors.push_back(
          &net.add_switch(device_name("tor%d-%d", p, t), sc));
    }
  }

  // Aggregation <-> core: each agg connects to every core.
  for (int p = 0; p < config.num_pods; ++p) {
    for (int a = 0; a < config.aggs_per_pod; ++a) {
      pdp::Switch& agg = *tb.aggs[p * config.aggs_per_pod + a];
      for (int c = 0; c < config.num_cores; ++c) {
        // Agg uplink ports start after its ToR-facing ports.
        const auto agg_port = static_cast<util::PortId>(config.tors_per_pod + c);
        const auto core_port = static_cast<util::PortId>(p * config.aggs_per_pod + a);
        net.connect_switches(agg, agg_port, *tb.cores[c], core_port, config.link_delay);
      }
    }
  }

  // ToR <-> aggregation: each ToR connects to every agg in its pod.
  for (int p = 0; p < config.num_pods; ++p) {
    for (int t = 0; t < config.tors_per_pod; ++t) {
      pdp::Switch& tor = *tb.tors[p * config.tors_per_pod + t];
      for (int a = 0; a < config.aggs_per_pod; ++a) {
        pdp::Switch& agg = *tb.aggs[p * config.aggs_per_pod + a];
        // ToR uplink ports start after its host-facing ports.
        const auto tor_port = static_cast<util::PortId>(config.hosts_per_tor + a);
        const auto agg_port = static_cast<util::PortId>(t);
        net.connect_switches(tor, tor_port, agg, agg_port, config.link_delay);
      }
    }
  }

  // Hosts.
  for (int p = 0; p < config.num_pods; ++p) {
    for (int t = 0; t < config.tors_per_pod; ++t) {
      pdp::Switch& tor = *tb.tors[p * config.tors_per_pod + t];
      for (int h = 0; h < config.hosts_per_tor; ++h) {
        const auto addr = packet::Ipv4Addr::from_octets(
            10, static_cast<std::uint8_t>(p), static_cast<std::uint8_t>(t),
            static_cast<std::uint8_t>(h + 1));
        auto& host =
            net.add_host(device_name("h%d-%d-%d", p, t, h), addr, config.host_rate);
        net.connect_host(tor, static_cast<util::PortId>(h), host, config.link_delay);
        tb.hosts.push_back(&host);
      }
    }
  }

  net.compute_routes();
  return tb;
}

Testbed make_fat_tree(int k, const TestbedConfig& config, std::uint64_t seed) {
  if (k < 2 || k % 2 != 0) throw std::invalid_argument("fat-tree arity must be even and >= 2");
  TestbedConfig ft = config;
  ft.num_pods = k;
  ft.aggs_per_pod = k / 2;
  ft.tors_per_pod = k / 2;
  ft.num_cores = (k / 2) * (k / 2);
  ft.hosts_per_tor = k / 2;
  return make_testbed(ft, seed);
}

}  // namespace netseer::fabric
