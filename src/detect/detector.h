#pragma once

#include <cstdint>
#include <memory>

namespace netseer::detect {

struct Rule;

/// What a detector concluded about one closed window's feature value.
/// `firing` follows the family's own hysteresis (a threshold detector
/// stays firing until the value crosses its clear level, a CUSUM
/// detector until its statistic drains), so the alert pipeline never
/// re-implements per-family clear logic.
struct DetectorResult {
  bool firing = false;
  double value = 0.0;     // the observed feature
  double expected = 0.0;  // the family's current reference (threshold, mean, ...)
  double score = 0.0;     // how far past the gate the family judged it (>= 0)
};

/// One anomaly-detection family, fed one closed window at a time. A
/// detector instance is per (rule, window key): it owns whatever state
/// the family needs (EWMA moments, CUSUM statistic) and nothing else,
/// which is what lets the window layer recycle instances through a free
/// list — a new family is one file implementing this interface plus a
/// case in make_detector().
///
/// `empty` marks a window the key saw no rows in (value 0 by
/// construction). Rate-like features treat it as a real zero sample;
/// sample-statistic features (latency mean) must not learn from it.
class Detector {
 public:
  virtual ~Detector() = default;

  /// Consume one closed window and report whether the key is anomalous.
  virtual DetectorResult observe(double value, bool empty) = 0;

  /// Forget everything — the instance is about to be reused for a
  /// different key (idle-GC free list).
  virtual void reset() = 0;

  [[nodiscard]] virtual const char* family() const = 0;
};

/// Instantiate the family `rule` asks for, configured from the rule's
/// knobs. Defined in rules.cpp next to the family registry.
[[nodiscard]] std::unique_ptr<Detector> make_detector(const Rule& rule);

}  // namespace netseer::detect
