#pragma once

#include <cstdint>

#include "detect/detector.h"

namespace netseer::detect {

/// Static threshold with hysteresis: fires when the value reaches
/// `trigger`, stays firing until it falls to `clear` (<= trigger) — the
/// two-level gate that keeps a value oscillating around one line from
/// flapping the alert. The simplest family, and the production baseline
/// for hard SLO-style rules ("more than N dropped packets per window").
class ThresholdDetector final : public Detector {
 public:
  ThresholdDetector(double trigger, double clear);

  DetectorResult observe(double value, bool empty) override;
  void reset() override;
  [[nodiscard]] const char* family() const override { return "threshold"; }

 private:
  double trigger_;
  double clear_;
  bool firing_ = false;
};

/// EWMA residual: tracks an exponentially-weighted mean and variance of
/// the feature and fires when a sample lands more than `k_sigma`
/// standard deviations above the mean (one-sided — the features here
/// are "badness rates" where only upward excursions matter). The first
/// `warmup` samples only train the baseline and can never fire; while
/// firing, the moments are frozen so the anomaly cannot teach the
/// detector that anomalous is normal. `min_sigma` floors the deviation
/// estimate so a perfectly flat warm-up does not make any nonzero
/// residual infinite-sigma. Empty windows are real zero samples for
/// rate features; for sample statistics (latency mean) the window layer
/// flags them and the detector neither learns nor fires on them.
class EwmaDetector final : public Detector {
 public:
  EwmaDetector(double alpha, double k_sigma, std::uint32_t warmup, double min_sigma,
               bool skip_empty);

  DetectorResult observe(double value, bool empty) override;
  void reset() override;
  [[nodiscard]] const char* family() const override { return "ewma"; }

  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double sigma() const;
  [[nodiscard]] bool warmed_up() const { return seen_ >= warmup_; }

 private:
  double alpha_;
  double k_sigma_;
  std::uint32_t warmup_;
  double min_sigma_;
  bool skip_empty_;

  std::uint32_t seen_ = 0;
  double mean_ = 0.0;
  double var_ = 0.0;
  bool firing_ = false;
};

/// Page–Hinkley / one-sided CUSUM change-point detector: accumulates
/// g = max(0, g + (value - reference - slack)) and fires when g exceeds
/// `decision_h`. The reference mean is learned from the first `warmup`
/// samples; `slack` absorbs normal jitter so only a sustained upward
/// mean shift drives g across the decision boundary. Detection delay is
/// therefore ~decision_h / (shift - slack) windows — small shifts take
/// proportionally longer, which the golden tests pin. While firing, the
/// statistic drains by `slack` per in-control window and the detector
/// clears once it falls below decision_h / 2 (hysteresis, same
/// anti-flap contract as the threshold family).
class CusumDetector final : public Detector {
 public:
  CusumDetector(double slack, double decision_h, std::uint32_t warmup);

  DetectorResult observe(double value, bool empty) override;
  void reset() override;
  [[nodiscard]] const char* family() const override { return "cusum"; }

  [[nodiscard]] double statistic() const { return g_; }
  [[nodiscard]] double reference() const { return reference_; }

 private:
  double slack_;
  double decision_h_;
  std::uint32_t warmup_;

  std::uint32_t seen_ = 0;
  double reference_ = 0.0;
  double g_ = 0.0;
  bool firing_ = false;
};

}  // namespace netseer::detect
