#include "detect/alerts.h"

namespace netseer::detect {

const char* to_string(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::kWarning: return "warning";
    case AlertSeverity::kCritical: return "critical";
  }
  return "?";
}

const char* to_string(AlertState state) {
  switch (state) {
    case AlertState::kActive: return "active";
    case AlertState::kResolved: return "resolved";
  }
  return "?";
}

std::uint64_t AlertManager::fingerprint(const Rule& rule, const WindowKey& key) {
  // FNV-1a over the rule name, folded with the window key's mix — stable
  // across runs (no pointer or ASLR input), which the e2e tests rely on.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : rule.name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  h ^= WindowKeyHash{}(key);
  h *= 0x100000001b3ull;
  return h;
}

namespace {

void note_firing(Alert& alert, const WindowResult& win) {
  alert.last_firing = win.window_start;
  alert.last_expected = win.result.expected;
  if (win.result.value > alert.peak_value) alert.peak_value = win.result.value;
  if (win.result.score > alert.peak_score) alert.peak_score = win.result.score;
}

}  // namespace

void AlertManager::observe(const WindowResult& win) {
  const Rule& rule = *win.rule;
  const std::uint64_t fp = fingerprint(rule, win.key);
  auto it = tracks_.find(fp);
  if (it == tracks_.end()) {
    // Fast path: a quiet window for a key with no standing state.
    if (!win.result.firing) return;
    it = tracks_.emplace(fp, Track{}).first;
  }
  Track& track = it->second;

  if (win.result.firing) {
    track.quiet_streak = 0;
    ++track.firing_streak;

    Alert* alert = track.alert_index >= 0 ? &alerts_[static_cast<std::size_t>(
                                                track.alert_index)]
                                          : nullptr;
    if (alert != nullptr && alert->state == AlertState::kActive) {
      ++alert->firing_windows;
      note_firing(*alert, win);
      if (alert->severity == AlertSeverity::kWarning &&
          alert->firing_windows >= rule.escalate_after) {
        alert->severity = AlertSeverity::kCritical;
        ++stats_.escalated;
      }
      return;
    }
    if (track.firing_streak < rule.raise_after) return;  // still debouncing

    const util::SimDuration damp_horizon =
        static_cast<util::SimDuration>(rule.damp_windows) * window_;
    if (alert != nullptr && win.window_start - alert->resolved_at <= damp_horizon) {
      // Flap: the same fingerprint re-fired right after resolving.
      // Reopen the existing record (severity is sticky) instead of
      // paging a second time.
      alert->state = AlertState::kActive;
      alert->firing_windows = track.firing_streak;
      ++alert->episodes;
      ++alert->flaps;
      note_firing(*alert, win);
      ++stats_.reopened;
      ++stats_.active;
      return;
    }

    Alert fresh;
    fresh.fingerprint = fp;
    fresh.rule = &rule;
    fresh.key = win.key;
    fresh.sample = win.sample;
    fresh.firing_windows = track.firing_streak;
    // Back-date to the first window of the debounce streak so the
    // incident reports measure true detection latency.
    fresh.raised_at = win.window_start -
                      static_cast<util::SimDuration>(track.firing_streak - 1) * window_;
    note_firing(fresh, win);
    if (fresh.firing_windows >= rule.escalate_after) {
      fresh.severity = AlertSeverity::kCritical;
      ++stats_.escalated;
    }
    track.alert_index = static_cast<std::int64_t>(alerts_.size());
    alerts_.push_back(fresh);
    ++stats_.raised;
    ++stats_.active;
    return;
  }

  track.firing_streak = 0;
  if (track.alert_index < 0) {
    // A debounce streak that never reached raise_after fizzled out.
    tracks_.erase(it);
    return;
  }
  Alert& alert = alerts_[static_cast<std::size_t>(track.alert_index)];
  if (alert.state != AlertState::kActive) return;  // resolved; waiting out damping
  ++track.quiet_streak;
  if (track.quiet_streak >= rule.clear_after) {
    alert.state = AlertState::kResolved;
    alert.resolved_at = win.window_start;
    ++stats_.resolved;
    --stats_.active;
  }
}

}  // namespace netseer::detect
