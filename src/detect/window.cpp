#include "detect/window.h"

namespace netseer::detect {

WindowEngine::WindowEngine(const Rule& rule, const RuleSet& set)
    : rule_(rule), window_(set.window), lateness_(set.lateness),
      idle_gc_windows_(set.idle_gc_windows) {}

util::SimTime WindowEngine::bucket(util::SimTime at) const {
  auto q = at / window_;
  if (at < 0 && at % window_ != 0) --q;
  return q * window_;
}

double WindowEngine::feature_value(const KeyState& state) const {
  switch (rule_.feature) {
    case Feature::kPackets: return static_cast<double>(state.packets);
    case Feature::kEvents: return static_cast<double>(state.rows);
    case Feature::kLatencyMeanUs:
      return state.rows == 0 ? 0.0 : state.latency_sum / static_cast<double>(state.rows);
  }
  return 0.0;
}

void WindowEngine::close_window(const WindowKey& key, KeyState& state, bool empty,
                                const Sink& sink) {
  WindowResult out;
  out.rule = &rule_;
  out.key = key;
  out.sample = state.sample;
  out.window_start = state.window_start;
  out.empty = empty;
  out.result = state.detector->observe(feature_value(state), empty);
  if (empty) ++stats_.windows_empty;
  else ++stats_.windows_closed;
  if (sink) sink(out);
}

bool WindowEngine::roll_to(const WindowKey& key, KeyState& state, util::SimTime next_start,
                           const Sink& sink) {
  while (state.window_start < next_start) {
    const bool empty = state.rows == 0;
    close_window(key, state, empty, sink);
    state.idle_windows = empty ? state.idle_windows + 1 : 0;
    state.rows = 0;
    state.packets = 0;
    state.latency_sum = 0.0;
    state.window_start += window_;
    if (state.idle_windows > idle_gc_windows_) return false;
  }
  return true;
}

WindowEngine::KeyIter WindowEngine::materialize_key(const WindowKey& key, util::SimTime start) {
  KeyState state;
  state.window_start = start;
  if (!free_detectors_.empty()) {
    state.detector = std::move(free_detectors_.back());
    free_detectors_.pop_back();
    state.detector->reset();
  } else {
    state.detector = make_detector(rule_);
  }
  ++stats_.keys_created;
  return keys_.emplace(key, std::move(state)).first;
}

void WindowEngine::offer(const backend::StoredEvent& row, const Sink& sink) {
  const core::FlowEvent& event = row.event;
  if (event.type != rule_.type) return;

  WindowKey key;
  key.switch_id = event.switch_id;
  switch (rule_.scope) {
    case Scope::kDeviceFlow: key.group = event.flow_hash; break;
    case Scope::kDevice: key.group = 0; break;
    case Scope::kDeviceRule: key.group = event.acl_rule_id; break;
  }
  const util::SimTime start = bucket(event.detected_at);

  auto it = keys_.find(key);
  if (it == keys_.end()) {
    it = materialize_key(key, start);
  } else {
    KeyState& state = it->second;
    if (start < state.window_start) {
      // Behind a window this key already closed; the watermark contract
      // was violated (or lateness is too tight). Count, don't crash.
      ++stats_.late_rows;
      return;
    }
    if (start > state.window_start && !roll_to(key, state, start, sink)) {
      // The key went dark past the GC horizon and is now back: restart
      // it with a fresh baseline rather than resuming stale state.
      state.detector->reset();
      state.window_start = start;
      state.rows = 0;
      state.packets = 0;
      state.latency_sum = 0.0;
      state.idle_windows = 0;
      ++stats_.keys_recycled;
    }
  }

  KeyState& state = it->second;
  ++state.rows;
  state.packets += event.counter;
  state.latency_sum += static_cast<double>(event.queue_latency_us);
  state.sample = event;
  ++stats_.rows;
  stats_.keys_active = keys_.size();
}

void WindowEngine::advance(util::SimTime watermark, const Sink& sink) {
  const util::SimTime target = bucket(watermark - lateness_);
  for (auto it = keys_.begin(); it != keys_.end();) {
    if (roll_to(it->first, it->second, target, sink)) {
      ++it;
    } else {
      free_detectors_.push_back(std::move(it->second.detector));
      ++stats_.keys_recycled;
      it = keys_.erase(it);
    }
  }
  stats_.keys_active = keys_.size();
}

}  // namespace netseer::detect
