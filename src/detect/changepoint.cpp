#include "detect/detectors.h"

namespace netseer::detect {

CusumDetector::CusumDetector(double slack, double decision_h, std::uint32_t warmup)
    : slack_(slack), decision_h_(decision_h), warmup_(warmup) {}

DetectorResult CusumDetector::observe(double value, bool /*empty*/) {
  DetectorResult result;
  result.value = value;

  if (seen_ < warmup_) {
    ++seen_;
    reference_ += (value - reference_) / static_cast<double>(seen_);
    result.expected = reference_;
    return result;
  }
  result.expected = reference_;

  const double drift = value - reference_ - slack_;
  g_ += drift;
  if (g_ < 0) g_ = 0;

  if (!firing_) {
    if (g_ > decision_h_) firing_ = true;
  } else if (g_ < decision_h_ / 2) {
    // In-control windows have negative drift, so the statistic drains on
    // its own once the shift ends; half the decision boundary is the
    // hysteresis release point.
    firing_ = false;
    g_ = 0;
  }

  result.firing = firing_;
  result.score = decision_h_ > 0 ? g_ / decision_h_ : 0.0;
  return result;
}

void CusumDetector::reset() {
  seen_ = 0;
  reference_ = 0.0;
  g_ = 0.0;
  firing_ = false;
}

}  // namespace netseer::detect
