#include "detect/detectors.h"

#include <cmath>

namespace netseer::detect {

EwmaDetector::EwmaDetector(double alpha, double k_sigma, std::uint32_t warmup, double min_sigma,
                           bool skip_empty)
    : alpha_(alpha), k_sigma_(k_sigma), warmup_(warmup), min_sigma_(min_sigma),
      skip_empty_(skip_empty) {}

double EwmaDetector::sigma() const {
  const double s = std::sqrt(var_ > 0 ? var_ : 0.0);
  return s > min_sigma_ ? s : min_sigma_;
}

DetectorResult EwmaDetector::observe(double value, bool empty) {
  DetectorResult result;
  result.value = value;
  result.expected = mean_;

  if (empty && skip_empty_) {
    // A window with no samples of a sample-statistic feature: nothing to
    // learn, nothing to judge; an active firing state releases (the
    // anomalous signal has stopped arriving).
    firing_ = false;
    result.firing = false;
    return result;
  }

  if (seen_ < warmup_) {
    // Warm-up: train only. Incremental mean/variance over the first
    // `warmup` samples seeds the EWMA moments.
    ++seen_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(seen_);
    var_ += (delta * (value - mean_) - var_) / static_cast<double>(seen_);
    result.expected = mean_;
    return result;
  }

  const double residual = value - mean_;
  const double gate = k_sigma_ * sigma();
  if (firing_) {
    if (residual <= gate) firing_ = false;
  } else if (residual > gate) {
    firing_ = true;
  }
  result.firing = firing_;
  result.score = gate > 0 ? residual / gate : 0.0;
  if (result.score < 0) result.score = 0;

  if (!firing_) {
    // Learn from in-control samples only: a firing window must not drag
    // the baseline toward the anomaly.
    const double delta = value - mean_;
    mean_ += alpha_ * delta;
    var_ = (1 - alpha_) * (var_ + alpha_ * delta * delta);
  }
  return result;
}

void EwmaDetector::reset() {
  seen_ = 0;
  mean_ = 0.0;
  var_ = 0.0;
  firing_ = false;
}

}  // namespace netseer::detect
