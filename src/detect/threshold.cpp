#include "detect/detectors.h"

namespace netseer::detect {

ThresholdDetector::ThresholdDetector(double trigger, double clear)
    : trigger_(trigger), clear_(clear < trigger ? clear : trigger) {}

DetectorResult ThresholdDetector::observe(double value, bool /*empty*/) {
  if (firing_) {
    // Hysteresis: once firing, only a fall to the clear level releases.
    if (value <= clear_) firing_ = false;
  } else if (value >= trigger_) {
    firing_ = true;
  }
  DetectorResult result;
  result.firing = firing_;
  result.value = value;
  result.expected = trigger_;
  result.score = firing_ && trigger_ > 0 ? value / trigger_ : 0.0;
  return result;
}

void ThresholdDetector::reset() { firing_ = false; }

}  // namespace netseer::detect
