#include "detect/rules.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "detect/detectors.h"

namespace netseer::detect {

const char* to_string(Family family) {
  switch (family) {
    case Family::kThreshold: return "threshold";
    case Family::kEwma: return "ewma";
    case Family::kCusum: return "cusum";
  }
  return "?";
}

const char* to_string(Feature feature) {
  switch (feature) {
    case Feature::kPackets: return "packets";
    case Feature::kEvents: return "events";
    case Feature::kLatencyMeanUs: return "latency-mean-us";
  }
  return "?";
}

const char* to_string(Scope scope) {
  switch (scope) {
    case Scope::kDeviceFlow: return "device-flow";
    case Scope::kDevice: return "device";
    case Scope::kDeviceRule: return "device-rule";
  }
  return "?";
}

std::unique_ptr<Detector> make_detector(const Rule& rule) {
  switch (rule.family) {
    case Family::kThreshold:
      return std::make_unique<ThresholdDetector>(rule.threshold,
                                                 rule.threshold * rule.clear_ratio);
    case Family::kEwma:
      // Sample-statistic features must not learn from empty windows;
      // rate features treat them as genuine zeroes.
      return std::make_unique<EwmaDetector>(rule.alpha, rule.k_sigma, rule.warmup,
                                            rule.min_sigma,
                                            rule.feature == Feature::kLatencyMeanUs);
    case Family::kCusum:
      return std::make_unique<CusumDetector>(rule.cusum_slack, rule.cusum_h, rule.warmup);
  }
  return nullptr;
}

RuleSet RuleSet::defaults() {
  RuleSet set;

  // Per-(device, flow) dropped-packet bursts: the workhorse rule behind
  // the routing-error, parity-error, and congestion-drop incidents.
  Rule drop_burst;
  drop_burst.name = "drop-burst";
  drop_burst.type = core::EventType::kDrop;
  drop_burst.family = Family::kThreshold;
  drop_burst.feature = Feature::kPackets;
  drop_burst.scope = Scope::kDeviceFlow;
  drop_burst.threshold = 20;
  set.rules.push_back(drop_burst);

  // ACL drops aggregate at rule granularity in the data plane (§3.4),
  // so the alert fingerprint is (device, rule id), not (device, flow).
  Rule acl_deny;
  acl_deny.name = "acl-deny";
  acl_deny.type = core::EventType::kAclDrop;
  acl_deny.family = Family::kThreshold;
  acl_deny.feature = Feature::kPackets;
  acl_deny.scope = Scope::kDeviceRule;
  acl_deny.threshold = 8;
  set.rules.push_back(acl_deny);

  // Device-wide congestion-event rate change-point: unexpected-volume
  // incidents are a sustained mean shift, exactly CUSUM's shape.
  Rule congestion_shift;
  congestion_shift.name = "congestion-shift";
  congestion_shift.type = core::EventType::kCongestion;
  congestion_shift.family = Family::kCusum;
  congestion_shift.feature = Feature::kEvents;
  congestion_shift.scope = Scope::kDevice;
  congestion_shift.warmup = 1;
  congestion_shift.cusum_slack = 4;
  congestion_shift.cusum_h = 32;
  set.rules.push_back(congestion_shift);

  // Queue-latency EWMA residual: learns each device's normal latency
  // and flags sustained departures once warmed up.
  Rule queue_latency;
  queue_latency.name = "queue-latency";
  queue_latency.type = core::EventType::kCongestion;
  queue_latency.family = Family::kEwma;
  queue_latency.feature = Feature::kLatencyMeanUs;
  queue_latency.scope = Scope::kDevice;
  set.rules.push_back(queue_latency);

  Rule pause_storm;
  pause_storm.name = "pause-storm";
  pause_storm.type = core::EventType::kPause;
  pause_storm.family = Family::kThreshold;
  pause_storm.feature = Feature::kEvents;
  pause_storm.scope = Scope::kDevice;
  pause_storm.threshold = 16;
  set.rules.push_back(pause_storm);

  // Structural waivers, consumed by the symbolic-coverage cross-check:
  // classes that by construction emit no flow events, so no event-stream
  // detector can observe them. Each must stay explicit — an unwaived,
  // uncovered class fails the cross-check test.
  set.waivers.push_back({"path.blackhole",
                         "admitted to an unwired port: no emission point is crossed, so no "
                         "flow event exists to detect; covered by SLA probing, not telemetry"});
  set.waivers.push_back({"lpm.",
                         "a dead (fully shadowed) route can never match a packet, so it can "
                         "never generate events; surfaced by verify, not runtime detection"});
  set.waivers.push_back({"acl.rule.",
                         "a dead (shadowed) ACL rule never matches; same rationale as lpm."});
  return set;
}

const Rule* RuleSet::rule_for(core::EventType type) const {
  for (const auto& rule : rules) {
    if (rule.type == type) return &rule;
  }
  return nullptr;
}

const Rule* RuleSet::covering(std::string_view drop_class) const {
  // "drop.<reason>" classes map to the event stream that reason lands
  // in: ACL denies are exported as kAclDrop, every other pipeline/MMU/
  // wire drop as kDrop (link-loss and corruption arrive via inter-switch
  // recovery, still as drop events).
  constexpr std::string_view kDropPrefix = "drop.";
  if (drop_class.substr(0, kDropPrefix.size()) != kDropPrefix) return nullptr;
  const std::string_view reason = drop_class.substr(kDropPrefix.size());
  return rule_for(reason == "acl-deny" ? core::EventType::kAclDrop : core::EventType::kDrop);
}

const char* RuleSet::waiver(std::string_view drop_class) const {
  for (const auto& waiver : waivers) {
    if (drop_class.substr(0, waiver.class_prefix.size()) == waiver.class_prefix) {
      return waiver.reason.c_str();
    }
  }
  return nullptr;
}

namespace {

bool parse_event_type(std::string_view text, core::EventType* out) {
  if (text == "drop") *out = core::EventType::kDrop;
  else if (text == "congestion") *out = core::EventType::kCongestion;
  else if (text == "path-change") *out = core::EventType::kPathChange;
  else if (text == "pause") *out = core::EventType::kPause;
  else if (text == "acl-drop") *out = core::EventType::kAclDrop;
  else return false;
  return true;
}

bool parse_family(std::string_view text, Family* out) {
  if (text == "threshold") *out = Family::kThreshold;
  else if (text == "ewma") *out = Family::kEwma;
  else if (text == "cusum") *out = Family::kCusum;
  else return false;
  return true;
}

bool parse_feature(std::string_view text, Feature* out) {
  if (text == "packets") *out = Feature::kPackets;
  else if (text == "events") *out = Feature::kEvents;
  else if (text == "latency-mean-us") *out = Feature::kLatencyMeanUs;
  else return false;
  return true;
}

bool parse_scope(std::string_view text, Scope* out) {
  if (text == "device-flow") *out = Scope::kDeviceFlow;
  else if (text == "device") *out = Scope::kDevice;
  else if (text == "device-rule") *out = Scope::kDeviceRule;
  else return false;
  return true;
}

/// One `key=value` pair onto the matching Rule field.
bool apply_rule_kv(Rule& rule, std::string_view key, const std::string& value) {
  const auto num = [&] { return std::strtod(value.c_str(), nullptr); };
  const auto u32 = [&] {
    return static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
  };
  if (key == "type") return parse_event_type(value, &rule.type);
  if (key == "family") return parse_family(value, &rule.family);
  if (key == "feature") return parse_feature(value, &rule.feature);
  if (key == "scope") return parse_scope(value, &rule.scope);
  if (key == "threshold") rule.threshold = num();
  else if (key == "clear_ratio") rule.clear_ratio = num();
  else if (key == "alpha") rule.alpha = num();
  else if (key == "k_sigma") rule.k_sigma = num();
  else if (key == "min_sigma") rule.min_sigma = num();
  else if (key == "warmup") rule.warmup = u32();
  else if (key == "cusum_slack") rule.cusum_slack = num();
  else if (key == "cusum_h") rule.cusum_h = num();
  else if (key == "raise_after") rule.raise_after = u32();
  else if (key == "clear_after") rule.clear_after = u32();
  else if (key == "escalate_after") rule.escalate_after = u32();
  else if (key == "damp_windows") rule.damp_windows = u32();
  else return false;
  return true;
}

}  // namespace

std::optional<RuleSet> parse_rules(const std::string& text, std::string* error) {
  RuleSet set;
  set.rules.clear();
  set.waivers.clear();
  const auto fail = [&](int line, const std::string& what) {
    if (error) *error = "line " + std::to_string(line) + ": " + what;
    return std::nullopt;
  };

  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream line(raw);
    std::string word;
    if (!(line >> word)) continue;

    if (word == "window_us" || word == "lateness_us" || word == "idle_gc_windows") {
      long long value = -1;
      if (!(line >> value) || value < 0) return fail(line_no, "expected a number after " + word);
      if (word == "window_us") set.window = util::microseconds(value);
      else if (word == "lateness_us") set.lateness = util::microseconds(value);
      else set.idle_gc_windows = static_cast<std::uint32_t>(value);
    } else if (word == "rule") {
      Rule rule;
      if (!(line >> rule.name)) return fail(line_no, "rule needs a name");
      std::string kv;
      while (line >> kv) {
        const auto eq = kv.find('=');
        if (eq == std::string::npos) return fail(line_no, "expected key=value, got '" + kv + "'");
        if (!apply_rule_kv(rule, std::string_view(kv).substr(0, eq), kv.substr(eq + 1))) {
          return fail(line_no, "bad rule setting '" + kv + "'");
        }
      }
      set.rules.push_back(std::move(rule));
    } else if (word == "waive") {
      RuleSet::Waiver waiver;
      if (!(line >> waiver.class_prefix)) return fail(line_no, "waive needs a class prefix");
      std::getline(line, waiver.reason);
      const auto start = waiver.reason.find_first_not_of(' ');
      waiver.reason = start == std::string::npos ? "" : waiver.reason.substr(start);
      set.waivers.push_back(std::move(waiver));
    } else {
      return fail(line_no, "unknown directive '" + word + "'");
    }
  }
  if (set.window <= 0) return fail(line_no, "window_us must be positive");
  if (set.rules.empty()) return fail(line_no, "no rules defined");
  return set;
}

std::optional<RuleSet> load_rules(const std::string& path, std::string* error) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse_rules(text, error);
}

}  // namespace netseer::detect
