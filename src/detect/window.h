#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "backend/event_store.h"
#include "detect/detector.h"
#include "detect/rules.h"
#include "util/ids.h"
#include "util/time.h"
#include "util/annotations.h"

namespace netseer::detect {

/// The grouping key one rule aggregates under: always the emitting
/// switch, plus a scope-dependent discriminator (flow hash, ACL rule
/// id, or nothing for device-wide rules).
struct WindowKey {
  util::NodeId switch_id = util::kInvalidNode;
  std::uint64_t group = 0;

  friend bool operator==(const WindowKey&, const WindowKey&) = default;
};

struct WindowKeyHash {
  std::size_t operator()(const WindowKey& key) const noexcept {
    // splitmix-style fold; keys are few, this only needs to spread.
    std::uint64_t x = key.group + 0x9e3779b97f4a7c15ull * (key.switch_id + 1);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    return static_cast<std::size_t>(x);
  }
};

/// One closed window as handed to the alert pipeline.
struct WindowResult {
  const Rule* rule = nullptr;
  WindowKey key;
  core::FlowEvent sample;  // last row seen for this key (fingerprint context)
  util::SimTime window_start = 0;
  bool empty = false;  // no rows landed in this window for this key
  DetectorResult result;
};

struct WindowEngineStats {
  std::uint64_t rows = 0;           // rows accepted into a window
  std::uint64_t late_rows = 0;      // rows behind an already-closed window (dropped)
  std::uint64_t windows_closed = 0; // non-empty windows evaluated
  std::uint64_t windows_empty = 0;  // empty windows evaluated (quiescence signal)
  std::uint64_t keys_created = 0;
  std::uint64_t keys_recycled = 0;  // idle-GC'd; detector returned to free list
  std::uint64_t keys_active = 0;
};

/// Tumbling-window aggregation for one rule. Rows are keyed by
/// (switch, scope discriminator) and bucketed by detection time into
/// windows of RuleSet::window width. Because every key pins one switch
/// and each switch emits events in time order, a row for a later bucket
/// proves the key's open window is complete, so windows close eagerly on
/// rollover; `advance()` closes the rest once the stream-wide watermark
/// (max detected_at minus lateness) passes them, emitting empty windows
/// so detectors and the alert pipeline see quiescence. Keys idle for
/// idle_gc_windows are garbage-collected and their detector instance is
/// recycled through a free list — steady state allocates nothing once
/// the key population stabilizes.
class WindowEngine {
 public:
  using Sink = std::function<void(const WindowResult&)>;

  WindowEngine(const Rule& rule, const RuleSet& set);

  /// Offer one stored row; ignored unless it matches the rule's event
  /// type. May close this key's open window (rollover) via `sink`.
  NETSEER_HOT void offer(const backend::StoredEvent& row, const Sink& sink);

  /// Advance the stream-wide watermark: close every window it has
  /// passed, emit empty windows up to it, GC idle keys.
  void advance(util::SimTime watermark, const Sink& sink);

  [[nodiscard]] const Rule& rule() const { return rule_; }
  [[nodiscard]] const WindowEngineStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t active_keys() const { return keys_.size(); }

 private:
  struct KeyState {
    util::SimTime window_start = 0;
    std::uint64_t rows = 0;
    std::uint64_t packets = 0;
    double latency_sum = 0.0;
    std::uint32_t idle_windows = 0;
    core::FlowEvent sample{};
    std::unique_ptr<Detector> detector;
  };

  using KeyIter = std::unordered_map<WindowKey, KeyState, WindowKeyHash>::iterator;

  [[nodiscard]] util::SimTime bucket(util::SimTime at) const;
  [[nodiscard]] double feature_value(const KeyState& state) const;
  void close_window(const WindowKey& key, KeyState& state, bool empty, const Sink& sink);
  /// First row for a key: set up its state, recycling a detector off
  /// the free list when one is available. The allocating branch of
  /// offer(), taken once per key until the population stabilizes.
  NETSEER_HOT_ALLOW_INIT KeyIter materialize_key(const WindowKey& key, util::SimTime start);
  /// Close + empty-fill `state` up to (excluding) `next_start`; returns
  /// false when the key went idle past the GC horizon and should die.
  bool roll_to(const WindowKey& key, KeyState& state, util::SimTime next_start,
               const Sink& sink);

  // Owned copy: WindowResult::rule points at it, and callers routinely
  // construct engines from temporaries. Engines must not be moved while
  // downstream consumers hold alert records referencing the rule.
  Rule rule_;
  util::SimDuration window_;
  util::SimDuration lateness_;
  std::uint32_t idle_gc_windows_;

  std::unordered_map<WindowKey, KeyState, WindowKeyHash> keys_;
  std::vector<std::unique_ptr<Detector>> free_detectors_;
  WindowEngineStats stats_;
};

}  // namespace netseer::detect
