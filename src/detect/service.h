#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "detect/alerts.h"
#include "detect/rules.h"
#include "detect/window.h"
#include "sim/simulator.h"
#include "store/store.h"
#include "store/subscription.h"
#include "util/annotations.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace netseer::detect {

struct DetectOptions {
  RuleSet rules = RuleSet::defaults();
  /// Resume-LSN checkpoint file; empty disables checkpointing. When the
  /// file exists at construction, the subscription resumes after the
  /// checkpointed LSN instead of replaying the retained history.
  std::string checkpoint_path;
  /// Start after this LSN when no checkpoint file resumes (a checkpoint
  /// always wins — it is the stronger claim about what was consumed).
  std::uint64_t from_lsn = 0;
  /// Rows per Subscription::poll() round inside one pump.
  std::size_t poll_batch = 4096;
};

struct DetectServiceStats {
  std::uint64_t rows = 0;         // rows pumped through the engines
  std::uint64_t pumps = 0;        // pump() calls
  std::uint64_t checkpoints = 0;  // resume-LSN checkpoint writes
  std::uint64_t resumed_lsn = 0;  // checkpoint the service started from
  bool resumed = false;           // a checkpoint file existed at startup
};

/// The streaming anomaly-detection service: one subscription tailing the
/// store's durable watermark, fanned into one WindowEngine per rule,
/// all feeding one AlertManager. pump() is the only engine entry point,
/// so the service runs wherever its owner calls it from — inline with
/// the simulator's maintenance loop (start()), or on a dedicated thread
/// (run_follow(), for the CLI; safe because that process is the store's
/// only user).
///
/// Restarts are exactly-once at row granularity: pump() checkpoints the
/// last consumed LSN (after the rows are applied), and a new service
/// constructed over the same checkpoint file resumes strictly after it —
/// no row is scored twice and none is skipped. Open-window partial
/// aggregates are NOT checkpointed: a restart re-opens windows from the
/// next row, so at most one in-flight window per key restarts cold.
class DetectService {
 public:
  DetectService(const store::FlowEventStore& store, DetectOptions options = {});

  // The engines hold references into options_.rules and the sink
  // captures `this`: the service is pinned in place.
  DetectService(const DetectService&) = delete;
  DetectService& operator=(const DetectService&) = delete;

  /// Drain everything currently durable through the detectors, advance
  /// the event-time watermark, checkpoint. Returns rows consumed.
  /// Serialized against finish() and other pumps by mu_, so an inline
  /// start() driver and a run_follow() thread cannot interleave engine
  /// updates. Blocking: the checkpoint write is file I/O.
  NETSEER_BLOCKING std::size_t pump() NETSEER_EXCLUDES(mu_);

  /// End-of-stream flush: force every open window closed (including the
  /// quiet windows that resolve still-active alerts). Call once after
  /// the final pump(); pumping again afterwards would double-close.
  void finish() NETSEER_EXCLUDES(mu_);

  /// Inline driver: pump on `sim` every `interval`, like
  /// FlowEventStore::start_maintenance. Cancel the handle before
  /// draining the simulation.
  [[nodiscard]] sim::TaskHandle start(sim::Simulator& sim, util::SimDuration interval);

  /// Dedicated-thread driver: pump, sleep `poll`, repeat until `stop`.
  NETSEER_BLOCKING void run_follow(const std::atomic<bool>& stop,
                                   std::chrono::milliseconds poll)
      NETSEER_EXCLUDES(mu_);

  // Quiescent read-only views: call them only while no pump()/finish()
  // is in flight (between simulator steps, or after run_follow joined).
  // They deliberately bypass the analysis — taking mu_ here would make
  // every accessor a lock site inside test assertions.
  [[nodiscard]] const RuleSet& rules() const { return options_.rules; }
  [[nodiscard]] const std::vector<WindowEngine>& engines() const
      NETSEER_NO_THREAD_SAFETY_ANALYSIS {
    return engines_;
  }
  [[nodiscard]] const AlertManager& alerts() const NETSEER_NO_THREAD_SAFETY_ANALYSIS {
    return alerts_;
  }
  [[nodiscard]] const DetectServiceStats& stats() const NETSEER_NO_THREAD_SAFETY_ANALYSIS {
    return stats_;
  }
  [[nodiscard]] const store::Subscription& subscription() const
      NETSEER_NO_THREAD_SAFETY_ANALYSIS {
    return sub_;
  }
  /// Max detected_at seen (the event-time watermark windows close against).
  [[nodiscard]] util::SimTime watermark() const NETSEER_NO_THREAD_SAFETY_ANALYSIS {
    return watermark_;
  }

  /// Resume-LSN checkpoint file I/O ("NSDC" format). Exposed for the
  /// restart tests and `netseer_detect`.
  [[nodiscard]] static NETSEER_BLOCKING bool save_checkpoint(const std::string& path,
                                                            std::uint64_t lsn);
  [[nodiscard]] static NETSEER_BLOCKING std::optional<std::uint64_t> load_checkpoint(
      const std::string& path);

 private:
  NETSEER_BLOCKING std::size_t pump_locked() NETSEER_REQUIRES(mu_);

  DetectOptions options_;
  /// Serializes pump()/finish() across drivers. The engines, the
  /// subscription cursor, and the stats all mutate under it.
  util::Mutex mu_;
  std::vector<WindowEngine> engines_ NETSEER_GUARDED_BY(mu_);
  AlertManager alerts_ NETSEER_GUARDED_BY(mu_);
  WindowEngine::Sink sink_;
  store::Subscription sub_ NETSEER_GUARDED_BY(mu_);
  util::SimTime watermark_ NETSEER_GUARDED_BY(mu_) = 0;
  bool finished_ NETSEER_GUARDED_BY(mu_) = false;
  DetectServiceStats stats_ NETSEER_GUARDED_BY(mu_);
};

}  // namespace netseer::detect
