#include "detect/service.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "util/hash.h"
#include "util/sync.h"

namespace netseer::detect {

namespace {

std::uint64_t initial_lsn(const DetectOptions& options) {
  if (!options.checkpoint_path.empty()) {
    if (const auto lsn = DetectService::load_checkpoint(options.checkpoint_path)) {
      return *lsn;
    }
  }
  return options.from_lsn;
}

}  // namespace

DetectService::DetectService(const store::FlowEventStore& store, DetectOptions options)
    : options_(std::move(options)), alerts_(options_.rules),
      // Invoked only from pump_locked()/finish() with mu_ held; the
      // analysis cannot see through the std::function indirection.
      sink_([this](const WindowResult& win) NETSEER_NO_THREAD_SAFETY_ANALYSIS {
        alerts_.observe(win);
      }),
      sub_(store.subscribe(backend::EventQuery{}, initial_lsn(options_))) {
  engines_.reserve(options_.rules.rules.size());
  for (const Rule& rule : options_.rules.rules) engines_.emplace_back(rule, options_.rules);
  if (!options_.checkpoint_path.empty()) {
    if (const auto lsn = load_checkpoint(options_.checkpoint_path)) {
      stats_.resumed = true;
      stats_.resumed_lsn = *lsn;
    }
  }
}

std::size_t DetectService::pump() {
  util::MutexLock lock(mu_);
  return pump_locked();
}

std::size_t DetectService::pump_locked() {
  std::size_t total = 0;
  for (;;) {
    const std::size_t n = sub_.poll(
        [&](const backend::StoredEvent& row, std::uint64_t /*lsn*/) {
          for (auto& engine : engines_) engine.offer(row, sink_);
          if (row.event.detected_at > watermark_) watermark_ = row.event.detected_at;
        },
        options_.poll_batch);
    if (n == 0) break;
    total += n;
  }
  if (total != 0) {
    for (auto& engine : engines_) engine.advance(watermark_, sink_);
    // Checkpoint strictly after the rows are applied: a crash between
    // apply and checkpoint replays those rows (at-least-once within the
    // crashed pump), a crash anywhere else is exactly-once.
    if (!options_.checkpoint_path.empty() &&
        save_checkpoint(options_.checkpoint_path, sub_.last_lsn())) {
      ++stats_.checkpoints;
    }
  }
  ++stats_.pumps;
  stats_.rows += total;
  return total;
}

void DetectService::finish() {
  util::MutexLock lock(mu_);
  if (finished_) return;
  finished_ = true;
  // Push the watermark one full window past the last event so every
  // open window closes through its detector.
  const util::SimTime flush = watermark_ + options_.rules.window + options_.rules.lateness;
  for (auto& engine : engines_) engine.advance(flush, sink_);
}

sim::TaskHandle DetectService::start(sim::Simulator& sim, util::SimDuration interval) {
  return sim.schedule_every(interval, [this] { pump(); });
}

void DetectService::run_follow(const std::atomic<bool>& stop, std::chrono::milliseconds poll) {
  while (!stop.load(std::memory_order_relaxed)) {
    if (pump() == 0 && poll.count() > 0) std::this_thread::sleep_for(poll);
  }
  pump();  // drain whatever landed while we were told to stop
}

namespace {

constexpr char kCheckpointMagic[4] = {'N', 'S', 'D', 'C'};
constexpr std::uint16_t kCheckpointVersion = 1;

struct CheckpointPayload {
  std::uint16_t version;
  std::uint16_t reserved;
  std::uint64_t lsn;
};

}  // namespace

bool DetectService::save_checkpoint(const std::string& path, std::uint64_t lsn) {
  CheckpointPayload payload{kCheckpointVersion, 0, lsn};
  unsigned char buf[4 + 12 + 4];
  std::memcpy(buf, kCheckpointMagic, 4);
  std::memcpy(buf + 4, &payload.version, 2);
  std::memcpy(buf + 6, &payload.reserved, 2);
  std::memcpy(buf + 8, &payload.lsn, 8);
  const std::uint32_t crc =
      util::crc32(std::as_bytes(std::span<const unsigned char>(buf + 4, 12)));
  std::memcpy(buf + 16, &crc, 4);

  // Write-then-rename so a crash mid-write leaves the previous
  // checkpoint intact (replay-some beats skip-some).
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(buf, 1, sizeof(buf), f) == sizeof(buf);
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) return false;
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

std::optional<std::uint64_t> DetectService::load_checkpoint(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  unsigned char buf[4 + 12 + 4];
  const bool ok = std::fread(buf, 1, sizeof(buf), f) == sizeof(buf);
  std::fclose(f);
  if (!ok || std::memcmp(buf, kCheckpointMagic, 4) != 0) return std::nullopt;
  std::uint16_t version = 0;
  std::memcpy(&version, buf + 4, 2);
  if (version != kCheckpointVersion) return std::nullopt;
  std::uint32_t crc = 0;
  std::memcpy(&crc, buf + 16, 4);
  if (crc != util::crc32(std::as_bytes(std::span<const unsigned char>(buf + 4, 12)))) {
    return std::nullopt;
  }
  std::uint64_t lsn = 0;
  std::memcpy(&lsn, buf + 8, 8);
  return lsn;
}

}  // namespace netseer::detect
