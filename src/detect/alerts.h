#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "detect/window.h"

namespace netseer::detect {

enum class AlertSeverity : std::uint8_t { kWarning, kCritical };
enum class AlertState : std::uint8_t { kActive, kResolved };

[[nodiscard]] const char* to_string(AlertSeverity severity);
[[nodiscard]] const char* to_string(AlertState state);

/// One alert episode (possibly reopened across flaps). The fingerprint
/// is stable across the alert's whole life: hash of (rule name, switch,
/// scope discriminator), so the same victim re-firing dedups onto the
/// same record instead of paging again.
struct Alert {
  std::uint64_t fingerprint = 0;
  const Rule* rule = nullptr;
  WindowKey key;
  core::FlowEvent sample;  // a representative event (flow, ports, drop code)
  AlertSeverity severity = AlertSeverity::kWarning;
  AlertState state = AlertState::kActive;

  util::SimTime raised_at = 0;     // start of the first window of the first episode
  util::SimTime last_firing = 0;   // start of the most recent firing window
  util::SimTime resolved_at = 0;   // valid when state == kResolved

  std::uint32_t firing_windows = 0;  // firing windows in the current episode
  std::uint32_t episodes = 1;        // 1 + reopen count
  std::uint32_t flaps = 0;           // re-fires within the damping horizon

  double peak_value = 0.0;
  double peak_score = 0.0;
  double last_expected = 0.0;
};

struct AlertStats {
  std::uint64_t raised = 0;     // new alert records created
  std::uint64_t reopened = 0;   // resolved alerts re-activated (flap damping)
  std::uint64_t escalated = 0;  // warning -> critical transitions
  std::uint64_t resolved = 0;
  std::uint64_t active = 0;     // currently-active count
};

/// The alert pipeline: consumes every closed window and runs the
/// per-fingerprint state machine —
///
///   idle --raise_after consecutive firing windows--> active(warning)
///   active --escalate_after firing windows--> active(critical)
///   active --clear_after consecutive quiet windows--> resolved
///   resolved --re-fire within damp_windows--> reopened (same record,
///       flap counted) instead of a fresh page
///
/// raise_after debounces one-window blips; the per-family hysteresis in
/// DetectorResult.firing plus the damping horizon keep an oscillating
/// signal from generating an alert storm. Non-firing windows for keys
/// with no standing state are the fast path: no track is allocated.
class AlertManager {
 public:
  explicit AlertManager(const RuleSet& set) : window_(set.window) {}

  /// Feed one closed window (the WindowEngine sink).
  void observe(const WindowResult& win);

  /// Every alert ever raised, in raise order (reopens mutate in place).
  [[nodiscard]] const std::vector<Alert>& alerts() const { return alerts_; }
  [[nodiscard]] const AlertStats& stats() const { return stats_; }

  [[nodiscard]] static std::uint64_t fingerprint(const Rule& rule, const WindowKey& key);

 private:
  struct Track {
    std::uint32_t firing_streak = 0;
    std::uint32_t quiet_streak = 0;
    std::int64_t alert_index = -1;  // into alerts_, -1 = never raised
  };

  util::SimDuration window_;
  std::unordered_map<std::uint64_t, Track> tracks_;
  std::vector<Alert> alerts_;
  AlertStats stats_;
};

}  // namespace netseer::detect
