#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/event.h"
#include "util/time.h"

namespace netseer::detect {

/// Which anomaly-detection family evaluates a rule's windows.
enum class Family : std::uint8_t { kThreshold, kEwma, kCusum };

/// The per-window feature a rule computes from the rows it consumes.
enum class Feature : std::uint8_t {
  kPackets,        // sum of event counters (affected packets)
  kEvents,         // row count
  kLatencyMeanUs,  // mean queue latency of the window's samples
};

/// How a rule groups events into window keys.
enum class Scope : std::uint8_t {
  kDeviceFlow,  // (switch, flow) — per-victim-flow rates
  kDevice,      // (switch) — device-wide rates
  kDeviceRule,  // (switch, acl rule id) — ACL drops aggregate by rule (§3.4)
};

[[nodiscard]] const char* to_string(Family family);
[[nodiscard]] const char* to_string(Feature feature);
[[nodiscard]] const char* to_string(Scope scope);

/// One detection rule: which events it consumes, how they are grouped
/// and featurized, which family judges them, and the alert-lifecycle
/// policy for the alerts it raises. Family knobs are a union-by-
/// convention — each family reads only its own.
struct Rule {
  std::string name;
  core::EventType type = core::EventType::kDrop;
  Family family = Family::kThreshold;
  Feature feature = Feature::kPackets;
  Scope scope = Scope::kDeviceFlow;

  // threshold family
  double threshold = 0.0;
  double clear_ratio = 0.5;  // clear level = threshold * clear_ratio

  // ewma family
  double alpha = 0.25;
  double k_sigma = 3.0;
  double min_sigma = 1.0;
  std::uint32_t warmup = 8;

  // cusum family (warmup shared with ewma)
  double cusum_slack = 1.0;
  double cusum_h = 8.0;

  // alert lifecycle policy
  std::uint32_t raise_after = 1;    // consecutive firing windows before raising
  std::uint32_t clear_after = 3;    // consecutive quiet windows before resolving
  std::uint32_t escalate_after = 4; // firing windows in one episode -> critical
  std::uint32_t damp_windows = 4;   // re-fire within this of resolution = flap, reopened
};

/// A complete detection configuration: the window model plus the rules,
/// plus the coverage waivers the verify cross-check consults. Loadable
/// from the `netseer_detect --rules` file format (see parse_rules).
struct RuleSet {
  /// Tumbling-window width over event detection time (detected_at).
  util::SimDuration window = util::milliseconds(1);
  /// Watermark slack for cross-device detection-time disorder: a window
  /// closes when max(detected_at seen) passes its end by this much.
  util::SimDuration lateness = util::microseconds(100);
  /// Keys with this many consecutive empty windows are garbage-collected
  /// (their detector instance returns to the free list).
  std::uint32_t idle_gc_windows = 16;

  std::vector<Rule> rules;

  /// Drop-class waivers for the symbolic coverage cross-check: classes
  /// (prefix match) that deliberately map to no detector rule, with the
  /// reason recorded next to the waiver.
  struct Waiver {
    std::string class_prefix;
    std::string reason;
  };
  std::vector<Waiver> waivers;

  /// The shipped configuration: drop-burst / acl-deny / congestion-shift
  /// / queue-latency / pause-storm plus the structural waivers.
  [[nodiscard]] static RuleSet defaults();

  /// The rule that consumes events of `type`, nullptr if none.
  [[nodiscard]] const Rule* rule_for(core::EventType type) const;

  /// Coverage cross-check over `netseer_verify --coverage-out` classes
  /// ("drop.route-miss", "path.blackhole", "lpm.<prefix>", ...): the
  /// rule whose event stream observes that class, or nullptr.
  [[nodiscard]] const Rule* covering(std::string_view drop_class) const;
  /// The waiver reason for `drop_class`, nullptr when not waived.
  [[nodiscard]] const char* waiver(std::string_view drop_class) const;
};

/// Parse the rules file format. Line-oriented; '#' starts a comment.
///
///   window_us 1000
///   lateness_us 100
///   idle_gc_windows 16
///   rule drop-burst type=drop family=threshold feature=packets
///        scope=device-flow threshold=20 clear_after=3
///   (one line per rule; shown wrapped here)
///   waive path.blackhole silent loss crosses no emission point
///
/// Every `key=value` pair maps to the Rule field of the same name.
/// Returns nullopt and fills `error` (with a line number) on the first
/// malformed line.
[[nodiscard]] std::optional<RuleSet> parse_rules(const std::string& text,
                                                 std::string* error = nullptr);

/// parse_rules over a file's contents; nullopt on read failure too.
[[nodiscard]] std::optional<RuleSet> load_rules(const std::string& path,
                                                std::string* error = nullptr);

}  // namespace netseer::detect
