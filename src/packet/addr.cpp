#include "packet/addr.h"

#include <cstdio>

namespace netseer::packet {

std::string MacAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0], bytes[1], bytes[2],
                bytes[3], bytes[4], bytes[5]);
  return buf;
}

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::uint32_t octets[4] = {0, 0, 0, 0};
  int octet_index = 0;
  bool digit_seen = false;
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      octets[octet_index] = octets[octet_index] * 10 + static_cast<std::uint32_t>(c - '0');
      if (octets[octet_index] > 255) return std::nullopt;
      digit_seen = true;
    } else if (c == '.') {
      if (!digit_seen || octet_index == 3) return std::nullopt;
      ++octet_index;
      digit_seen = false;
    } else {
      return std::nullopt;
    }
  }
  if (octet_index != 3 || !digit_seen) return std::nullopt;
  return from_octets(static_cast<std::uint8_t>(octets[0]), static_cast<std::uint8_t>(octets[1]),
                     static_cast<std::uint8_t>(octets[2]), static_cast<std::uint8_t>(octets[3]));
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xff, (value >> 16) & 0xff,
                (value >> 8) & 0xff, value & 0xff);
  return buf;
}

std::string Ipv4Prefix::to_string() const {
  return network.to_string() + "/" + std::to_string(length);
}

}  // namespace netseer::packet
