#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "packet/packet.h"

namespace netseer::packet::wire {

/// Serialize a packet to its byte-exact wire representation: Ethernet
/// header, optional 802.1Q tag, optional NetSeer sequence shim, IPv4 with
/// a correct header checksum, TCP/UDP, zero-filled payload (or control
/// payload bytes), minimum-frame padding, and trailing CRC-32 FCS.
///
/// The hot simulation path never serializes; this exists so the header
/// model is honest (round-trip tested) and so corruption can be modeled
/// at bit level when wanted.
[[nodiscard]] std::vector<std::byte> serialize(const Packet& pkt);

struct ParseResult {
  Packet packet;
  bool fcs_ok = false;
  bool ip_checksum_ok = false;
};

/// Parse wire bytes back into a structured packet. Returns nullopt only
/// for structurally unparseable frames (truncated headers); checksum
/// failures parse fine with the corresponding flag cleared, because a real
/// MAC sees the whole frame before judging the FCS.
[[nodiscard]] std::optional<ParseResult> parse(std::span<const std::byte> data);

/// RFC 1071 Internet checksum over `data` (for the IPv4 header).
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::byte> data) noexcept;

/// Flip `flips` random bits of `frame` (uniformly chosen), modeling link
/// corruption. Returns the bit positions flipped.
std::vector<std::size_t> flip_random_bits(std::span<std::byte> frame, int flips,
                                          std::uint64_t& rng_state);

}  // namespace netseer::packet::wire
