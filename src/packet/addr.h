#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace netseer::packet {

/// 48-bit Ethernet MAC address.
struct MacAddr {
  std::array<std::uint8_t, 6> bytes{};

  constexpr auto operator<=>(const MacAddr&) const = default;

  /// Deterministic address derived from a small integer node id,
  /// locally-administered unicast (02:xx:...).
  [[nodiscard]] static constexpr MacAddr from_node_id(std::uint32_t id) {
    return MacAddr{{0x02, 0x00,
                    static_cast<std::uint8_t>(id >> 24), static_cast<std::uint8_t>(id >> 16),
                    static_cast<std::uint8_t>(id >> 8), static_cast<std::uint8_t>(id)}};
  }

  /// 01:80:C2:00:00:01 — the reserved destination for PFC/PAUSE frames.
  [[nodiscard]] static constexpr MacAddr pfc_multicast() {
    return MacAddr{{0x01, 0x80, 0xc2, 0x00, 0x00, 0x01}};
  }

  [[nodiscard]] std::string to_string() const;
};

/// IPv4 address held in host byte order.
struct Ipv4Addr {
  std::uint32_t value = 0;

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

  [[nodiscard]] static constexpr Ipv4Addr from_octets(std::uint8_t a, std::uint8_t b,
                                                      std::uint8_t c, std::uint8_t d) {
    return Ipv4Addr{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                    (std::uint32_t{c} << 8) | std::uint32_t{d}};
  }

  /// Parse dotted-quad ("10.0.1.2"); returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv4Addr> parse(std::string_view text);

  [[nodiscard]] std::string to_string() const;
};

/// A prefix for longest-prefix-match routing, e.g. 10.1.0.0/16.
struct Ipv4Prefix {
  Ipv4Addr network{};
  std::uint8_t length = 0;  // 0..32

  constexpr auto operator<=>(const Ipv4Prefix&) const = default;

  [[nodiscard]] constexpr std::uint32_t mask() const {
    return length == 0 ? 0 : (~std::uint32_t{0} << (32 - length));
  }
  [[nodiscard]] constexpr bool contains(Ipv4Addr addr) const {
    return (addr.value & mask()) == (network.value & mask());
  }
  [[nodiscard]] std::string to_string() const;
};

}  // namespace netseer::packet
