#include "packet/builder.h"

namespace netseer::packet {

namespace {
Packet make_ipv4(const FlowKey& flow, std::uint32_t payload_bytes) {
  Packet pkt;
  pkt.uid = next_packet_uid();
  pkt.kind = PacketKind::kData;
  pkt.ip = Ipv4Header{};
  pkt.ip->src = flow.src;
  pkt.ip->dst = flow.dst;
  pkt.ip->proto = flow.proto;
  pkt.l4.sport = flow.sport;
  pkt.l4.dport = flow.dport;
  pkt.payload_bytes = payload_bytes;
  return pkt;
}
}  // namespace

Packet make_tcp(const FlowKey& flow, std::uint32_t payload_bytes, std::uint8_t flags,
                std::uint32_t seq) {
  FlowKey k = flow;
  k.proto = static_cast<std::uint8_t>(IpProto::kTcp);
  Packet pkt = make_ipv4(k, payload_bytes);
  pkt.l4.flags = flags;
  pkt.l4.seq = seq;
  return pkt;
}

Packet make_udp(const FlowKey& flow, std::uint32_t payload_bytes) {
  FlowKey k = flow;
  k.proto = static_cast<std::uint8_t>(IpProto::kUdp);
  return make_ipv4(k, payload_bytes);
}

Packet make_pfc(std::uint8_t priority_class, std::uint16_t quanta) {
  Packet pkt;
  pkt.uid = next_packet_uid();
  pkt.kind = PacketKind::kPfc;
  pkt.eth.dst = MacAddr::pfc_multicast();
  PfcFrame pfc;
  pfc.class_enable = static_cast<std::uint8_t>(1u << priority_class);
  pfc.pause_quanta[priority_class] = quanta;
  pkt.pfc = pfc;
  return pkt;
}

}  // namespace netseer::packet
