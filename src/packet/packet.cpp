#include "packet/packet.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace netseer::packet {

const char* to_string(PacketKind kind) {
  switch (kind) {
    case PacketKind::kData: return "data";
    case PacketKind::kPfc: return "pfc";
    case PacketKind::kProbe: return "probe";
    case PacketKind::kProbeReply: return "probe-reply";
    case PacketKind::kLossNotify: return "loss-notify";
    case PacketKind::kCebp: return "cebp";
    case PacketKind::kEventReport: return "event-report";
    case PacketKind::kReportAck: return "report-ack";
    case PacketKind::kPostcard: return "postcard";
    case PacketKind::kSampleMirror: return "sample-mirror";
    case PacketKind::kEverflowMirror: return "everflow-mirror";
  }
  return "?";
}

FlowKey Packet::flow() const {
  if (!ip) return FlowKey{};
  return FlowKey{ip->src, ip->dst, ip->proto, l4.sport, l4.dport};
}

std::uint32_t Packet::header_bytes() const {
  std::uint32_t bytes = kEthHeaderBytes;
  if (vlan) bytes += kVlanTagBytes;
  if (seq_tag) bytes += kSeqTagBytes;
  if (pfc) {
    // MAC control opcode (2) + class-enable vector (2) + 8 quanta (16).
    bytes += 20;
  }
  if (ip) {
    bytes += Ipv4Header::kWireSize;
    if (is_tcp()) {
      bytes += L4Header::kTcpWireSize;
    } else if (is_udp()) {
      bytes += L4Header::kUdpWireSize;
    }
  }
  return bytes + kEthFcsBytes;
}

std::uint32_t Packet::wire_bytes() const {
  std::uint32_t bytes = header_bytes() + payload_bytes;
  if (control) bytes += control->wire_size();
  return std::max(bytes, kMinFrameBytes);
}

std::string Packet::summary() const {
  char buf[128];
  if (ip) {
    std::snprintf(buf, sizeof(buf), "[%s %s len=%u ttl=%u%s]", to_string(kind),
                  flow().to_string().c_str(), wire_bytes(), ip->ttl,
                  corrupted ? " CORRUPT" : "");
  } else {
    std::snprintf(buf, sizeof(buf), "[%s len=%u%s]", to_string(kind), wire_bytes(),
                  corrupted ? " CORRUPT" : "");
  }
  return buf;
}

util::PacketUid next_packet_uid() {
  // NETSEER_LINT_ALLOW(raw-sync): process-wide uid tick, deliberately not an
  // mc_shim::atomic — uid draws would explode the mc interleaving space and
  // uniqueness is the only property anything relies on.
  static std::atomic<util::PacketUid> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace netseer::packet
