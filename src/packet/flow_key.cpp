#include "packet/flow_key.h"

#include <cstdio>

#include "util/hash.h"

namespace netseer::packet {

namespace {
void put_u32(std::byte* out, std::uint32_t v) {
  out[0] = static_cast<std::byte>(v >> 24);
  out[1] = static_cast<std::byte>(v >> 16);
  out[2] = static_cast<std::byte>(v >> 8);
  out[3] = static_cast<std::byte>(v);
}
void put_u16(std::byte* out, std::uint16_t v) {
  out[0] = static_cast<std::byte>(v >> 8);
  out[1] = static_cast<std::byte>(v);
}
std::uint32_t get_u32(const std::byte* in) {
  return (std::uint32_t(in[0]) << 24) | (std::uint32_t(in[1]) << 16) |
         (std::uint32_t(in[2]) << 8) | std::uint32_t(in[3]);
}
std::uint16_t get_u16(const std::byte* in) {
  return static_cast<std::uint16_t>((std::uint16_t(in[0]) << 8) | std::uint16_t(in[1]));
}
}  // namespace

std::array<std::byte, FlowKey::kPackedSize> FlowKey::packed() const noexcept {
  std::array<std::byte, kPackedSize> raw{};
  put_u32(raw.data(), src.value);
  put_u32(raw.data() + 4, dst.value);
  raw[8] = static_cast<std::byte>(proto);
  put_u16(raw.data() + 9, sport);
  put_u16(raw.data() + 11, dport);
  return raw;
}

FlowKey FlowKey::from_packed(const std::array<std::byte, kPackedSize>& raw) noexcept {
  FlowKey key;
  key.src.value = get_u32(raw.data());
  key.dst.value = get_u32(raw.data() + 4);
  key.proto = static_cast<std::uint8_t>(raw[8]);
  key.sport = get_u16(raw.data() + 9);
  key.dport = get_u16(raw.data() + 11);
  return key;
}

std::uint64_t FlowKey::hash64() const noexcept {
  const auto raw = packed();
  return util::fnv1a64(raw);
}

std::uint32_t FlowKey::crc32() const noexcept {
  const auto raw = packed();
  return util::crc32(raw);
}

std::string FlowKey::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s:%u>%s:%u/%u", src.to_string().c_str(), sport,
                dst.to_string().c_str(), dport, proto);
  return buf;
}

}  // namespace netseer::packet
