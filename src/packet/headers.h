#pragma once

#include <array>
#include <compare>
#include <cstdint>

#include "packet/addr.h"

namespace netseer::packet {

/// EtherTypes used by the wire model. kNetSeerSeq is the shim header that
/// carries the 4-byte inter-switch consecutive packet ID (§3.3); the paper
/// suggests reusing unused VLAN/IP-option bits — we model it as a
/// dedicated local-experimental shim so insertion/removal is explicit.
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kVlan = 0x8100,
  kFlowControl = 0x8808,  // MAC control: PAUSE / PFC
  kNetSeerSeq = 0x88b5,   // IEEE local experimental 1
};

struct EthernetHeader {
  MacAddr dst{};
  MacAddr src{};
  constexpr auto operator<=>(const EthernetHeader&) const = default;
};

/// 802.1Q tag. pcp = priority code point, vid = VLAN id.
struct VlanTag {
  std::uint8_t pcp = 0;   // 3 bits
  bool dei = false;       // 1 bit
  std::uint16_t vid = 0;  // 12 bits
  constexpr auto operator<=>(const VlanTag&) const = default;

  [[nodiscard]] constexpr std::uint16_t tci() const {
    return static_cast<std::uint16_t>((static_cast<unsigned>(pcp) << 13) |
                                      ((dei ? 1u : 0u) << 12) | (vid & 0x0fffu));
  }
  [[nodiscard]] static constexpr VlanTag from_tci(std::uint16_t tci) {
    return VlanTag{static_cast<std::uint8_t>(tci >> 13), ((tci >> 12) & 1) != 0,
                   static_cast<std::uint16_t>(tci & 0x0fff)};
  }
};

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

struct Ipv4Header {
  std::uint8_t dscp = 0;  // 6 bits
  std::uint8_t ecn = 0;   // 2 bits
  std::uint16_t ident = 0;
  std::uint8_t ttl = 64;
  std::uint8_t proto = static_cast<std::uint8_t>(IpProto::kTcp);
  Ipv4Addr src{};
  Ipv4Addr dst{};
  constexpr auto operator<=>(const Ipv4Header&) const = default;
  static constexpr std::uint32_t kWireSize = 20;  // no options
};

namespace tcp_flags {
inline constexpr std::uint8_t kFin = 0x01;
inline constexpr std::uint8_t kSyn = 0x02;
inline constexpr std::uint8_t kRst = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
inline constexpr std::uint8_t kAck = 0x10;
}  // namespace tcp_flags

/// Flattened L4 header: interpreted as TCP or UDP depending on ip.proto.
/// For UDP, seq/ack/flags/window are unused and serialize away.
struct L4Header {
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  constexpr auto operator<=>(const L4Header&) const = default;
  static constexpr std::uint32_t kTcpWireSize = 20;  // no options
  static constexpr std::uint32_t kUdpWireSize = 8;
};

/// IEEE 802.1Qbb priority flow control frame. enable bit i set means the
/// quanta for class i is meaningful; quanta 0 = RESUME, >0 = PAUSE.
struct PfcFrame {
  std::uint8_t class_enable = 0;
  std::array<std::uint16_t, 8> pause_quanta{};
  constexpr auto operator<=>(const PfcFrame&) const = default;

  [[nodiscard]] constexpr bool pauses(std::uint8_t cls) const {
    return (class_enable & (1u << cls)) != 0 && pause_quanta[cls] > 0;
  }
  [[nodiscard]] constexpr bool resumes(std::uint8_t cls) const {
    return (class_enable & (1u << cls)) != 0 && pause_quanta[cls] == 0;
  }
};

}  // namespace netseer::packet
