#include "packet/pool.h"

#include <cassert>

namespace netseer::packet {

Pool& Pool::local() {
  static Pool pool;
  return pool;
}

PooledPacket Pool::acquire(Packet&& pkt) {
  // Owner-thread discipline: the free list is intentionally unlocked, so
  // an off-owner acquire is a data race, not just a perf bug. Debug
  // builds fail fast here; the mc harness proves the discipline holds
  // across every schedule of the remote-release protocol.
  assert(owned_by_caller() && "Pool::acquire called off the owner thread (bind_owner first)");
  if (remote_pending_.load(std::memory_order_acquire)) drain_remote();
  ++acquires_;
  Packet* slot;
  NETSEER_MC_WRITE(&free_, "Pool::free_");
  if (!free_.empty()) {
    ++reuses_;
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = materialize_slot();
  }
  *slot = std::move(pkt);
  return PooledPacket(this, slot);
}

Packet* Pool::materialize_slot() {
  const std::size_t index = slot_count_++;
  if (index % kChunkPackets == 0) {
    chunks_.push_back(std::make_unique<Packet[]>(kChunkPackets));
  }
  return &chunks_.back()[index % kChunkPackets];
}

void Pool::release(Packet* pkt) {
  // Drop the (possibly shared) control payload now so pooling never
  // extends a payload's lifetime; header fields are plain values and get
  // overwritten wholesale by the next acquire.
  pkt->control.reset();
  if (!owned_by_caller()) {
    release_remote(pkt);
    return;
  }
  NETSEER_MC_WRITE(&free_, "Pool::free_");
  // NETSEER_LINT_ALLOW(hot-alloc): free-list push reuses capacity at steady
  // state; growth is bounded by the high-water in-flight population.
  free_.push_back(pkt);
}

void Pool::release_remote(Packet* pkt) {
  remote_returns_.fetch_add(1, std::memory_order_relaxed);
  {
    util::MutexLock lock(remote_mu_);
    remote_.push_back(pkt);
  }
  remote_pending_.store(true, std::memory_order_release);
}

void Pool::drain_remote() {
  util::MutexLock lock(remote_mu_);
  NETSEER_MC_WRITE(&free_, "Pool::free_");
  free_.insert(free_.end(), remote_.begin(), remote_.end());
  remote_.clear();
  remote_pending_.store(false, std::memory_order_relaxed);
}

}  // namespace netseer::packet
