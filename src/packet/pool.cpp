#include "packet/pool.h"

namespace netseer::packet {

Pool& Pool::local() {
  static Pool pool;
  return pool;
}

PooledPacket Pool::acquire(Packet&& pkt) {
  if (remote_pending_.load(std::memory_order_acquire)) drain_remote();
  ++acquires_;
  Packet* slot;
  if (!free_.empty()) {
    ++reuses_;
    slot = free_.back();
    free_.pop_back();
  } else {
    const std::size_t index = slot_count_++;
    if (index % kChunkPackets == 0) {
      chunks_.push_back(std::make_unique<Packet[]>(kChunkPackets));
    }
    slot = &chunks_.back()[index % kChunkPackets];
  }
  *slot = std::move(pkt);
  return PooledPacket(this, slot);
}

void Pool::release(Packet* pkt) {
  // Drop the (possibly shared) control payload now so pooling never
  // extends a payload's lifetime; header fields are plain values and get
  // overwritten wholesale by the next acquire.
  pkt->control.reset();
  if (std::this_thread::get_id() != owner_) {
    release_remote(pkt);
    return;
  }
  free_.push_back(pkt);
}

void Pool::release_remote(Packet* pkt) {
  remote_returns_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(remote_mu_);
    remote_.push_back(pkt);
  }
  remote_pending_.store(true, std::memory_order_release);
}

void Pool::drain_remote() {
  std::lock_guard<std::mutex> lock(remote_mu_);
  free_.insert(free_.end(), remote_.begin(), remote_.end());
  remote_.clear();
  remote_pending_.store(false, std::memory_order_relaxed);
}

}  // namespace netseer::packet
