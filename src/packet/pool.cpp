#include "packet/pool.h"

namespace netseer::packet {

Pool& Pool::local() {
  static Pool pool;
  return pool;
}

PooledPacket Pool::acquire(Packet&& pkt) {
  ++acquires_;
  Packet* slot;
  if (!free_.empty()) {
    ++reuses_;
    slot = free_.back();
    free_.pop_back();
  } else {
    const std::size_t index = slot_count_++;
    if (index % kChunkPackets == 0) {
      chunks_.push_back(std::make_unique<Packet[]>(kChunkPackets));
    }
    slot = &chunks_.back()[index % kChunkPackets];
  }
  *slot = std::move(pkt);
  return PooledPacket(this, slot);
}

void Pool::release(Packet* pkt) {
  // Drop the (possibly shared) control payload now so pooling never
  // extends a payload's lifetime; header fields are plain values and get
  // overwritten wholesale by the next acquire.
  pkt->control.reset();
  free_.push_back(pkt);
}

}  // namespace netseer::packet
