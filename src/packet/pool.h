#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "mc/shim.h"
#include "packet/packet.h"
#include "util/annotations.h"
#include "util/thread_annotations.h"

namespace netseer::packet {

class Pool;

/// Move-only handle to a pooled in-flight Packet. Two pointers (16 bytes),
/// so a scheduled hop capturing `this` plus a PooledPacket stays inside
/// sim::Task's inline buffer — the frame rides the event queue without a
/// heap allocation per hop. The slot returns to the pool when the handle
/// dies; call take() to move the Packet out for delivery.
class PooledPacket {
 public:
  PooledPacket() = default;
  PooledPacket(PooledPacket&& other) noexcept : pool_(other.pool_), pkt_(other.pkt_) {
    other.pool_ = nullptr;
    other.pkt_ = nullptr;
  }
  PooledPacket& operator=(PooledPacket&& other) noexcept {
    if (this != &other) {
      reset();
      pool_ = other.pool_;
      pkt_ = other.pkt_;
      other.pool_ = nullptr;
      other.pkt_ = nullptr;
    }
    return *this;
  }
  PooledPacket(const PooledPacket&) = delete;
  PooledPacket& operator=(const PooledPacket&) = delete;
  // noexcept(false) only under NETSEER_MC: release is a scheduling point
  // there, and run teardown unwinds parked threads with an exception.
  ~PooledPacket() NETSEER_MC_NOEXCEPT_FALSE { reset(); }

  [[nodiscard]] explicit operator bool() const { return pkt_ != nullptr; }
  [[nodiscard]] Packet& operator*() { return *pkt_; }
  [[nodiscard]] Packet* operator->() { return pkt_; }

  /// Move the frame out (for handing to a receive/enqueue API that takes
  /// Packet by value). The emptied slot still returns to the pool when
  /// this handle is destroyed.
  [[nodiscard]] NETSEER_HOT Packet take() { return std::move(*pkt_); }

  /// Return the slot to the pool now instead of at destruction.
  NETSEER_HOT void reset();

 private:
  friend class Pool;
  PooledPacket(Pool* pool, Packet* pkt) : pool_(pool), pkt_(pkt) {}

  Pool* pool_ = nullptr;
  Packet* pkt_ = nullptr;
};

/// Recycling arena for in-flight Packet buffers. Slots live in chunked
/// slabs with stable addresses and cycle through a LIFO free list, so the
/// steady-state hot path (a frame hopping link -> switch -> link) reuses
/// the same few cache-warm slots and never touches the allocator.
///
/// Owner-threaded, like the simulator shard it feeds: acquire() and the
/// free-list fast path belong to one thread (the constructor's, or the
/// one that last called bind_owner()). A handle released from ANOTHER
/// thread — a packet that crossed a shard boundary and died there — takes
/// the slow path: the slot goes onto a mutex-guarded remote-return list
/// that the owner folds back into its free list on the next acquire.
/// hit-rate telemetry: reuses()/acquires() is exported as the
/// pool.hit_rate gauge (basis points) — a low value means the in-flight
/// population keeps growing, i.e. the pool is being used somewhere
/// packets are parked long-term.
class Pool {
 public:
  static constexpr std::size_t kChunkPackets = 64;

  Pool() : owner_(std::this_thread::get_id()) {}
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Process-wide pool shared by every link/port/pipeline hop.
  [[nodiscard]] static Pool& local();

  /// Adopt the calling thread as the owner of the fast path. A shard
  /// worker calls this on its per-shard pool before the run; only the
  /// owner may call acquire().
  void bind_owner() { owner_ = std::this_thread::get_id(); }

  /// True when the calling thread is the fast-path owner. acquire()
  /// asserts this in debug builds; callers unsure of their shard
  /// affinity (tests, diagnostics) can check explicitly.
  [[nodiscard]] bool owned_by_caller() const { return std::this_thread::get_id() == owner_; }

  /// Park `pkt` in a recycled slot and get the small handle for it.
  /// Owner thread only (enforced by a debug-build assertion).
  [[nodiscard]] NETSEER_HOT PooledPacket acquire(Packet&& pkt);

  [[nodiscard]] std::uint64_t acquires() const { return acquires_; }
  /// Acquires served from the free list (no new slot materialized).
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }
  /// Distinct slots ever materialized (high-water in-flight population).
  [[nodiscard]] std::size_t slots() const { return slot_count_; }
  [[nodiscard]] std::size_t free_slots() const { return free_.size(); }
  /// Slots released from non-owner threads over the pool's lifetime.
  [[nodiscard]] std::uint64_t remote_returns() const {
    return remote_returns_.load(std::memory_order_relaxed);
  }

 private:
  friend class PooledPacket;
  /// Free-list miss: carve the next slot, growing a slab when the
  /// current one fills. The only allocating branch of acquire().
  NETSEER_HOT_ALLOW_INIT Packet* materialize_slot();
  NETSEER_HOT void release(Packet* pkt);
  /// Off-owner slow path; mutex + vector growth are the point.
  NETSEER_HOT_ALLOW_INIT void release_remote(Packet* pkt) NETSEER_EXCLUDES(remote_mu_);
  NETSEER_HOT_ALLOW_INIT void drain_remote() NETSEER_EXCLUDES(remote_mu_);

  // Owner-thread-only state: the free-list fast path. Not lock-guarded
  // by design — the owner discipline (bind_owner + the acquire()
  // assertion) is what makes it safe, and the model checker's race
  // instrumentation on free_ verifies that discipline holds in every
  // explored schedule.
  std::vector<std::unique_ptr<Packet[]>> chunks_;
  std::vector<Packet*> free_;
  std::size_t slot_count_ = 0;
  std::uint64_t acquires_ = 0;
  std::uint64_t reuses_ = 0;

  std::thread::id owner_;
  mc_shim::atomic<bool> remote_pending_{false};  // checked lock-free on acquire
  mc_shim::atomic<std::uint64_t> remote_returns_{0};
  util::Mutex remote_mu_;
  std::vector<Packet*> remote_ NETSEER_GUARDED_BY(remote_mu_);
};

inline void PooledPacket::reset() {
  if (pool_ != nullptr) {
    pool_->release(pkt_);
    pool_ = nullptr;
    pkt_ = nullptr;
  }
}

}  // namespace netseer::packet
