#include "packet/wire.h"

#include <algorithm>
#include <cstring>

#include "util/hash.h"
#include "util/rng.h"

namespace netseer::packet::wire {

namespace {

class Writer {
 public:
  explicit Writer(std::vector<std::byte>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void bytes(std::span<const std::uint8_t> data) {
    for (auto b : data) u8(b);
  }
  void zeros(std::size_t n) { out_.insert(out_.end(), n, std::byte{0}); }
  [[nodiscard]] std::size_t size() const { return out_.size(); }
  void patch_u16(std::size_t offset, std::uint16_t v) {
    out_[offset] = static_cast<std::byte>(v >> 8);
    out_[offset + 1] = static_cast<std::byte>(v);
  }

 private:
  std::vector<std::byte>& out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t u8() {
    if (pos_ + 1 > data_.size()) {
      ok_ = false;
      return 0;
    }
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint16_t u16() {
    const auto hi = u8();
    const auto lo = u8();
    return static_cast<std::uint16_t>((std::uint16_t{hi} << 8) | lo);
  }
  std::uint32_t u32() {
    const auto hi = u16();
    const auto lo = u16();
    return (std::uint32_t{hi} << 16) | lo;
  }
  void skip(std::size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      pos_ = data_.size();
      return;
    }
    pos_ += n;
  }
  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::uint16_t ethertype_after_shims(const Packet& pkt) {
  if (pkt.pfc) return static_cast<std::uint16_t>(EtherType::kFlowControl);
  if (pkt.ip) return static_cast<std::uint16_t>(EtherType::kIpv4);
  return 0x0000;  // length/unknown
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::byte> data) noexcept {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (std::uint32_t(static_cast<std::uint8_t>(data[i])) << 8) |
           std::uint32_t(static_cast<std::uint8_t>(data[i + 1]));
  }
  if (i < data.size()) sum += std::uint32_t(static_cast<std::uint8_t>(data[i])) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::vector<std::byte> serialize(const Packet& pkt) {
  std::vector<std::byte> out;
  out.reserve(pkt.wire_bytes());
  Writer w(out);

  // Ethernet.
  w.bytes(pkt.eth.dst.bytes);
  w.bytes(pkt.eth.src.bytes);

  if (pkt.vlan) {
    w.u16(static_cast<std::uint16_t>(EtherType::kVlan));
    w.u16(pkt.vlan->tci());
  }
  if (pkt.seq_tag) {
    w.u16(static_cast<std::uint16_t>(EtherType::kNetSeerSeq));
    w.u32(*pkt.seq_tag);
  }
  w.u16(ethertype_after_shims(pkt));

  if (pkt.pfc) {
    w.u16(0x0101);  // MAC control opcode for PFC
    w.u16(pkt.pfc->class_enable);
    for (auto q : pkt.pfc->pause_quanta) w.u16(q);
  }

  if (pkt.ip) {
    const std::size_t ip_start = w.size();
    std::uint32_t l4_size = 0;
    if (pkt.is_tcp()) l4_size = L4Header::kTcpWireSize;
    else if (pkt.is_udp()) l4_size = L4Header::kUdpWireSize;
    const std::uint32_t control_bytes = pkt.control ? pkt.control->wire_size() : 0;
    const std::uint16_t total_len = static_cast<std::uint16_t>(
        Ipv4Header::kWireSize + l4_size + pkt.payload_bytes + control_bytes);

    w.u8(0x45);  // version 4, IHL 5
    w.u8(static_cast<std::uint8_t>((pkt.ip->dscp << 2) | (pkt.ip->ecn & 0x3)));
    w.u16(total_len);
    w.u16(pkt.ip->ident);
    w.u16(0x4000);  // DF, no fragmentation in the model
    w.u8(pkt.ip->ttl);
    w.u8(pkt.ip->proto);
    const std::size_t csum_at = w.size();
    w.u16(0);  // checksum placeholder
    w.u32(pkt.ip->src.value);
    w.u32(pkt.ip->dst.value);
    const std::uint16_t csum = internet_checksum(
        std::span<const std::byte>(out.data() + ip_start, Ipv4Header::kWireSize));
    w.patch_u16(csum_at, csum);

    if (pkt.is_tcp()) {
      w.u16(pkt.l4.sport);
      w.u16(pkt.l4.dport);
      w.u32(pkt.l4.seq);
      w.u32(pkt.l4.ack);
      w.u8(0x50);  // data offset 5
      w.u8(pkt.l4.flags);
      w.u16(pkt.l4.window);
      w.u16(0);  // TCP checksum not modeled (payload is virtual)
      w.u16(0);  // urgent pointer
    } else if (pkt.is_udp()) {
      w.u16(pkt.l4.sport);
      w.u16(pkt.l4.dport);
      w.u16(static_cast<std::uint16_t>(L4Header::kUdpWireSize + pkt.payload_bytes +
                                       control_bytes));
      w.u16(0);  // UDP checksum optional for IPv4
    }
  }

  // Virtual payload + control payload, rendered as zeros.
  const std::uint32_t body =
      pkt.payload_bytes + (pkt.control ? pkt.control->wire_size() : 0);
  w.zeros(body);

  // Pad to minimum frame (64 bytes with FCS).
  if (out.size() + kEthFcsBytes < kMinFrameBytes) {
    w.zeros(kMinFrameBytes - kEthFcsBytes - out.size());
  }

  std::uint32_t fcs = util::crc32(out);
  if (pkt.corrupted) fcs ^= 0xdeadbeef;  // make the FCS check fail downstream
  w.u32(fcs);
  return out;
}

std::optional<ParseResult> parse(std::span<const std::byte> data) {
  if (data.size() < kMinFrameBytes) return std::nullopt;

  ParseResult result;
  Packet& pkt = result.packet;
  pkt.uid = next_packet_uid();

  // FCS first — a real MAC checks it before anything else.
  const std::uint32_t want_fcs = util::crc32(data.first(data.size() - 4));
  Reader fcs_reader(data.subspan(data.size() - 4));
  const std::uint32_t got_fcs = fcs_reader.u32();
  result.fcs_ok = (want_fcs == got_fcs);
  pkt.corrupted = !result.fcs_ok;

  Reader r(data.first(data.size() - 4));
  for (auto& b : pkt.eth.dst.bytes) b = r.u8();
  for (auto& b : pkt.eth.src.bytes) b = r.u8();

  std::uint16_t ethertype = r.u16();
  if (ethertype == static_cast<std::uint16_t>(EtherType::kVlan)) {
    pkt.vlan = VlanTag::from_tci(r.u16());
    ethertype = r.u16();
  }
  if (ethertype == static_cast<std::uint16_t>(EtherType::kNetSeerSeq)) {
    pkt.seq_tag = r.u32();
    ethertype = r.u16();
  }

  if (ethertype == static_cast<std::uint16_t>(EtherType::kFlowControl)) {
    pkt.kind = PacketKind::kPfc;
    PfcFrame pfc;
    const std::uint16_t opcode = r.u16();
    if (opcode != 0x0101) return std::nullopt;
    pfc.class_enable = static_cast<std::uint8_t>(r.u16());
    for (auto& q : pfc.pause_quanta) q = r.u16();
    pkt.pfc = pfc;
    if (!r.ok()) return std::nullopt;
    return result;
  }

  if (ethertype != static_cast<std::uint16_t>(EtherType::kIpv4)) {
    // Unknown ethertype: structurally fine, no higher layers.
    result.ip_checksum_ok = true;
    return r.ok() ? std::optional<ParseResult>(std::move(result)) : std::nullopt;
  }

  const std::size_t ip_start = r.pos();
  const std::uint8_t version_ihl = r.u8();
  if ((version_ihl >> 4) != 4 || (version_ihl & 0x0f) != 5) return std::nullopt;
  Ipv4Header ip;
  const std::uint8_t tos = r.u8();
  ip.dscp = static_cast<std::uint8_t>(tos >> 2);
  ip.ecn = tos & 0x3;
  const std::uint16_t total_len = r.u16();
  ip.ident = r.u16();
  r.u16();  // flags/fragment
  ip.ttl = r.u8();
  ip.proto = r.u8();
  r.u16();  // checksum (validated over the whole header below)
  ip.src.value = r.u32();
  ip.dst.value = r.u32();
  if (!r.ok()) return std::nullopt;
  result.ip_checksum_ok =
      internet_checksum(data.subspan(ip_start, Ipv4Header::kWireSize)) == 0;
  pkt.ip = ip;

  std::uint32_t l4_size = 0;
  if (pkt.is_tcp()) {
    if (r.remaining() < L4Header::kTcpWireSize) return std::nullopt;
    pkt.l4.sport = r.u16();
    pkt.l4.dport = r.u16();
    pkt.l4.seq = r.u32();
    pkt.l4.ack = r.u32();
    r.u8();  // data offset
    pkt.l4.flags = r.u8();
    pkt.l4.window = r.u16();
    r.u16();  // checksum
    r.u16();  // urgent
    l4_size = L4Header::kTcpWireSize;
  } else if (pkt.is_udp()) {
    if (r.remaining() < L4Header::kUdpWireSize) return std::nullopt;
    pkt.l4.sport = r.u16();
    pkt.l4.dport = r.u16();
    r.u16();  // length
    r.u16();  // checksum
    l4_size = L4Header::kUdpWireSize;
  }

  if (total_len >= Ipv4Header::kWireSize + l4_size) {
    pkt.payload_bytes = total_len - Ipv4Header::kWireSize - l4_size;
  }
  return r.ok() ? std::optional<ParseResult>(std::move(result)) : std::nullopt;
}

std::vector<std::size_t> flip_random_bits(std::span<std::byte> frame, int flips,
                                          std::uint64_t& rng_state) {
  std::vector<std::size_t> positions;
  positions.reserve(static_cast<std::size_t>(std::max(flips, 0)));
  for (int i = 0; i < flips; ++i) {
    const std::uint64_t r = util::splitmix64(rng_state);
    const std::size_t bit = static_cast<std::size_t>(r % (frame.size() * 8));
    frame[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    positions.push_back(bit);
  }
  return positions;
}

}  // namespace netseer::packet::wire
