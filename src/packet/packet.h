#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "packet/flow_key.h"
#include "packet/headers.h"
#include "util/ids.h"
#include "util/time.h"

namespace netseer::packet {

/// Discriminates what a frame carries beyond its headers. The data plane
/// itself only ever branches on headers; `kind` exists so simulation
/// components can cheaply recognize their own control traffic without
/// re-parsing payload bytes.
enum class PacketKind : std::uint8_t {
  kData = 0,         // application traffic
  kPfc,              // 802.1Qbb pause/resume frame
  kProbe,            // Pingmesh-style probe
  kProbeReply,       //   ... and its reply
  kLossNotify,       // NetSeer inter-switch loss notification (§3.3)
  kCebp,             // circulating event batching packet (§3.5)
  kEventReport,      // batched flow events, switch CPU -> backend
  kReportAck,        // backend -> switch CPU reliable-transport ack
  kPostcard,         // NetSight per-packet postcard mirror
  kSampleMirror,     // 1:N sampled packet mirror
  kEverflowMirror,   // EverFlow SYN/FIN or on-demand telemetry mirror
};

[[nodiscard]] const char* to_string(PacketKind kind);

/// Base class for structured control payloads riding inside packets.
/// Modules define their own payloads (loss notifications, event batches,
/// probes); `wire_size()` is the payload's on-the-wire byte count so frame
/// length accounting stays honest. Payloads are immutable and shared so
/// copying a Packet stays cheap.
class ControlPayload {
 public:
  virtual ~ControlPayload() = default;
  [[nodiscard]] virtual std::uint32_t wire_size() const = 0;
};

/// Per-packet metadata that exists only inside the simulator (it models
/// switch PHV metadata plus ground-truth bookkeeping; none of it is on
/// the wire).
struct PacketMeta {
  util::PortId ingress_port = util::kInvalidPort;   // set by the receiving node
  util::SimTime ingress_time = 0;                   // arrival at current node
  util::SimTime enqueue_time = 0;                   // when queued in the MMU
  util::QueueId queue = 0;                          // egress priority queue
  util::NodeId origin_node = util::kInvalidNode;    // node that created the packet
  util::SimTime created_time = 0;
  bool mmu_accounted = false;  // packet holds PFC ingress-buffer credit
};

/// The simulated frame. A value type: pipelines mutate their copy and the
/// link layer moves it. Headers mirror what the wire serializer emits;
/// `payload_bytes` stands in for application payload content we never
/// need to materialize.
struct Packet {
  util::PacketUid uid = 0;
  PacketKind kind = PacketKind::kData;

  EthernetHeader eth{};
  std::optional<VlanTag> vlan;
  /// NetSeer inter-switch consecutive packet ID shim (§3.3). Inserted by
  /// the upstream egress, removed by the downstream ingress.
  std::optional<std::uint32_t> seq_tag;
  std::optional<Ipv4Header> ip;
  L4Header l4{};
  std::optional<PfcFrame> pfc;

  /// Virtual application payload length in bytes (content not modeled).
  std::uint32_t payload_bytes = 0;
  /// Set by the link corruption process: the next MAC that receives this
  /// frame will fail the FCS check and discard it silently.
  bool corrupted = false;

  std::shared_ptr<const ControlPayload> control;

  PacketMeta meta{};

  /// 5-tuple of an IPv4 packet; zero key for non-IP frames.
  [[nodiscard]] FlowKey flow() const;

  [[nodiscard]] bool is_ipv4() const { return ip.has_value(); }
  [[nodiscard]] bool is_tcp() const {
    return ip && ip->proto == static_cast<std::uint8_t>(IpProto::kTcp);
  }
  [[nodiscard]] bool is_udp() const {
    return ip && ip->proto == static_cast<std::uint8_t>(IpProto::kUdp);
  }

  /// Total frame length on the wire in bytes, including Ethernet header,
  /// shims, IP/L4 headers, payload (or control payload), and FCS; padded
  /// to the 64-byte Ethernet minimum.
  [[nodiscard]] std::uint32_t wire_bytes() const;

  /// Header-only bytes (wire_bytes minus payload and padding).
  [[nodiscard]] std::uint32_t header_bytes() const;

  [[nodiscard]] std::string summary() const;
};

inline constexpr std::uint32_t kEthHeaderBytes = 14;
inline constexpr std::uint32_t kEthFcsBytes = 4;
inline constexpr std::uint32_t kVlanTagBytes = 4;
/// NetSeer sequence shim on the wire: 4-byte packet ID plus the 2-byte
/// encapsulated ethertype (the paper avoids this cost by reusing unused
/// VLAN/IP-option bits; our explicit shim makes the overhead visible).
inline constexpr std::uint32_t kSeqTagBytes = 6;
inline constexpr std::uint32_t kMinFrameBytes = 64;
inline constexpr std::uint32_t kDefaultMtu = 1500;  // max IP datagram bytes

/// Process-wide monotonically increasing packet uid source. Determinism
/// note: uids order packet *creation*, they carry no timing meaning.
[[nodiscard]] util::PacketUid next_packet_uid();

}  // namespace netseer::packet
