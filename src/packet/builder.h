#pragma once

#include <cstdint>

#include "packet/packet.h"

namespace netseer::packet {

/// Convenience constructors for the packet shapes the simulator and tests
/// build most often. All of them assign a fresh uid and stamp origin
/// metadata left to the caller.

/// A TCP data segment for `flow` with `payload_bytes` of payload.
[[nodiscard]] Packet make_tcp(const FlowKey& flow, std::uint32_t payload_bytes,
                              std::uint8_t flags = tcp_flags::kAck, std::uint32_t seq = 0);

/// A UDP datagram for `flow`.
[[nodiscard]] Packet make_udp(const FlowKey& flow, std::uint32_t payload_bytes);

/// A PFC frame pausing (`quanta` > 0) or resuming (`quanta` == 0) the
/// given priority class.
[[nodiscard]] Packet make_pfc(std::uint8_t priority_class, std::uint16_t quanta);

}  // namespace netseer::packet
