#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <string>

#include "packet/addr.h"

namespace netseer::packet {

/// The 13-byte 5-tuple NetSeer uses as its default flow identifier
/// (§3.4: "an exact flow 5-tuple, or other flow identifiers that can be
/// flexibly defined"). Packed layout matches the event wire format:
/// src(4) dst(4) proto(1) sport(2) dport(2).
struct FlowKey {
  Ipv4Addr src{};
  Ipv4Addr dst{};
  std::uint8_t proto = 0;
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;

  constexpr auto operator<=>(const FlowKey&) const = default;

  static constexpr std::size_t kPackedSize = 13;

  /// Serialize to the canonical 13-byte layout (big-endian fields).
  [[nodiscard]] std::array<std::byte, kPackedSize> packed() const noexcept;

  /// Parse back from the canonical layout.
  [[nodiscard]] static FlowKey from_packed(const std::array<std::byte, kPackedSize>& raw) noexcept;

  /// 64-bit hash over the packed bytes, the host-side map key.
  [[nodiscard]] std::uint64_t hash64() const noexcept;

  /// 32-bit CRC over the packed bytes — the hash the data plane
  /// pre-computes and attaches to event records for the switch CPU (§3.6).
  [[nodiscard]] std::uint32_t crc32() const noexcept;

  /// The reverse direction (dst->src), e.g. for reply traffic.
  [[nodiscard]] constexpr FlowKey reversed() const {
    return FlowKey{dst, src, proto, dport, sport};
  }

  [[nodiscard]] std::string to_string() const;
};

struct FlowKeyHash {
  [[nodiscard]] std::size_t operator()(const FlowKey& key) const noexcept {
    return static_cast<std::size_t>(key.hash64());
  }
};

}  // namespace netseer::packet
