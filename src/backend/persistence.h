#pragma once

#include <cstdint>
#include <istream>
#include <ostream>

#include "backend/event_store.h"

namespace netseer::backend {

/// On-disk format for the backend store: a small header followed by one
/// fixed-size record per event — the 24-byte wire encoding (§4) plus the
/// backend-side metadata (switch id, detected/stored timestamps) — and a
/// CRC-32 footer over everything before it, so truncation *and* flipped
/// payload bytes are both detected. Format (version 2):
///
///   magic "NSEV" (4) | version u16 | record count u64
///   per record: event(24) | switch_id u32 | detected_at i64 | stored_at i64
///   footer: crc32 u32 over header + records
///
/// All integers little-endian. load_store is atomic: input is parsed and
/// checksummed into a scratch store first, and the target is only
/// touched — appended to, preserving merge semantics — after the whole
/// stream validated. A truncated or corrupt file leaves the target
/// exactly as it was, and a stream with bytes after the footer is
/// rejected outright (a lying count field cannot smuggle records past
/// the checksum).
[[nodiscard]] bool save_store(const EventStore& store, std::ostream& out);
[[nodiscard]] bool load_store(EventStore& store, std::istream& in);

inline constexpr std::uint16_t kStoreFormatVersion = 2;

}  // namespace netseer::backend
