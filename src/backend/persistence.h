#pragma once

#include <cstdint>
#include <istream>
#include <ostream>

#include "backend/event_store.h"

namespace netseer::backend {

/// On-disk format for the backend store: a small header followed by one
/// fixed-size record per event — the 24-byte wire encoding (§4) plus the
/// backend-side metadata (switch id, detected/stored timestamps). Format:
///
///   magic "NSEV" (4) | version u16 | record count u64
///   per record: event(24) | switch_id u32 | detected_at i64 | stored_at i64
///
/// All integers little-endian. Returns false on malformed input, leaving
/// already-loaded records in place (append semantics).
bool save_store(const EventStore& store, std::ostream& out);
bool load_store(EventStore& store, std::istream& in);

inline constexpr std::uint16_t kStoreFormatVersion = 1;

}  // namespace netseer::backend
