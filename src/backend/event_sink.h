#pragma once

#include "core/event.h"
#include "util/time.h"

namespace netseer::backend {

/// Where the collector puts the events it accepts. Implemented by the
/// in-memory EventStore and by store::FlowEventStore, so the reliable
/// report path is independent of which storage engine backs it.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void add(const core::FlowEvent& event, util::SimTime now) = 0;
};

}  // namespace netseer::backend
