#pragma once

#include <cstdint>
#include <span>

#include "core/event.h"
#include "util/time.h"

namespace netseer::backend {

/// Where the collector puts the events it accepts. Implemented by the
/// in-memory EventStore and by store::FlowEventStore, so the reliable
/// report path is independent of which storage engine backs it.
///
/// The interface is batch-first: collectors receive whole report
/// batches off the wire, and handing the batch down in one call lets a
/// durable backend amortize WAL framing and group-commit fsyncs across
/// it. `add` remains as a one-element convenience wrapper.
///
/// Durability is asynchronous: `add_batch` returning does NOT mean the
/// events survived a crash. `durable_watermark()` reports the highest
/// sequence number the sink guarantees is recoverable; callers that
/// need an acknowledgement wait for the watermark to pass the sequence
/// assigned to their batch (store::FlowEventStore::sync() does exactly
/// that). Purely in-memory sinks report everything they hold.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Accept a batch of events observed at `now`. Events are applied in
  /// span order; ordering across calls follows call order.
  virtual void add_batch(std::span<const core::FlowEvent> events, util::SimTime now) = 0;

  /// One-element convenience wrapper over add_batch.
  virtual void add(const core::FlowEvent& event, util::SimTime now) {
    add_batch({&event, 1}, now);
  }

  /// Highest sequence number guaranteed recoverable after a crash.
  /// In-memory sinks return the count of applied events (nothing
  /// survives a crash, but nothing is ever silently dropped either);
  /// durable sinks return the group-commit durable-LSN watermark.
  [[nodiscard]] virtual std::uint64_t durable_watermark() const { return 0; }
};

}  // namespace netseer::backend
