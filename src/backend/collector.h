#pragma once

#include <unordered_map>
#include <unordered_set>

#include "backend/event_sink.h"
#include "core/report.h"
#include "sim/simulator.h"

namespace netseer::backend {

/// Backend endpoint of the reliable report channel: deduplicates
/// retransmitted segments, stores their events into any EventSink (the
/// in-memory EventStore or store::FlowEventStore), and acks cumulatively
/// per reporting switch.
///
/// The out-of-order window is bounded: a segment more than
/// kReorderWindow sequences ahead of the cumulative ack is dropped (and
/// counted) instead of growing PeerState::seen without limit — the
/// sender's retransmit timer redelivers it once the gap closes, so
/// nothing is lost, only deferred.
class Collector {
 public:
  /// Segments accepted ahead of the cumulative ack, per peer. 1024
  /// 16-byte entries bounds a peer's reorder state at ~16 KiB where the
  /// unbounded set grew with every hole the lossy management network
  /// left behind.
  static constexpr std::uint32_t kReorderWindow = 1024;

  Collector(sim::Simulator& sim, util::NodeId id, core::ReportChannel& channel,
            EventSink& store)
      : sim_(sim), id_(id), channel_(channel), store_(store) {
    channel_.register_endpoint(id_, [this](util::NodeId from, const core::ReportMsg& msg) {
      on_message(from, msg);
    });
  }

  [[nodiscard]] util::NodeId id() const { return id_; }
  [[nodiscard]] std::uint64_t segments_received() const { return segments_; }
  [[nodiscard]] std::uint64_t duplicate_segments() const { return duplicates_; }
  [[nodiscard]] std::uint64_t events_stored() const { return events_stored_; }
  /// Segments dropped for landing beyond the bounded reorder window.
  [[nodiscard]] std::uint64_t window_dropped_segments() const { return window_drops_; }

 private:
  void on_message(util::NodeId from, const core::ReportMsg& msg) {
    if (msg.kind != core::ReportMsg::Kind::kData) return;
    ++segments_;
    auto& peer = peers_[from];
    if (msg.seq < peer.next_expected || peer.seen.contains(msg.seq)) {
      ++duplicates_;
    } else if (msg.seq >= peer.next_expected + kReorderWindow) {
      // Too far ahead to buffer: drop, count, and let the ack below
      // tell the sender where the gap starts so it retransmits.
      ++window_drops_;
    } else {
      peer.seen.insert(msg.seq);
      // Whole-batch handoff: a durable sink amortizes WAL framing and
      // group commit across the segment instead of per event.
      store_.add_batch(msg.batch.events, sim_.now());
      events_stored_ += msg.batch.events.size();
      // Advance the cumulative ack over contiguous receptions.
      while (peer.seen.contains(peer.next_expected)) {
        peer.seen.erase(peer.next_expected);
        ++peer.next_expected;
      }
    }
    core::ReportMsg ack;
    ack.kind = core::ReportMsg::Kind::kAck;
    ack.seq = peer.next_expected;
    channel_.send(id_, from, std::move(ack));
  }

  struct PeerState {
    std::uint32_t next_expected = 0;
    std::unordered_set<std::uint32_t> seen;  // received beyond next_expected, bounded
  };

  sim::Simulator& sim_;
  util::NodeId id_;
  core::ReportChannel& channel_;
  EventSink& store_;
  std::unordered_map<util::NodeId, PeerState> peers_;
  std::uint64_t segments_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t events_stored_ = 0;
  std::uint64_t window_drops_ = 0;
};

}  // namespace netseer::backend
