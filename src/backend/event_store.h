#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "backend/event_sink.h"
#include "core/event.h"
#include "packet/flow_key.h"

namespace netseer::backend {

/// An event as persisted by the backend: what the switch reported plus
/// when the backend stored it.
struct StoredEvent {
  core::FlowEvent event;
  util::SimTime stored_at = 0;
};

/// Query by any combination of flow, event type, device, and period —
/// the operator interface in Fig. 2 ("Flow-1 E? -> E1 & E4",
/// "Device-1? -> E1~E4 & flows").
///
/// Doubles as a fluent builder so call sites compose filters inline:
///   store.scan(EventQuery{}.for_switch(3).between(t0, t1))
/// Aggregate form (designated initializers) keeps working unchanged.
struct EventQuery {
  std::optional<packet::FlowKey> flow;
  std::optional<core::EventType> type;
  std::optional<util::NodeId> switch_id;
  std::optional<util::SimTime> from;  // inclusive, on detected_at
  std::optional<util::SimTime> to;    // exclusive

  EventQuery& for_flow(const packet::FlowKey& key) {
    flow = key;
    return *this;
  }
  EventQuery& of_type(core::EventType event_type) {
    type = event_type;
    return *this;
  }
  EventQuery& for_switch(util::NodeId node) {
    switch_id = node;
    return *this;
  }
  EventQuery& since(util::SimTime inclusive_from) {
    from = inclusive_from;
    return *this;
  }
  EventQuery& until(util::SimTime exclusive_to) {
    to = exclusive_to;
    return *this;
  }
  EventQuery& between(util::SimTime inclusive_from, util::SimTime exclusive_to) {
    from = inclusive_from;
    to = exclusive_to;
    return *this;
  }

  [[nodiscard]] bool matches(const StoredEvent& stored) const {
    const auto& ev = stored.event;
    if (flow && ev.flow != *flow) return false;
    if (type && ev.type != *type) return false;
    if (switch_id && ev.switch_id != *switch_id) return false;
    if (from && ev.detected_at < *from) return false;
    if (to && ev.detected_at >= *to) return false;
    return true;
  }
};

/// The reference in-memory storage for flow events, with secondary
/// indices by flow and by device so the operator queries in §3.2 step 4
/// stay cheap. Production-shaped storage (durability, segments,
/// compaction) lives in store::FlowEventStore, which answers the same
/// EventQuery interface; this store remains the simple oracle the
/// parity tests compare it against.
class EventStore : public EventSink {
 public:
  void add_batch(std::span<const core::FlowEvent> events, util::SimTime now) override {
    for (const auto& event : events) {
      const std::size_t idx = events_.size();
      events_.push_back(StoredEvent{event, now});
      by_flow_[event.flow.hash64()].push_back(idx);
      by_switch_[event.switch_id].push_back(idx);
    }
  }

  /// Everything applied to the in-memory oracle is as durable as it
  /// will ever get, so the watermark is simply the applied count.
  [[nodiscard]] std::uint64_t durable_watermark() const override { return events_.size(); }

  [[nodiscard]] std::vector<StoredEvent> query(const EventQuery& query) const {
    std::vector<StoredEvent> out;
    const auto scan = [&](const std::vector<std::size_t>& candidates) {
      for (const auto idx : candidates) {
        if (query.matches(events_[idx])) out.push_back(events_[idx]);
      }
    };
    if (query.flow) {
      const auto it = by_flow_.find(query.flow->hash64());
      if (it != by_flow_.end()) scan(it->second);
    } else if (query.switch_id) {
      const auto it = by_switch_.find(*query.switch_id);
      if (it != by_switch_.end()) scan(it->second);
    } else {
      for (const auto& stored : events_) {
        if (query.matches(stored)) out.push_back(stored);
      }
    }
    return out;
  }

  [[nodiscard]] std::size_t count(const EventQuery& q) const { return query(q).size(); }

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] const std::vector<StoredEvent>& all() const { return events_; }

  /// Distinct flows that experienced any event matching `query`.
  [[nodiscard]] std::vector<packet::FlowKey> distinct_flows(const EventQuery& query) const {
    std::unordered_set<packet::FlowKey, packet::FlowKeyHash> seen;
    std::vector<packet::FlowKey> out;
    for (const auto& stored : this->query(query)) {
      if (seen.insert(stored.event.flow).second) out.push_back(stored.event.flow);
    }
    return out;
  }

  /// Sum of event counters matching `query` (total affected packets).
  [[nodiscard]] std::uint64_t total_counter(const EventQuery& query) const {
    std::uint64_t total = 0;
    for (const auto& stored : this->query(query)) total += stored.event.counter;
    return total;
  }

 private:
  std::vector<StoredEvent> events_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_flow_;
  std::unordered_map<util::NodeId, std::vector<std::size_t>> by_switch_;
};

}  // namespace netseer::backend
