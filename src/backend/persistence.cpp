#include "backend/persistence.h"

#include <array>
#include <cstring>

#include "util/hash.h"

namespace netseer::backend {

namespace {

constexpr char kMagic[4] = {'N', 'S', 'E', 'V'};

/// Serialize little-endian while folding every written byte into `crc`.
template <typename T>
void put(std::ostream& out, T value, std::uint32_t& crc) {
  std::array<std::byte, sizeof(T)> raw;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    raw[i] = static_cast<std::byte>((static_cast<std::uint64_t>(value) >> (8 * i)) & 0xff);
  }
  out.write(reinterpret_cast<const char*>(raw.data()), sizeof(T));
  crc = util::crc32_update(crc, raw);
}

template <typename T>
bool get(std::istream& in, T& value, std::uint32_t& crc) {
  std::array<std::byte, sizeof(T)> raw;
  in.read(reinterpret_cast<char*>(raw.data()), sizeof(T));
  if (!in) return false;
  crc = util::crc32_update(crc, raw);
  std::uint64_t accum = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    accum |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(raw[i])) << (8 * i);
  }
  value = static_cast<T>(accum);
  return true;
}

/// The footer CRC is read raw — it is not part of its own checksum.
bool get_footer(std::istream& in, std::uint32_t& value) {
  std::uint32_t ignored_crc = 0;
  return get(in, value, ignored_crc);
}

}  // namespace

bool save_store(const EventStore& store, std::ostream& out) {
  std::uint32_t crc = util::crc32_update(
      0, std::span<const std::byte>(reinterpret_cast<const std::byte*>(kMagic),
                                    sizeof(kMagic)));
  out.write(kMagic, sizeof(kMagic));
  put<std::uint16_t>(out, kStoreFormatVersion, crc);
  put<std::uint64_t>(out, store.size(), crc);
  for (const auto& stored : store.all()) {
    const auto raw = stored.event.serialize();
    out.write(reinterpret_cast<const char*>(raw.data()),
              static_cast<std::streamsize>(raw.size()));
    crc = util::crc32_update(crc, raw);
    put<std::uint32_t>(out, stored.event.switch_id, crc);
    put<std::int64_t>(out, stored.event.detected_at, crc);
    put<std::int64_t>(out, stored.stored_at, crc);
  }
  std::uint32_t footer_scratch = 0;
  put<std::uint32_t>(out, crc, footer_scratch);
  return static_cast<bool>(out);
}

bool load_store(EventStore& store, std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  std::uint32_t crc = util::crc32_update(
      0, std::span<const std::byte>(reinterpret_cast<const std::byte*>(magic),
                                    sizeof(magic)));
  std::uint16_t version = 0;
  if (!get(in, version, crc) || version != kStoreFormatVersion) return false;
  std::uint64_t count = 0;
  if (!get(in, count, crc)) return false;

  // Parse into a scratch store so a truncated or corrupt stream leaves
  // the caller's store untouched; commit only after the CRC validates.
  EventStore scratch;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::array<std::byte, core::FlowEvent::kWireSize> raw{};
    in.read(reinterpret_cast<char*>(raw.data()), static_cast<std::streamsize>(raw.size()));
    if (!in) return false;
    crc = util::crc32_update(crc, raw);
    auto event = core::FlowEvent::parse(raw);
    if (!event) return false;
    std::uint32_t switch_id = 0;
    std::int64_t detected_at = 0;
    std::int64_t stored_at = 0;
    if (!get(in, switch_id, crc) || !get(in, detected_at, crc) || !get(in, stored_at, crc)) {
      return false;
    }
    event->switch_id = switch_id;
    event->detected_at = detected_at;
    scratch.add(*event, stored_at);
  }
  std::uint32_t footer = 0;
  if (!get_footer(in, footer) || footer != crc) return false;
  // A valid stream ends exactly at the footer; trailing bytes mean the
  // count field lied (e.g. a flipped bit shrank it past real records).
  if (in.peek() != std::char_traits<char>::eof()) return false;

  for (const auto& stored : scratch.all()) store.add(stored.event, stored.stored_at);
  return true;
}

}  // namespace netseer::backend
