#include "backend/persistence.h"

#include <array>
#include <cstring>

namespace netseer::backend {

namespace {

constexpr char kMagic[4] = {'N', 'S', 'E', 'V'};

template <typename T>
void put(std::ostream& out, T value) {
  // Little-endian, byte by byte (host independence).
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.put(static_cast<char>((static_cast<std::uint64_t>(value) >> (8 * i)) & 0xff));
  }
}

template <typename T>
bool get(std::istream& in, T& value) {
  std::uint64_t accum = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    const int c = in.get();
    if (c == std::char_traits<char>::eof()) return false;
    accum |= static_cast<std::uint64_t>(static_cast<unsigned char>(c)) << (8 * i);
  }
  value = static_cast<T>(accum);
  return true;
}

}  // namespace

bool save_store(const EventStore& store, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  put<std::uint16_t>(out, kStoreFormatVersion);
  put<std::uint64_t>(out, store.size());
  for (const auto& stored : store.all()) {
    const auto raw = stored.event.serialize();
    out.write(reinterpret_cast<const char*>(raw.data()),
              static_cast<std::streamsize>(raw.size()));
    put<std::uint32_t>(out, stored.event.switch_id);
    put<std::int64_t>(out, stored.event.detected_at);
    put<std::int64_t>(out, stored.stored_at);
  }
  return static_cast<bool>(out);
}

bool load_store(EventStore& store, std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  std::uint16_t version = 0;
  if (!get(in, version) || version != kStoreFormatVersion) return false;
  std::uint64_t count = 0;
  if (!get(in, count)) return false;

  for (std::uint64_t i = 0; i < count; ++i) {
    std::array<std::byte, core::FlowEvent::kWireSize> raw{};
    in.read(reinterpret_cast<char*>(raw.data()), static_cast<std::streamsize>(raw.size()));
    if (!in) return false;
    auto event = core::FlowEvent::parse(raw);
    if (!event) return false;
    std::uint32_t switch_id = 0;
    std::int64_t detected_at = 0;
    std::int64_t stored_at = 0;
    if (!get(in, switch_id) || !get(in, detected_at) || !get(in, stored_at)) return false;
    event->switch_id = switch_id;
    event->detected_at = detected_at;
    store.add(*event, stored_at);
  }
  return true;
}

}  // namespace netseer::backend
