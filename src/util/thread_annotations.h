#pragma once

#include <mutex>

/// Clang thread-safety analysis annotations (-Wthread-safety). They
/// compile to nothing on other compilers, so the GCC builds this repo
/// develops against are unaffected; the clang CI legs enforce them.
#if defined(__clang__)
#define NETSEER_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define NETSEER_THREAD_ANNOTATION_(x)
#endif

#define NETSEER_CAPABILITY(x) NETSEER_THREAD_ANNOTATION_(capability(x))
#define NETSEER_SCOPED_CAPABILITY NETSEER_THREAD_ANNOTATION_(scoped_lockable)
#define NETSEER_GUARDED_BY(x) NETSEER_THREAD_ANNOTATION_(guarded_by(x))
#define NETSEER_PT_GUARDED_BY(x) NETSEER_THREAD_ANNOTATION_(pt_guarded_by(x))
#define NETSEER_REQUIRES(...) NETSEER_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define NETSEER_ACQUIRE(...) NETSEER_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define NETSEER_RELEASE(...) NETSEER_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define NETSEER_EXCLUDES(...) NETSEER_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define NETSEER_NO_THREAD_SAFETY_ANALYSIS \
  NETSEER_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace netseer::util {

/// std::mutex annotated as a capability so the analysis can track it.
/// (The standard library's mutex carries no annotations under libstdc++,
/// which would make GUARDED_BY members unverifiable.)
class NETSEER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NETSEER_ACQUIRE() { mu_.lock(); }
  void unlock() NETSEER_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex, annotated so the analysis sees the critical
/// section's extent (std::lock_guard would be opaque to it).
class NETSEER_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NETSEER_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() NETSEER_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace netseer::util
