#pragma once

#include <mutex>

/// Clang thread-safety analysis annotations (-Wthread-safety). They
/// compile to nothing on other compilers, so the GCC builds this repo
/// develops against are unaffected; the clang CI legs enforce them.
#if defined(__clang__)
#define NETSEER_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define NETSEER_THREAD_ANNOTATION_(x)
#endif

#define NETSEER_CAPABILITY(x) NETSEER_THREAD_ANNOTATION_(capability(x))
#define NETSEER_SCOPED_CAPABILITY NETSEER_THREAD_ANNOTATION_(scoped_lockable)
#define NETSEER_GUARDED_BY(x) NETSEER_THREAD_ANNOTATION_(guarded_by(x))
#define NETSEER_PT_GUARDED_BY(x) NETSEER_THREAD_ANNOTATION_(pt_guarded_by(x))
#define NETSEER_REQUIRES(...) NETSEER_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define NETSEER_ACQUIRE(...) NETSEER_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define NETSEER_RELEASE(...) NETSEER_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define NETSEER_EXCLUDES(...) NETSEER_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define NETSEER_NO_THREAD_SAFETY_ANALYSIS \
  NETSEER_THREAD_ANNOTATION_(no_thread_safety_analysis)

#if defined(NETSEER_MC)

// In model-checked builds, destructors that reach scheduling points
// (unlocks, pooled-packet releases) must be able to propagate the
// checker's internal unwind exception; see mc/runtime.h.
#define NETSEER_MC_NOEXCEPT_FALSE noexcept(false)

// Model-checked builds: util::Mutex routes through the mc runtime so
// every mutex in code compiled into netseer_mc_core (telemetry
// Registry, packet Pool) is a scheduling point the checker explores.
// Declared here (defined in mc/runtime.cpp) to avoid an include cycle
// with mc/runtime.h, which needs the macros above.
namespace netseer::mc::detail {
void* instrumented_mutex_make();
void instrumented_mutex_drop(void* real, const void* self);
void instrumented_mutex_lock(void* real, const void* self);
void instrumented_mutex_unlock(void* real, const void* self);
}  // namespace netseer::mc::detail

namespace netseer::util {

class NETSEER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() : real_(mc::detail::instrumented_mutex_make()) {}
  ~Mutex() { mc::detail::instrumented_mutex_drop(real_, this); }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NETSEER_ACQUIRE() { mc::detail::instrumented_mutex_lock(real_, this); }
  void unlock() NETSEER_RELEASE() { mc::detail::instrumented_mutex_unlock(real_, this); }

 private:
  void* real_;  // fallback std::mutex for use outside a model run
};

#else

#define NETSEER_MC_NOEXCEPT_FALSE

namespace netseer::util {

/// std::mutex annotated as a capability so the analysis can track it.
/// (The standard library's mutex carries no annotations under libstdc++,
/// which would make GUARDED_BY members unverifiable.)
class NETSEER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NETSEER_ACQUIRE() { mu_.lock(); }
  void unlock() NETSEER_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

#endif

/// RAII lock for Mutex, annotated so the analysis sees the critical
/// section's extent (std::lock_guard would be opaque to it).
class NETSEER_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NETSEER_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() NETSEER_MC_NOEXCEPT_FALSE NETSEER_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace netseer::util
