#include "util/rng.h"

#include <cmath>

namespace netseer::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Mix the stream id into the seed so (seed, 0) and (seed, 1) diverge.
  std::uint64_t sm = seed ^ (stream * 0xda942042e4dd58b5ULL + 0x2545f4914f6cdd1dULL);
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless bounded generation with rejection.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) noexcept {
  // uniform01() < 1 so log argument is in (0, 1].
  return -mean * std::log(1.0 - uniform01());
}

Rng Rng::fork() noexcept {
  return Rng(next(), next());
}

}  // namespace netseer::util
