#pragma once

#include <cstdio>
#include <string_view>
#include <utility>

namespace netseer::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Defaults to Warn so
/// simulations stay quiet unless a harness opts in.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void log_line(LogLevel level, std::string_view msg);
}

/// printf-style logging. Kept deliberately tiny: the simulator's results
/// are returned through typed APIs, logging is for humans debugging runs.
template <typename... Args>
void logf(LogLevel level, const char* fmt, Args&&... args) {
  if (level < log_level()) return;
  char buf[1024];
  if constexpr (sizeof...(Args) == 0) {
    std::snprintf(buf, sizeof(buf), "%s", fmt);
  } else {
    std::snprintf(buf, sizeof(buf), fmt, std::forward<Args>(args)...);
  }
  detail::log_line(level, buf);
}

#define NETSEER_LOG_DEBUG(...) ::netseer::util::logf(::netseer::util::LogLevel::kDebug, __VA_ARGS__)
#define NETSEER_LOG_INFO(...) ::netseer::util::logf(::netseer::util::LogLevel::kInfo, __VA_ARGS__)
#define NETSEER_LOG_WARN(...) ::netseer::util::logf(::netseer::util::LogLevel::kWarn, __VA_ARGS__)
#define NETSEER_LOG_ERROR(...) ::netseer::util::logf(::netseer::util::LogLevel::kError, __VA_ARGS__)

}  // namespace netseer::util
