#pragma once

/// Hot-path discipline annotations, consumed by tools/netseer_lint (and,
/// on clang, attached to the AST as annotate attributes so the LibTooling
/// frontend sees them without re-lexing). They expand to nothing under
/// GCC, exactly like util/thread_annotations.h: plain builds compile the
/// same code; only the analyzer assigns them meaning.
///
/// The contracts the linter enforces (see DESIGN.md "Static analysis
/// layer" and tools/netseer_lint):
///
///   NETSEER_HOT
///     This function is a steady-state hot path. It must not reach
///     operator new / malloc / allocating container mutation /
///     std::function construction through any same-TU call chain, and it
///     must never call a NETSEER_BLOCKING function or block under a
///     lock. The event engine's fire loop, the packet pool's
///     acquire/release, the group-commit drain, and the detect window
///     rollover carry this.
///
///   NETSEER_HOT_ALLOW_INIT
///     Sanctioned allocation escape reachable from NETSEER_HOT code:
///     warmup/growth paths (slab chunk materialization, free-list
///     buildup, recycled-buffer top-up) that allocate only until the
///     steady-state population stabilizes. The hot-alloc pass stops its
///     call-graph walk at these functions instead of flagging them.
///
///   NETSEER_BLOCKING
///     This function may block — it performs I/O or waits while holding
///     a capability (WAL fsync under the WAL mutex, segment persistence
///     under the maintenance mutex, checkpoint write-then-rename under
///     the service mutex). Calling a NETSEER_BLOCKING function while
///     holding a lock requires the caller to be NETSEER_BLOCKING too, so
///     blocking-under-lock is always explicit and greppable; calling one
///     from a NETSEER_HOT function is an error outright.
///
/// Per-line opt-out, for amortized-allocation sites the passes cannot
/// classify (e.g. a free-list push_back whose capacity is bounded by the
/// slab high-water mark):
///
///   free_.push_back(pkt);  // NETSEER_LINT_ALLOW(hot-alloc): bounded by slab
///
/// The comment must name the pass it silences and carry a reason.
#if defined(__clang__)
#define NETSEER_DISCIPLINE_ANNOTATION_(x) __attribute__((annotate(x)))
#else
#define NETSEER_DISCIPLINE_ANNOTATION_(x)
#endif

#define NETSEER_HOT NETSEER_DISCIPLINE_ANNOTATION_("netseer::hot")
#define NETSEER_HOT_ALLOW_INIT NETSEER_DISCIPLINE_ANNOTATION_("netseer::hot_allow_init")
#define NETSEER_BLOCKING NETSEER_DISCIPLINE_ANNOTATION_("netseer::blocking")
