#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace netseer::util {

/// Mutex + condition-variable pair usable under the clang thread-safety
/// analysis. util::Mutex (thread_annotations.h) deliberately hides its
/// std::mutex — fine for plain critical sections, but a condition
/// variable must unlock/relock the native mutex inside wait(). CondMutex
/// is the annotated capability whose native handle CondVar can reach;
/// the real store threads (group-commit writer, query pool) block on it.
///
/// The model checker never sees these: code using CondMutex runs real
/// threads (exercised under TSan), while the interleaving-level protocol
/// is model-checked through the src/mc miniatures.
class NETSEER_CAPABILITY("mutex") CondMutex {
 public:
  CondMutex() = default;
  CondMutex(const CondMutex&) = delete;
  CondMutex& operator=(const CondMutex&) = delete;

  void lock() NETSEER_ACQUIRE() { mu_.lock(); }
  void unlock() NETSEER_RELEASE() { mu_.unlock(); }

 private:
  friend class CondMutexLock;
  std::mutex mu_;
};

/// Scoped lock over CondMutex that CondVar::wait can suspend. Annotated
/// as a scoped capability so guarded members are verifiably accessed
/// only inside the critical section. (The analysis cannot see that
/// wait() unlocks and relocks internally — the standard blind spot —
/// which is safe because every waiter re-checks its predicate.)
class NETSEER_SCOPED_CAPABILITY CondMutexLock {
 public:
  explicit CondMutexLock(CondMutex& mu) NETSEER_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~CondMutexLock() NETSEER_RELEASE() = default;
  CondMutexLock(const CondMutexLock&) = delete;
  CondMutexLock& operator=(const CondMutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable over CondMutex. No predicate overloads on purpose:
/// a `while (!pred) cv.wait(lock);` loop keeps the guarded reads inside
/// the annotated critical section, where the analysis can check them (a
/// predicate lambda would not inherit the capability).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(CondMutexLock& lock) { cv_.wait(lock.lock_); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace netseer::util
