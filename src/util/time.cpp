#include "util/time.h"

#include <cstdio>

namespace netseer::util {

std::string format_duration(SimDuration d) {
  char buf[64];
  const double ad = static_cast<double>(d < 0 ? -d : d);
  const char* sign = d < 0 ? "-" : "";
  if (ad >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3fs", sign, ad / kSecond);
  } else if (ad >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3fms", sign, ad / kMillisecond);
  } else if (ad >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3fus", sign, ad / kMicrosecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%ldns", sign, static_cast<long>(d < 0 ? -d : d));
  }
  return buf;
}

}  // namespace netseer::util
