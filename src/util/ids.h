#pragma once

#include <cstdint>

namespace netseer::util {

/// Identifier types shared across the whole stack. Small fixed-width
/// integers: they appear inside 24-byte event records, so width matters.

/// A node (switch, host, collector) in the simulated network.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffffU;

/// A port index local to one node. The event wire format encodes ports in
/// one byte (Tofino 32D has 32 front-panel ports); the simulator allows
/// up to 255 to support internal ports as well.
using PortId = std::uint16_t;
inline constexpr PortId kInvalidPort = 0xffff;

/// A priority queue index behind a port (8 queues, PFC classes 0..7).
using QueueId = std::uint8_t;
inline constexpr QueueId kNumQueues = 8;

/// A globally unique packet id, assigned at creation, used only by the
/// ground-truth recorder to correlate observations — never visible to the
/// monitored data plane.
using PacketUid = std::uint64_t;

}  // namespace netseer::util
