#pragma once

#include <cstdint>
#include <string>

namespace netseer::util {

/// Simulation time in integer nanoseconds since simulation start.
///
/// All modules exchange time as SimTime. Integer nanoseconds keep the
/// simulation deterministic (no float drift) and give enough range for
/// ~292 years of simulated time in 64 bits.
using SimTime = std::int64_t;

/// A span of simulation time, also in nanoseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1'000;
inline constexpr SimDuration kMillisecond = 1'000'000;
inline constexpr SimDuration kSecond = 1'000'000'000;

[[nodiscard]] constexpr SimDuration nanoseconds(std::int64_t n) { return n; }
[[nodiscard]] constexpr SimDuration microseconds(std::int64_t n) { return n * kMicrosecond; }
[[nodiscard]] constexpr SimDuration milliseconds(std::int64_t n) { return n * kMillisecond; }
[[nodiscard]] constexpr SimDuration seconds(std::int64_t n) { return n * kSecond; }

[[nodiscard]] constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
[[nodiscard]] constexpr double to_microseconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}
[[nodiscard]] constexpr double to_milliseconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Render a time as a compact human-readable string, e.g. "1.25ms".
[[nodiscard]] std::string format_duration(SimDuration d);

}  // namespace netseer::util
