#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstddef>
#include <limits>
#include <vector>

namespace netseer::util {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class Summary {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  /// Combine with another accumulator (Chan's parallel variance update),
  /// so per-component summaries can fold into an aggregate.
  void merge(const Summary& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto total = static_cast<double>(n_ + other.n_);
    m2_ += other.m2_ +
           delta * delta * static_cast<double>(n_) * static_cast<double>(other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample reservoir with exact percentiles. Stores every sample; intended
/// for experiment harnesses, not the hot simulation path.
class Percentiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  /// p in [0, 100]. Returns 0 when empty.
  [[nodiscard]] double percentile(double p) {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets. Cheap enough for per-packet hot paths.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {}

  void add(double x) {
    ++total_;
    if (counts_.empty()) return;
    double t = (x - lo_) / (hi_ - lo_);
    t = std::clamp(t, 0.0, 1.0);
    auto idx = static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
    if (idx >= counts_.size()) idx = counts_.size() - 1;
    ++counts_[idx];
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return counts_; }
  [[nodiscard]] double bucket_low(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace netseer::util
