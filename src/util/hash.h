#pragma once

#include <cstdint>
#include <cstddef>
#include <span>

namespace netseer::util {

/// FNV-1a 64-bit over a byte span. Used for host-side hash maps.
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::byte> data) noexcept;

/// CRC-32 (IEEE 802.3 polynomial, reflected). Used as the Ethernet FCS in
/// the wire model and as the "data-plane hash" the NetSeer pipeline
/// pre-computes for the switch CPU (§3.6) — Tofino exposes CRC units.
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> data) noexcept;

/// Incremental CRC-32 with explicit seed (pass the previous return value
/// to continue a running checksum; seed with 0 for a fresh one).
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t crc, std::span<const std::byte> data) noexcept;

/// Cheap stateless 64-bit integer mixer (SplitMix64 finalizer). Good for
/// combining small fixed-width fields into table indices.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;  // golden-ratio offset so mix64(0) != 0
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Combine two hash values (boost-style).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace netseer::util
