#pragma once

#include <cstdint>

#include "util/time.h"

namespace netseer::util {

/// A transmission rate in bits per second. Strongly typed so bandwidths,
/// byte counts, and times cannot be mixed up silently.
class BitRate {
 public:
  constexpr BitRate() = default;
  constexpr explicit BitRate(std::int64_t bits_per_second) : bps_(bits_per_second) {}

  [[nodiscard]] static constexpr BitRate bps(std::int64_t v) { return BitRate(v); }
  [[nodiscard]] static constexpr BitRate kbps(std::int64_t v) { return BitRate(v * 1'000); }
  [[nodiscard]] static constexpr BitRate mbps(std::int64_t v) { return BitRate(v * 1'000'000); }
  [[nodiscard]] static constexpr BitRate gbps(std::int64_t v) { return BitRate(v * 1'000'000'000); }

  [[nodiscard]] constexpr std::int64_t bits_per_second() const { return bps_; }
  [[nodiscard]] constexpr double gbps_value() const { return static_cast<double>(bps_) / 1e9; }
  [[nodiscard]] constexpr bool is_zero() const { return bps_ == 0; }

  /// Time to serialize `bytes` at this rate; rounds up so a nonempty
  /// packet never takes zero time. Zero rate means "infinitely fast".
  [[nodiscard]] constexpr SimDuration serialization_delay(std::int64_t bytes) const {
    if (bps_ <= 0 || bytes <= 0) return 0;
    // ns = bits * 1e9 / bps, rounded up. 128-bit intermediate: gigabit
    // rates times large byte counts overflow 64 bits.
    const auto bits = static_cast<__int128>(bytes) * 8;
    return static_cast<SimDuration>((bits * kSecond + bps_ - 1) / bps_);
  }

  /// Bytes that can be transmitted in `d` at this rate.
  [[nodiscard]] constexpr std::int64_t bytes_in(SimDuration d) const {
    if (bps_ <= 0 || d <= 0) return 0;
    return static_cast<std::int64_t>(static_cast<__int128>(bps_) * d / (8 * kSecond));
  }

  constexpr auto operator<=>(const BitRate&) const = default;
  constexpr BitRate operator+(BitRate o) const { return BitRate(bps_ + o.bps_); }
  constexpr BitRate operator-(BitRate o) const { return BitRate(bps_ - o.bps_); }

 private:
  std::int64_t bps_ = 0;
};

/// Token-bucket rate limiter in byte units, driven by explicit timestamps
/// (no wall clock). Used to model internal-port bandwidth, the MMU drop
/// redirect ceiling, PCIe, and CPU-side pacing.
class TokenBucket {
 public:
  /// `rate` refills the bucket; `burst_bytes` bounds accumulated credit.
  TokenBucket(BitRate rate, std::int64_t burst_bytes)
      : rate_(rate), burst_bytes_(burst_bytes), tokens_(burst_bytes) {}

  /// Consume `bytes` at time `now` if enough credit is available.
  /// Returns true when admitted.
  [[nodiscard]] bool try_consume(SimTime now, std::int64_t bytes) {
    refill(now);
    if (tokens_ >= bytes) {
      tokens_ -= bytes;
      return true;
    }
    return false;
  }

  /// Earliest time at which `bytes` of credit will exist (for pacing).
  [[nodiscard]] SimTime time_available(SimTime now, std::int64_t bytes) {
    refill(now);
    if (tokens_ >= bytes) return now;
    if (rate_.bits_per_second() <= 0) return now;  // unlimited rate
    const std::int64_t deficit = bytes - tokens_;
    return now + rate_.serialization_delay(deficit);
  }

  [[nodiscard]] std::int64_t tokens() const { return tokens_; }
  [[nodiscard]] BitRate rate() const { return rate_; }

 private:
  void refill(SimTime now) {
    if (now <= last_refill_) return;
    tokens_ += rate_.bytes_in(now - last_refill_);
    if (tokens_ > burst_bytes_) tokens_ = burst_bytes_;
    last_refill_ = now;
  }

  BitRate rate_;
  std::int64_t burst_bytes_;
  std::int64_t tokens_;
  SimTime last_refill_ = 0;
};

}  // namespace netseer::util
