#include "util/hash.h"

#include <array>

namespace netseer::util {

std::uint64_t fnv1a64(std::span<const std::byte> data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xedb88320U ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc32_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, std::span<const std::byte> data) noexcept {
  std::uint32_t c = crc ^ 0xffffffffU;
  for (std::byte b : data) {
    c = kCrcTable[(c ^ static_cast<std::uint8_t>(b)) & 0xffU] ^ (c >> 8);
  }
  return c ^ 0xffffffffU;
}

std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  return crc32_update(0, data);
}

}  // namespace netseer::util
