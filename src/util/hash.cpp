#include "util/hash.h"

#include <array>

namespace netseer::util {

std::uint64_t fnv1a64(std::span<const std::byte> data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

// Slicing-by-8 CRC-32: kCrc[0] is the classic byte-at-a-time table
// (reflected poly 0xedb88320); kCrc[k] folds a byte that sits k
// positions deeper, so eight input bytes fold in one round of table
// lookups. Identical outputs to the byte-wise loop for all inputs.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_crc32_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xedb88320U ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t slice = 1; slice < 8; ++slice) {
      c = tables[0][c & 0xffU] ^ (c >> 8);
      tables[slice][i] = c;
    }
  }
  return tables;
}

constexpr auto kCrc = make_crc32_tables();

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, std::span<const std::byte> data) noexcept {
  std::uint32_t c = crc ^ 0xffffffffU;
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  std::size_t n = data.size();
  while (n >= 8) {
    const std::uint32_t lo = c ^ (static_cast<std::uint32_t>(p[0]) |
                                  (static_cast<std::uint32_t>(p[1]) << 8) |
                                  (static_cast<std::uint32_t>(p[2]) << 16) |
                                  (static_cast<std::uint32_t>(p[3]) << 24));
    c = kCrc[7][lo & 0xffU] ^ kCrc[6][(lo >> 8) & 0xffU] ^ kCrc[5][(lo >> 16) & 0xffU] ^
        kCrc[4][lo >> 24] ^ kCrc[3][p[4]] ^ kCrc[2][p[5]] ^ kCrc[1][p[6]] ^ kCrc[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = kCrc[0][(c ^ *p++) & 0xffU] ^ (c >> 8);
  }
  return c ^ 0xffffffffU;
}

std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  return crc32_update(0, data);
}

}  // namespace netseer::util
