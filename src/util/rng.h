#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace netseer::util {

/// Deterministic pseudo-random generator (xoshiro256**), seedable per
/// component so that independent subsystems draw from independent streams
/// and the whole simulation replays bit-identically for a given seed.
///
/// Satisfies std::uniform_random_bit_generator so it can drive <random>
/// distributions, but the helpers below avoid libstdc++ distribution
/// implementation differences for values we want reproducible everywhere.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the stream with SplitMix64 expansion of `seed`; `stream`
  /// decorrelates generators created from the same master seed.
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0) noexcept;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform in [0, bound). bound == 0 returns 0.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) noexcept;
  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) noexcept;
  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform01() noexcept;
  /// Bernoulli trial with probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;
  /// Exponentially distributed value with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Derive an independent child stream (for per-port / per-flow use).
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// SplitMix64 step: used for seed expansion and cheap stateless mixing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace netseer::util
