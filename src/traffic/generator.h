#pragma once

#include <cstdint>
#include <vector>

#include "net/host.h"
#include "packet/builder.h"
#include "sim/simulator.h"
#include "traffic/distributions.h"
#include "util/rate.h"

namespace netseer::traffic {

struct GeneratorConfig {
  const EmpiricalCdf* sizes = &web();
  /// Target mean utilization of the source host's uplink (the paper uses
  /// 70% "to produce enough pressure").
  double load = 0.7;
  /// Pacing rate per flow. Standing in for congestion control: flows
  /// transmit at a fixed fraction of the NIC rate, so several concurrent
  /// flows congest shared queues the way fan-in traffic does.
  util::BitRate flow_rate = util::BitRate::gbps(10);
  std::uint32_t packet_payload = 1000;
  std::uint8_t dscp = 0;
  std::uint16_t base_port = 10000;
  util::SimTime start = 0;
  util::SimTime stop = util::seconds(1);
};

/// Poisson flow arrivals from one host to a set of destinations, flow
/// sizes drawn from an empirical CDF, each flow paced packet-by-packet.
class FlowGenerator {
 public:
  FlowGenerator(net::Host& host, std::vector<packet::Ipv4Addr> destinations,
                const GeneratorConfig& config, util::Rng rng);

  void start();

  [[nodiscard]] std::uint64_t flows_started() const { return flows_started_; }
  [[nodiscard]] std::uint64_t flows_completed() const { return flows_completed_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  void schedule_next_arrival();
  void start_flow();
  void send_packet(packet::FlowKey flow, std::uint64_t remaining_bytes);

  net::Host& host_;
  std::vector<packet::Ipv4Addr> destinations_;
  GeneratorConfig config_;
  util::Rng rng_;
  double mean_interarrival_ns_ = 0.0;
  std::uint16_t next_port_;
  std::uint64_t flows_started_ = 0;
  std::uint64_t flows_completed_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t packets_sent_ = 0;
};

/// Synchronized incast: `senders` all fire `bytes_per_sender` at one
/// receiver at the same instant — the §2.1 Case-#2 "occasional bursty
/// incast" pattern and the paper's congestion/MMU-drop driver.
void launch_incast(std::vector<net::Host*> senders, packet::Ipv4Addr receiver,
                   std::uint64_t bytes_per_sender, std::uint32_t packet_payload,
                   util::SimTime when, std::uint16_t base_port = 20000);

/// Simple receiver app counting per-flow packets/bytes.
class CountingReceiver final : public net::HostApp {
 public:
  void on_receive(net::Host&, const packet::Packet& pkt) override {
    ++packets_;
    bytes_ += pkt.wire_bytes();
  }
  [[nodiscard]] std::uint64_t packets() const { return packets_; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

 private:
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace netseer::traffic
