#include "traffic/generator.h"

namespace netseer::traffic {

FlowGenerator::FlowGenerator(net::Host& host, std::vector<packet::Ipv4Addr> destinations,
                             const GeneratorConfig& config, util::Rng rng)
    : host_(host), destinations_(std::move(destinations)), config_(config), rng_(rng),
      next_port_(config.base_port) {
  // Poisson arrival rate: load * uplink / mean flow size.
  const double bytes_per_second =
      config_.load * static_cast<double>(host_.nic().rate().bits_per_second()) / 8.0;
  const double flows_per_second = bytes_per_second / config_.sizes->mean_bytes();
  mean_interarrival_ns_ = flows_per_second > 0 ? 1e9 / flows_per_second : 0.0;
}

void FlowGenerator::start() {
  if (destinations_.empty() || mean_interarrival_ns_ <= 0.0) return;
  (void)host_.simulator().schedule_at(config_.start, [this] { schedule_next_arrival(); });
}

void FlowGenerator::schedule_next_arrival() {
  const auto gap = static_cast<util::SimDuration>(rng_.exponential(mean_interarrival_ns_));
  const util::SimTime when = host_.simulator().now() + gap;
  if (when >= config_.stop) return;
  (void)host_.simulator().schedule_at(when, [this] {
    start_flow();
    schedule_next_arrival();
  });
}

void FlowGenerator::start_flow() {
  ++flows_started_;
  const auto& dst = destinations_[rng_.uniform(destinations_.size())];
  packet::FlowKey flow;
  flow.src = host_.addr();
  flow.dst = dst;
  flow.proto = static_cast<std::uint8_t>(packet::IpProto::kTcp);
  flow.sport = next_port_++;
  if (next_port_ < config_.base_port) next_port_ = config_.base_port;  // wrap
  flow.dport = 80;
  send_packet(flow, config_.sizes->sample(rng_));
}

void FlowGenerator::send_packet(packet::FlowKey flow, std::uint64_t remaining_bytes) {
  const std::uint32_t payload =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(remaining_bytes, config_.packet_payload));
  auto pkt = packet::make_tcp(flow, payload);
  pkt.ip->dscp = config_.dscp;
  bytes_sent_ += payload;
  ++packets_sent_;
  host_.send(std::move(pkt));

  if (remaining_bytes <= payload) {
    ++flows_completed_;
    return;
  }
  const util::SimDuration gap = config_.flow_rate.serialization_delay(payload);
  (void)host_.simulator().schedule_after(gap, [this, flow, rest = remaining_bytes - payload] {
    send_packet(flow, rest);
  });
}

void launch_incast(std::vector<net::Host*> senders, packet::Ipv4Addr receiver,
                   std::uint64_t bytes_per_sender, std::uint32_t packet_payload,
                   util::SimTime when, std::uint16_t base_port) {
  for (std::size_t i = 0; i < senders.size(); ++i) {
    net::Host* sender = senders[i];
    const auto sport = static_cast<std::uint16_t>(base_port + i);
    (void)sender->simulator().schedule_at(when, [sender, receiver, bytes_per_sender, packet_payload,
                                           sport] {
      packet::FlowKey flow{sender->addr(), receiver,
                           static_cast<std::uint8_t>(packet::IpProto::kTcp), sport, 80};
      std::uint64_t remaining = bytes_per_sender;
      while (remaining > 0) {
        const auto payload =
            static_cast<std::uint32_t>(std::min<std::uint64_t>(remaining, packet_payload));
        sender->send(packet::make_tcp(flow, payload));
        remaining -= payload;
      }
    });
  }
}

}  // namespace netseer::traffic
