#include "traffic/distributions.h"

#include <cmath>
#include <stdexcept>

namespace netseer::traffic {

EmpiricalCdf::EmpiricalCdf(std::string name, std::vector<Point> points)
    : name_(std::move(name)), points_(std::move(points)) {
  if (points_.size() < 2) throw std::invalid_argument("cdf needs >= 2 points");
  double prev_size = 0.0;
  double prev_cum = 0.0;
  for (const auto& p : points_) {
    if (p.bytes <= prev_size) throw std::invalid_argument("cdf sizes must increase");
    if (p.cumulative < prev_cum || p.cumulative > 1.0) {
      throw std::invalid_argument("cdf probabilities must be non-decreasing in [0,1]");
    }
    prev_size = p.bytes;
    prev_cum = p.cumulative;
  }
  if (points_.back().cumulative != 1.0) throw std::invalid_argument("cdf must end at 1.0");

  // Analytic mean of the sampler: within a segment, size(u) = exp(a+bu),
  // whose average over the segment is the logarithmic mean of the
  // endpoints, (s1-s0)/ln(s1/s0).
  double mean = points_.front().bytes * points_.front().cumulative;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double dp = points_[i].cumulative - points_[i - 1].cumulative;
    const double s0 = points_[i - 1].bytes;
    const double s1 = points_[i].bytes;
    const double log_mean = (s1 - s0) / std::log(s1 / s0);
    mean += dp * log_mean;
  }
  mean_ = mean;
}

std::uint64_t EmpiricalCdf::sample(util::Rng& rng) const {
  const double u = rng.uniform01();
  if (u <= points_.front().cumulative) {
    const auto bytes = static_cast<std::uint64_t>(points_.front().bytes);
    return bytes > 0 ? bytes : 1;
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (u <= points_[i].cumulative) {
      const double p0 = points_[i - 1].cumulative;
      const double p1 = points_[i].cumulative;
      const double t = (u - p0) / (p1 - p0);
      const double log_size = std::log(points_[i - 1].bytes) +
                              t * (std::log(points_[i].bytes) - std::log(points_[i - 1].bytes));
      const auto bytes = static_cast<std::uint64_t>(std::exp(log_size));
      return bytes > 0 ? bytes : 1;
    }
  }
  return static_cast<std::uint64_t>(points_.back().bytes);
}

double EmpiricalCdf::cdf(double bytes) const {
  if (bytes <= points_.front().bytes) {
    return bytes < points_.front().bytes ? 0.0 : points_.front().cumulative;
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (bytes <= points_[i].bytes) {
      const double t = (std::log(bytes) - std::log(points_[i - 1].bytes)) /
                       (std::log(points_[i].bytes) - std::log(points_[i - 1].bytes));
      return points_[i - 1].cumulative +
             t * (points_[i].cumulative - points_[i - 1].cumulative);
    }
  }
  return 1.0;
}

namespace {
constexpr double kKB = 1e3;
constexpr double kMB = 1e6;
}  // namespace

const EmpiricalCdf& dctcp() {
  // Web-search workload of DCTCP [Alizadeh et al., SIGCOMM'10], Fig. 4.
  static const EmpiricalCdf cdf("DCTCP", {
      {6 * kKB, 0.15}, {13 * kKB, 0.28}, {19 * kKB, 0.39}, {33 * kKB, 0.46},
      {53 * kKB, 0.53}, {133 * kKB, 0.60}, {667 * kKB, 0.70}, {1467 * kKB, 0.80},
      {3333 * kKB, 0.90}, {6667 * kKB, 0.95}, {20 * kMB, 1.0},
  });
  return cdf;
}

const EmpiricalCdf& vl2() {
  // Data-mining workload of VL2 [Greenberg et al., SIGCOMM'09]: mice
  // dominate the count, elephants the bytes.
  static const EmpiricalCdf cdf("VL2", {
      {100, 0.03}, {180, 0.10}, {250, 0.20}, {560, 0.30}, {900, 0.40},
      {1100, 0.50}, {1870, 0.60}, {3160, 0.70}, {10 * kKB, 0.80},
      {400 * kKB, 0.90}, {3.16 * kMB, 0.95}, {100 * kMB, 1.0},
  });
  return cdf;
}

const EmpiricalCdf& cache() {
  // Facebook cache-follower cluster [Roy et al., SIGCOMM'15].
  static const EmpiricalCdf cdf("CACHE", {
      {100, 0.05}, {300, 0.20}, {600, 0.45}, {1 * kKB, 0.55}, {2 * kKB, 0.65},
      {5 * kKB, 0.78}, {10 * kKB, 0.88}, {100 * kKB, 0.95}, {1 * kMB, 0.99},
      {10 * kMB, 1.0},
  });
  return cdf;
}

const EmpiricalCdf& hadoop() {
  // Facebook Hadoop cluster [Roy et al., SIGCOMM'15].
  static const EmpiricalCdf cdf("HADOOP", {
      {130, 0.10}, {300, 0.30}, {800, 0.50}, {1.5 * kKB, 0.60}, {5 * kKB, 0.75},
      {20 * kKB, 0.85}, {100 * kKB, 0.92}, {1 * kMB, 0.96}, {10 * kMB, 0.99},
      {100 * kMB, 1.0},
  });
  return cdf;
}

const EmpiricalCdf& web() {
  // Facebook web-server cluster [Roy et al., SIGCOMM'15].
  static const EmpiricalCdf cdf("WEB", {
      {100, 0.15}, {300, 0.40}, {700, 0.55}, {1 * kKB, 0.60}, {2 * kKB, 0.70},
      {5 * kKB, 0.80}, {10 * kKB, 0.87}, {50 * kKB, 0.95}, {500 * kKB, 0.99},
      {5 * kMB, 1.0},
  });
  return cdf;
}

const std::vector<const EmpiricalCdf*>& all_workloads() {
  static const std::vector<const EmpiricalCdf*> all = {&dctcp(), &vl2(), &cache(), &hadoop(),
                                                       &web()};
  return all;
}

}  // namespace netseer::traffic
