#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>

#include "net/host.h"
#include "packet/builder.h"
#include "sim/simulator.h"

namespace netseer::traffic {

/// A compact TCP-ish reliable transport at segment (not byte)
/// granularity: cumulative ACKs, fast retransmit on three duplicate
/// ACKs, RTO recovery, slow start + AIMD congestion avoidance, and
/// ECN/ECE reaction (halve on echo, DCTCP-flavoured). It exists so the
/// simulated workloads respond to the congestion and loss the paper's
/// real TCP/RDMA applications would — retransmissions, timeouts, and
/// backoff are what operators actually observe in Case #5.
struct TcpConfig {
  std::uint32_t mss_payload = 1000;   // bytes per segment
  double initial_cwnd = 10.0;         // segments
  double ssthresh = 64.0;
  util::SimDuration rto = util::milliseconds(10);
  std::uint16_t listen_port = 8080;
  bool ecn = true;                    // send ECT, react to ECE
};

/// Receiver side: attach one per destination host. Acks every in-order
/// prefix of each incoming flow on `listen_port` and echoes congestion
/// marks (ECE) back to the sender.
class TcpReceiver final : public net::HostApp {
 public:
  explicit TcpReceiver(const TcpConfig& config = {}) : config_(config) {}

  void on_receive(net::Host& host, const packet::Packet& pkt) override;

  /// Contiguously received segments for a flow (by sender sport).
  [[nodiscard]] std::uint32_t received_prefix(const packet::FlowKey& flow) const {
    const auto it = flows_.find(flow.hash64());
    return it == flows_.end() ? 0 : it->second.next_expected;
  }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }

 private:
  struct FlowState {
    std::uint32_t next_expected = 0;
    std::set<std::uint32_t> out_of_order;
    bool ce_pending = false;  // CE seen since the last ack
  };

  TcpConfig config_;
  std::unordered_map<std::uint64_t, FlowState> flows_;
  std::uint64_t acks_sent_ = 0;
};

/// Sender side: attach to the source host (it consumes the ACKs of its
/// own connection), call start(). Completion is observable via done()
/// or the callback.
class TcpSender final : public net::HostApp {
 public:
  using DoneFn = std::function<void(util::SimTime completion_time)>;

  TcpSender(net::Host& host, packet::Ipv4Addr dst, std::uint16_t sport,
            std::uint32_t total_segments, const TcpConfig& config = {}, DoneFn on_done = {});

  void start();
  void on_receive(net::Host& host, const packet::Packet& pkt) override;

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] double cwnd() const { return cwnd_; }
  [[nodiscard]] std::uint32_t acked() const { return highest_ack_; }
  [[nodiscard]] std::uint64_t segments_sent() const { return segments_sent_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
  [[nodiscard]] std::uint64_t ecn_backoffs() const { return ecn_backoffs_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] util::SimTime completion_time() const { return completion_time_; }

 private:
  void pump();                      // send while the window allows
  void send_segment(std::uint32_t seq);
  void arm_rto();
  void on_rto();
  [[nodiscard]] packet::FlowKey flow() const {
    return packet::FlowKey{host_.addr(), dst_, 6, sport_, config_.listen_port};
  }

  net::Host& host_;
  packet::Ipv4Addr dst_;
  std::uint16_t sport_;
  std::uint32_t total_;
  TcpConfig config_;
  DoneFn on_done_;

  double cwnd_;
  double ssthresh_;
  std::uint32_t highest_ack_ = 0;  // cumulative: segments [0, highest_ack_) delivered
  std::uint32_t next_seq_ = 0;     // next new segment to send
  int dup_acks_ = 0;
  bool done_ = false;
  util::SimTime completion_time_ = -1;
  sim::TaskHandle rto_timer_;
  std::uint64_t segments_sent_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t ecn_backoffs_ = 0;
  std::uint64_t timeouts_ = 0;
};

}  // namespace netseer::traffic
