#include "traffic/tcp.h"

#include <algorithm>

namespace netseer::traffic {

// ---- Receiver ---------------------------------------------------------------

void TcpReceiver::on_receive(net::Host& host, const packet::Packet& pkt) {
  if (!pkt.is_tcp() || pkt.l4.dport != config_.listen_port) return;
  if (pkt.payload_bytes == 0) return;  // not a data segment

  auto& state = flows_[pkt.flow().hash64()];
  if (pkt.ip->ecn == 3) state.ce_pending = true;

  const std::uint32_t seq = pkt.l4.seq;
  if (seq == state.next_expected) {
    ++state.next_expected;
    // Absorb any buffered out-of-order continuation.
    while (!state.out_of_order.empty() &&
           *state.out_of_order.begin() == state.next_expected) {
      state.out_of_order.erase(state.out_of_order.begin());
      ++state.next_expected;
    }
  } else if (seq > state.next_expected) {
    state.out_of_order.insert(seq);
  }  // seq < next_expected: duplicate, cumulative ack below handles it

  // Cumulative ACK, echoing congestion experienced since the last ack.
  packet::FlowKey reverse = pkt.flow().reversed();
  auto ack = packet::make_tcp(reverse, 0, packet::tcp_flags::kAck);
  ack.l4.ack = state.next_expected;
  if (state.ce_pending) {
    // ECE: carried in a spare flag bit (0x40 in real TCP; reuse kRst-free
    // space via the flags byte).
    ack.l4.flags |= 0x40;
    state.ce_pending = false;
  }
  ++acks_sent_;
  host.send(std::move(ack));
}

// ---- Sender -----------------------------------------------------------------

TcpSender::TcpSender(net::Host& host, packet::Ipv4Addr dst, std::uint16_t sport,
                     std::uint32_t total_segments, const TcpConfig& config, DoneFn on_done)
    : host_(host), dst_(dst), sport_(sport), total_(total_segments), config_(config),
      on_done_(std::move(on_done)), cwnd_(config.initial_cwnd), ssthresh_(config.ssthresh) {}

void TcpSender::start() {
  pump();
  arm_rto();
}

void TcpSender::send_segment(std::uint32_t seq) {
  auto pkt = packet::make_tcp(flow(), config_.mss_payload, packet::tcp_flags::kAck, seq);
  if (config_.ecn) pkt.ip->ecn = 1;  // ECT(1)
  ++segments_sent_;
  host_.send(std::move(pkt));
}

void TcpSender::pump() {
  if (done_) return;
  const auto window = static_cast<std::uint32_t>(std::max(cwnd_, 1.0));
  while (next_seq_ < total_ && next_seq_ < highest_ack_ + window) {
    send_segment(next_seq_);
    ++next_seq_;
  }
}

void TcpSender::on_receive(net::Host& host, const packet::Packet& pkt) {
  (void)host;
  if (done_ || !pkt.is_tcp()) return;
  // Our connection's ACKs: addressed to our sport, from the listen port.
  if (pkt.l4.dport != sport_ || pkt.l4.sport != config_.listen_port) return;
  if (pkt.payload_bytes != 0) return;

  const std::uint32_t ack = pkt.l4.ack;
  const bool ece = (pkt.l4.flags & 0x40) != 0;

  if (ece) {
    // Multiplicative decrease on congestion echo (at most once per RTT in
    // real stacks; per-ack here biases conservative).
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
    cwnd_ = ssthresh_;
    ++ecn_backoffs_;
  }

  if (ack > highest_ack_) {
    const std::uint32_t newly_acked = ack - highest_ack_;
    highest_ack_ = ack;
    dup_acks_ = 0;
    // Slow start below ssthresh, AIMD above.
    for (std::uint32_t i = 0; i < newly_acked; ++i) {
      if (cwnd_ < ssthresh_) {
        cwnd_ += 1.0;
      } else {
        cwnd_ += 1.0 / cwnd_;
      }
    }
    arm_rto();
    if (highest_ack_ >= total_) {
      done_ = true;
      completion_time_ = host_.simulator().now();
      rto_timer_.cancel();
      if (on_done_) on_done_(completion_time_);
      return;
    }
  } else if (ack == highest_ack_) {
    if (++dup_acks_ == 3) {
      // Fast retransmit + multiplicative decrease.
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
      cwnd_ = ssthresh_;
      ++retransmissions_;
      send_segment(highest_ack_);
      dup_acks_ = 0;
    }
  }
  pump();
}

void TcpSender::arm_rto() {
  rto_timer_.cancel();
  rto_timer_ = host_.simulator().schedule_after(config_.rto, [this] { on_rto(); });
}

void TcpSender::on_rto() {
  if (done_) return;
  ++timeouts_;
  // Classic RTO response: collapse to one segment, slow start again, and
  // resend from the last cumulative ack.
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 1.0;
  next_seq_ = highest_ack_;
  ++retransmissions_;
  pump();
  arm_rto();
}

}  // namespace netseer::traffic
