#pragma once

#include <istream>
#include <ostream>
#include <vector>

#include "net/host.h"
#include "util/time.h"

namespace netseer::traffic {

/// One flow of a replayable trace (e.g. exported from production flow
/// logs): when it starts, its endpoints, and how many bytes it carries.
struct TraceRecord {
  util::SimTime start = 0;  // nanoseconds
  packet::Ipv4Addr src{};
  packet::Ipv4Addr dst{};
  std::uint64_t bytes = 0;
  std::uint16_t sport = 0;
  std::uint16_t dport = 80;
};

/// CSV format, one flow per line (header line optional, '#' comments):
///
///   start_us,src,dst,bytes[,sport[,dport]]
///   0,10.0.0.1,10.0.1.1,14600,10001,80
///
/// Returns false on any malformed line (records parsed so far are kept).
bool parse_trace(std::istream& in, std::vector<TraceRecord>& out);

/// Write records back in the same format (with header).
void write_trace(std::ostream& out, const std::vector<TraceRecord>& records);

/// Replay a trace across a set of hosts (matched by source address).
/// Flows whose source is not a known host are skipped and counted.
class TraceReplayer {
 public:
  struct Options {
    std::uint32_t packet_payload = 1000;
    util::BitRate flow_rate = util::BitRate::gbps(1);  // per-flow pacing
  };

  explicit TraceReplayer(std::vector<net::Host*> hosts) : TraceReplayer(std::move(hosts), Options{}) {}
  TraceReplayer(std::vector<net::Host*> hosts, Options options);

  /// Schedule every record; returns the number of flows scheduled.
  std::size_t replay(const std::vector<TraceRecord>& records);

  [[nodiscard]] std::size_t skipped_unknown_sources() const { return skipped_; }

 private:
  void send_flow(net::Host& host, const TraceRecord& record);

  std::vector<net::Host*> hosts_;
  Options options_;
  std::size_t skipped_ = 0;
};

}  // namespace netseer::traffic
