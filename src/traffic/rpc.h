#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/host.h"
#include "packet/builder.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace netseer::traffic {

/// Request/response application modeling the block-storage RPCs of the
/// paper's SLA study (§5.1): clients issue fixed-size requests, the
/// server replies after a processing delay. Server-side "slow periods"
/// model application-induced latency (the SSD-driver-bug class of
/// incident); network-induced latency comes from the simulated fabric.
class RpcServer final : public net::HostApp {
 public:
  struct Config {
    std::uint32_t response_bytes = 4000;
    util::SimDuration processing_delay = util::microseconds(10);
    std::uint16_t port = 9000;
  };

  RpcServer() : RpcServer(Config{}) {}
  explicit RpcServer(const Config& config) : config_(config) {}

  /// Between [from, to), responses take `delay` instead (app slowness).
  void add_slow_period(util::SimTime from, util::SimTime to, util::SimDuration delay) {
    slow_periods_.push_back({from, to, delay});
  }

  void on_receive(net::Host& host, const packet::Packet& pkt) override {
    if (!pkt.is_tcp() || pkt.l4.dport != config_.port) return;
    ++requests_;
    const auto now = host.simulator().now();
    util::SimDuration delay = config_.processing_delay;
    for (const auto& period : slow_periods_) {
      if (now >= period.from && now < period.to) {
        delay = period.delay;
        break;
      }
    }
    packet::FlowKey reply_flow{host.addr(), pkt.ip->src,
                               static_cast<std::uint8_t>(packet::IpProto::kTcp), config_.port,
                               pkt.l4.sport};
    const std::uint32_t rpc_id = pkt.l4.seq;
    const std::uint32_t bytes = config_.response_bytes;
    // Segment the response at the MTU; PSH marks the final segment so the
    // client knows the RPC completed.
    (void)host.simulator().schedule_after(delay, [&host, reply_flow, rpc_id, bytes] {
      constexpr std::uint32_t kMss = 1400;
      std::uint32_t remaining = bytes;
      while (remaining > 0) {
        const std::uint32_t chunk = std::min(remaining, kMss);
        remaining -= chunk;
        const std::uint8_t flags = packet::tcp_flags::kAck |
                                   (remaining == 0 ? packet::tcp_flags::kPsh : 0);
        auto reply = packet::make_tcp(reply_flow, chunk, flags);
        reply.l4.seq = rpc_id;
        host.send(std::move(reply));
      }
    });
  }

  /// Was the server in a slow period at `when`?
  [[nodiscard]] bool slow_at(util::SimTime when) const {
    for (const auto& period : slow_periods_) {
      if (when >= period.from && when < period.to) return true;
    }
    return false;
  }

  [[nodiscard]] std::uint64_t requests() const { return requests_; }

 private:
  struct SlowPeriod {
    util::SimTime from;
    util::SimTime to;
    util::SimDuration delay;
  };
  Config config_;
  std::vector<SlowPeriod> slow_periods_;
  std::uint64_t requests_ = 0;
};

/// Issues RPCs at a fixed rate and records per-call completion latency
/// (-1 = response never arrived).
class RpcClient final : public net::HostApp {
 public:
  struct Config {
    packet::Ipv4Addr server{};
    std::uint16_t server_port = 9000;
    std::uint32_t request_bytes = 256;
    util::SimDuration interval = util::milliseconds(1);
    util::SimTime start = 0;
    util::SimTime stop = util::seconds(1);
    util::SimDuration timeout = util::milliseconds(50);
  };

  struct Record {
    std::uint32_t id;
    util::SimTime sent_at;
    util::SimDuration latency;  // -1 if timed out
  };

  RpcClient(net::Host& host, const Config& config, util::Rng rng)
      : host_(host), config_(config), rng_(rng) {}

  void start() {
    (void)host_.simulator().schedule_at(config_.start, [this] { issue(); });
  }

  void on_receive(net::Host& host, const packet::Packet& pkt) override {
    if (!pkt.is_tcp() || pkt.l4.sport != config_.server_port) return;
    if (!(pkt.l4.flags & packet::tcp_flags::kPsh)) return;  // final segment only
    const auto it = outstanding_.find(pkt.l4.seq);
    if (it == outstanding_.end()) return;
    records_.push_back(Record{pkt.l4.seq, it->second, host.simulator().now() - it->second});
    outstanding_.erase(it);
  }

  [[nodiscard]] const std::vector<Record>& records() const { return records_; }
  [[nodiscard]] std::size_t outstanding() const { return outstanding_.size(); }

  /// Finalize: everything still outstanding at the end is a timeout.
  void finish() {
    for (const auto& [id, sent_at] : outstanding_) {
      records_.push_back(Record{id, sent_at, -1});
    }
    outstanding_.clear();
  }

 private:
  void issue() {
    const auto now = host_.simulator().now();
    if (now >= config_.stop) return;
    const std::uint32_t id = next_id_++;
    packet::FlowKey flow{host_.addr(), config_.server,
                         static_cast<std::uint8_t>(packet::IpProto::kTcp),
                         static_cast<std::uint16_t>(30000 + (id % 8000)), config_.server_port};
    auto request = packet::make_tcp(flow, config_.request_bytes);
    request.l4.seq = id;
    outstanding_[id] = now;
    host_.send(std::move(request));

    (void)host_.simulator().schedule_after(config_.timeout, [this, id] {
      const auto it = outstanding_.find(id);
      if (it == outstanding_.end()) return;
      records_.push_back(Record{id, it->second, -1});
      outstanding_.erase(it);
    });

    // Slight jitter around the nominal interval keeps requests from
    // phase-locking with the prober.
    const auto gap = static_cast<util::SimDuration>(
        rng_.exponential(static_cast<double>(config_.interval)));
    (void)host_.simulator().schedule_after(std::max<util::SimDuration>(gap, 1000), [this] { issue(); });
  }

  net::Host& host_;
  Config config_;
  util::Rng rng_;
  std::uint32_t next_id_ = 1;
  std::unordered_map<std::uint32_t, util::SimTime> outstanding_;
  std::vector<Record> records_;
};

}  // namespace netseer::traffic
