#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace netseer::traffic {

/// An empirical CDF over flow sizes in bytes, sampled by inverse
/// transform with log-linear interpolation between knots (flow sizes
/// span orders of magnitude, so linear interpolation in log-size space
/// preserves the shape of the published distributions).
class EmpiricalCdf {
 public:
  struct Point {
    double bytes;       // flow size
    double cumulative;  // P(size <= bytes), non-decreasing, last == 1.0
  };

  /// `points` must be sorted by size, with cumulative ending at 1.0.
  /// Throws std::invalid_argument on malformed input.
  explicit EmpiricalCdf(std::string name, std::vector<Point> points);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Draw one flow size (>= 1 byte).
  [[nodiscard]] std::uint64_t sample(util::Rng& rng) const;

  /// Mean flow size (numeric, from the interpolated CDF).
  [[nodiscard]] double mean_bytes() const { return mean_; }

  /// P(size <= bytes) for validation/tests.
  [[nodiscard]] double cdf(double bytes) const;

  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

 private:
  std::string name_;
  std::vector<Point> points_;
  double mean_ = 0.0;
};

/// The five workloads of the paper's evaluation (§5.2). The tables are
/// the widely used public approximations of the cited measurement
/// studies: DCTCP = web-search [Alizadeh'10], VL2 = data-mining
/// [Greenberg'09], CACHE / HADOOP / WEB = Facebook production clusters
/// [Roy'15]. Exact knot values are approximations; the benches depend on
/// the *shape* (small-flow dominance vs heavy tail), which these keep.
[[nodiscard]] const EmpiricalCdf& dctcp();
[[nodiscard]] const EmpiricalCdf& vl2();
[[nodiscard]] const EmpiricalCdf& cache();
[[nodiscard]] const EmpiricalCdf& hadoop();
[[nodiscard]] const EmpiricalCdf& web();

/// All five, in the order the paper's figures list them.
[[nodiscard]] const std::vector<const EmpiricalCdf*>& all_workloads();

}  // namespace netseer::traffic
