#include "traffic/trace.h"

#include <algorithm>
#include <sstream>

#include "packet/builder.h"

namespace netseer::traffic {

bool parse_trace(std::istream& in, std::vector<TraceRecord>& out) {
  std::string line;
  bool ok = true;
  while (std::getline(in, line)) {
    // Trim comments and whitespace-only lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (line.rfind("start_us", 0) == 0) continue;  // header

    std::stringstream fields(line);
    std::string field;
    std::vector<std::string> parts;
    while (std::getline(fields, field, ',')) parts.push_back(field);
    if (parts.size() < 4) {
      ok = false;
      continue;
    }
    TraceRecord record;
    try {
      record.start = util::microseconds(std::stoll(parts[0]));
      record.bytes = std::stoull(parts[3]);
    } catch (...) {
      ok = false;
      continue;
    }
    const auto src = packet::Ipv4Addr::parse(parts[1]);
    const auto dst = packet::Ipv4Addr::parse(parts[2]);
    if (!src || !dst || record.start < 0) {
      ok = false;
      continue;
    }
    record.src = *src;
    record.dst = *dst;
    try {
      if (parts.size() > 4) record.sport = static_cast<std::uint16_t>(std::stoul(parts[4]));
      if (parts.size() > 5) record.dport = static_cast<std::uint16_t>(std::stoul(parts[5]));
    } catch (...) {
      ok = false;
      continue;
    }
    out.push_back(record);
  }
  return ok;
}

void write_trace(std::ostream& out, const std::vector<TraceRecord>& records) {
  out << "start_us,src,dst,bytes,sport,dport\n";
  for (const auto& record : records) {
    out << record.start / util::kMicrosecond << ',' << record.src.to_string() << ','
        << record.dst.to_string() << ',' << record.bytes << ',' << record.sport << ','
        << record.dport << '\n';
  }
}

TraceReplayer::TraceReplayer(std::vector<net::Host*> hosts, Options options)
    : hosts_(std::move(hosts)), options_(options) {}

std::size_t TraceReplayer::replay(const std::vector<TraceRecord>& records) {
  std::size_t scheduled = 0;
  for (const auto& record : records) {
    const auto it = std::find_if(hosts_.begin(), hosts_.end(), [&](const net::Host* host) {
      return host->addr() == record.src;
    });
    if (it == hosts_.end()) {
      ++skipped_;
      continue;
    }
    net::Host& host = **it;
    (void)host.simulator().schedule_at(record.start, [this, &host, record] {
      send_flow(host, record);
    });
    ++scheduled;
  }
  return scheduled;
}

namespace {

struct FlowState {
  packet::FlowKey flow;
  std::uint64_t remaining;
  TraceReplayer::Options options;
};

// Each firing schedules a fresh one-shot closure for the next segment;
// a closure that owned a shared_ptr to itself would never be freed.
void pump_flow(net::Host& host, const std::shared_ptr<FlowState>& state) {
  const auto payload = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(state->remaining, state->options.packet_payload));
  host.send(packet::make_tcp(state->flow, payload));
  state->remaining -= payload;
  if (state->remaining > 0) {
    (void)host.simulator().schedule_after(state->options.flow_rate.serialization_delay(payload),
                                    [&host, state] { pump_flow(host, state); });
  }
}

}  // namespace

void TraceReplayer::send_flow(net::Host& host, const TraceRecord& record) {
  // Paced packetization, like FlowGenerator: one segment per
  // serialization interval at the configured per-flow rate.
  auto state = std::make_shared<FlowState>(
      FlowState{packet::FlowKey{record.src, record.dst, 6, record.sport, record.dport},
                std::max<std::uint64_t>(record.bytes, 1), options_});
  pump_flow(host, state);
}

}  // namespace netseer::traffic
