// Silent-drop localization: the §5.1 Case-#3 class of incident. A
// bit-flipped SRAM entry on ONE aggregation switch blackholes the subset
// of flows that ECMP hashes onto it — no counter increments anywhere a
// Syslog would see, and the service sees "probabilistic request
// timeouts". This example shows the operator workflow with NetSeer:
// start from the victim service address, find the drops, localize the
// device, and show the probabilistic ECMP signature.
#include <cstdio>
#include <map>

#include "packet/builder.h"
#include "scenarios/harness.h"

using namespace netseer;

int main() {
  scenarios::HarnessOptions options;
  options.seed = 21;
  scenarios::Harness harness{options};
  auto& tb = harness.testbed();
  auto& sim = harness.simulator();

  net::Host& redis = *tb.hosts[2];  // the victim service VM

  // 40 PHP clients across the other pod hammer the service.
  for (std::uint16_t c = 0; c < 40; ++c) {
    net::Host& client = *tb.hosts[16 + (c % 16)];
    const packet::FlowKey flow{client.addr(), redis.addr(), 6,
                               static_cast<std::uint16_t>(6000 + c), 6379};
    for (int i = 0; i < 40; ++i) {
      (void)sim.schedule_at(i * util::microseconds(25), [&client, flow] {
        client.send(packet::make_tcp(flow, 300));
      });
    }
  }

  // The parity error: one /32 entry in agg0-0's route SRAM flips a bit.
  (void)sim.schedule_at(util::microseconds(100), [&tb, &redis] {
    tb.aggs[0]->routes().set_corrupted(packet::Ipv4Prefix{redis.addr(), 32}, true);
  });

  harness.run_and_settle(util::milliseconds(5));

  // --- Operator workflow ----------------------------------------------------
  // Step 1: query by destination-service events.
  backend::EventQuery drops;
  drops.type = core::EventType::kDrop;
  std::map<util::NodeId, std::uint64_t> per_device;
  std::map<std::uint64_t, std::uint64_t> per_flow;
  std::size_t victim_flows = 0;
  for (const auto& stored : harness.store().query(drops)) {
    if (stored.event.flow.dst != redis.addr()) continue;
    per_device[stored.event.switch_id] += stored.event.counter;
    if (per_flow[stored.event.flow.hash64()] == 0) ++victim_flows;
    per_flow[stored.event.flow.hash64()] += stored.event.counter;
  }

  std::printf("drops toward the Redis service by device:\n");
  for (const auto& [node, count] : per_device) {
    const char* name = "?";
    for (auto* sw : tb.all_switches()) {
      if (sw->id() == node) name = sw->name().c_str();
    }
    std::printf("  %-10s %llu packets  (drop code: table lookup miss)\n", name,
                static_cast<unsigned long long>(count));
  }

  // Step 2: the ECMP signature — only SOME flows die, all at one device.
  std::printf("\n%zu of 40 client flows are being blackholed (ECMP slice through agg0-0);\n",
              victim_flows);
  std::printf("the others are healthy -> consistent with a corrupted table entry,\n");
  std::printf("not a downed link. Paper Case-#3 took %.0f hours without this; the first\n",
              1008.0 / 60);
  backend::EventQuery first_query;
  first_query.type = core::EventType::kDrop;
  util::SimTime first = -1;
  for (const auto& stored : harness.store().query(first_query)) {
    if (stored.event.flow.dst != redis.addr()) continue;
    if (first < 0 || stored.event.detected_at < first) first = stored.event.detected_at;
  }
  std::printf("attributable event was in the backend %s after the bit flip.\n",
              util::format_duration(first - util::microseconds(100)).c_str());
  return per_device.size() == 1 ? 0 : 1;
}
