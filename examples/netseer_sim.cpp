// netseer_sim — command-line experiment driver. Assemble a topology, a
// workload, and a fault from flags; run it with NetSeer deployed
// everywhere; print what the backend knows.
//
//   ./build/examples/netseer_sim --topology testbed --workload web
//       --load 0.6 --duration-ms 15 --fault lossy-link --seed 7
//
// Faults: none | lossy-link | blackhole | parity | acl | incast
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "experiment.h"
#include "packet/builder.h"
#include "scenarios/harness.h"
#include "store/subscription.h"
#include "telemetry/collect.h"
#include "traffic/generator.h"

using namespace netseer;

namespace {

struct Args {
  std::string topology = "testbed";
  std::string workload = "web";
  double load = 0.6;
  int duration_ms = 15;
  std::string fault = "lossy-link";
  std::uint64_t seed = 7;
  std::string store_dir;
  std::string store_query;
  std::uint64_t store_query_threads = 1;
  bool store_tail = false;
};

const traffic::EmpiricalCdf* workload_by_name(const std::string& name) {
  for (const auto* cdf : traffic::all_workloads()) {
    std::string lower = cdf->name();
    for (auto& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == name) return cdf;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  bench::ExperimentOptions cli{
      "netseer_sim — assemble a topology, workload, and fault from flags; run it\n"
      "with NetSeer deployed everywhere; print what the backend knows."};
  cli.flag("topology", &args.topology, "testbed | fat4 | fat6 | fat8")
      .flag("workload", &args.workload, "dctcp | vl2 | cache | hadoop | web")
      .flag("load", &args.load, "average link utilization, 0..1")
      .flag("duration-ms", &args.duration_ms, "simulated run length")
      .flag("fault", &args.fault, "none | lossy-link | blackhole | parity | acl | incast")
      .flag("seed", &args.seed, "simulation seed")
      .flag("store-dir", &args.store_dir,
            "persist backend events (WAL + segments) under this directory")
      .flag("store-query", &args.store_query,
            "run a store query after the run, e.g. type=drop,switch=3,from=0,to=5000000")
      .flag("store-query-threads", &args.store_query_threads,
            "scatter-gather the --store-query over this many threads")
      .flag("store-tail", &args.store_tail,
            "after the run, stream the stored events back through a subscription")
      .parse(argc, argv);

  const auto* workload = workload_by_name(args.workload);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'\n\n%s", args.workload.c_str(),
                 cli.usage().c_str());
    return 2;
  }

  scenarios::HarnessOptions options;
  options.seed = args.seed;
  options.store.dir = args.store_dir;
  if (!args.store_dir.empty()) {
    options.store_maintenance_interval = util::milliseconds(1);
  }
  std::optional<backend::EventQuery> store_query;
  if (!args.store_query.empty()) {
    std::string error;
    store_query = store::parse_query(args.store_query, &error);
    if (!store_query) {
      std::fprintf(stderr, "bad --store-query: %s\n", error.c_str());
      return 2;
    }
  }
  options.topo.host_rate = util::BitRate::gbps(5);
  options.topo.fabric_rate = util::BitRate::gbps(20);
  if (args.topology.starts_with("fat")) {
    const int k = std::atoi(args.topology.c_str() + 3);
    if (k < 2 || k % 2) {
      std::fprintf(stderr, "bad fat-tree arity in '%s'\n", args.topology.c_str());
      return 2;
    }
    options.topo.num_pods = k;
    options.topo.aggs_per_pod = k / 2;
    options.topo.tors_per_pod = k / 2;
    options.topo.num_cores = (k / 2) * (k / 2);
    options.topo.hosts_per_tor = k / 2;
  } else if (args.topology != "testbed") {
    std::fprintf(stderr, "unknown topology '%s'\n", args.topology.c_str());
    return 2;
  }

  scenarios::Harness harness{options};
  auto& tb = harness.testbed();
  const auto duration = util::milliseconds(args.duration_ms);

  if (cli.verify() != bench::VerifyMode::kOff) {
    verify::VerifyOptions verify_options;
    verify_options.strict = cli.verify() == bench::VerifyMode::kStrict;
    const verify::Report report = harness.verify_deployment(verify_options);
    std::fprintf(stderr, "static verification (%zu switches): %s",
                 tb.all_switches().size(), report.render_text().c_str());
    if (!report.ok(verify_options.strict)) return 1;
  }

  traffic::GeneratorConfig gen;
  gen.sizes = workload;
  gen.load = args.load;
  gen.flow_rate = util::BitRate::gbps(1);
  gen.stop = duration;
  harness.add_workload(gen);

  const util::SimTime onset = duration / 3;
  std::string fault_desc = "none";
  if (args.fault == "lossy-link") {
    net::Link* bad =
        tb.tors[0]->link(static_cast<util::PortId>(options.topo.hosts_per_tor));
    (void)harness.simulator().schedule_at(onset, [bad] {
      net::LinkFaultModel faults;
      faults.drop_prob = 0.005;
      faults.corrupt_prob = 0.002;
      bad->set_fault_model(faults);
    });
    fault_desc = "silent loss+corruption on tor0-0 uplink";
  } else if (args.fault == "blackhole") {
    (void)harness.simulator().schedule_at(onset, [&tb] {
      tb.aggs[0]->routes().remove(packet::Ipv4Prefix{tb.hosts[1]->addr(), 32});
    });
    fault_desc = "route removed for " + tb.hosts[1]->addr().to_string() + " at agg0-0";
  } else if (args.fault == "parity") {
    (void)harness.simulator().schedule_at(onset, [&tb] {
      tb.aggs[0]->routes().set_corrupted(packet::Ipv4Prefix{tb.hosts[1]->addr(), 32}, true);
    });
    fault_desc = "parity-corrupted route entry at agg0-0";
  } else if (args.fault == "acl") {
    (void)harness.simulator().schedule_at(onset, [&tb] {
      pdp::AclRule rule;
      rule.rule_id = 700;
      rule.dst = packet::Ipv4Prefix{tb.hosts[2]->addr(), 32};
      rule.permit = false;
      tb.tors[0]->acl().add_rule(rule);
    });
    fault_desc = "deny rule 700 installed at tor0-0";
  } else if (args.fault == "incast") {
    std::vector<net::Host*> senders(
        tb.hosts.begin() + static_cast<std::ptrdiff_t>(tb.hosts.size() / 2), tb.hosts.end());
    traffic::launch_incast(senders, tb.hosts[0]->addr(), 150 * 1000, 1000, onset);
    fault_desc = "incast into " + tb.hosts[0]->addr().to_string();
  } else if (args.fault != "none") {
    std::fprintf(stderr, "unknown fault '%s'\n", args.fault.c_str());
    return 2;
  }

  std::printf("topology=%s (%zu switches, %zu hosts)  workload=%s load=%.0f%%  fault=%s\n",
              args.topology.c_str(), tb.all_switches().size(), tb.hosts.size(),
              workload->name().c_str(), 100 * args.load, fault_desc.c_str());

  harness.run_and_settle(duration + util::milliseconds(15));

  const auto funnel = harness.total_funnel();
  std::printf("\ntraffic: %.1f MB across %llu packets; monitoring overhead %.4f%%\n",
              static_cast<double>(funnel.traffic_bytes) / 1e6,
              static_cast<unsigned long long>(funnel.traffic_packets),
              100 * funnel.overhead_ratio());

  // Event summary by type.
  std::map<std::string, std::pair<std::size_t, std::uint64_t>> by_type;
  for (const auto& stored : harness.store().all()) {
    auto& entry = by_type[core::to_string(stored.event.type)];
    ++entry.first;
    entry.second += stored.event.counter;
  }
  std::printf("\nbackend events (%zu total):\n", harness.store().size());
  for (const auto& [type, counts] : by_type) {
    std::printf("  %-12s %8zu events  %10llu packets\n", type.c_str(), counts.first,
                static_cast<unsigned long long>(counts.second));
  }

  // Top affected flows (drops + congestion).
  std::map<std::uint64_t, std::pair<packet::FlowKey, std::uint64_t>> per_flow;
  for (const auto& stored : harness.store().all()) {
    if (stored.event.type == core::EventType::kPathChange) continue;
    auto& entry = per_flow[stored.event.flow.hash64()];
    entry.first = stored.event.flow;
    entry.second += stored.event.counter;
  }
  std::vector<std::pair<packet::FlowKey, std::uint64_t>> ranked;
  for (auto& [_, entry] : per_flow) ranked.push_back(entry);
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (!ranked.empty()) {
    std::printf("\ntop affected flows:\n");
    for (std::size_t i = 0; i < std::min<std::size_t>(5, ranked.size()); ++i) {
      std::printf("  %-36s %8llu packets\n", ranked[i].first.to_string().c_str(),
                  static_cast<unsigned long long>(ranked[i].second));
    }
  }

  // Per-device anomaly counts.
  std::printf("\nanomaly events by device:\n");
  for (auto* sw : tb.all_switches()) {
    backend::EventQuery query;
    query.switch_id = sw->id();
    std::size_t anomalies = 0;
    for (const auto& stored : harness.store().query(query)) {
      anomalies += (stored.event.type != core::EventType::kPathChange);
    }
    if (anomalies > 0) std::printf("  %-10s %zu\n", sw->name().c_str(), anomalies);
  }
  const auto actual = harness.truth().groups(core::EventType::kDrop);
  const auto detected = harness.netseer_groups(core::EventType::kDrop);
  std::printf("\ndrop coverage vs ground truth: %.1f%% (%zu groups)\n",
              100 * scenarios::Harness::coverage(detected, actual), actual.size());

  if (store_query) {
    auto& store = harness.store();
    if (args.store_query_threads > 1) {
      store.set_query_threads(static_cast<std::size_t>(
          std::min<std::uint64_t>(args.store_query_threads, 64)));
    }
    const auto scanned_before = store.stats().segments_scanned;
    const auto pruned_before = store.stats().segments_pruned;
    const auto matches = store.query(*store_query);
    std::printf("\nstore query '%s': %zu events\n", args.store_query.c_str(), matches.size());
    for (std::size_t i = 0; i < std::min<std::size_t>(10, matches.size()); ++i) {
      const auto& ev = matches[i].event;
      std::printf("  t=%-12lld sw=%-6u %-12s %s x%llu\n",
                  static_cast<long long>(ev.detected_at), ev.switch_id,
                  core::to_string(ev.type), ev.flow.to_string().c_str(),
                  static_cast<unsigned long long>(ev.counter));
    }
    std::printf("  plan: %llu segments scanned, %llu pruned\n",
                static_cast<unsigned long long>(store.stats().segments_scanned -
                                                scanned_before),
                static_cast<unsigned long long>(store.stats().segments_pruned -
                                                pruned_before));
  }
  if (args.store_tail) {
    // Subscription demo: replay everything the durable watermark covers,
    // exactly once in LSN order — the same API an online tailer polls as
    // ingest publishes the watermark.
    auto sub = harness.store().subscribe();
    std::size_t tail_rows = 0;
    while (sub.poll([&](const backend::StoredEvent&, std::uint64_t) { ++tail_rows; },
                    4096) > 0) {
    }
    std::printf("\nstore tail: %zu rows replayed, %llu lagged, cursor at LSN %llu "
                "(watermark %llu)\n",
                tail_rows, static_cast<unsigned long long>(sub.lagged()),
                static_cast<unsigned long long>(sub.cursor_lsn()),
                static_cast<unsigned long long>(harness.store().durable_watermark()));
  }
  if (!args.store_dir.empty()) {
    harness.store().checkpoint();
    std::printf("\nstore checkpointed to %s (%zu segments, %zu events)\n",
                args.store_dir.c_str(), harness.store().segment_count(),
                harness.store().size());
  }

  if (cli.metrics_enabled()) harness.collect_metrics(cli.registry());
  return cli.write_metrics();
}
