// SLA attribution: the §5.1 block-storage study as a runnable example.
// An RPC application runs over the testbed while a server-side bug and
// two kinds of network faults are injected; each slow RPC is then
// attributed using host metrics alone, host+Pingmesh, and host+NetSeer.
// This is the programmatic version of bench_fig8b_sla, showing how to
// consume SlaStudyResult from code.
#include <cstdio>

#include "scenarios/sla.h"

using namespace netseer;

int main() {
  scenarios::SlaStudyConfig config;
  config.seed = 7;
  config.duration = util::milliseconds(60);
  config.slow_threshold = util::milliseconds(1);

  const auto result = scenarios::run_sla_study(config);

  std::printf("issued %zu RPCs, %zu violated the %s SLA\n\n", result.total_rpcs,
              result.slow_rpcs, util::format_duration(config.slow_threshold).c_str());
  std::printf("%s\n", scenarios::format_breakdown("host", result.host_only).c_str());
  std::printf("%s\n", scenarios::format_breakdown("host+pingmesh", result.host_pingmesh).c_str());
  std::printf("%s\n", scenarios::format_breakdown("host+netseer", result.host_netseer).c_str());
  std::printf("%s\n", scenarios::format_breakdown("truth", result.truth).c_str());

  std::printf("\nattribution accuracy: host %.0f%% -> +pingmesh %.0f%% -> +netseer %.0f%%\n",
              100 * result.host_only_accuracy, 100 * result.host_pingmesh_accuracy,
              100 * result.host_netseer_accuracy);
  std::printf("\nwith NetSeer an operator answers 'was the network responsible for THIS\n"
              "slow call?' per RPC, instead of arguing from coarse counters (Case-#5).\n");
  return result.host_netseer_accuracy >= result.host_only_accuracy ? 0 : 1;
}
