// PFC pause visibility: lossless-Ethernet fabrics (RDMA) use 802.1Qbb
// priority flow control; congestion then shows up as PAUSE propagation
// instead of drops, and pause trees are notoriously hard to see. The
// paper's testbed NIC lacked PFC so §5 could not evaluate pauses — this
// simulator can: an incast on a PFC-enabled fabric generates pause
// events that NetSeer captures per flow.
#include <cstdio>
#include <map>

#include "packet/builder.h"
#include "scenarios/harness.h"
#include "traffic/generator.h"

using namespace netseer;

int main() {
  scenarios::HarnessOptions options;
  options.seed = 31;
  // Lossless-ish fabric: big queues, PFC thresholds armed.
  options.topo.mmu.queue_capacity_bytes = 2 * 1024 * 1024;
  options.topo.mmu.pfc_xoff_bytes = 120 * 1024;
  options.topo.mmu.pfc_xon_bytes = 40 * 1024;
  scenarios::Harness harness{options};
  auto& tb = harness.testbed();

  // Incast into one host: the ToR's ingress buffers cross XOFF and pause
  // the upstream aggs, which pause the cores...
  std::vector<net::Host*> senders(tb.hosts.begin() + 16, tb.hosts.begin() + 32);
  traffic::launch_incast(senders, tb.hosts[0]->addr(), 400 * 1000, 1000,
                         util::microseconds(100));
  // An innocent-bystander flow shares the paused queues.
  net::Host& bystander = *tb.hosts[8];
  const packet::FlowKey victim{bystander.addr(), tb.hosts[0]->addr(), 6, 4242, 443};
  for (int i = 0; i < 200; ++i) {
    (void)harness.simulator().schedule_at(i * util::microseconds(20), [&bystander, victim] {
      bystander.send(packet::make_tcp(victim, 600));
    });
  }

  harness.run_and_settle(util::milliseconds(20));

  backend::EventQuery pauses;
  pauses.type = core::EventType::kPause;
  std::map<util::NodeId, std::uint64_t> pause_by_device;
  std::uint64_t victim_paused = 0;
  for (const auto& stored : harness.store().query(pauses)) {
    pause_by_device[stored.event.switch_id] += stored.event.counter;
    if (stored.event.flow == victim) victim_paused += stored.event.counter;
  }

  std::printf("pause events by device (packets arriving to paused queues):\n");
  for (const auto& [node, count] : pause_by_device) {
    for (auto* sw : tb.all_switches()) {
      if (sw->id() == node) {
        std::printf("  %-10s %llu\n", sw->name().c_str(),
                    static_cast<unsigned long long>(count));
      }
    }
  }
  std::printf("\nbystander flow %s hit paused queues %llu times\n", victim.to_string().c_str(),
              static_cast<unsigned long long>(victim_paused));

  backend::EventQuery drops;
  drops.type = core::EventType::kDrop;
  std::printf("drops recorded: %zu (a lossless fabric trades drops for pauses)\n",
              harness.store().query(drops).size());
  std::printf("%s\n", pause_by_device.empty()
                          ? "=> no pause propagation (unexpected)"
                          : "=> pause propagation visible per flow, per device");
  return pause_by_device.empty() ? 1 : 0;
}
