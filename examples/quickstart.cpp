// Quickstart: build a tiny two-switch network, attach NetSeer, break a
// link, and query the backend for what happened — the whole public API
// in ~80 lines of user code.
//
//   h1 ── s1 ══(lossy)══ s2 ── h2
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "backend/collector.h"
#include "backend/event_store.h"
#include "core/netseer_app.h"
#include "core/nic_agent.h"
#include "fabric/network.h"
#include "packet/builder.h"

using namespace netseer;

int main() {
  // 1. A network: two switches, two hosts, routes computed automatically.
  fabric::Network net(/*seed=*/1);
  pdp::SwitchConfig sc;
  sc.num_ports = 4;
  sc.port_rate = util::BitRate::gbps(10);
  auto& s1 = net.add_switch("s1", sc);
  auto& s2 = net.add_switch("s2", sc);
  auto& h1 = net.add_host("h1", packet::Ipv4Addr::from_octets(10, 0, 0, 1),
                          util::BitRate::gbps(10));
  auto& h2 = net.add_host("h2", packet::Ipv4Addr::from_octets(10, 0, 1, 1),
                          util::BitRate::gbps(10));
  net.connect_host(s1, 0, h1, util::microseconds(1));
  net.connect_host(s2, 0, h2, util::microseconds(1));
  auto [s1_to_s2, s2_to_s1] = net.connect_switches(s1, 1, s2, 1, util::microseconds(1));
  net.compute_routes();

  // 2. NetSeer: a backend collector plus one app per switch and a NIC
  //    agent per host. That's the whole deployment.
  core::ReportChannel channel(net.simulator(), util::Rng(2), util::milliseconds(1),
                              /*loss=*/0.0);
  backend::EventStore store;
  backend::Collector collector(net.simulator(), /*id=*/1000, channel, store);
  core::NetSeerConfig config;
  core::NetSeerApp app1(s1, config, &channel, collector.id());
  core::NetSeerApp app2(s2, config, &channel, collector.id());
  core::NetSeerNicAgent nic1, nic2;
  h1.set_nic_agent(&nic1);
  h2.set_nic_agent(&nic2);

  // 3. Traffic, then a silently lossy link — the failure mode operators
  //    hate most (§3.3: no counter anywhere will show these drops).
  const packet::FlowKey flow{h1.addr(), h2.addr(), 6, 40001, 443};
  for (int i = 0; i < 50; ++i) h1.send(packet::make_tcp(flow, 1000));
  net.simulator().run();

  net::LinkFaultModel faults;
  faults.drop_prob = 0.08;
  s1_to_s2->set_fault_model(faults);
  for (int i = 0; i < 500; ++i) h1.send(packet::make_tcp(flow, 1000));
  net.simulator().run();
  s1_to_s2->set_fault_model({});  // link heals
  for (int i = 0; i < 50; ++i) h1.send(packet::make_tcp(flow, 1000));

  // 4. Drain and flush so all events reach the backend.
  net.simulator().run();
  app1.flush();
  app2.flush();
  net.simulator().run();

  // 5. Query the backend like an operator would (Fig. 2 step 4).
  std::printf("link silently dropped %llu packets\n",
              static_cast<unsigned long long>(s1_to_s2->packets_dropped()));

  backend::EventQuery by_flow;
  by_flow.flow = flow;
  std::uint64_t recovered = 0;
  for (const auto& stored : store.query(by_flow)) {
    if (stored.event.type == core::EventType::kDrop) recovered += stored.event.counter;
  }
  std::printf("NetSeer reported %llu drops for flow %s\n",
              static_cast<unsigned long long>(recovered), flow.to_string().c_str());

  backend::EventQuery by_device;
  by_device.switch_id = s1.id();
  std::printf("events attributed to upstream switch '%s': %zu\n", s1.name().c_str(),
              store.query(by_device).size());

  std::printf("%s\n", recovered == s1_to_s2->packets_dropped()
                          ? "=> every silent drop recovered, with full flow identity"
                          : "=> MISMATCH (unexpected)");
  return recovered == s1_to_s2->packets_dropped() ? 0 : 1;
}
