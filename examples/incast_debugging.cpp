// Incast debugging: the §2.1 Case-#2 situation. A customer reports
// occasional packet loss; SNMP shows the ToR dropped packets but cannot
// say WHOSE. With NetSeer, one backend query answers (a) were the
// customer's packets among the drops, and (b) which flows caused the
// burst — on the paper's full 10-switch testbed.
#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "monitors/snmp.h"
#include "packet/builder.h"
#include "scenarios/harness.h"
#include "traffic/generator.h"

using namespace netseer;

int main() {
  scenarios::HarnessOptions options;
  options.seed = 11;
  scenarios::Harness harness{options};
  auto& tb = harness.testbed();
  auto& sim = harness.simulator();

  monitors::SnmpMonitor snmp(sim, tb.all_switches(), util::milliseconds(2));

  // The customer's flow: steady small requests h[24] -> h[0].
  net::Host& customer = *tb.hosts[24];
  net::Host& service = *tb.hosts[0];
  const packet::FlowKey customer_flow{customer.addr(), service.addr(), 6, 5555, 443};
  for (int i = 0; i < 800; ++i) {
    (void)sim.schedule_at(i * util::microseconds(10), [&customer, customer_flow] {
      customer.send(packet::make_tcp(customer_flow, 400));
    });
  }

  // The incast: eight batch workers blast the same service VM.
  std::vector<net::Host*> workers(tb.hosts.begin() + 16, tb.hosts.begin() + 24);
  traffic::launch_incast(workers, service.addr(), 300 * 1000, 1000, util::milliseconds(3));

  snmp.stop();
  harness.run_and_settle(util::milliseconds(12));

  // --- What SNMP can tell the operator -------------------------------------
  std::printf("SNMP view (per-device counters):\n");
  for (auto* sw : tb.all_switches()) {
    if (sw->total_drops() > 0) {
      std::printf("  %s dropped %llu packets  <- but whose?\n", sw->name().c_str(),
                  static_cast<unsigned long long>(sw->total_drops()));
    }
  }

  // --- What NetSeer can tell the operator ----------------------------------
  std::printf("\nNetSeer view (backend queries):\n");

  backend::EventQuery customer_query;
  customer_query.flow = customer_flow;
  std::uint64_t customer_dropped = 0, customer_congested = 0;
  for (const auto& stored : harness.store().query(customer_query)) {
    if (stored.event.type == core::EventType::kDrop) customer_dropped += stored.event.counter;
    if (stored.event.type == core::EventType::kCongestion) {
      customer_congested += stored.event.counter;
    }
  }
  std::printf("  customer flow %s: %llu packets dropped, %llu congested\n",
              customer_flow.to_string().c_str(),
              static_cast<unsigned long long>(customer_dropped),
              static_cast<unsigned long long>(customer_congested));

  // Rank flows by congestion-drop volume at the victim ToR.
  backend::EventQuery at_tor;
  at_tor.switch_id = tb.tors[0]->id();
  std::unordered_map<std::uint64_t, std::pair<packet::FlowKey, std::uint64_t>> by_flow;
  for (const auto& stored : harness.store().query(at_tor)) {
    if (stored.event.type != core::EventType::kDrop &&
        stored.event.type != core::EventType::kCongestion) {
      continue;
    }
    auto& entry = by_flow[stored.event.flow.hash64()];
    entry.first = stored.event.flow;
    entry.second += stored.event.counter;
  }
  std::vector<std::pair<packet::FlowKey, std::uint64_t>> ranked;
  for (auto& [_, entry] : by_flow) ranked.push_back(entry);
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  std::printf("  top flows disturbing %s:\n", tb.tors[0]->name().c_str());
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ranked.size()); ++i) {
    std::printf("    %-34s %8llu packets%s\n", ranked[i].first.to_string().c_str(),
                static_cast<unsigned long long>(ranked[i].second),
                ranked[i].first.sport >= 20000 && ranked[i].first.sport < 20008
                    ? "  <- incast worker"
                    : "");
  }
  std::printf("\n=> the incast workers are identified by name; reschedule or rate-limit them.\n");
  return ranked.empty() ? 1 : 0;
}
