#include <gtest/gtest.h>

#include "verify/passes.h"

namespace netseer::verify {
namespace {

constexpr util::NodeId kSwitchId = 1;

Report run(const PipelineLayout& layout) {
  Report report;
  check_hazards(report, layout, "sw", kSwitchId);
  return report;
}

bool any_message_contains(const Report& report, const std::string& needle) {
  for (const auto& d : report.diagnostics()) {
    if (d.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(HazardCheckTest, DisjointRmwActorsAreHazardFree) {
  PipelineLayout layout;
  layout.add("a", "actor-a", 3, Gress::kIngress, AccessMode::kReadModifyWrite)
      .add("b", "actor-b", 4, Gress::kIngress, AccessMode::kReadModifyWrite)
      .add("c", "actor-c", 3, Gress::kEgress, AccessMode::kReadModifyWrite);
  const Report report = run(layout);
  EXPECT_TRUE(report.ok(true)) << report.render_text();
  EXPECT_TRUE(report.diagnostics().empty());
}

TEST(HazardCheckTest, SameStageWritesByDistinctActorsAreWaw) {
  PipelineLayout layout;
  layout.add("table", "owner", 3, Gress::kIngress, AccessMode::kReadModifyWrite)
      .add("table", "rogue", 3, Gress::kIngress, AccessMode::kWrite);
  const Report report = run(layout);
  EXPECT_EQ(report.error_count(), 1u);
  EXPECT_TRUE(any_message_contains(report, "WAW")) << report.render_text();
}

TEST(HazardCheckTest, SameStageReadAgainstWriteIsRaw) {
  PipelineLayout layout;
  layout.add("table", "writer", 5, Gress::kEgress, AccessMode::kWrite)
      .add("table", "reader", 5, Gress::kEgress, AccessMode::kRead);
  const Report report = run(layout);
  EXPECT_EQ(report.error_count(), 1u);
  EXPECT_TRUE(any_message_contains(report, "RAW")) << report.render_text();
}

TEST(HazardCheckTest, SameActorTouchingItsOwnArrayTwiceIsNotAHazard) {
  // A stateful ALU's RMW is one atomic op; two entries by the SAME actor
  // model e.g. predicated actions of one table, not a race.
  PipelineLayout layout;
  layout.add("table", "owner", 3, Gress::kIngress, AccessMode::kWrite)
      .add("table", "owner", 3, Gress::kIngress, AccessMode::kRead);
  EXPECT_TRUE(run(layout).diagnostics().empty());
}

TEST(HazardCheckTest, ArraySplitAcrossStagesIsFlagged) {
  PipelineLayout layout;
  layout.add("table", "early", 2, Gress::kIngress, AccessMode::kWrite)
      .add("table", "late", 6, Gress::kIngress, AccessMode::kRead);
  const Report report = run(layout);
  EXPECT_GE(report.error_count(), 1u);
  EXPECT_TRUE(any_message_contains(report, "different stages")) << report.render_text();
}

TEST(HazardCheckTest, CrossGressAliasingIsFlagged) {
  // Same stage number on both gresses: not a stage split, purely the
  // ownership violation.
  PipelineLayout layout;
  layout.add("table", "ingress-side", 5, Gress::kIngress, AccessMode::kReadModifyWrite)
      .add("table", "egress-side", 5, Gress::kEgress, AccessMode::kReadModifyWrite);
  const Report report = run(layout);
  EXPECT_EQ(report.error_count(), 1u);
  EXPECT_TRUE(any_message_contains(report, "aliased across ingress and egress"))
      << report.render_text();
}

TEST(HazardCheckTest, StatefulAluBudgetPerStageIsEnforced) {
  PipelineLayout layout;
  for (int i = 0; i < 5; ++i) {
    const std::string suffix = std::to_string(i);
    layout.add("array" + suffix, "actor" + suffix, 4, Gress::kIngress,
               AccessMode::kReadModifyWrite);
  }
  const Report report = run(layout);
  ASSERT_EQ(report.error_count(), 1u);
  const Diagnostic& d = report.diagnostics()[0];
  EXPECT_EQ(d.component, "stage 4");
  EXPECT_DOUBLE_EQ(d.measured, 5.0);
  EXPECT_DOUBLE_EQ(d.limit, 4.0);
}

TEST(HazardCheckTest, ReadOnlyAccessesDoNotConsumeStatefulAlus) {
  PipelineLayout layout;
  layout.add("w", "writer", 4, Gress::kIngress, AccessMode::kReadModifyWrite);
  for (int i = 0; i < 6; ++i) {
    const std::string suffix = std::to_string(i);
    layout.add("r" + suffix, "reader" + suffix, 4, Gress::kIngress, AccessMode::kRead);
  }
  EXPECT_TRUE(run(layout).diagnostics().empty());
}

TEST(HazardCheckTest, StageOutOfRangeIsFlagged) {
  PipelineLayout layout;
  layout.add("table", "actor", layout.num_stages, Gress::kIngress, AccessMode::kWrite);
  const Report report = run(layout);
  EXPECT_EQ(report.error_count(), 1u);
  EXPECT_TRUE(any_message_contains(report, "12 stages")) << report.render_text();
}

TEST(HazardCheckTest, CanonicalNetSeerLayoutIsHazardFree) {
  const core::NetSeerConfig config;
  const Report report = run(netseer_layout(config));
  EXPECT_TRUE(report.ok(true)) << report.render_text();
}

TEST(HazardCheckTest, SeededRogueWriterOnPathTableIsCaught) {
  // The same defect the CLI's stage-hazard fixture plants.
  const core::NetSeerConfig config;
  PipelineLayout layout = netseer_layout(config);
  layout.add("detect.path_table", "rogue flow sampler", 3, Gress::kIngress, AccessMode::kWrite);
  const Report report = run(layout);
  EXPECT_GE(report.error_count(), 1u);
  EXPECT_TRUE(any_message_contains(report, "WAW")) << report.render_text();
}

}  // namespace
}  // namespace netseer::verify
