#include "verify/diagnostics.h"

#include <gtest/gtest.h>

namespace netseer::verify {
namespace {

Diagnostic make(Severity severity, std::string pass, std::string message) {
  Diagnostic d;
  d.severity = severity;
  d.pass = std::move(pass);
  d.message = std::move(message);
  return d;
}

TEST(ReportTest, EmptyReportIsOkEvenInStrictMode) {
  Report report;
  EXPECT_TRUE(report.ok(false));
  EXPECT_TRUE(report.ok(true));
  EXPECT_EQ(report.error_count(), 0u);
  EXPECT_EQ(report.warning_count(), 0u);
  EXPECT_NE(report.render_text().find("0 error(s), 0 warning(s) across 0 pass(es)"),
            std::string::npos);
}

TEST(ReportTest, ErrorsAlwaysFail) {
  Report report;
  report.add(make(Severity::kError, "acl", "dead rule"));
  EXPECT_FALSE(report.ok(false));
  EXPECT_FALSE(report.ok(true));
  EXPECT_EQ(report.error_count(), 1u);
  EXPECT_EQ(report.warning_count(), 0u);
}

TEST(ReportTest, WarningsOnlyFailInStrictMode) {
  Report report;
  report.add(make(Severity::kWarning, "capacity", "near the bound"));
  EXPECT_TRUE(report.ok(false));
  EXPECT_FALSE(report.ok(true));
  EXPECT_EQ(report.error_count(), 0u);
  EXPECT_EQ(report.warning_count(), 1u);
}

TEST(ReportTest, MarkPassDeduplicates) {
  Report report;
  report.mark_pass("resources");
  report.mark_pass("capacity");
  report.mark_pass("resources");
  ASSERT_EQ(report.passes_run().size(), 2u);
  EXPECT_EQ(report.passes_run()[0], "resources");
  EXPECT_EQ(report.passes_run()[1], "capacity");
}

TEST(ReportTest, MergeConcatenatesDiagnosticsAndDedupesPasses) {
  Report a;
  a.mark_pass("acl");
  a.add(make(Severity::kError, "acl", "dead rule"));

  Report b;
  b.mark_pass("acl");
  b.mark_pass("capacity");
  b.add(make(Severity::kWarning, "capacity", "near the bound"));

  a.merge(b);
  EXPECT_EQ(a.diagnostics().size(), 2u);
  EXPECT_EQ(a.error_count(), 1u);
  EXPECT_EQ(a.warning_count(), 1u);
  ASSERT_EQ(a.passes_run().size(), 2u);
  EXPECT_EQ(a.passes_run()[1], "capacity");
}

TEST(ReportTest, RenderTextIncludesSwitchComponentAndBudget) {
  Report report;
  report.mark_pass("resources");
  Diagnostic d = make(Severity::kError, "resources", "TCAM budget exceeded");
  d.switch_name = "tor0-0";
  d.component = "TCAM";
  d.measured = 1.074;
  d.limit = 1.0;
  report.add(std::move(d));

  const std::string text = report.render_text();
  EXPECT_NE(text.find("error [resources] tor0-0 TCAM: TCAM budget exceeded"),
            std::string::npos);
  EXPECT_NE(text.find("(measured 1.074, limit 1)"), std::string::npos);
  EXPECT_NE(text.find("1 error(s), 0 warning(s) across 1 pass(es)"), std::string::npos);
}

TEST(ReportTest, RenderJsonEscapesAndStructures) {
  Report report;
  report.mark_pass("acl");
  Diagnostic d = make(Severity::kWarning, "acl", "message with \"quotes\"\nand newline");
  d.switch_name = "tor0-0";
  d.switch_id = 7;
  report.add(std::move(d));

  const std::string json = report.render_json();
  EXPECT_NE(json.find("\"passes\": [\"acl\"]"), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"switch_id\": 7"), std::string::npos);
  EXPECT_NE(json.find("message with \\\"quotes\\\"\\nand newline"), std::string::npos);
}

TEST(ReportTest, RenderJsonEmitsNullForUnknownSwitchId) {
  Report report;
  report.add(make(Severity::kError, "capacity", "fabric-wide finding"));
  EXPECT_NE(report.render_json().find("\"switch_id\": null"), std::string::npos);
}

}  // namespace
}  // namespace netseer::verify
